// Dynamic customization tests (paper §2.3.3): the client bootstraps a
// matching micro-protocol configuration from the server at startup.
#include <gtest/gtest.h>

#include "common/error.h"
#include "cqos/dynamic_config.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

constexpr const char* kKey = "0123456789abcdef";

ClusterOptions options_with_advertised_stack() {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = 3;
  opts.net.base_latency = us(80);
  opts.net.jitter = 0;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  // Server requires privacy; matching client config is advertised, not
  // compiled into the client.
  opts.qos.add(Side::kServer, "des_privacy", {{"key", kKey}});
  return opts;
}

QosConfig advertised_config() {
  QosConfig advertised;
  advertised.add(Side::kClient, "active_rep")
      .add(Side::kClient, "first_success")
      .add(Side::kClient, "des_privacy", {{"key", kKey}});
  return advertised;
}

TEST(DynamicConfig, ClientBootstrapsMatchingStackFromServer) {
  Cluster cluster(options_with_advertised_stack());
  for (int i = 0; i < 3; ++i) {
    advertise_config(*cluster.cactus_server(i), advertised_config());
  }

  // A client with an explicitly EMPTY stack (just the base): calls fail
  // because the server decrypts garbage.
  std::vector<MicroProtocolSpec> bare;
  auto unconfigured = cluster.make_client({}, &bare);
  EXPECT_THROW(unconfigured->call("set_balance", {Value(1)}),
               InvocationError);

  // A client that bootstraps its configuration from the server works.
  auto client = cluster.make_client({}, &bare);
  bootstrap_client(*client->cactus_client(), client->platform(),
                   cluster.options().object_id, /*replica_index=*/1, ms(500));
  BankAccountStub account(client->stub_ptr());
  account.set_balance(42);
  EXPECT_EQ(account.get_balance(), 42);
  // The bootstrapped stack is the advertised one.
  auto names = client->cactus_client()->protocol().protocol_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "active_rep"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "des_privacy"), names.end());
}

TEST(DynamicConfig, FetchReturnsServerAdvertisedText) {
  Cluster cluster(options_with_advertised_stack());
  advertise_config(*cluster.cactus_server(0), advertised_config());
  auto client = cluster.make_client();
  QosConfig fetched = fetch_config(client->platform(),
                                   cluster.options().object_id, 1, ms(500));
  ASSERT_EQ(fetched.client.size(), 3u);
  EXPECT_EQ(fetched.client[0].name, "active_rep");
  EXPECT_EQ(fetched.client[2].param("key"), kKey);
}

TEST(DynamicConfig, MissingAdvertisementIsAnError) {
  Cluster cluster(options_with_advertised_stack());  // nothing advertised
  auto client = cluster.make_client();
  EXPECT_THROW(fetch_config(client->platform(), cluster.options().object_id, 1,
                            ms(500)),
               Error);
}

TEST(DynamicConfig, UnknownAdvertisedProtocolFailsBootstrap) {
  Cluster cluster(options_with_advertised_stack());
  QosConfig bad;
  bad.add(Side::kClient, "hologram_rep");  // not in the registry
  advertise_config(*cluster.cactus_server(0), bad);
  std::vector<MicroProtocolSpec> bare;
  auto client = cluster.make_client({}, &bare);
  EXPECT_THROW(
      bootstrap_client(*client->cactus_client(), client->platform(),
                       cluster.options().object_id, 1, ms(500)),
      ConfigError);
}

}  // namespace
}  // namespace cqos::sim
