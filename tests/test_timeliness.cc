// Timeliness micro-protocol tests: PrioritySched, QueuedSched, TimedSched.
//
// These use a servant with a deliberate service time so queueing effects are
// observable, and a pair of clients with different priorities (the paper's
// "request priority is determined based on client identity").
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/stats.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

/// Servant that burns a fixed service time per call and records the order
/// in which calls entered.
class SlowServant : public Servant {
 public:
  explicit SlowServant(Duration service_time) : service_time_(service_time) {}

  Value dispatch(const std::string& method, const ValueList& params) override {
    {
      std::scoped_lock lk(mu_);
      entries_.push_back(params.empty() ? Value() : params[0]);
    }
    std::this_thread::sleep_for(service_time_);
    (void)method;
    return Value(true);
  }

  std::vector<Value> entries() const {
    std::scoped_lock lk(mu_);
    return entries_;
  }

 private:
  Duration service_time_;
  mutable std::mutex mu_;
  std::vector<Value> entries_;
};

ClusterOptions sched_options(std::shared_ptr<Servant> servant) {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = 1;
  opts.net.base_latency = us(50);
  opts.net.jitter = 0;
  opts.request_timeout = ms(8000);
  opts.servant_factory = [servant] { return servant; };
  return opts;
}

TEST(PrioritySched, ServantThreadRunsAtRequestPriority) {
  struct Probe : Servant {
    std::atomic<int> low{-1}, high{-1};
    Value dispatch(const std::string&, const ValueList& params) override {
      if (params.at(0).as_i64() == 1) {
        high.store(current_thread_priority());
      } else {
        low.store(current_thread_priority());
      }
      return Value(true);
    }
  };
  auto probe = std::make_shared<Probe>();
  auto opts = sched_options(probe);
  opts.qos.add(Side::kServer, "priority_sched");
  Cluster cluster(opts);

  CqosStub::Options high;
  high.priority = 9;
  auto high_client = cluster.make_client(high);
  high_client->call("mark", {Value(1)});

  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);
  low_client->call("mark", {Value(0)});

  EXPECT_EQ(probe->high.load(), 9);
  EXPECT_EQ(probe->low.load(), 2);
}

TEST(QueuedSched, LowPriorityQueuedBehindExecutingHigh) {
  auto servant = std::make_shared<SlowServant>(ms(60));
  auto opts = sched_options(servant);
  opts.qos.add(Side::kServer, "queued_sched");
  Cluster cluster(opts);

  CqosStub::Options high;
  high.priority = 9;
  auto high_client = cluster.make_client(high);
  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);

  // Start a long high-priority call, then a low one while it executes.
  std::thread high_thread(
      [&] { high_client->call("work", {Value("high")}); });
  std::this_thread::sleep_for(ms(15));  // high is now executing
  std::thread low_thread([&] { low_client->call("work", {Value("low")}); });
  high_thread.join();
  low_thread.join();

  auto entries = servant->entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].as_string(), "high");
  EXPECT_EQ(entries[1].as_string(), "low");
}

TEST(QueuedSched, LowProceedsWhenNoHighActive) {
  auto servant = std::make_shared<SlowServant>(ms(5));
  auto opts = sched_options(servant);
  opts.qos.add(Side::kServer, "queued_sched");
  Cluster cluster(opts);
  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);
  TimePoint before = now();
  low_client->call("work", {Value("low")});
  // No high traffic: a low request must not wait for any timer or release.
  EXPECT_LT(now() - before, ms(2000));
  EXPECT_EQ(servant->entries().size(), 1u);
}

TEST(QueuedSched, QueuedLowEventuallyRuns) {
  auto servant = std::make_shared<SlowServant>(ms(25));
  auto opts = sched_options(servant);
  opts.qos.add(Side::kServer, "queued_sched");
  Cluster cluster(opts);

  CqosStub::Options high;
  high.priority = 9;
  auto high_client = cluster.make_client(high);
  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);

  std::atomic<bool> low_done{false};
  std::thread high_thread([&] {
    for (int i = 0; i < 4; ++i) high_client->call("work", {Value("h")});
  });
  std::this_thread::sleep_for(ms(10));
  std::thread low_thread([&] {
    low_client->call("work", {Value("l")});
    low_done.store(true);
  });
  high_thread.join();
  low_thread.join();
  EXPECT_TRUE(low_done.load());
}

TEST(TimedSched, DifferentiatesUnderHighLoad) {
  auto servant = std::make_shared<SlowServant>(ms(4));
  auto opts = sched_options(servant);
  opts.qos.add(Side::kServer, "timed_sched",
               {{"period_ms", "10"}, {"threshold", "100"}});
  Cluster cluster(opts);

  CqosStub::Options high;
  high.priority = 9;
  auto high_client = cluster.make_client(high);
  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);

  LatencyRecorder high_lat, low_lat;
  std::thread high_thread([&] {
    for (int i = 0; i < 40; ++i) {
      TimePoint t0 = now();
      high_client->call("work", {Value("h")});
      high_lat.add(to_ms(now() - t0));
    }
  });
  std::thread low_thread([&] {
    for (int i = 0; i < 10; ++i) {
      TimePoint t0 = now();
      low_client->call("work", {Value("l")});
      low_lat.add(to_ms(now() - t0));
    }
  });
  high_thread.join();
  low_thread.join();

  ASSERT_EQ(high_lat.count(), 40u);
  ASSERT_EQ(low_lat.count(), 10u);
  // Service differentiation: low-priority mean latency strictly above high.
  EXPECT_GT(low_lat.mean(), high_lat.mean());
}

TEST(TimedSched, LowStarvesWhileAboveThreshold) {
  auto servant = std::make_shared<SlowServant>(ms(3));
  auto opts = sched_options(servant);
  // Threshold 1: low is only released after a period with ZERO high
  // arrivals. The period is deliberately long so scheduler hiccups in the
  // high-traffic thread cannot fake an empty period on a loaded machine.
  opts.qos.add(Side::kServer, "timed_sched",
               {{"period_ms", "250"}, {"threshold", "1"}});
  opts.request_timeout = ms(900);
  Cluster cluster(opts);

  CqosStub::Options high;
  high.priority = 9;
  auto high_client = cluster.make_client(high);
  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);

  std::atomic<bool> stop{false};
  std::thread high_thread([&] {
    while (!stop.load()) high_client->call("work", {Value("h")});
  });
  std::this_thread::sleep_for(ms(30));
  // The low request cannot be released while >=1 high arrives per period;
  // it times out at the Cactus level.
  EXPECT_THROW(low_client->call("work", {Value("l")}), InvocationError);
  stop.store(true);
  high_thread.join();
}

TEST(TimedSched, IdleSystemServesLowDirectly) {
  auto servant = std::make_shared<SlowServant>(ms(2));
  auto opts = sched_options(servant);
  opts.qos.add(Side::kServer, "timed_sched",
               {{"period_ms", "50"}, {"threshold", "4"}});
  Cluster cluster(opts);
  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);
  TimePoint before = now();
  low_client->call("work", {Value("l")});
  EXPECT_LT(now() - before, ms(2000));
}

}  // namespace
}  // namespace cqos::sim
