// Transport seam + TCP transport tests: framing (partial reads, oversized
// frames), the make_transport factory, raw TCP loopback delivery, learned
// return routes, backpressure, and the existing QoS compositions running
// unchanged on a TCP-backed Cluster.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/error.h"
#include "common/metrics.h"
#include "cqos/request.h"
#include "net/framing.h"
#include "net/sim_network.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::net {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// --- framing -----------------------------------------------------------------

TEST(Framing, RoundtripSingleFrame) {
  Bytes frame = encode_frame("hostA/cli", "hostB/srv", bytes_of("hello"));
  FrameDecoder dec(1 << 20);
  ASSERT_TRUE(dec.feed(frame));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->from, "hostA/cli");
  EXPECT_EQ(f->to, "hostB/srv");
  EXPECT_EQ(f->payload, bytes_of("hello"));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(Framing, ByteAtATimeDelivery) {
  // The regression the decoder exists for: a TCP read can return any split
  // of the stream, down to one byte per read.
  Bytes a = encode_frame("h/x", "h/y", bytes_of("first"));
  Bytes b = encode_frame("h/y", "h/x", bytes_of("second message"));
  Bytes stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameDecoder dec(1 << 20);
  int frames = 0;
  for (std::uint8_t byte : stream) {
    ASSERT_TRUE(dec.feed(std::span<const std::uint8_t>(&byte, 1)));
    while (auto f = dec.next()) {
      ++frames;
      if (frames == 1) EXPECT_EQ(f->payload, bytes_of("first"));
      if (frames == 2) EXPECT_EQ(f->payload, bytes_of("second message"));
    }
  }
  EXPECT_EQ(frames, 2);
}

TEST(Framing, ArbitrarySplitPoints) {
  Bytes frame = encode_frame("hostA/cli", "hostB/srv", bytes_of("payload!"));
  for (std::size_t split = 1; split < frame.size(); ++split) {
    FrameDecoder dec(1 << 20);
    ASSERT_TRUE(dec.feed(std::span<const std::uint8_t>(frame.data(), split)));
    EXPECT_FALSE(dec.next().has_value()) << "split=" << split;
    ASSERT_TRUE(dec.feed(std::span<const std::uint8_t>(
        frame.data() + split, frame.size() - split)));
    auto f = dec.next();
    ASSERT_TRUE(f.has_value()) << "split=" << split;
    EXPECT_EQ(f->payload, bytes_of("payload!"));
  }
}

TEST(Framing, OversizedFrameRejectedBeforeBuffering) {
  FrameDecoder dec(64);
  // A 4-byte prefix declaring a body far over the max: the decoder must
  // fail immediately, without waiting for (or buffering) the body.
  std::uint8_t prefix[4] = {0xff, 0xff, 0xff, 0x7f};
  EXPECT_FALSE(dec.feed(std::span<const std::uint8_t>(prefix, 4)));
  EXPECT_TRUE(dec.failed());
  EXPECT_NE(dec.error().find("exceeds max"), std::string::npos);
  // Poisoned: further bytes are refused.
  std::uint8_t more = 0;
  EXPECT_FALSE(dec.feed(std::span<const std::uint8_t>(&more, 1)));
}

TEST(Framing, FrameAtExactlyMaxSizeAccepted) {
  Bytes frame = encode_frame("a/b", "c/d", Bytes(100, 0x5a));
  FrameDecoder dec(frame.size() - 4);  // body length == max
  ASSERT_TRUE(dec.feed(frame));
  EXPECT_TRUE(dec.next().has_value());
}

TEST(Framing, MalformedBodyFailsDecoder) {
  // Valid length prefix, garbage body (unknown frame type).
  std::uint8_t raw[] = {3, 0, 0, 0, 0xee, 0x01, 0x02};
  FrameDecoder dec(1 << 20);
  EXPECT_FALSE(dec.feed(std::span<const std::uint8_t>(raw, sizeof(raw))));
  EXPECT_TRUE(dec.failed());
}

TEST(Framing, TruncatedStringFailsDecoder) {
  // type ok, but `from` declares more bytes than the body holds.
  std::uint8_t raw[] = {3, 0, 0, 0, 1, 0x7f, 'x'};
  FrameDecoder dec(1 << 20);
  EXPECT_FALSE(dec.feed(std::span<const std::uint8_t>(raw, sizeof(raw))));
  EXPECT_TRUE(dec.failed());
}

// --- seam / factory ----------------------------------------------------------

TEST(TransportSeam, FactoryBuildsSimByDefault) {
  auto t = make_transport(TransportConfig{});
  EXPECT_EQ(t->kind(), "sim");
  EXPECT_NE(t->as_sim(), nullptr);
  EXPECT_EQ(t->as_tcp(), nullptr);
}

TEST(TransportSeam, FactoryBuildsTcp) {
  auto t = make_transport(TransportConfig::real_tcp());
  EXPECT_EQ(t->kind(), "tcp");
  EXPECT_EQ(t->as_sim(), nullptr);
  ASSERT_NE(t->as_tcp(), nullptr);
  EXPECT_GT(t->as_tcp()->listen_port(), 0);
}

TEST(TransportSeam, HostOfSharedByBothTransports) {
  EXPECT_EQ(Transport::host_of("hostA/orb0"), "hostA");
  EXPECT_EQ(SimNetwork::host_of("hostA/orb0"), "hostA");
  EXPECT_EQ(Transport::host_of("bare"), "bare");
}

TEST(TransportSeam, SimBehavesIdenticallyThroughTheInterface) {
  NetConfig cfg;
  cfg.jitter = 0;
  cfg.base_latency = us(50);
  auto t = make_transport(TransportConfig::simulated(cfg));
  auto a = t->create_endpoint("hostA/a");
  auto b = t->create_endpoint("hostB/b");
  ASSERT_TRUE(t->send("hostA/a", "hostB/b", bytes_of("ping")));
  auto msg = b->recv(ms(500));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, "hostA/a");
  EXPECT_EQ(msg->payload, bytes_of("ping"));
  EXPECT_EQ(t->messages_sent(), 1u);
}

// --- TCP loopback ------------------------------------------------------------

struct TcpFixture {
  metrics::Registry registry;
  std::unique_ptr<Transport> t;

  explicit TcpFixture(TcpOptions opts = {}) {
    opts.metrics = &registry;
    t = make_transport(TransportConfig::real_tcp(opts));
  }
  TcpTransport& tcp() { return *t->as_tcp(); }
};

TEST(TcpTransport, SelfLoopbackDeliversThroughRealSockets) {
  TcpFixture fx;
  auto a = fx.t->create_endpoint("hostA/a");
  auto b = fx.t->create_endpoint("hostB/b");
  ASSERT_TRUE(fx.t->send("hostA/a", "hostB/b", bytes_of("over the wire")));
  auto msg = b->recv(ms(2000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, "hostA/a");
  EXPECT_EQ(msg->to, "hostB/b");
  EXPECT_EQ(msg->payload, bytes_of("over the wire"));
  // Real socket traffic, not a direct deposit.
  EXPECT_GE(fx.tcp().open_connections(), 1u);
  EXPECT_EQ(fx.registry.counter("net.recv.msgs").value(), 1u);
}

TEST(TcpTransport, DirectDepositWhenSelfLoopbackOff) {
  TcpOptions opts;
  opts.self_loopback = false;
  TcpFixture fx(opts);
  auto a = fx.t->create_endpoint("hostA/a");
  auto b = fx.t->create_endpoint("hostB/b");
  ASSERT_TRUE(fx.t->send("hostA/a", "hostB/b", bytes_of("direct")));
  auto msg = b->recv(ms(500));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, bytes_of("direct"));
  EXPECT_EQ(fx.tcp().open_connections(), 0u);
}

TEST(TcpTransport, TwoTransportsTalkAndRepliesUseLearnedRoutes) {
  // "Server" transport knows nothing about the client (it is on an
  // ephemeral port); the reply must ride the learned route.
  TcpFixture server;
  auto srv = server.t->create_endpoint("server0/svc");

  TcpOptions copts;
  copts.peers["server0"] =
      "127.0.0.1:" + std::to_string(server.tcp().listen_port());
  TcpFixture client(copts);
  auto cli = client.t->create_endpoint("client0/cli");

  ASSERT_TRUE(client.t->send("client0/cli", "server0/svc", bytes_of("req")));
  auto req = srv->recv(ms(2000));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->from, "client0/cli");

  ASSERT_TRUE(server.t->send("server0/svc", "client0/cli", bytes_of("rsp")));
  auto rsp = cli->recv(ms(2000));
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->payload, bytes_of("rsp"));
}

TEST(TcpTransport, NoRouteDropsAndCounts) {
  TcpFixture fx;
  auto a = fx.t->create_endpoint("hostA/a");
  EXPECT_FALSE(fx.t->send("hostA/a", "nowhere/b", bytes_of("lost")));
  EXPECT_EQ(fx.registry.counter("net.drop.noroute").value(), 1u);
  EXPECT_EQ(fx.t->messages_sent(), 0u);
}

TEST(TcpTransport, OversizedSendRefused) {
  TcpOptions opts;
  opts.max_frame_bytes = 256;
  TcpFixture fx(opts);
  auto a = fx.t->create_endpoint("hostA/a");
  auto b = fx.t->create_endpoint("hostB/b");
  EXPECT_FALSE(fx.t->send("hostA/a", "hostB/b", Bytes(1024, 0xab)));
  EXPECT_EQ(fx.registry.counter("net.drop.oversize").value(), 1u);
}

TEST(TcpTransport, BackpressureDropsOnceQueueFills) {
  TcpOptions opts;
  // Non-routable address (TEST-NET-1): the connect never completes, so
  // frames pile up in the write queue until backpressure trips.
  opts.peers["blackhole"] = "192.0.2.1:9";
  opts.max_queued_bytes = 4 * 1024;
  opts.connect_timeout = ms(60'000);  // keep kConnecting for the whole test
  TcpFixture fx(opts);
  auto a = fx.t->create_endpoint("hostA/a");
  bool saw_drop = false;
  for (int i = 0; i < 64 && !saw_drop; ++i) {
    saw_drop = !fx.t->send("hostA/a", "blackhole/b", Bytes(256, 0x11));
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_GE(fx.registry.counter("net.drop.backpressure").value(), 1u);
}

TEST(TcpTransport, EndpointIdCollisionThrows) {
  TcpFixture fx;
  auto a = fx.t->create_endpoint("hostA/a");
  EXPECT_THROW(fx.t->create_endpoint("hostA/a"), Error);
  fx.t->remove_endpoint("hostA/a");
  EXPECT_NO_THROW(fx.t->create_endpoint("hostA/a"));
}

TEST(TcpTransport, OversizedInboundFrameClosesConnection) {
  // A raw client writes a hostile length prefix straight at the listen
  // socket; the transport must close the connection (clean close, no
  // unbounded allocation) and count a protocol drop.
  TcpOptions opts;
  opts.max_frame_bytes = 1024;
  TcpFixture fx(opts);
  auto srv = fx.t->create_endpoint("server0/svc");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(fx.tcp().listen_port());
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);

  std::uint8_t evil[4] = {0xff, 0xff, 0xff, 0x3f};  // ~1 GiB frame
  ASSERT_EQ(::write(fd, evil, sizeof(evil)), 4);

  // The peer closes: read() must observe EOF (or reset) within the timeout.
  char buf[16];
  ssize_t n = ::read(fd, buf, sizeof(buf));
  EXPECT_LE(n, 0);
  ::close(fd);
  EXPECT_GE(fx.registry.counter("net.drop.protocol").value(), 1u);
}

}  // namespace
}  // namespace cqos::net

// --- QoS compositions on a TCP-backed cluster --------------------------------

namespace cqos::sim {
namespace {

constexpr const char* kKey = "0123456789abcdef";

ClusterOptions tcp_options(PlatformKind kind) {
  ClusterOptions opts;
  opts.platform = kind;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = 1;
  opts.transport_kind = net::TransportKind::kTcp;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  return opts;
}

class TcpClusterBothPlatforms : public ::testing::TestWithParam<PlatformKind> {
};

TEST_P(TcpClusterBothPlatforms, RoundtripOverRealSockets) {
  Cluster cluster(tcp_options(GetParam()));
  EXPECT_EQ(cluster.transport().kind(), "tcp");
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(123456);
  account.deposit(44);
  EXPECT_EQ(account.get_balance(), 123500);
}

TEST_P(TcpClusterBothPlatforms, SecuredCompositionRunsUnchanged) {
  auto opts = tcp_options(GetParam());
  opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}})
      .add(Side::kClient, "integrity", {{"key", kKey}})
      .add(Side::kServer, "des_privacy", {{"key", kKey}})
      .add(Side::kServer, "integrity", {{"key", kKey}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(987654);
  EXPECT_EQ(account.get_balance(), 987654);
}

TEST_P(TcpClusterBothPlatforms, RetransmitDedupCompositionRunsUnchanged) {
  auto opts = tcp_options(GetParam());
  opts.qos.add(Side::kClient, "retransmit", {{"retries", "4"}})
      .add(Side::kServer, "dedup");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(1000);
  account.deposit(500);
  account.withdraw(250);
  EXPECT_EQ(account.get_balance(), 1250);
}

TEST_P(TcpClusterBothPlatforms, TraceIdCrossesTheRealWire) {
  Cluster cluster(tcp_options(GetParam()));
  auto client = cluster.make_client();
  RequestPtr req =
      client->stub().call_request("set_balance", {Value(std::int64_t{7})});
  ASSERT_TRUE(req != nullptr);
  EXPECT_TRUE(req->succeeded());
  ASSERT_NE(req->trace_id, 0u);
  PiggybackMap reply_pb = req->reply_piggyback();
  auto it = reply_pb.find(pbkey::kTraceId);
  ASSERT_TRUE(it != reply_pb.end());
  EXPECT_EQ(static_cast<std::uint64_t>(it->second.as_i64()), req->trace_id);
}

INSTANTIATE_TEST_SUITE_P(Platforms, TcpClusterBothPlatforms,
                         ::testing::Values(PlatformKind::kRmi,
                                           PlatformKind::kCorba),
                         [](const auto& info) {
                           return info.param == PlatformKind::kRmi ? "Rmi"
                                                                   : "Corba";
                         });

TEST(TcpCluster, SimOnlyAccessorsThrowOnTcp) {
  Cluster cluster(tcp_options(PlatformKind::kRmi));
  EXPECT_THROW(cluster.network(), ConfigError);
  EXPECT_THROW(cluster.faults(), ConfigError);
  EXPECT_THROW(cluster.crash_replica(0), ConfigError);
}

TEST(TcpCluster, SimClusterStillExposesNetworkAndFaults) {
  ClusterOptions opts;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  Cluster cluster(opts);
  EXPECT_EQ(cluster.transport().kind(), "sim");
  EXPECT_NO_THROW(cluster.network());
  EXPECT_NO_THROW(cluster.faults());
}

}  // namespace
}  // namespace cqos::sim
