// Fault-tolerance micro-protocol tests: ActiveRep, PassiveRep, acceptance
// semantics, TotalOrder, failure injection and recovery.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

ClusterOptions replicated_options(PlatformKind kind, int replicas) {
  ClusterOptions opts;
  opts.platform = kind;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = replicas;
  opts.net.base_latency = us(80);
  opts.net.jitter = 0.02;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  return opts;
}

BankAccountServant& account_servant(Cluster& cluster, int i) {
  return static_cast<BankAccountServant&>(cluster.servant(i));
}

void wait_for(const std::function<bool()>& cond, Duration timeout = ms(3000)) {
  TimePoint deadline = now() + timeout;
  while (!cond() && now() < deadline) std::this_thread::sleep_for(ms(10));
}

// --- ActiveRep -------------------------------------------------------------------

TEST(ActiveRep, AllReplicasExecuteEveryCall) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(777);
  EXPECT_EQ(account.get_balance(), 777);
  // Late replies may still be in flight; every replica converges.
  for (int i = 0; i < 3; ++i) {
    wait_for([&] { return account_servant(cluster, i).balance() == 777; });
    EXPECT_EQ(account_servant(cluster, i).balance(), 777) << "replica " << i;
  }
}

TEST(ActiveRep, SurvivesMinorityCrashWithFirstSuccess) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep").add(Side::kClient, "first_success");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(1);  // binds all replicas
  cluster.crash_replica(2);
  account.set_balance(42);
  EXPECT_EQ(account.get_balance(), 42);
}

// Paper §3.2: ClientBase's default acceptance returns the FIRST reply,
// success or failure — "a policy useful for the non-replicated case". With
// plain ActiveRep a crashed replica's instant transport failure wins the
// race, so crash tolerance requires an acceptance micro-protocol.
TEST(ActiveRep, DefaultAcceptanceReturnsFastFailureFirst) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(1);
  cluster.crash_replica(2);
  EXPECT_THROW(account.set_balance(42), InvocationError);
}

TEST(ActiveRep, FirstSuccessSwallowsFailures) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep").add(Side::kClient, "first_success");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(5);
  cluster.crash_replica(0);  // crash the replica whose reply would come first
  EXPECT_EQ(account.get_balance(), 5);
}

TEST(ActiveRep, FirstSuccessFailsWhenAllReplicasFail) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep").add(Side::kClient, "first_success");
  opts.request_timeout = ms(1500);
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(5);
  for (int i = 0; i < 3; ++i) cluster.crash_replica(i);
  EXPECT_THROW(account.get_balance(), InvocationError);
}

// --- MajorityVote ----------------------------------------------------------------

TEST(MajorityVote, AgreesOnCommonValue) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep").add(Side::kClient, "majority_vote");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(999);
  EXPECT_EQ(account.get_balance(), 999);
}

TEST(MajorityVote, OutvotesDivergentReplica) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep").add(Side::kClient, "majority_vote");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(100);
  for (int i = 0; i < 3; ++i) {
    wait_for([&] { return account_servant(cluster, i).balance() == 100; });
  }
  // Corrupt replica 0's state behind CQoS's back: majority must prevail.
  account_servant(cluster, 0).dispatch("set_balance", {Value(55555)});
  EXPECT_EQ(account.get_balance(), 100);
}

TEST(MajorityVote, ToleratesOneCrash) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep").add(Side::kClient, "majority_vote");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(31);
  cluster.crash_replica(1);
  EXPECT_EQ(account.get_balance(), 31);  // 2 of 3 still agree
}

TEST(MajorityVote, FailsWithoutMajority) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep").add(Side::kClient, "majority_vote");
  opts.request_timeout = ms(1500);
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(31);
  cluster.crash_replica(1);
  cluster.crash_replica(2);
  EXPECT_THROW(account.get_balance(), InvocationError);  // 1 < majority of 3
}

// --- PassiveRep ------------------------------------------------------------------

TEST(PassiveRep, BackupsStayConsistentViaForwarding) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(64);
  for (int i = 0; i < 3; ++i) {
    wait_for([&] { return account_servant(cluster, i).balance() == 64; });
    EXPECT_EQ(account_servant(cluster, i).balance(), 64) << "replica " << i;
  }
}

TEST(PassiveRep, FailsOverToBackupOnPrimaryCrash) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(7);
  wait_for([&] { return account_servant(cluster, 1).balance() == 7; });
  cluster.crash_replica(0);
  // The retry path must transparently reach the new primary.
  EXPECT_EQ(account.get_balance(), 7);
  account.deposit(3);
  EXPECT_EQ(account.get_balance(), 10);
}

TEST(PassiveRep, AllReplicasFailedReportsError) {
  auto opts = replicated_options(PlatformKind::kRmi, 2);
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  opts.request_timeout = ms(2500);
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(1);
  cluster.crash_replica(0);
  cluster.crash_replica(1);
  EXPECT_THROW(account.get_balance(), InvocationError);
}

TEST(PassiveRep, ApplicationErrorsDoNotTriggerFailover) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(10);
  std::int64_t primary_before = account_servant(cluster, 0).invocation_count();
  EXPECT_THROW(account.withdraw(10000), InvocationError);
  // Primary served the failing call; no replica was marked failed.
  EXPECT_GT(account_servant(cluster, 0).invocation_count(), primary_before);
  EXPECT_EQ(account.get_balance(), 10);
}

TEST(PassiveRep, DuplicateRequestsNotReExecuted) {
  auto opts = replicated_options(PlatformKind::kRmi, 2);
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.deposit(5);
  // Wait for the forward to land on the backup exactly once.
  wait_for([&] { return account_servant(cluster, 1).balance() == 5; });
  std::this_thread::sleep_for(ms(100));  // any duplicate would land by now
  EXPECT_EQ(account_servant(cluster, 1).balance(), 5);
}

// --- TotalOrder ------------------------------------------------------------------

TEST(TotalOrder, ConcurrentWritesApplyInSameOrderEverywhere) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep")
      .add(Side::kClient, "first_success")
      .add(Side::kServer, "total_order");
  Cluster cluster(opts);

  constexpr int kClients = 3, kCalls = 12;
  std::vector<std::unique_ptr<ClientHandle>> clients;
  for (int i = 0; i < kClients; ++i) clients.push_back(cluster.make_client());
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BankAccountStub account(clients[static_cast<std::size_t>(c)]->stub_ptr());
      for (int i = 0; i < kCalls; ++i) {
        account.set_balance(c * 1000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();

  // All replicas executed the same totally ordered stream, so their final
  // state must be identical (each set_balance overwrites).
  wait_for([&] {
    return account_servant(cluster, 0).invocation_count() ==
               kClients * kCalls &&
           account_servant(cluster, 1).invocation_count() ==
               kClients * kCalls &&
           account_servant(cluster, 2).invocation_count() == kClients * kCalls;
  });
  std::int64_t b0 = account_servant(cluster, 0).balance();
  EXPECT_EQ(b0, account_servant(cluster, 1).balance());
  EXPECT_EQ(b0, account_servant(cluster, 2).balance());
}

TEST(TotalOrder, DepositsCommuteButCountsMatch) {
  auto opts = replicated_options(PlatformKind::kRmi, 3);
  opts.qos.add(Side::kClient, "active_rep")
      .add(Side::kClient, "majority_vote")
      .add(Side::kServer, "total_order");
  Cluster cluster(opts);
  auto c1 = cluster.make_client();
  auto c2 = cluster.make_client();
  std::thread t1([&] {
    BankAccountStub account(c1->stub_ptr());
    for (int i = 0; i < 10; ++i) account.deposit(1);
  });
  std::thread t2([&] {
    BankAccountStub account(c2->stub_ptr());
    for (int i = 0; i < 10; ++i) account.deposit(100);
  });
  t1.join();
  t2.join();
  for (int i = 0; i < 3; ++i) {
    wait_for([&] { return account_servant(cluster, i).balance() == 1010; });
    EXPECT_EQ(account_servant(cluster, i).balance(), 1010) << "replica " << i;
  }
}

// --- Rebind/recovery ---------------------------------------------------------------

TEST(Recovery, PassivePrimaryRecoveryAllowsExplicitRebind) {
  auto opts = replicated_options(PlatformKind::kRmi, 2);
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(50);
  // Forwarding is asynchronous (the paper's PassiveRep forwards "to keep
  // [backups] consistent", not synchronously): wait for convergence before
  // crashing the primary, or the update is legitimately lost.
  wait_for([&] { return account_servant(cluster, 1).balance() == 50; });
  cluster.crash_replica(0);
  EXPECT_EQ(account.get_balance(), 50);  // failover to replica 1
  cluster.recover_replica(0);
  // The paper: "bind() can also be used to rebind to a failed server after
  // it has recovered".
  client->cactus_client()->qos().bind(0);
  EXPECT_EQ(client->cactus_client()->qos().server_status(0),
            ServerStatus::kRunning);
  EXPECT_EQ(account.get_balance(), 50);
}

}  // namespace
}  // namespace cqos::sim
