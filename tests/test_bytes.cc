#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"

namespace cqos {
namespace {

TEST(Bytes, PrimitiveRoundtrip) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-17);
  w.put_f64(-2.5);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -17);
  EXPECT_DOUBLE_EQ(r.get_f64(), -2.5);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Bytes, VarintBoundaries) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 32, ~std::uint64_t{0}}) {
    ByteWriter w;
    w.put_varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.get_varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Bytes, VarintSizes) {
  ByteWriter w1;
  w1.put_varint(127);
  EXPECT_EQ(w1.size(), 1u);
  ByteWriter w2;
  w2.put_varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Bytes, VarintTooLongThrows) {
  Bytes data(11, 0x80);  // never terminates within 64 bits
  ByteReader r(data);
  EXPECT_THROW(r.get_varint(), DecodeError);
}

TEST(Bytes, VarintOverflowRejected) {
  // A syntactically valid 10-byte varint whose final group carries bits
  // >= 2^64 must throw, not silently truncate: 9 continuation bytes put the
  // last group at shift 63 where only the low bit fits.
  Bytes data(9, 0x80);
  data.push_back(0x02);  // bit 64 — out of range
  ByteReader r(data);
  EXPECT_THROW(r.get_varint(), DecodeError);

  // Same shape with every dropped-bit pattern that used to decode as a
  // small value: 0x7f at shift 63 would have kept only its low bit.
  Bytes data2(9, 0xff);
  data2.push_back(0x7f);
  ByteReader r2(data2);
  EXPECT_THROW(r2.get_varint(), DecodeError);
}

TEST(Bytes, VarintTenByteMaxStillDecodes) {
  // The largest legal 10-byte varint (UINT64_MAX) keeps working: groups
  // 0x7f x9 fill bits 0..62 and the final group contributes bit 63 only.
  Bytes data(9, 0xff);
  data.push_back(0x01);
  ByteReader r(data);
  EXPECT_EQ(r.get_varint(), ~std::uint64_t{0});
  EXPECT_TRUE(r.done());
}

TEST(Bytes, StringAndBlob) {
  ByteWriter w;
  w.put_string("héllo");
  w.put_blob(Bytes{1, 2, 3});
  ByteReader r(w.data());
  EXPECT_EQ(r.get_string(), "héllo");
  EXPECT_EQ(r.get_blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, BlobLengthOverflowRejected) {
  ByteWriter w;
  w.put_varint(1'000'000);  // length far beyond the buffer
  w.put_u8(1);
  ByteReader r(w.data());
  EXPECT_THROW(r.get_blob(), DecodeError);
}

TEST(Bytes, ReadPastEndThrows) {
  Bytes data{1, 2};
  ByteReader r(data);
  EXPECT_THROW(r.get_u32(), DecodeError);
  // Failed reads must not consume.
  EXPECT_EQ(r.get_u8(), 1);
}

TEST(Bytes, AlignPadsWithZeros) {
  ByteWriter w;
  w.put_u8(1);
  w.align(4);
  EXPECT_EQ(w.size(), 4u);
  w.put_u32(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 1);
  r.align(4);
  EXPECT_EQ(r.get_u32(), 7u);
}

TEST(Bytes, AlignNoopWhenAligned) {
  ByteWriter w;
  w.put_u32(1);
  w.align(4);
  EXPECT_EQ(w.size(), 4u);
}

TEST(Bytes, PatchU32) {
  ByteWriter w;
  w.put_u32(0);
  w.put_u8(9);
  w.patch_u32(0, 0xcafebabe);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u32(), 0xcafebabeu);
  EXPECT_EQ(r.get_u8(), 9);
}

TEST(Bytes, FuzzRoundtripMixedOps) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    ByteWriter w;
    std::vector<std::uint64_t> vals;
    for (int i = 0; i < 20; ++i) {
      std::uint64_t v = rng.next_u64();
      vals.push_back(v);
      w.put_varint(v);
    }
    ByteReader r(w.data());
    for (std::uint64_t v : vals) EXPECT_EQ(r.get_varint(), v);
    EXPECT_TRUE(r.done());
  }
}

}  // namespace
}  // namespace cqos
