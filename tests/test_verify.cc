// Static composition verifier (cqos/verify.h): one negative test per rule
// asserting the documented diagnostic, plus builder fail-fast behavior and
// the trait derivation the soak harness gates on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <string_view>

#include "common/error.h"
#include "cqos/endpoint.h"
#include "cqos/verify.h"
#include "micro/standard.h"
#include "net/sim_network.h"
#include "platform/rmi/registry.h"
#include "platform/rmi/rmi.h"
#include "sim/bank_account.h"
#include "soak/soak.h"

namespace cqos {
namespace {

/// Synthetic protocols with targeted effect models (the factory is never
/// invoked — the verifier analyzes manifests without constructing).
void register_test_protocols() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = MicroProtocolRegistry::instance();
    auto noop = [](const MicroProtocolSpec&)
        -> std::unique_ptr<cactus::MicroProtocol> { return nullptr; };
    reg.add(Side::kClient, "zz_dangler", noop,
            MicroManifest("zz_dangler", Side::kClient).raises("zz:nowhere"));
    reg.add(Side::kClient, "zz_binder", noop,
            MicroManifest("zz_binder", Side::kClient).binds("zz:never"));
    reg.add(Side::kClient, "zz_writer_a", noop,
            MicroManifest("zz_writer_a", Side::kClient).writes_pb("zz.key"));
    reg.add(Side::kClient, "zz_writer_b", noop,
            MicroManifest("zz_writer_b", Side::kClient).writes_pb("zz.key"));
    reg.add(Side::kClient, "zz_opaque", noop);  // no manifest: opaque
  });
}

const VerifyIssue* find_rule(const VerifyResult& r, std::string_view rule) {
  for (const auto& issue : r.issues) {
    if (issue.rule == rule) return &issue;
  }
  return nullptr;
}

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    micro::register_standard_micro_protocols();
    register_test_protocols();
  }
};

// --- side-local rules --------------------------------------------------------

TEST_F(VerifyTest, DuplicateProtocol) {
  VerifyResult r = verify_side(Side::kServer, {{"dedup"}, {"dedup"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "duplicate-protocol");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "server: micro-protocol 'dedup' appears 2 times in one stack — "
            "each protocol may be configured at most once");
}

TEST_F(VerifyTest, UnknownProtocol) {
  VerifyResult r = verify_side(Side::kClient, {{"zz_no_such"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "unknown-protocol");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message, "client: unknown micro-protocol 'zz_no_such'");
}

TEST_F(VerifyTest, UnknownConfigKey) {
  VerifyResult r =
      verify_side(Side::kServer, {{"dedup", {{"bogus", "1"}}}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "unknown-config-key");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "server: 'dedup' does not accept config key 'bogus' "
            "(accepted: max_cache)");
}

TEST_F(VerifyTest, MissingConfigKey) {
  VerifyResult r = verify_side(Side::kServer, {{"access_control"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "missing-config-key");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "server: 'access_control' requires config key 'allow'");
}

TEST_F(VerifyTest, DanglingRaise) {
  VerifyResult r = verify_side(Side::kClient, {{"zz_dangler"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "dangling-raise");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->severity, VerifyIssue::Severity::kError);
  EXPECT_EQ(issue->message,
            "client: 'zz_dangler' raises 'zz:nowhere' but no handler in the "
            "stack binds it");
}

TEST_F(VerifyTest, UnreachableHandler) {
  VerifyResult r = verify_side(Side::kClient, {{"zz_binder"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "unreachable-handler");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "client: 'zz_binder' binds 'zz:never' but nothing in the stack "
            "raises it");
}

TEST_F(VerifyTest, GraphRulesDegradeToWarningsWithOpaqueProtocols) {
  // An opaque protocol may provide the missing edge, so the graph findings
  // must not hard-fail the composition.
  VerifyResult r = verify_side(Side::kClient, {{"zz_dangler"}, {"zz_opaque"}});
  EXPECT_TRUE(r.ok());
  const VerifyIssue* issue = find_rule(r, "dangling-raise");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->severity, VerifyIssue::Severity::kWarning);
}

TEST_F(VerifyTest, PiggybackWriteConflict) {
  VerifyResult r =
      verify_side(Side::kClient, {{"zz_writer_a"}, {"zz_writer_b"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "pb-conflict");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "client: piggyback key 'zz.key' is written by both 'zz_writer_a' "
            "and 'zz_writer_b'");
}

TEST_F(VerifyTest, RequiresInSameStack) {
  VerifyResult r = verify_side(Side::kClient, {{"first_success"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "requires");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "client: 'first_success' requires 'active_rep' in the same stack");
}

TEST_F(VerifyTest, ConflictingProtocols) {
  VerifyResult r =
      verify_side(Side::kClient, {{"active_rep"}, {"load_balance"}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "conflicts");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "client: 'active_rep' conflicts with 'load_balance' — configure "
            "at most one");
}

TEST_F(VerifyTest, OrderConstraint) {
  // Integrity is encrypt-then-MAC: it must come after des_privacy.
  VerifyResult r = verify_side(
      Side::kClient, {{"integrity", {{"key", "0123456789abcdef"}}},
                      {"des_privacy", {{"key", "0123456789abcdef"}}}});
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "order-constraint");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "client: 'integrity' must come after 'des_privacy' in the stack "
            "order");
}

// --- cross-side rules --------------------------------------------------------

TEST_F(VerifyTest, AsymmetricPairEncryptorWithoutDecryptor) {
  QosConfig config;
  config.add(Side::kClient, "des_privacy", {{"key", "0123456789abcdef"}});
  VerifyResult r = verify_composition(config);
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "asymmetric-pair");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "client: 'des_privacy' has no matching peer on the server side "
            "(requires one of: des_privacy)");
}

TEST_F(VerifyTest, AsymmetricPairRetransmitWithoutAtMostOnce) {
  QosConfig config;
  config.add(Side::kClient, "retransmit");
  VerifyResult r = verify_composition(config);
  ASSERT_FALSE(r.ok());
  const VerifyIssue* issue = find_rule(r, "asymmetric-pair");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->message,
            "client: 'retransmit' requires a server-side protocol providing "
            "'at-most-once'; none is configured");
}

TEST_F(VerifyTest, RetransmitSatisfiedByAnyAtMostOnceProvider) {
  // dedup and passive_rep both declare at-most-once; either peer satisfies
  // the retransmit pairing.
  for (const char* provider : {"dedup", "passive_rep"}) {
    QosConfig config;
    config.add(Side::kClient, "retransmit");
    if (std::string(provider) == "passive_rep") {
      config.add(Side::kClient, "passive_rep");
    }
    config.add(Side::kServer, provider);
    VerifyResult r = verify_composition(config);
    EXPECT_TRUE(r.ok()) << provider << ":\n" << r.text();
  }
}

TEST_F(VerifyTest, SampleCompositionIsClean) {
  QosConfig config = QosConfig::parse(
      "client: active_rep, majority_vote\n"
      "server: total_order, dedup\n");
  VerifyResult r = verify_composition(config);
  EXPECT_TRUE(r.ok()) << r.text();
}

// --- traits ------------------------------------------------------------------

TEST_F(VerifyTest, TraitsDerivedFromManifests) {
  QosConfig total;
  total.add(Side::kClient, "active_rep")
      .add(Side::kServer, "total_order")
      .add(Side::kServer, "dedup");
  CompositionTraits t = composition_traits(total);
  EXPECT_TRUE(t.total_order);
  EXPECT_TRUE(t.at_most_once);
  EXPECT_TRUE(t.replicated);
  EXPECT_FALSE(t.loss_tolerant);

  QosConfig plain;
  plain.add(Side::kServer, "dedup");
  t = composition_traits(plain);
  EXPECT_FALSE(t.total_order);
  EXPECT_TRUE(t.at_most_once);
  EXPECT_FALSE(t.replicated);
  EXPECT_TRUE(t.loss_tolerant);
}

TEST_F(VerifyTest, EveryRegisteredSoakCompositionVerifies) {
  for (const std::string& name : soak::soak_configs()) {
    QosConfig config = soak::soak_qos_config(name);
    VerifyResult r = verify_composition(config);
    EXPECT_TRUE(r.ok()) << name << ":\n" << r.text();
  }
}

TEST_F(VerifyTest, SoakProfileGatingFollowsDerivedTraits) {
  // The total-order soak config must exclude exactly the loss-type
  // profiles; every loss-tolerant config runs the full matrix.
  auto total = soak::soak_profiles_for("active-total");
  for (const char* excluded : {"backup-churn", "partition-flap", "drop-storm"}) {
    EXPECT_EQ(std::find(total.begin(), total.end(), excluded), total.end())
        << excluded;
  }
  EXPECT_EQ(total.size(), soak::soak_profiles().size() - 3);
  EXPECT_EQ(soak::soak_profiles_for("passive-rep").size(),
            soak::soak_profiles().size());
}

// --- builder integration -----------------------------------------------------

class BuilderVerifyTest : public VerifyTest {
 protected:
  BuilderVerifyTest()
      : net_(net::NetConfig{}),
        registry_(net_, "nameserver"),
        server_platform_(net_, "server0", rmi_config()),
        client_platform_(net_, "client0", rmi_config()) {}

  static rmi::RmiConfig rmi_config() {
    rmi::RmiConfig cfg;
    cfg.registry_host = "nameserver";
    return cfg;
  }

  net::SimNetwork net_;
  rmi::Registry registry_;
  rmi::RmiRuntime server_platform_;
  rmi::RmiRuntime client_platform_;
};

TEST_F(BuilderVerifyTest, ClientBuildFailsFastOnVerifierError) {
  try {
    QosEndpoint::client(client_platform_, "BankAccount")
        .qos({{"first_success"}})  // requires active_rep
        .build();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("failed composition verification"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("[requires]"), std::string::npos)
        << e.what();
  }
}

TEST_F(BuilderVerifyTest, ServerBuildFailsFastOnVerifierError) {
  auto servant = std::make_shared<sim::BankAccountServant>();
  try {
    QosEndpoint::server(server_platform_, servant, "BankAccount")
        .qos({{"access_control"}})  // missing required 'allow'
        .build();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("[missing-config-key]"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(BuilderVerifyTest, EscapeHatchSkipsVerification) {
  // verify(false) builds the empty-ACL server the verifier would reject —
  // the deliberate opt-out for experimental stacks.
  auto servant = std::make_shared<sim::BankAccountServant>();
  auto server = QosEndpoint::server(server_platform_, servant, "BankAccount")
                    .qos({{"access_control"}})
                    .verify(false)
                    .build();
  EXPECT_NE(server, nullptr);
}

TEST_F(BuilderVerifyTest, DuplicatesRejectedEvenWithVerifyOff) {
  try {
    QosEndpoint::client(client_platform_, "BankAccount")
        .qos({{"retransmit"}, {"retransmit"}})
        .verify(false)
        .build();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what())
                  .find("duplicate micro-protocol 'retransmit'"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(BuilderVerifyTest, CleanStackBuildsWithVerificationOn) {
  auto servant = std::make_shared<sim::BankAccountServant>();
  auto server = QosEndpoint::server(server_platform_, servant, "BankAccount")
                    .qos({{"dedup"}})
                    .build();
  auto client = QosEndpoint::client(client_platform_, "BankAccount")
                    .qos({{"retransmit"}})
                    .build();
  EXPECT_NE(server, nullptr);
  EXPECT_NE(client, nullptr);
}

}  // namespace
}  // namespace cqos
