// Overload-protection tests: traffic-class thread pool (WRR + bounded
// queues), the admission micro-protocol, deadline propagation, and the
// priority-path bugfix sweep (QueuedSched terminal-outcome accounting,
// wakeup re-arm, surfaced async-raise drops).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "cactus/composite.h"
#include "cactus/thread_pool.h"
#include "common/error.h"
#include "common/metrics.h"
#include "cqos/cactus_server.h"
#include "cqos/events.h"
#include "micro/timeliness.h"
#include "net/fault.h"
#include "platform/api.h"
#include "sim/cluster.h"

namespace cqos {
namespace {

using cactus::PriorityThreadPool;
using cactus::SubmitResult;
using cactus::TrafficClass;

/// Blocks pool workers until released; lets a test fill queues
/// deterministically while every worker is parked inside a task.
class Gate {
 public:
  void release() {
    std::scoped_lock lk(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void wait() {
    entered_.store(true);
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return open_; });
  }
  /// Spin until a worker is actually parked inside wait() — a gate task
  /// still sitting in the queue would count against the queue bound.
  void await_entered() {
    while (!entered_.load()) std::this_thread::sleep_for(ms(1));
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<bool> entered_{false};
};

// --- PriorityThreadPool traffic-class mode ---------------------------------------

TEST(ThreadPoolClassMode, ClassMappingSortsAndCatchesAll) {
  // Given out of order: the pool must sort descending min_priority and use
  // the lowest class as the catch-all for priorities below every floor.
  PriorityThreadPool pool(1,
                          {TrafficClass{"low", 3, 1, 0},
                           TrafficClass{"high", 7, 4, 0}},
                          "map-test");
  ASSERT_TRUE(pool.class_mode());
  ASSERT_EQ(pool.classes().size(), 2u);
  EXPECT_EQ(pool.classes()[0].name, "high");
  EXPECT_EQ(pool.classes()[1].name, "low");
  EXPECT_EQ(pool.class_index_for(9), 0u);
  EXPECT_EQ(pool.class_index_for(7), 0u);
  EXPECT_EQ(pool.class_index_for(5), 1u);
  EXPECT_EQ(pool.class_index_for(0), 1u);  // below all floors: catch-all
  pool.shutdown();
}

TEST(ThreadPoolClassMode, BoundedQueueRejectsWhenFull) {
  PriorityThreadPool pool(1, {TrafficClass{"only", 0, 1, 2}}, "bound-test");
  Gate gate;
  ASSERT_EQ(pool.try_submit(5, [&gate] { gate.wait(); }),
            SubmitResult::kAccepted);
  gate.await_entered();
  // The single worker is parked in the gate task; fill the queue to its
  // bound, then expect the backpressure signal — not silent queueing.
  EXPECT_EQ(pool.try_submit(5, [] {}), SubmitResult::kAccepted);
  EXPECT_EQ(pool.try_submit(5, [] {}), SubmitResult::kAccepted);
  EXPECT_EQ(pool.queue_depth(0), 2u);
  EXPECT_EQ(pool.try_submit(5, [] {}), SubmitResult::kRejected);
  gate.release();
  pool.shutdown();  // drain-then-join: both accepted tasks still ran
  EXPECT_EQ(pool.queue_depth(0), 0u);
}

TEST(ThreadPoolClassMode, WrrInterleavesBackloggedClasses) {
  PriorityThreadPool pool(1,
                          {TrafficClass{"high", 5, 2, 0},
                           TrafficClass{"low", 0, 1, 0}},
                          "wrr-test");
  Gate gate;
  std::mutex order_mu;
  std::vector<char> order;
  ASSERT_TRUE(pool.submit(9, [&gate] { gate.wait(); }));
  gate.await_entered();
  auto record = [&order_mu, &order](char tag) {
    std::scoped_lock lk(order_mu);
    order.push_back(tag);
  };
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.submit(9, [record] { record('H'); }));
    ASSERT_TRUE(pool.submit(1, [record] { record('L'); }));
  }
  gate.release();
  pool.shutdown();

  ASSERT_EQ(order.size(), 8u);
  std::size_t last_high = 0, first_low = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 'H') last_high = i;
    if (order[i] == 'L' && i < first_low) first_low = i;
  }
  // Weight 2:1 — the high class drains at 2/3 of the service rate, so all
  // four highs complete within the first six slots...
  EXPECT_LE(last_high, 5u);
  // ...but WRR is not strict priority: a low task runs before the last high.
  EXPECT_LT(first_low, last_high);
}

TEST(ThreadPoolClassMode, LegacyModeWithoutClassesUnchanged) {
  PriorityThreadPool pool(2, "legacy-test");
  EXPECT_FALSE(pool.class_mode());
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    // Legacy mode has no bounds: submit always accepts until shutdown.
    EXPECT_TRUE(pool.submit(i % 10, [&ran] { ran.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.try_submit(5, [] {}), SubmitResult::kShutdown);
}

TEST(ThreadPoolClassMode, SubmitAfterShutdownReportsShutdownNotReject) {
  PriorityThreadPool pool(1, {TrafficClass{"only", 0, 1, 1}}, "shut-test");
  pool.shutdown();
  // kShutdown and kRejected must stay distinguishable: the caller retries
  // or sheds on rejection but must fail fast on shutdown.
  EXPECT_EQ(pool.try_submit(5, [] {}), SubmitResult::kShutdown);
}

// --- Surfaced async-raise drops (bugfix: silent submit() failure) ----------------

TEST(CompositeAsyncDrop, DropHandlerInvokedWhenPoolRejects) {
  cactus::CompositeProtocol::Options opts;
  opts.name = "drop-test";
  opts.pool_threads = 1;
  opts.pool_classes = {TrafficClass{"only", 0, 1, 1}};
  std::atomic<int> dropped{0};
  opts.on_async_drop = [&dropped](std::string_view event, const std::any&) {
    EXPECT_EQ(event, "ev");
    dropped.fetch_add(1);
  };
  cactus::CompositeProtocol proto(std::move(opts));

  Gate gate;
  std::atomic<int> ran{0};
  proto.bind("block", "block", [&gate](cactus::EventContext&) { gate.wait(); });
  proto.bind("ev", "count", [&ran](cactus::EventContext&) { ran.fetch_add(1); });
  std::uint64_t before =
      metrics::Registry::global().counter("cactus.pool.async_dropped").value();

  proto.raise_async("block");  // occupies the single worker
  gate.await_entered();
  proto.raise_async("ev");     // queued (depth 1/1)
  proto.raise_async("ev");               // queue full: must be surfaced
  EXPECT_EQ(dropped.load(), 1);
  EXPECT_EQ(
      metrics::Registry::global().counter("cactus.pool.async_dropped").value(),
      before + 1);
  gate.release();
  proto.stop();
  EXPECT_EQ(ran.load(), 1);
}

class NullServerQos : public ServerQosInterface {
 public:
  int num_servers() const override { return 1; }
  int replica_index() const override { return 0; }
  const std::string& object_id() const override { return object_id_; }
  void invoke_servant(Request& req) override { req.stage(true, Value(1)); }
  bool peer_call(int, const std::string&, const ValueList&, Value*) override {
    return true;
  }
  std::string description() const override { return "null"; }

 private:
  std::string object_id_ = "Obj";
};

TEST(CompositeAsyncDrop, CactusServerDefaultHandlerFailsTheRequest) {
  CactusServer::Options opts;
  opts.composite.name = "drop-server";
  opts.composite.pool_threads = 1;
  opts.composite.pool_classes = {TrafficClass{"only", 0, 1, 1}};
  CactusServer server(std::make_unique<NullServerQos>(), opts);

  Gate gate;
  server.protocol().bind("block", "block",
                         [&gate](cactus::EventContext&) { gate.wait(); });
  // Events with zero bindings never reach the pool (fast path), so the
  // filler and the to-be-dropped raise both need a handler bound.
  server.protocol().bind("filler", "noop", [](cactus::EventContext&) {});
  server.protocol().bind(ev::kRequestReturned, "noop",
                         [](cactus::EventContext&) {});
  server.protocol().raise_async("block");
  gate.await_entered();
  server.protocol().raise_async("filler");  // queued (depth 1/1)

  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  server.protocol().raise_async(ev::kRequestReturned, req);
  gate.release();
  // The default drop handler completes the request with a failure instead of
  // leaving whoever waits on it to hang until a timeout.
  EXPECT_TRUE(req->is_done());
  EXPECT_FALSE(req->succeeded());
  EXPECT_NE(req->error().find("dropped"), std::string::npos);
}

// --- QueuedSched wakeup re-arm (bugfix: one wake released one waiter) ------------

TEST(QueuedSchedRearm, SingleReturnReleasesAllEligibleWaiters) {
  cactus::CompositeProtocol::Options proto_opts;
  proto_opts.name = "rearm-test";
  proto_opts.pool_threads = 2;
  cactus::CompositeProtocol proto(std::move(proto_opts));
  NullServerQos qos;
  proto.shared().get_or_create<ServerQosHolder>(kServerQosKey)->qos = &qos;
  proto.add_protocol(std::make_unique<micro::QueuedSched>(6));

  // Counts requests that make it PAST the scheduling gate (a halted/parked
  // activation never reaches kOrderDefault handlers).
  std::atomic<int> released{0};
  proto.bind(ev::kReadyToInvoke, "countReleased",
             [&released](cactus::EventContext&) { released.fetch_add(1); });

  auto high = std::make_shared<Request>("Obj", "m", ValueList{});
  high->priority = 9;
  proto.raise(ev::kReadyToInvoke, high);  // counted as active high
  EXPECT_EQ(released.load(), 1);

  std::vector<RequestPtr> lows;
  for (int i = 0; i < 3; ++i) {
    auto low = std::make_shared<Request>("Obj", "m", ValueList{});
    low->priority = 2;
    proto.raise(ev::kReadyToInvoke, low);  // parked behind the active high
    lows.push_back(low);
  }
  EXPECT_EQ(released.load(), 1);

  // ONE terminal notification for the high request. The parked requests
  // never "return" themselves (they are never invoked here), so without the
  // re-arm only the first waiter would ever be released.
  proto.raise(ev::kInvokeReturn, high);
  TimePoint deadline = now() + ms(2000);
  while (released.load() < 4 && now() < deadline) {
    std::this_thread::sleep_for(ms(5));
  }
  EXPECT_EQ(released.load(), 4);  // high + all three waiters
  proto.stop();
}

// --- End-to-end scenarios on the simulated cluster -------------------------------

/// Servant that burns a fixed service time per call and records entries.
class SlowServant : public Servant {
 public:
  explicit SlowServant(Duration service_time) : service_time_(service_time) {}

  Value dispatch(const std::string& method, const ValueList& params) override {
    {
      std::scoped_lock lk(mu_);
      entries_.push_back(params.empty() ? Value() : params[0]);
    }
    std::this_thread::sleep_for(service_time_);
    (void)method;
    return Value(true);
  }

  std::size_t entry_count() const {
    std::scoped_lock lk(mu_);
    return entries_.size();
  }

 private:
  Duration service_time_;
  mutable std::mutex mu_;
  std::vector<Value> entries_;
};

sim::ClusterOptions overload_options(std::shared_ptr<Servant> servant) {
  sim::ClusterOptions opts;
  opts.platform = sim::PlatformKind::kRmi;
  opts.level = sim::InterceptionLevel::kFull;
  opts.num_replicas = 1;
  opts.net.base_latency = us(50);
  opts.net.jitter = 0;
  opts.request_timeout = ms(8000);
  opts.servant_factory = [servant] { return servant; };
  return opts;
}

// Regression for the high_active leak: a COUNTED high-priority request whose
// terminal outcome bypasses invokeReturn (here: access_control denies it at
// readyToInvoke, after QueuedSched already counted it) must still be retired.
// Pre-fix, high_active stayed pinned at 1 and every later low-priority
// request parked until the 3 s server-side processing timeout.
TEST(QueuedSchedRegression, DeniedHighRequestDoesNotStrandLowQueue) {
  auto servant = std::make_shared<SlowServant>(ms(5));
  auto opts = overload_options(servant);
  opts.qos.add(Side::kServer, "queued_sched")
      .add(Side::kServer, "access_control", {{"allow", "alice:*"}});
  sim::Cluster cluster(opts);

  CqosStub::Options mallory;
  mallory.priority = 9;
  mallory.principal = "mallory";
  auto high_client = cluster.make_client(mallory);
  CqosStub::Options alice;
  alice.priority = 2;
  alice.principal = "alice";
  auto low_client = cluster.make_client(alice);

  // The denied high request: counted by the scheduling gate, then completed
  // + halted by the access check — invokeReturn never fires for it.
  EXPECT_THROW(high_client->call("work", {Value("denied")}), InvocationError);

  TimePoint before = now();
  low_client->call("work", {Value("low")});
  // Post-fix the low request is admitted immediately; pre-fix it parked
  // until the server's process timeout (3000 ms).
  EXPECT_LT(now() - before, ms(2500));
  EXPECT_EQ(servant->entry_count(), 1u);  // the denied call never ran
}

// Deadline propagation round trip: the client-side "deadline" protocol
// stamps a relative budget, the skeleton anchors it at arrival, and the
// admission protocol sheds the request when it is released after expiry —
// a fast, marked failure instead of an 8 s client timeout.
TEST(DeadlinePropagation, ParkedRequestShedWhenReleasedAfterDeadline) {
  auto servant = std::make_shared<SlowServant>(ms(300));
  auto opts = overload_options(servant);
  opts.qos.add(Side::kServer, "queued_sched")
      .add(Side::kServer, "admission");
  sim::Cluster cluster(opts);

  CqosStub::Options high;
  high.priority = 9;
  auto high_client = cluster.make_client(high);
  CqosStub::Options low;
  low.priority = 2;
  auto low_client = cluster.make_client(low);
  std::vector<MicroProtocolSpec> low_specs{
      {"deadline", {{"budget_ms", "100"}}}};
  auto deadline_client = cluster.make_client(low, &low_specs);

  std::thread high_thread(
      [&] { high_client->call("work", {Value("high")}); });
  std::this_thread::sleep_for(ms(60));  // high is executing (300 ms)

  // Arrives with ~100 ms of budget, parks behind the high request, and is
  // already late when QueuedSched releases it at ~240 ms later.
  TimePoint before = now();
  try {
    deadline_client->call("work", {Value("late")});
    FAIL() << "expected the request to be shed";
  } catch (const InvocationError& e) {
    EXPECT_TRUE(status::is_deadline_exceeded(e.what())) << e.what();
  }
  EXPECT_LT(now() - before, ms(2000));
  high_thread.join();
  EXPECT_EQ(servant->entry_count(), 1u);  // the late call was never invoked
  std::ignore = low_client;
}

// Admission control rejects (not times out) low-priority overflow while a
// seeded latency spike inflates network delays, and keeps the high-priority
// reserve available.
TEST(Admission, RejectsLowOverflowImmediatelyUnderLatencySpike) {
  auto servant = std::make_shared<SlowServant>(ms(250));
  auto opts = overload_options(servant);
  opts.net.base_latency = us(200);
  opts.qos.add(Side::kServer, "admission",
               {{"max_pending", "2"}, {"reserve", "1"}});
  sim::Cluster cluster(opts);
  cluster.faults().run_plan(
      net::FaultPlan::parse("plan spike\n@0ms latency_spike 600ms x10\n"));

  CqosStub::Options low;
  low.priority = 2;
  auto low_a = cluster.make_client(low);
  auto low_b = cluster.make_client(low);
  CqosStub::Options high;
  high.priority = 9;
  auto high_client = cluster.make_client(high);

  std::uint64_t rejected_before = metrics::Registry::global()
                                      .counter("cqos.admission.rejected.low")
                                      .value();

  // Low capacity is max_pending - reserve = 1: the first low occupies it.
  std::thread first_low(
      [&] { low_a->call("work", {Value("low-a")}); });
  std::this_thread::sleep_for(ms(80));

  TimePoint before = now();
  try {
    low_b->call("work", {Value("low-b")});
    FAIL() << "expected overload rejection";
  } catch (const InvocationError& e) {
    EXPECT_TRUE(status::is_overload_rejected(e.what())) << e.what();
  }
  // Rejection is immediate backpressure, far below any timeout.
  EXPECT_LT(now() - before, ms(1000));
  EXPECT_GT(metrics::Registry::global()
                .counter("cqos.admission.rejected.low")
                .value(),
            rejected_before);

  // The reserve keeps high-priority admission open while a low is pending.
  high_client->call("work", {Value("high")});
  first_low.join();
  EXPECT_EQ(servant->entry_count(), 2u);  // low-a and high; low-b shed
}

// Platform dispatch seam: a full bounded class queue bounces the request at
// the transport layer before a worker thread or the Cactus runtime is
// committed, and the client sees the distinguishable backpressure marker.
TEST(PlatformClasses, DispatchQueueFullRejectsBeforeDispatch) {
  auto servant = std::make_shared<SlowServant>(ms(300));
  auto opts = overload_options(servant);
  opts.platform_threads = 1;
  opts.platform_classes = {TrafficClass{"high", 6, 4, 0},
                           TrafficClass{"low", 0, 1, 1}};
  sim::Cluster cluster(opts);

  CqosStub::Options low;
  low.priority = 2;
  auto low_a = cluster.make_client(low);
  auto low_b = cluster.make_client(low);
  auto low_c = cluster.make_client(low);

  std::thread t1([&] { low_a->call("work", {Value("a")}); });
  std::this_thread::sleep_for(ms(80));  // a occupies the single worker
  std::thread t2([&] { low_b->call("work", {Value("b")}); });
  std::this_thread::sleep_for(ms(80));  // b fills the low queue (depth 1)

  TimePoint before = now();
  try {
    low_c->call("work", {Value("c")});
    FAIL() << "expected dispatch-queue rejection";
  } catch (const InvocationError& e) {
    EXPECT_TRUE(status::is_overload_rejected(e.what())) << e.what();
  }
  EXPECT_LT(now() - before, ms(1000));

  t1.join();
  t2.join();
  EXPECT_EQ(servant->entry_count(), 2u);  // a and b ran; c was bounced
}

}  // namespace
}  // namespace cqos
