// Virtual-time discrete-event SimNetwork: scheduler ordering, determinism,
// plan-driven faults, modeled-load invariants, and threaded-vs-virtual mode
// equivalence (DESIGN.md §14).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "net/fault.h"
#include "net/sim_network.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"
#include "sim/modeled_load.h"

namespace cqos::net {
namespace {

NetConfig virtual_config(std::uint64_t seed = 42) {
  NetConfig cfg;
  cfg.time_mode = TimeMode::kVirtual;
  cfg.jitter = 0.0;
  cfg.seed = seed;
  return cfg;
}

Bytes payload(std::size_t n = 8, unsigned char fill = 0x5a) {
  return Bytes(n, fill);
}

TEST(VirtualClockTest, AdvanceIsMonotone) {
  VirtualClock clk;
  EXPECT_EQ(clk.now(), TimePoint{});
  clk.advance_to(TimePoint{} + ms(10));
  EXPECT_EQ(clk.now(), TimePoint{} + ms(10));
  clk.advance_to(TimePoint{} + ms(5));  // backwards: no-op
  EXPECT_EQ(clk.now(), TimePoint{} + ms(10));
}

TEST(VirtualTimeTest, DeliveryAdvancesClockByModeledLatency) {
  SimNetwork net(virtual_config());
  auto ep = net.create_endpoint("hostB/svc");
  ASSERT_TRUE(net.send("hostA/cli", "hostB/svc", payload(100)));
  // Nothing delivered until the scheduler runs.
  EXPECT_FALSE(ep->recv(Duration::zero()).has_value());

  NetConfig cfg;  // defaults mirror the constructed net (jitter off above)
  Duration expected = cfg.base_latency + cfg.per_byte * 100;
  EXPECT_EQ(net.run_until_idle(), 1u);
  EXPECT_EQ(net.net_now(), TimePoint{} + expected);

  auto msg = ep->recv(Duration::zero());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, "hostA/cli");
  EXPECT_EQ(msg->deliver_at, TimePoint{} + expected);
}

TEST(VirtualTimeTest, RealModeRejectsSchedulerCalls) {
  SimNetwork net;  // kReal
  EXPECT_THROW(net.schedule_after(ms(1), [] {}), Error);
  EXPECT_THROW(net.run_until_idle(), Error);
  EXPECT_THROW(net.run_for(ms(1)), Error);
}

TEST(VirtualTimeTest, TimersFireInTimestampThenInsertionOrder) {
  SimNetwork net(virtual_config());
  std::vector<int> fired;
  net.schedule_after(ms(20), [&] { fired.push_back(3); });
  net.schedule_after(ms(10), [&] { fired.push_back(1); });
  net.schedule_after(ms(10), [&] { fired.push_back(2); });  // same stamp: later
  EXPECT_EQ(net.run_until(TimePoint{} + ms(15)), 2u);
  EXPECT_EQ(net.net_now(), TimePoint{} + ms(15));
  EXPECT_EQ(net.run_until_idle(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(VirtualTimeTest, HandlerDeliveryCanReEnterSend) {
  SimNetwork net(virtual_config());
  auto server = net.create_endpoint("srv/svc");
  auto client = net.create_endpoint("cli/svc");
  server->set_handler([&](Message&& m) {
    PayloadRecycler guard(m);
    net.send("srv/svc", m.from, payload(4, 0xee));  // reply
  });
  int replies = 0;
  client->set_handler([&](Message&& m) {
    PayloadRecycler guard(m);
    ++replies;
  });
  ASSERT_TRUE(net.send("cli/svc", "srv/svc", payload()));
  net.run_until_idle();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(net.virtual_events(), 2u);  // request + reply deliveries
}

TEST(VirtualTimeTest, FaultPlanEventsFireAtVirtualOffsets) {
  SimNetwork net(virtual_config());
  auto ep = net.create_endpoint("hostB/svc");
  FaultPlan plan = FaultPlan::parse(
      "plan vt\n"
      "seed 9\n"
      "@10ms crash hostB\n"
      "@30ms recover hostB\n");
  net.faults().run_plan(plan);
  EXPECT_TRUE(net.faults().plan_active());

  // Before the crash offset the host is up.
  ASSERT_TRUE(net.send("hostA/cli", "hostB/svc", payload()));
  net.run_until(TimePoint{} + ms(5));
  // Receive it before the crash: a crash wipes queued inbox messages.
  EXPECT_TRUE(ep->recv(Duration::zero()).has_value());
  net.run_until(TimePoint{} + ms(15));
  EXPECT_TRUE(net.faults().is_crashed("hostB"));
  // Judged while crashed: dropped at send.
  EXPECT_FALSE(net.send("hostA/cli", "hostB/svc", payload()));
  net.run_until(TimePoint{} + ms(40));
  EXPECT_FALSE(net.faults().is_crashed("hostB"));
  EXPECT_FALSE(net.faults().plan_active());
  ASSERT_TRUE(net.send("hostA/cli", "hostB/svc", payload()));
  net.run_until_idle();

  std::vector<std::string> trace = net.faults().event_trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[1], "@10ms crash hostB");
  EXPECT_EQ(trace[2], "@30ms recover hostB");
  // The post-recover message landed; nothing else is pending.
  EXPECT_TRUE(ep->recv(Duration::zero()).has_value());
  EXPECT_FALSE(ep->recv(Duration::zero()).has_value());
}

TEST(VirtualTimeTest, CrashAtDeliveryTimeRefusesQueuedMessage) {
  metrics::Registry reg;
  NetConfig cfg = virtual_config();
  cfg.metrics = &reg;
  SimNetwork net(cfg);
  auto ep = net.create_endpoint("hostB/svc");
  FaultPlan plan = FaultPlan::parse("plan vt2\nseed 9\n@0ms crash hostB\n");
  ASSERT_TRUE(net.send("hostA/cli", "hostB/svc", payload()));
  net.faults().run_plan(plan);  // crash applies before the delivery matures
  net.run_until_idle();
  EXPECT_FALSE(ep->recv(Duration::zero()).has_value());
  EXPECT_EQ(reg.counter("net.vdeliver.refused").value(), 1u);
}

TEST(VirtualTimeTest, TwoRunsSameSeedAreBitIdentical) {
  auto run = [] {
    NetConfig cfg = virtual_config(21);
    cfg.jitter = 0.05;
    cfg.metrics = nullptr;
    SimNetwork net(cfg);
    sim::ModeledOptions opts;
    opts.clients = 2000;
    opts.servers = 8;
    opts.arrival_rate_hz = 50000;
    opts.duration = ms(400);
    opts.seed = 5;
    return sim::run_modeled(net, opts);
  };
  sim::ModeledStats a = run();
  sim::ModeledStats b = run();
  EXPECT_GT(a.delivered, 1000u);
  EXPECT_EQ(a.order_digest, b.order_digest);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.virtual_elapsed, b.virtual_elapsed);
  EXPECT_TRUE(a.check().empty());
}

TEST(VirtualTimeTest, ZipfFlashCrowdProfileHoldsInvariants) {
  NetConfig cfg = virtual_config(33);
  cfg.jitter = 0.05;
  SimNetwork net(cfg);
  sim::ModeledOptions opts;
  opts.clients = 5000;
  opts.servers = 8;
  opts.zipf_s = 1.2;
  opts.arrival_rate_hz = 40000;
  opts.duration = ms(600);
  opts.flash_crowd = true;
  opts.flash_start = ms(200);
  opts.flash_len = ms(200);
  opts.flash_multiplier = 6.0;
  opts.seed = 11;
  sim::ModeledStats stats = sim::run_modeled(net, opts);
  EXPECT_TRUE(stats.check().empty()) << stats.check()[0];
  // The flash window multiplies offered load: well above the steady-state
  // expectation for the same duration without the crowd.
  EXPECT_GT(stats.attempted, 30000u);
}

TEST(VirtualTimeTest, RollingPartitionProfileHoldsInvariants) {
  NetConfig cfg = virtual_config(34);
  SimNetwork net(cfg);
  sim::ModeledOptions opts;
  opts.clients = 5000;
  opts.servers = 6;
  opts.arrival_rate_hz = 30000;
  opts.duration = ms(600);
  opts.rolling_partition = true;
  opts.partition_period = ms(100);
  opts.forward_rate = 0.3;
  opts.seed = 12;
  sim::ModeledStats stats = sim::run_modeled(net, opts);
  EXPECT_TRUE(stats.check().empty()) << stats.check()[0];
  // The whole sweep schedule applied...
  std::vector<std::string> trace = net.faults().event_trace();
  EXPECT_EQ(trace.size(), 1u + 2u * opts.servers);
  // ...and actually cut traffic: ring forwards crossing a partitioned
  // server pair are dropped (client->server sends never are).
  EXPECT_GT(stats.send_drops, 0u);
}

TEST(VirtualTimeTest, ClusterRejectsVirtualMode) {
  sim::ClusterOptions opts;
  opts.net.time_mode = TimeMode::kVirtual;
  opts.servant_factory = [] {
    return std::make_shared<sim::BankAccountServant>();
  };
  EXPECT_THROW(sim::Cluster{std::move(opts)}, ConfigError);
}

// --- mode equivalence --------------------------------------------------------

// Drive the same seeded scenario in threaded and virtual mode: a sampled
// chaos profile of rate-type faults (drop + duplicate — the time-free
// events, so both modes judge the same per-sender traffic), three senders,
// two destinations. Per-sender fault/jitter streams make each message's
// fate a function of (seed, that sender's traffic) only, and the per-
// destination FIFO clamp makes delivery order per destination equal to
// send order in both modes — so the full per-destination delivery
// sequences must match exactly, and the soak-style invariants (no loss
// beyond judged drops, no unexplained duplicates) hold in both.
TEST(ModeEquivalenceTest, SameSeedSamePlanSameDeliverySequences) {
  constexpr int kRounds = 120;
  const std::vector<std::string> senders = {"a/cli", "b/cli", "c/cli"};
  const std::vector<std::string> dests = {"x/svc", "y/svc"};

  struct Outcome {
    std::map<std::string, std::vector<std::string>> per_dest;  // "from#len"
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;
  };

  auto run = [&](TimeMode mode) {
    NetConfig cfg;
    cfg.time_mode = mode;
    cfg.seed = 77;
    cfg.jitter = 0.05;
    auto reg = std::make_unique<metrics::Registry>();
    cfg.metrics = reg.get();
    SimNetwork net(cfg);
    std::vector<std::shared_ptr<Endpoint>> eps;
    for (const auto& d : dests) eps.push_back(net.create_endpoint(d));

    FaultPlan plan = FaultPlan::parse(
        "plan sampled-chaos\n"
        "seed 99\n"
        "@0ms drop_rate 0.2\n"
        "@0ms duplicate 0.15\n");
    net.faults().run_plan(plan);
    if (mode == TimeMode::kVirtual) {
      net.run_until(net.net_now());  // apply the @0ms events
    } else {
      EXPECT_TRUE(net.faults().wait_plan_done(ms(2000)));
    }

    Outcome out;
    for (int r = 0; r < kRounds; ++r) {
      for (std::size_t s = 0; s < senders.size(); ++s) {
        const std::string& dest = dests[(r + static_cast<int>(s)) % dests.size()];
        // Payload length encodes (sender, round) so sequences are labeled.
        Bytes p(8 + (r * senders.size() + s) % 32, 0x11);
        if (net.send(senders[s], dest, std::move(p))) {
          ++out.accepted;
        } else {
          ++out.dropped;
        }
      }
    }
    if (mode == TimeMode::kVirtual) net.run_until_idle();

    // Exactly accepted + fault-duplicates messages are on the wire; drain
    // that many (blocking recv in real mode rides out in-flight latency).
    std::uint64_t expected =
        out.accepted + reg->counter("net.fault.duplicate").value();
    std::uint64_t got = 0;
    for (std::size_t d = 0; d < dests.size() && got < expected; ++d) {
      for (;;) {
        auto m = eps[d]->recv(mode == TimeMode::kReal ? ms(500)
                                                      : Duration::zero());
        if (!m.has_value()) break;
        ++got;
        out.per_dest[dests[d]].push_back(m->from + "#" +
                                         std::to_string(m->payload.size()));
        BufferPool::recycle(std::move(m->payload));
      }
    }
    EXPECT_EQ(got, expected);
    return out;
  };

  Outcome real = run(TimeMode::kReal);
  Outcome virt = run(TimeMode::kVirtual);

  EXPECT_EQ(real.accepted, virt.accepted);
  EXPECT_EQ(real.dropped, virt.dropped);
  EXPECT_GT(real.dropped, 0u);  // the sampled profile actually bit
  ASSERT_EQ(real.per_dest.size(), virt.per_dest.size());
  for (const auto& [dest, seq] : real.per_dest) {
    ASSERT_TRUE(virt.per_dest.contains(dest));
    EXPECT_EQ(seq, virt.per_dest.at(dest)) << "delivery order diverged at "
                                           << dest;
  }
  // Soak-style invariant outcome in both modes: everything accepted (plus
  // fault duplicates) was delivered — conservation across modes.
  std::size_t real_total = 0;
  std::size_t virt_total = 0;
  for (const auto& [dest, seq] : real.per_dest) real_total += seq.size();
  for (const auto& [dest, seq] : virt.per_dest) virt_total += seq.size();
  EXPECT_EQ(real_total, virt_total);
  EXPECT_GE(real_total, real.accepted);
}

}  // namespace
}  // namespace cqos::net
