// Concurrency stress and edge-case tests across the runtime substrates.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "cactus/composite.h"
#include "common/sync.h"
#include "cqos/request.h"
#include "net/sim_network.h"
#include "platform/corba/agent.h"
#include "platform/corba/orb.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos {
namespace {

TEST(CactusStress, ConcurrentAsyncRaisesAllExecute) {
  cactus::CompositeProtocol proto;
  std::atomic<int> count{0};
  proto.bind("tick", "counter",
             [&](cactus::EventContext&) { count.fetch_add(1); });
  constexpr int kThreads = 4, kRaises = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRaises; ++i) proto.raise_async("tick");
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 400 && count.load() < kThreads * kRaises; ++i) {
    std::this_thread::sleep_for(ms(5));
  }
  EXPECT_EQ(count.load(), kThreads * kRaises);
}

TEST(CactusStress, BindUnbindChurnDuringRaises) {
  cactus::CompositeProtocol proto;
  std::atomic<bool> stop{false};
  std::atomic<int> executions{0};
  proto.bind("ev", "stable",
             [&](cactus::EventContext&) { executions.fetch_add(1); });

  std::thread churn([&] {
    while (!stop.load()) {
      cactus::BindingId id =
          proto.bind("ev", "transient", [](cactus::EventContext&) {});
      proto.unbind(id);
    }
  });
  std::thread raiser([&] {
    for (int i = 0; i < 2000; ++i) proto.raise("ev");
  });
  raiser.join();
  stop.store(true);
  churn.join();
  // The stable handler ran for every synchronous raise; no crashes or lost
  // activations despite concurrent binding churn.
  EXPECT_EQ(executions.load(), 2000);
}

TEST(CactusStress, SharedDataConcurrentCreateYieldsOneObject) {
  cactus::CompositeProtocol proto;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<int>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<std::size_t>(t)] =
          proto.shared().get_or_create<int>("key");
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)].get(), seen[0].get());
  }
}

TEST(RequestStress, IdsUniqueAcrossThreads) {
  constexpr int kThreads = 4, kEach = 500;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        ids[static_cast<std::size_t>(t)].push_back(Request::next_id());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::uint64_t> all;
  for (const auto& batch : ids) all.insert(batch.begin(), batch.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kEach));
}

TEST(NetStress, FifoHoldsUnderJitter) {
  net::NetConfig cfg;
  cfg.base_latency = us(100);
  cfg.jitter = 0.5;  // aggressive jitter: the per-destination clamp must hold
  cfg.seed = 99;
  net::SimNetwork net(cfg);
  net.create_endpoint("a/x");
  auto sink = net.create_endpoint("b/y");
  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    ByteWriter w;
    w.put_u32(static_cast<std::uint32_t>(i));
    net.send("a/x", "b/y", std::move(w).take());
  }
  for (int i = 0; i < kMessages; ++i) {
    auto msg = sink->recv(ms(1000));
    ASSERT_TRUE(msg.has_value()) << "lost message " << i;
    ByteReader r(msg->payload);
    EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(i));
  }
}

TEST(AgentEdge, ReRegistrationOverwrites) {
  net::SimNetwork net;
  corba::SmartAgent agent(net, "nameserver");
  corba::CorbaOrb orb_a(net, "hostA");
  corba::CorbaOrb orb_b(net, "hostB");

  class Probe : public plat::ServantHandler {
   public:
    explicit Probe(std::string tag) : tag_(std::move(tag)) {}
    plat::Reply handle(const std::string&, ValueList, PiggybackMap) override {
      plat::Reply reply;
      reply.status = plat::ReplyStatus::kOk;
      reply.result = Value(tag_);
      return reply;
    }

   private:
    std::string tag_;
  };

  orb_a.register_servant("poa/Obj", std::make_shared<Probe>("A"),
                         plat::DispatchMode::kStatic);
  auto ref1 = orb_b.resolve("poa/Obj", ms(500));
  EXPECT_EQ(ref1->invoke("who", {}, {}, ms(500)).result.as_string(), "A");

  // The object migrates to host B: re-registration overwrites the IOR.
  orb_b.register_servant("poa/Obj", std::make_shared<Probe>("B"),
                         plat::DispatchMode::kStatic);
  auto ref2 = orb_b.resolve("poa/Obj", ms(500));
  EXPECT_EQ(ref2->invoke("who", {}, {}, ms(500)).result.as_string(), "B");

  orb_a.shutdown();
  orb_b.shutdown();
}

TEST(StubStress, ConcurrentCallsThroughOneStubWithPool) {
  sim::ClusterOptions opts;
  opts.platform = sim::PlatformKind::kRmi;
  opts.net.jitter = 0;
  opts.servant_factory = [] {
    return std::make_shared<sim::BankAccountServant>();
  };
  sim::Cluster cluster(opts);
  CqosStub::Options stub_opts;
  stub_opts.reuse_requests = true;  // the pool must be thread-safe
  auto client = cluster.make_client(stub_opts);

  constexpr int kThreads = 4, kCalls = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      sim::BankAccountStub account(client->stub_ptr());
      for (int i = 0; i < kCalls; ++i) {
        try {
          account.deposit(1);
        } catch (const Error&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(static_cast<sim::BankAccountServant&>(cluster.servant(0)).balance(),
            kThreads * kCalls);
}

TEST(ClusterEdge, ManySequentialClustersDoNotLeakEndpoints) {
  // Endpoint ids embed a per-process instance counter; building several
  // clusters on fresh networks must never collide or deadlock.
  for (int round = 0; round < 5; ++round) {
    sim::ClusterOptions opts;
    opts.platform = round % 2 == 0 ? sim::PlatformKind::kRmi
                                   : sim::PlatformKind::kCorba;
    opts.net.jitter = 0;
    opts.servant_factory = [] {
      return std::make_shared<sim::BankAccountServant>();
    };
    sim::Cluster cluster(opts);
    auto client = cluster.make_client();
    sim::BankAccountStub account(client->stub_ptr());
    account.set_balance(round);
    EXPECT_EQ(account.get_balance(), round);
  }
}

}  // namespace
}  // namespace cqos
