// Combination matrix sweep (paper §3.5).
//
// "Overall, a service can be configured with no fault tolerance or any of
// these five fault-tolerance combinations with any combination of the three
// security micro-protocols and any of the three timeliness micro-protocols.
// As a result, even this small set of micro-protocols can be configured in
// over 100 different combinations."
//
// This suite enumerates the full FT axis crossed with every security subset
// and every timeliness choice and checks end-to-end correctness of each
// composition. The FT axis and security axis are fully crossed; the
// timeliness axis is crossed against every FT mode (with full security on)
// — together with the dedicated suites this covers the composition space.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

constexpr const char* kKey = "0123456789abcdef";

enum class Ft {
  kNone,
  kPassive,
  kActive,            // default first-reply acceptance
  kActiveFirst,       // + first_success
  kActiveVote,        // + majority_vote
  kActiveTotalFirst,  // + total order
  kActiveTotalVote,
};
enum class SecBits { kPrivacy = 1, kIntegrity = 2, kAccess = 4 };
enum class Timeliness { kNone, kPriority, kQueued, kTimed };

struct Combo {
  Ft ft;
  int sec;  // bitmask of SecBits
  Timeliness timeliness;
  PlatformKind platform = PlatformKind::kRmi;
};

std::string combo_name(const Combo& combo) {
  std::string name;
  switch (combo.ft) {
    case Ft::kNone: name = "ftnone"; break;
    case Ft::kPassive: name = "passive"; break;
    case Ft::kActive: name = "active"; break;
    case Ft::kActiveFirst: name = "activefirst"; break;
    case Ft::kActiveVote: name = "activevote"; break;
    case Ft::kActiveTotalFirst: name = "activetotalfirst"; break;
    case Ft::kActiveTotalVote: name = "activetotalvote"; break;
  }
  name += "_s";
  name += std::to_string(combo.sec);
  switch (combo.timeliness) {
    case Timeliness::kNone: name += "_tnone"; break;
    case Timeliness::kPriority: name += "_tprio"; break;
    case Timeliness::kQueued: name += "_tqueue"; break;
    case Timeliness::kTimed: name += "_ttimed"; break;
  }
  switch (combo.platform) {
    case PlatformKind::kRmi: break;  // default, unsuffixed
    case PlatformKind::kCorba: name += "_corba"; break;
    case PlatformKind::kHttp: name += "_http"; break;
  }
  return name;
}

ClusterOptions build_options(const Combo& combo) {
  ClusterOptions opts;
  opts.platform = combo.platform;
  opts.level = InterceptionLevel::kFull;
  opts.net.base_latency = us(60);
  opts.net.jitter = 0;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.num_replicas = combo.ft == Ft::kNone ? 1 : 3;

  switch (combo.ft) {
    case Ft::kNone:
      break;
    case Ft::kPassive:
      opts.qos.add(Side::kClient, "passive_rep")
          .add(Side::kServer, "passive_rep");
      break;
    case Ft::kActive:
      opts.qos.add(Side::kClient, "active_rep");
      break;
    case Ft::kActiveFirst:
      opts.qos.add(Side::kClient, "active_rep")
          .add(Side::kClient, "first_success");
      break;
    case Ft::kActiveVote:
      opts.qos.add(Side::kClient, "active_rep")
          .add(Side::kClient, "majority_vote");
      break;
    case Ft::kActiveTotalFirst:
      opts.qos.add(Side::kClient, "active_rep")
          .add(Side::kClient, "first_success")
          .add(Side::kServer, "total_order");
      break;
    case Ft::kActiveTotalVote:
      opts.qos.add(Side::kClient, "active_rep")
          .add(Side::kClient, "majority_vote")
          .add(Side::kServer, "total_order");
      break;
  }

  if ((combo.sec & static_cast<int>(SecBits::kPrivacy)) != 0) {
    opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}})
        .add(Side::kServer, "des_privacy", {{"key", kKey}});
  }
  if ((combo.sec & static_cast<int>(SecBits::kIntegrity)) != 0) {
    opts.qos.add(Side::kClient, "integrity", {{"key", kKey}})
        .add(Side::kServer, "integrity", {{"key", kKey}});
  }
  if ((combo.sec & static_cast<int>(SecBits::kAccess)) != 0) {
    opts.qos.add(Side::kServer, "access_control", {{"allow", "alice:*"}});
  }

  switch (combo.timeliness) {
    case Timeliness::kNone:
      break;
    case Timeliness::kPriority:
      opts.qos.add(Side::kServer, "priority_sched");
      break;
    case Timeliness::kQueued:
      opts.qos.add(Side::kServer, "queued_sched");
      break;
    case Timeliness::kTimed:
      opts.qos.add(Side::kServer, "timed_sched",
                   {{"period_ms", "40"}, {"threshold", "50"}});
      break;
  }
  return opts;
}

class ComboMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(ComboMatrix, EndToEndCorrectness) {
  Cluster cluster(build_options(GetParam()));
  CqosStub::Options stub_opts;
  stub_opts.principal = "alice";
  stub_opts.priority = 7;
  auto client = cluster.make_client(stub_opts);
  BankAccountStub account(client->stub_ptr());

  account.set_balance(1000);
  EXPECT_EQ(account.get_balance(), 1000);
  account.deposit(24);
  EXPECT_EQ(account.get_balance(), 1024);
  EXPECT_THROW(account.withdraw(99999), InvocationError);
  EXPECT_EQ(account.get_balance(), 1024);

  if ((GetParam().sec & static_cast<int>(SecBits::kAccess)) != 0) {
    CqosStub::Options eve;
    eve.principal = "eve";
    auto eve_client = cluster.make_client(eve);
    EXPECT_THROW(eve_client->call("get_balance", {}), InvocationError);
  }
}

std::vector<Combo> matrix() {
  std::vector<Combo> combos;
  const Ft fts[] = {Ft::kNone,       Ft::kPassive,    Ft::kActive,
                    Ft::kActiveFirst, Ft::kActiveVote, Ft::kActiveTotalFirst,
                    Ft::kActiveTotalVote};
  // Full FT x security-subset cross (no timeliness).
  for (Ft ft : fts) {
    for (int sec = 0; sec < 8; ++sec) {
      combos.push_back(Combo{ft, sec, Timeliness::kNone});
    }
  }
  // FT x timeliness cross, with the full security stack enabled.
  for (Ft ft : fts) {
    for (Timeliness t :
         {Timeliness::kPriority, Timeliness::kQueued, Timeliness::kTimed}) {
      combos.push_back(Combo{ft, 7, t});
    }
  }
  // Platform dimension: every FT mode with the full security stack must
  // compose identically on the CORBA-like and HTTP platforms (the
  // portability claim).
  for (PlatformKind platform : {PlatformKind::kCorba, PlatformKind::kHttp}) {
    for (Ft ft : fts) {
      combos.push_back(Combo{ft, 7, Timeliness::kNone, platform});
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComboMatrix, ::testing::ValuesIn(matrix()),
                         [](const auto& info) { return combo_name(info.param); });

}  // namespace
}  // namespace cqos::sim
