// End-to-end tests: full CQoS stacks on the simulated cluster, both
// platforms, all interception levels.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

ClusterOptions base_options(PlatformKind kind, InterceptionLevel level,
                            int replicas = 1) {
  ClusterOptions opts;
  opts.platform = kind;
  opts.level = level;
  opts.num_replicas = replicas;
  opts.net.base_latency = us(80);
  opts.net.jitter = 0.02;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  return opts;
}

struct LevelCase {
  PlatformKind kind;
  InterceptionLevel level;
};

class AllLevels : public ::testing::TestWithParam<LevelCase> {};

TEST_P(AllLevels, SetAndGetBalanceWork) {
  Cluster cluster(base_options(GetParam().kind, GetParam().level));
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(12345);
  EXPECT_EQ(account.get_balance(), 12345);
  account.deposit(55);
  EXPECT_EQ(account.get_balance(), 12400);
}

TEST_P(AllLevels, ApplicationErrorsPropagateAsExceptions) {
  Cluster cluster(base_options(GetParam().kind, GetParam().level));
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(10);
  EXPECT_THROW(account.withdraw(100), InvocationError);
  EXPECT_EQ(account.get_balance(), 10);  // state unchanged after failure
}

TEST_P(AllLevels, UnknownMethodIsAnApplicationError) {
  Cluster cluster(base_options(GetParam().kind, GetParam().level));
  auto client = cluster.make_client();
  EXPECT_THROW(client->call("no_such_method", {}), InvocationError);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllLevels,
    ::testing::Values(
        LevelCase{PlatformKind::kRmi, InterceptionLevel::kBaseline},
        LevelCase{PlatformKind::kRmi, InterceptionLevel::kStubOnly},
        LevelCase{PlatformKind::kRmi, InterceptionLevel::kStubSkeleton},
        LevelCase{PlatformKind::kRmi, InterceptionLevel::kPlusCactusServer},
        LevelCase{PlatformKind::kRmi, InterceptionLevel::kFull},
        LevelCase{PlatformKind::kCorba, InterceptionLevel::kBaseline},
        LevelCase{PlatformKind::kCorba, InterceptionLevel::kStubOnly},
        LevelCase{PlatformKind::kCorba, InterceptionLevel::kStubSkeleton},
        LevelCase{PlatformKind::kCorba, InterceptionLevel::kPlusCactusServer},
        LevelCase{PlatformKind::kCorba, InterceptionLevel::kFull}),
    [](const auto& info) {
      std::string name =
          info.param.kind == PlatformKind::kCorba ? "corba" : "rmi";
      switch (info.param.level) {
        case InterceptionLevel::kBaseline: return name + "_baseline";
        case InterceptionLevel::kStubOnly: return name + "_stub";
        case InterceptionLevel::kStubSkeleton: return name + "_skeleton";
        case InterceptionLevel::kPlusCactusServer: return name + "_cserver";
        case InterceptionLevel::kFull: return name + "_full";
      }
      return name;
    });

TEST(Integration, MultipleSequentialCallsAreStable) {
  Cluster cluster(base_options(PlatformKind::kRmi, InterceptionLevel::kFull));
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  for (int i = 0; i < 100; ++i) {
    account.set_balance(i);
    ASSERT_EQ(account.get_balance(), i);
  }
}

TEST(Integration, TwoClientsShareServerState) {
  Cluster cluster(base_options(PlatformKind::kRmi, InterceptionLevel::kFull));
  auto c1 = cluster.make_client();
  auto c2 = cluster.make_client();
  BankAccountStub a1(c1->stub_ptr()), a2(c2->stub_ptr());
  a1.set_balance(500);
  EXPECT_EQ(a2.get_balance(), 500);
  a2.deposit(100);
  EXPECT_EQ(a1.get_balance(), 600);
}

TEST(Integration, ConcurrentClientsDoNotCorruptState) {
  Cluster cluster(base_options(PlatformKind::kRmi, InterceptionLevel::kFull));
  constexpr int kClients = 3, kCalls = 30;
  std::vector<std::unique_ptr<ClientHandle>> clients;
  for (int i = 0; i < kClients; ++i) clients.push_back(cluster.make_client());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (auto& client : clients) {
    threads.emplace_back([&client, &failures] {
      try {
        BankAccountStub account(client->stub_ptr());
        for (int i = 0; i < kCalls; ++i) account.deposit(1);
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto checker = cluster.make_client();
  BankAccountStub account(checker->stub_ptr());
  EXPECT_EQ(account.get_balance(), kClients * kCalls);
}

TEST(Integration, PiggybackCarriesPriorityToServer) {
  auto opts = base_options(PlatformKind::kRmi, InterceptionLevel::kFull);
  // Observe the priority the servant's thread runs at via priority_sched.
  opts.qos.add(Side::kServer, "priority_sched");
  struct PriorityProbe : Servant {
    std::atomic<int> seen{-1};
    Value dispatch(const std::string&, const ValueList&) override {
      seen.store(current_thread_priority());
      return Value(true);
    }
  };
  auto probe = std::make_shared<PriorityProbe>();
  opts.servant_factory = [probe] { return probe; };
  Cluster cluster(opts);
  CqosStub::Options stub_opts;
  stub_opts.priority = 8;
  auto client = cluster.make_client(stub_opts);
  client->call("anything", {});
  EXPECT_EQ(probe->seen.load(), 8);
}

}  // namespace
}  // namespace cqos::sim
