// End-to-end trace propagation: the stub-minted trace id must cross the
// wire in the piggyback, be visible to the skeleton and micro-protocol
// handlers, and come back in the reply piggyback — on both platforms.
#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "cqos/request.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

ClusterOptions full_options(PlatformKind kind) {
  ClusterOptions opts;
  opts.platform = kind;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = 1;
  opts.net.base_latency = us(80);
  opts.net.jitter = 0;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  return opts;
}

bool has_span(const std::vector<trace::Span>& spans, const std::string& name) {
  for (const trace::Span& s : spans) {
    if (s.name == name) return true;
  }
  return false;
}

bool has_span_prefix(const std::vector<trace::Span>& spans,
                     const std::string& prefix) {
  for (const trace::Span& s : spans) {
    if (s.name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

class ObservabilityBothPlatforms : public ::testing::TestWithParam<PlatformKind> {};

TEST_P(ObservabilityBothPlatforms, TraceIdSpansStubToSkeletonAndBack) {
  trace::Tracer::global().clear();
  Cluster cluster(full_options(GetParam()));
  auto client = cluster.make_client();

  RequestPtr req =
      client->stub().call_request("set_balance", {Value(std::int64_t{42})});
  ASSERT_TRUE(req != nullptr);
  EXPECT_TRUE(req->succeeded());
  ASSERT_NE(req->trace_id, 0u);

  // The skeleton echoes the trace id into the reply piggyback.
  PiggybackMap reply_pb = req->reply_piggyback();
  auto it = reply_pb.find(pbkey::kTraceId);
  ASSERT_TRUE(it != reply_pb.end());
  EXPECT_EQ(static_cast<std::uint64_t>(it->second.as_i64()), req->trace_id);

  // One id covers the whole path: client stub span, at least one
  // micro-protocol handler span, and the server-side skeleton span.
  auto spans = trace::Tracer::global().spans_for(req->trace_id);
  EXPECT_TRUE(has_span(spans, "cqos.stub.call"));
  EXPECT_TRUE(has_span(spans, "cqos.skeleton.handle"));
  EXPECT_TRUE(has_span(spans, "cqos.cactus.client.request"));
  EXPECT_TRUE(has_span_prefix(spans, "micro."));
}

TEST_P(ObservabilityBothPlatforms, DistinctCallsGetDistinctTraceIds) {
  Cluster cluster(full_options(GetParam()));
  auto client = cluster.make_client();
  RequestPtr a = client->stub().call_request("set_balance", {Value(1)});
  RequestPtr b = client->stub().call_request("get_balance", {});
  ASSERT_NE(a->trace_id, 0u);
  ASSERT_NE(b->trace_id, 0u);
  EXPECT_NE(a->trace_id, b->trace_id);
}

TEST_P(ObservabilityBothPlatforms, HandlerTimingsLandInGlobalHistograms) {
  metrics::Registry& reg = metrics::Registry::global();
  Cluster cluster(full_options(GetParam()));
  auto client = cluster.make_client();
  std::uint64_t stub_before = reg.histogram("cqos.stub.call").count();
  std::uint64_t skel_before = reg.histogram("cqos.skeleton.handle").count();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(7);
  EXPECT_EQ(account.get_balance(), 7);
  EXPECT_GE(reg.histogram("cqos.stub.call").count(), stub_before + 2);
  EXPECT_GE(reg.histogram("cqos.skeleton.handle").count(), skel_before + 2);
}

INSTANTIATE_TEST_SUITE_P(Platforms, ObservabilityBothPlatforms,
                         ::testing::Values(PlatformKind::kCorba,
                                           PlatformKind::kRmi),
                         [](const auto& info) {
                           return info.param == PlatformKind::kCorba ? "Corba"
                                                                     : "Rmi";
                         });

}  // namespace
}  // namespace cqos::sim
