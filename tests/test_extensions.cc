// Extension micro-protocol tests: retransmission, failure detection, load
// balancing, client caching, request logging + server recovery.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "micro/extensions.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

ClusterOptions ext_options(int replicas = 1) {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = replicas;
  opts.net.base_latency = us(60);
  opts.net.jitter = 0;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  return opts;
}

BankAccountServant& account_servant(Cluster& cluster, int i) {
  return static_cast<BankAccountServant&>(cluster.servant(i));
}

void wait_for(const std::function<bool()>& cond, Duration timeout = ms(3000)) {
  TimePoint deadline = now() + timeout;
  while (!cond() && now() < deadline) std::this_thread::sleep_for(ms(10));
}

// --- Retransmit -------------------------------------------------------------------

TEST(Retransmit, SurvivesLossyNetwork) {
  auto opts = ext_options();
  opts.net.seed = 7;
  opts.invoke_timeout = ms(120);  // fast retransmission timeout
  opts.request_timeout = ms(8000);
  opts.qos.add(Side::kClient, "retransmit", {{"retries", "6"}})
      .add(Side::kServer, "passive_rep");  // dedup protects re-execution
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  // Deploy cleanly, then inject loss (the paper assumes the platform
  // handles network failures; retransmit is the micro-protocol that would
  // add it, so it is what copes with the lossy steady state here).
  cluster.faults().set_drop_rate(0.25);
  int ok = 0;
  for (int i = 0; i < 30; ++i) {
    try {
      account.deposit(1);
      ++ok;
    } catch (const InvocationError&) {
      // 0.25^7 per call: possible but vanishingly rare with seed 7
    }
  }
  EXPECT_EQ(ok, 30);
  EXPECT_EQ(account.get_balance(), 30);
}

TEST(Retransmit, DoesNotRetryApplicationErrors) {
  auto opts = ext_options();
  opts.qos.add(Side::kClient, "retransmit", {{"retries", "5"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(5);
  std::int64_t invocations_before =
      account_servant(cluster, 0).invocation_count();
  EXPECT_THROW(account.withdraw(100), InvocationError);
  // Exactly one servant invocation: app errors are not retried.
  EXPECT_EQ(account_servant(cluster, 0).invocation_count(),
            invocations_before + 1);
}

TEST(Retransmit, GivesUpAfterBudgetOnCrashedServer) {
  auto opts = ext_options();
  opts.qos.add(Side::kClient, "retransmit", {{"retries", "2"}});
  opts.request_timeout = ms(2500);
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(1);
  cluster.crash_replica(0);
  EXPECT_THROW(account.get_balance(), InvocationError);
}

// --- FailureDetector --------------------------------------------------------------

TEST(FailureDetector, MarksCrashedReplicaWithoutInvoking) {
  auto opts = ext_options(2);
  opts.qos.add(Side::kClient, "failure_detector", {{"period_ms", "30"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  ClientQosInterface& qos = client->cactus_client()->qos();
  wait_for([&] { return qos.server_status(0) == ServerStatus::kRunning; });
  cluster.crash_replica(0);
  wait_for([&] { return qos.server_status(0) == ServerStatus::kFailed; });
  EXPECT_EQ(qos.server_status(0), ServerStatus::kFailed);
  EXPECT_EQ(qos.server_status(1), ServerStatus::kRunning);
}

TEST(FailureDetector, DetectsRecoveryAndRebinds) {
  auto opts = ext_options(1);
  opts.qos.add(Side::kClient, "failure_detector", {{"period_ms", "30"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  ClientQosInterface& qos = client->cactus_client()->qos();
  cluster.crash_replica(0);
  wait_for([&] { return qos.server_status(0) == ServerStatus::kFailed; });
  cluster.recover_replica(0);
  wait_for([&] { return qos.server_status(0) == ServerStatus::kRunning; });
  EXPECT_EQ(qos.server_status(0), ServerStatus::kRunning);
  // And calls work again without manual rebinding.
  BankAccountStub account(client->stub_ptr());
  account.set_balance(4);
  EXPECT_EQ(account.get_balance(), 4);
}

TEST(FailureDetector, SpeedsUpPassiveFailover) {
  auto opts = ext_options(2);
  opts.qos.add(Side::kClient, "failure_detector", {{"period_ms", "25"}})
      .add(Side::kClient, "passive_rep")
      .add(Side::kServer, "passive_rep");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(9);
  wait_for([&] { return account_servant(cluster, 1).balance() == 9; });
  cluster.crash_replica(0);
  // Give the detector a couple of periods to notice.
  wait_for([&] {
    return client->cactus_client()->qos().server_status(0) ==
           ServerStatus::kFailed;
  });
  // The failover path now starts directly at the backup: no 1s invoke
  // timeout against the dead primary.
  TimePoint before = now();
  EXPECT_EQ(account.get_balance(), 9);
  EXPECT_LT(now() - before, ms(800));
}

// --- LoadBalance ------------------------------------------------------------------

TEST(LoadBalance, SpreadsCallsRoundRobin) {
  auto opts = ext_options(3);
  opts.qos.add(Side::kClient, "load_balance");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  for (int i = 0; i < 12; ++i) account.set_balance(i);
  // 12 calls across 3 replicas: 4 each.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(account_servant(cluster, i).invocation_count(), 4)
        << "replica " << i;
  }
}

TEST(LoadBalance, SkipsFailedReplicas) {
  auto opts = ext_options(3);
  opts.qos.add(Side::kClient, "load_balance")
      .add(Side::kClient, "failure_detector", {{"period_ms", "25"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  for (int i = 0; i < 3; ++i) account.set_balance(1);  // bind everything
  cluster.crash_replica(1);
  wait_for([&] {
    return client->cactus_client()->qos().server_status(1) ==
           ServerStatus::kFailed;
  });
  std::int64_t before0 = account_servant(cluster, 0).invocation_count();
  std::int64_t before2 = account_servant(cluster, 2).invocation_count();
  for (int i = 0; i < 8; ++i) account.set_balance(2);
  EXPECT_EQ(account_servant(cluster, 0).invocation_count() - before0, 4);
  EXPECT_EQ(account_servant(cluster, 2).invocation_count() - before2, 4);
}

// --- ClientCache ------------------------------------------------------------------

TEST(ClientCache, ServesRepeatedReadsLocally) {
  auto opts = ext_options();
  opts.qos.add(Side::kClient, "client_cache",
               {{"methods", "get_balance"}, {"ttl_ms", "5000"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(77);
  EXPECT_EQ(account.get_balance(), 77);  // miss: fills cache
  std::int64_t servant_calls = account_servant(cluster, 0).invocation_count();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(account.get_balance(), 77);  // hits
  }
  EXPECT_EQ(account_servant(cluster, 0).invocation_count(), servant_calls);
}

TEST(ClientCache, WritesInvalidate) {
  auto opts = ext_options();
  opts.qos.add(Side::kClient, "client_cache",
               {{"methods", "get_balance"}, {"ttl_ms", "5000"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(1);
  EXPECT_EQ(account.get_balance(), 1);
  account.set_balance(2);               // invalidates
  EXPECT_EQ(account.get_balance(), 2);  // must not be the stale 1
}

TEST(ClientCache, TtlExpires) {
  auto opts = ext_options();
  opts.qos.add(Side::kClient, "client_cache",
               {{"methods", "get_balance"}, {"ttl_ms", "30"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(5);
  EXPECT_EQ(account.get_balance(), 5);
  // Mutate behind the cache's back (another client).
  auto other = cluster.make_client();
  BankAccountStub other_account(other->stub_ptr());
  other_account.set_balance(6);
  std::this_thread::sleep_for(ms(60));  // TTL elapses
  EXPECT_EQ(account.get_balance(), 6);
}

// --- RequestLog + recovery ----------------------------------------------------------

TEST(RequestLog, LogsOnlyStateChangingRequests) {
  auto opts = ext_options();
  opts.qos.add(Side::kServer, "request_log", {{"reads", "get_balance"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(1);
  account.deposit(2);
  (void)account.get_balance();
  (void)account.get_balance();
  EXPECT_EQ(micro::RequestLog::log_size(*cluster.cactus_server(0)), 2u);
}

TEST(RequestLog, RecoveredReplicaReplaysMissedUpdates) {
  auto opts = ext_options(2);
  opts.qos.add(Side::kClient, "passive_rep")
      .add(Side::kServer, "passive_rep")
      .add(Side::kServer, "request_log", {{"reads", "get_balance"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());

  account.set_balance(100);
  wait_for([&] { return account_servant(cluster, 1).balance() == 100; });

  // Backup crashes; primary keeps serving updates the backup misses.
  cluster.crash_replica(1);
  account.deposit(11);
  account.deposit(22);
  EXPECT_EQ(account.get_balance(), 133);
  EXPECT_EQ(account_servant(cluster, 1).balance(), 100);  // stale

  // Backup recovers and replays the missed suffix from the primary.
  cluster.recover_replica(1);
  std::size_t replayed =
      micro::recover_from_peer(*cluster.cactus_server(1), /*peer=*/0);
  EXPECT_GE(replayed, 2u);
  EXPECT_EQ(account_servant(cluster, 1).balance(), 133);
}

TEST(RequestLog, RecoveryIsIdempotentViaDedup) {
  auto opts = ext_options(2);
  opts.qos.add(Side::kClient, "passive_rep")
      .add(Side::kServer, "passive_rep")
      .add(Side::kServer, "request_log", {{"reads", "get_balance"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.deposit(10);
  wait_for([&] { return account_servant(cluster, 1).balance() == 10; });
  // Replaying everything the peer has, even though nothing was missed,
  // must not double-apply: passive_rep's dedup answers from its cache.
  micro::recover_from_peer(*cluster.cactus_server(1), 0);
  EXPECT_EQ(account_servant(cluster, 1).balance(), 10);
}

TEST(RequestLog, FullReplayAntiEntropyConvergesInterleavedLosses) {
  auto opts = ext_options(2);
  opts.invoke_timeout = ms(120);
  opts.request_timeout = ms(8000);
  opts.qos.add(Side::kClient, "passive_rep")
      .add(Side::kClient, "retransmit", {{"retries", "6"}})
      .add(Side::kServer, "passive_rep")
      .add(Side::kServer, "request_log", {{"reads", "get_balance"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(0);

  // Interleaved loss: every confirmed deposit executed at SOME replica
  // (under extreme loss the retransmit budget can exhaust and passive_rep
  // fails over, so writes may split across replicas), and best-effort
  // forwards are dropped at random positions.
  cluster.faults().set_drop_rate(0.25);
  int confirmed = 0;
  for (int i = 0; i < 20; ++i) {
    try {
      account.deposit(4);
      ++confirmed;
    } catch (const InvocationError&) {
    }
  }
  cluster.faults().set_drop_rate(0);
  ASSERT_GT(confirmed, 0);

  // A suffix replay cannot fix interleaved holes; bidirectional full replay
  // with dedup must converge BOTH replicas to exactly the confirmed total —
  // nothing lost, nothing double-applied.
  micro::recover_from_peer(*cluster.cactus_server(1), /*peer=*/0, /*from=*/0);
  micro::recover_from_peer(*cluster.cactus_server(0), /*peer=*/1, /*from=*/0);
  EXPECT_EQ(account_servant(cluster, 0).balance(), confirmed * 4);
  EXPECT_EQ(account_servant(cluster, 1).balance(), confirmed * 4);
}

TEST(RequestLog, RecoveryFromDeadPeerThrows) {
  auto opts = ext_options(2);
  opts.qos.add(Side::kServer, "request_log");
  Cluster cluster(opts);
  cluster.crash_replica(0);
  EXPECT_THROW(micro::recover_from_peer(*cluster.cactus_server(1), 0),
               InvocationError);
}

}  // namespace
}  // namespace cqos::sim
