// Unit tests for the metrics registry (counters, histograms, JSON snapshot)
// and the span tracer underpinning request-path observability.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace cqos::metrics {
namespace {

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8, kEach = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kEach; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kEach);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::bound_us(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bound_us(1), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::bound_us(10), 1024.0);
}

TEST(Histogram, RecordCountsAndMean) {
  Histogram h;
  h.record_us(100);
  h.record_us(300);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 200.0);
  // 100 us lands in the bucket with bound 128 (2^7), 300 in 512 (2^9).
  EXPECT_EQ(h.bucket(7), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, OverflowBucketCatchesHugeSamples) {
  Histogram h;
  h.record_us(1e12);  // way past the last finite bound
  EXPECT_EQ(h.bucket(Histogram::kBuckets), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeAddsBucketByBucket) {
  Histogram a, b;
  a.record_us(10);
  a.record_us(10);
  b.record_us(10);
  b.record_us(5000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum_us(), 10 + 10 + 10 + 5000);
  EXPECT_EQ(a.bucket(4), 3u);  // 10 us -> bound 16 = 2^4
}

TEST(Histogram, PercentileIsMonotoneAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record_us(i);
  double p50 = h.percentile_us(50);
  double p90 = h.percentile_us(90);
  double p99 = h.percentile_us(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Bucket interpolation is coarse (power-of-two buckets) but the median of
  // 1..1000 must land within its bucket [256, 512] and p99 within [512, 1024].
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_DOUBLE_EQ(Histogram().percentile_us(50), 0.0);
}

TEST(Histogram, ConcurrentRecordsKeepExactCount) {
  Histogram h;
  constexpr int kThreads = 8, kEach = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kEach; ++i) h.record_us(t * 100 + 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kEach);
}

TEST(Registry, ReturnsStableReferences) {
  Registry reg;
  Counter& c1 = reg.counter("a.b");
  // Creating many more instruments must not invalidate c1.
  for (int i = 0; i < 100; ++i) {
    reg.counter("x." + std::to_string(i));
    reg.histogram("y." + std::to_string(i));
  }
  Counter& c2 = reg.counter("a.b");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  EXPECT_EQ(c2.value(), 3u);
}

TEST(Registry, SnapshotIsDeterministic) {
  // Two registries fed identical observations in different creation order
  // serialize identically (std::map iteration sorts names).
  Registry a, b;
  a.counter("one").inc(1);
  a.counter("two").inc(2);
  a.histogram("h").record_us(100);
  b.histogram("h").record_us(100);
  b.counter("two").inc(2);
  b.counter("one").inc(1);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"counters\""), std::string::npos);
  EXPECT_NE(a.to_json().find("\"histograms\""), std::string::npos);
  EXPECT_NE(a.to_json().find("\"one\":1"), std::string::npos);
}

TEST(Registry, ResetZeroesEverything) {
  Registry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  c.inc(5);
  h.record_us(10);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Tracer, RingBufferIsBounded) {
  trace::Tracer tracer;
  tracer.set_capacity(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    tracer.record(trace::Span{i, "s", "", now(), us(1)});
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_TRUE(tracer.spans_for(1).empty());    // evicted
  EXPECT_EQ(tracer.spans_for(10).size(), 1u);  // newest kept
}

TEST(Tracer, UntracedAndDisabledSpansAreSkipped) {
  trace::Tracer tracer;
  tracer.record(trace::Span{0, "untraced", "", now(), us(1)});
  EXPECT_EQ(tracer.size(), 0u);
  tracer.set_enabled(false);
  tracer.record(trace::Span{7, "disabled", "", now(), us(1)});
  EXPECT_EQ(tracer.size(), 0u);
  tracer.set_enabled(true);
  tracer.record(trace::Span{7, "s", "", now(), us(1)});
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, ScopedSpanRecordsHistogramAndSpan) {
  trace::Tracer& tracer = trace::Tracer::global();
  tracer.clear();
  Histogram hist;
  trace::TraceId id = trace::next_trace_id();
  {
    trace::ScopedSpan span(id, "test.span", "detail", &hist);
  }
  EXPECT_EQ(hist.count(), 1u);
  auto spans = tracer.spans_for(id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.span");
  EXPECT_EQ(spans[0].detail, "detail");
  {
    // TraceId 0: histogram still sees the sample, the tracer does not.
    trace::ScopedSpan span(0, "test.untraced", "", &hist);
  }
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_TRUE(tracer.spans_for(0).empty());
}

}  // namespace
}  // namespace cqos::metrics
