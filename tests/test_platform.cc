// Platform-layer tests: naming conventions, request/reply, DII vs static,
// DSI dispatch, pings, unreachability, message formats.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/fault.h"
#include "platform/corba/agent.h"
#include "platform/corba/cdr.h"
#include "platform/corba/giop.h"
#include "platform/corba/orb.h"
#include "platform/rmi/jrmp.h"
#include "platform/rmi/registry.h"
#include "platform/rmi/rmi.h"

namespace cqos {
namespace {

class EchoHandler : public plat::ServantHandler {
 public:
  plat::Reply handle(const std::string& method, ValueList params,
                     PiggybackMap piggyback) override {
    plat::Reply reply;
    if (method == "boom") {
      reply.status = plat::ReplyStatus::kAppError;
      reply.error = "requested failure";
      return reply;
    }
    reply.status = plat::ReplyStatus::kOk;
    reply.result = Value(ValueList{Value(method), Value(std::move(params))});
    reply.piggyback = std::move(piggyback);
    return reply;
  }
};

struct PlatformFixture {
  net::SimNetwork net;
  std::unique_ptr<corba::SmartAgent> agent;
  std::unique_ptr<rmi::Registry> registry;

  PlatformFixture() : net([] {
    net::NetConfig cfg;
    cfg.base_latency = us(60);
    cfg.jitter = 0;
    return cfg;
  }()) {
    agent = std::make_unique<corba::SmartAgent>(net, "nameserver");
    registry = std::make_unique<rmi::Registry>(net, "nameserver");
  }

  std::unique_ptr<plat::Platform> make(const std::string& host, bool is_corba) {
    if (is_corba) return std::make_unique<corba::CorbaOrb>(net, host);
    return std::make_unique<rmi::RmiRuntime>(net, host);
  }
};

class BothPlatforms : public ::testing::TestWithParam<bool> {};

TEST_P(BothPlatforms, RegisterResolveInvoke) {
  PlatformFixture fix;
  auto server = fix.make("srv", GetParam());
  auto client = fix.make("cli", GetParam());
  server->register_servant(server->direct_name("Echo"),
                           std::make_shared<EchoHandler>(),
                           plat::DispatchMode::kStatic);
  auto ref = client->resolve(client->direct_name("Echo"), ms(500));
  plat::Reply reply =
      ref->invoke("hello", {Value(1), Value("x")}, {{"pb", Value(9)}}, ms(500));
  ASSERT_TRUE(reply.ok());
  const ValueList& echoed = reply.result.as_list();
  EXPECT_EQ(echoed.at(0).as_string(), "hello");
  EXPECT_EQ(echoed.at(1).as_list().at(1).as_string(), "x");
  EXPECT_EQ(reply.piggyback.at("pb"), Value(9));
}

TEST_P(BothPlatforms, DynamicInvocationMatchesStatic) {
  PlatformFixture fix;
  auto server = fix.make("srv", GetParam());
  auto client = fix.make("cli", GetParam());
  server->register_servant(server->direct_name("Echo"),
                           std::make_shared<EchoHandler>(),
                           plat::DispatchMode::kDsi);
  auto ref = client->resolve(client->direct_name("Echo"), ms(500));
  plat::Reply s = ref->invoke("m", {Value(3.5)}, {}, ms(500));
  plat::Reply d = ref->invoke_dynamic("m", {Value(3.5)}, {}, ms(500));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(s.result, d.result);
}

TEST_P(BothPlatforms, AppErrorsSurfaceAsAppError) {
  PlatformFixture fix;
  auto server = fix.make("srv", GetParam());
  auto client = fix.make("cli", GetParam());
  server->register_servant(server->direct_name("Echo"),
                           std::make_shared<EchoHandler>(),
                           plat::DispatchMode::kStatic);
  auto ref = client->resolve(client->direct_name("Echo"), ms(500));
  plat::Reply reply = ref->invoke("boom", {}, {}, ms(500));
  EXPECT_EQ(reply.status, plat::ReplyStatus::kAppError);
  EXPECT_EQ(reply.error, "requested failure");
}

TEST_P(BothPlatforms, UnknownNameThrowsNameNotFound) {
  PlatformFixture fix;
  auto client = fix.make("cli", GetParam());
  EXPECT_THROW(client->resolve(client->direct_name("Ghost"), ms(300)),
               NameNotFound);
}

TEST_P(BothPlatforms, UnregisteredServantReportsError) {
  PlatformFixture fix;
  auto server = fix.make("srv", GetParam());
  auto client = fix.make("cli", GetParam());
  server->register_servant(server->direct_name("Echo"),
                           std::make_shared<EchoHandler>(),
                           plat::DispatchMode::kStatic);
  auto ref = client->resolve(client->direct_name("Echo"), ms(500));
  server->unregister_servant(server->direct_name("Echo"));
  plat::Reply reply = ref->invoke("m", {}, {}, ms(500));
  EXPECT_FALSE(reply.ok());
}

TEST_P(BothPlatforms, PingAliveAndDead) {
  PlatformFixture fix;
  auto server = fix.make("srv", GetParam());
  auto client = fix.make("cli", GetParam());
  server->register_servant(server->direct_name("Echo"),
                           std::make_shared<EchoHandler>(),
                           plat::DispatchMode::kStatic);
  auto ref = client->resolve(client->direct_name("Echo"), ms(500));
  EXPECT_TRUE(ref->ping(ms(300)));
  fix.net.faults().crash_host("srv");
  EXPECT_FALSE(ref->ping(ms(100)));
}

TEST_P(BothPlatforms, CrashedServerYieldsUnreachable) {
  PlatformFixture fix;
  auto server = fix.make("srv", GetParam());
  auto client = fix.make("cli", GetParam());
  server->register_servant(server->direct_name("Echo"),
                           std::make_shared<EchoHandler>(),
                           plat::DispatchMode::kStatic);
  auto ref = client->resolve(client->direct_name("Echo"), ms(500));
  fix.net.faults().crash_host("srv");
  plat::Reply reply = ref->invoke("m", {}, {}, ms(150));
  EXPECT_EQ(reply.status, plat::ReplyStatus::kUnreachable);
}

INSTANTIATE_TEST_SUITE_P(Kind, BothPlatforms, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "corba" : "rmi";
                         });

// --- naming conventions (paper §4) ---------------------------------------------

TEST(Naming, CorbaPoaConvention) {
  net::SimNetwork net;
  corba::SmartAgent agent(net, "nameserver");
  corba::CorbaOrb orb(net, "h");
  EXPECT_EQ(orb.replica_name("Bank", 2), "Bank_agent_poa_2/Bank_CQoS_Skeleton");
  EXPECT_EQ(orb.direct_name("Bank"), "Bank_poa/Bank");
  EXPECT_EQ(orb.name(), "corba");
}

TEST(Naming, RmiRegistryConvention) {
  net::SimNetwork net;
  rmi::Registry registry(net, "nameserver");
  rmi::RmiRuntime runtime(net, "h");
  EXPECT_EQ(runtime.replica_name("Bank", 3), "Bank_CQoS_Skeleton_3");
  EXPECT_EQ(runtime.direct_name("Bank"), "Bank");
  EXPECT_EQ(runtime.name(), "rmi");
}

TEST(Naming, CorbaRejectsMalformedNames) {
  net::SimNetwork net;
  corba::SmartAgent agent(net, "nameserver");
  corba::CorbaOrb orb(net, "h");
  EXPECT_THROW(orb.resolve("no-slash", ms(100)), NameNotFound);
  EXPECT_THROW(
      orb.register_servant("no-slash", std::make_shared<EchoHandler>(),
                           plat::DispatchMode::kStatic),
      ConfigError);
}

// --- wire formats ----------------------------------------------------------------

TEST(Giop, RequestRoundtrip) {
  corba::RequestBody body;
  body.reply_to = "cli/orbcli0";
  body.object_key = "poa/Obj";
  body.operation = "do_it";
  body.service_context = {{"cq.id", Value(7)}};
  body.params = {Value(1), Value("two"), Value(ValueList{Value(3.0)})};
  Bytes frame = corba::encode_request(42, body);

  ByteReader r(frame);
  corba::GiopHeader header = corba::read_frame(r);
  EXPECT_EQ(header.type, corba::MsgType::kRequest);
  EXPECT_EQ(header.request_id, 42u);
  corba::RequestBody out = corba::decode_request_body(r);
  EXPECT_EQ(out.reply_to, body.reply_to);
  EXPECT_EQ(out.object_key, body.object_key);
  EXPECT_EQ(out.operation, body.operation);
  EXPECT_EQ(out.service_context, body.service_context);
  EXPECT_EQ(out.params, body.params);
}

TEST(Giop, ReplyRoundtripBothStatuses) {
  corba::ReplyBody ok;
  ok.status = corba::GiopReplyStatus::kNoException;
  ok.result = Value("fine");
  Bytes frame = corba::encode_reply(7, ok);
  ByteReader r(frame);
  corba::read_frame(r);
  EXPECT_EQ(corba::decode_reply_body(r).result, Value("fine"));

  corba::ReplyBody err;
  err.status = corba::GiopReplyStatus::kUserException;
  err.error = "nope";
  Bytes frame2 = corba::encode_reply(8, err);
  ByteReader r2(frame2);
  corba::read_frame(r2);
  EXPECT_EQ(corba::decode_reply_body(r2).error, "nope");
}

TEST(Giop, BadMagicRejected) {
  Bytes frame = corba::encode_reply(1, {});
  frame[0] = 'X';
  ByteReader r(frame);
  EXPECT_THROW(corba::read_frame(r), DecodeError);
}

TEST(Cdr, AnyRoundtripAllTypes) {
  for (const Value& v :
       {Value(), Value(true), Value(std::int64_t{-5}), Value(2.25),
        Value("str"), Value(Bytes{1, 2, 3}),
        Value(ValueList{Value(1), Value("x")})}) {
    ByteWriter w;
    corba::encode_any(w, v);
    ByteReader r(w.data());
    EXPECT_EQ(corba::decode_any(r), v);
  }
}

TEST(Cdr, AlignmentIsEnforced) {
  // Misalign by one byte, then encode an i64 Any: payload must land on an
  // 8-byte boundary (after the 1-byte typecode).
  ByteWriter w;
  w.put_u8(0);
  corba::encode_any(w, Value(std::int64_t{0x1122334455667788}));
  ByteReader r(w.data());
  r.get_u8();
  EXPECT_EQ(corba::decode_any(r), Value(std::int64_t{0x1122334455667788}));
}

TEST(Cdr, StringsAreNulTerminated) {
  ByteWriter w;
  corba::encode_cdr_string(w, "ab");
  // align(4) is a no-op at offset 0: u32 len=3, 'a', 'b', NUL.
  EXPECT_EQ(w.data(), (Bytes{3, 0, 0, 0, 'a', 'b', 0}));
}

TEST(Cdr, DuplicateServiceContextKeyRejected) {
  // The encoder dedupes (PiggybackMap), so hand-craft a context list that
  // carries the same key twice; decoding must throw rather than silently
  // dropping the second entry.
  ByteWriter w;
  w.align(4);
  w.put_u32(2);
  corba::encode_cdr_string(w, "cq.trace");
  corba::encode_any(w, Value(std::int64_t{1}));
  corba::encode_cdr_string(w, "cq.trace");
  corba::encode_any(w, Value(std::int64_t{2}));
  ByteReader r(w.data());
  EXPECT_THROW(corba::decode_service_context(r), DecodeError);
}

TEST(Jrmp, DuplicatePiggybackKeyRejected) {
  ByteWriter w;
  w.put_varint(2);
  w.put_string("cq.trace");
  Value(std::int64_t{1}).encode(w);
  w.put_string("cq.trace");
  Value(std::int64_t{2}).encode(w);
  ByteReader r(w.data());
  EXPECT_THROW(rmi::decode_pb(r), DecodeError);
}

TEST(Jrmp, CallRoundtrip) {
  rmi::CallBody body;
  body.reply_to = "cli/rmicli0";
  body.target = "Obj";
  body.method = "do_it";
  body.piggyback = {{"cq.prio", Value(9)}};
  body.params = {Value(1), Value("x")};
  Bytes frame = rmi::encode_call(5, body);
  ByteReader r(frame);
  rmi::Header h = rmi::read_header(r);
  EXPECT_EQ(h.type, rmi::MsgType::kCall);
  EXPECT_EQ(h.call_id, 5u);
  rmi::CallBody out = rmi::decode_call_body(r);
  EXPECT_EQ(out.target, "Obj");
  EXPECT_EQ(out.method, "do_it");
  EXPECT_EQ(out.params, body.params);
  EXPECT_EQ(out.piggyback, body.piggyback);
}

TEST(Jrmp, CompactnessBeatsGiop) {
  // The same logical request must be smaller in the RMI stream format than
  // in aligned CDR/GIOP — the mechanism behind the paper's platform gap.
  ValueList params{Value(std::int64_t{123456}), Value("hello world"),
                   Value(2.5)};
  PiggybackMap pb{{"cq.id", Value(std::int64_t{99})}};

  corba::RequestBody greq;
  greq.reply_to = "cli/orbcli0";
  greq.object_key = "Obj_poa/Obj";
  greq.operation = "set_balance";
  greq.service_context = pb;
  greq.params = params;
  Bytes giop = corba::encode_request(1, greq);

  rmi::CallBody jreq;
  jreq.reply_to = "cli/rmicli0";
  jreq.target = "Obj";
  jreq.method = "set_balance";
  jreq.piggyback = pb;
  jreq.params = params;
  Bytes jrmp = rmi::encode_call(1, jreq);

  EXPECT_LT(jrmp.size(), giop.size());
}

TEST(Jrmp, ReturnRoundtripBothStatuses) {
  rmi::ReturnBody ok;
  ok.ok = true;
  ok.result = Value(5);
  Bytes f1 = rmi::encode_return(1, ok);
  ByteReader r1(f1);
  rmi::read_header(r1);
  EXPECT_EQ(rmi::decode_return_body(r1).result, Value(5));

  rmi::ReturnBody err;
  err.ok = false;
  err.error = "bad";
  Bytes f2 = rmi::encode_return(2, err);
  ByteReader r2(f2);
  rmi::read_header(r2);
  rmi::ReturnBody out = rmi::decode_return_body(r2);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, "bad");
}

TEST(Jrmp, BadMagicRejected) {
  Bytes frame = rmi::encode_return(1, {});
  frame[0] = 0x00;
  ByteReader r(frame);
  EXPECT_THROW(rmi::read_header(r), DecodeError);
}

}  // namespace
}  // namespace cqos
