// Multi-process TCP smoke test (ISSUE 9 satellite): fork a real server
// process, run the secured and retransmit+dedup compositions over the TCP
// transport, and assert reply parity (final balances, reply values, trace-id
// echo) with the same workload on the SimNetwork — proving the stacks above
// the net::Transport seam are transport-neutral in fact, not just in type.
//
// Process layout: the parent forks FIRST (before any transport exists, so
// no threads cross the fork), then the child assembles the server world —
// TcpTransport on an ephemeral port, RMI registry, platform, two QoS server
// endpoints — and writes its port down an inherited pipe. The parent runs
// the client workload against that port, reruns it on a single-process
// SimNetwork deployment, compares, and closes a second pipe to stop the
// child.
//
//   exit 0: parity holds.   exit 1: a check failed (message on stderr).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cqos/endpoint.h"
#include "cqos/request.h"
#include "micro/standard.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "platform/rmi/registry.h"
#include "platform/rmi/rmi.h"
#include "sim/bank_account.h"

namespace {

using namespace cqos;
using namespace cqos::sim;

constexpr const char* kKey = "0123456789abcdef";

#define CHECK(cond, what)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "tcp_smoke FAIL: %s (%s:%d)\n", what,       \
                   __FILE__, __LINE__);                                \
      return false;                                                    \
    }                                                                  \
  } while (0)

std::vector<MicroProtocolSpec> secured_client_specs() {
  return {{"des_privacy", {{"key", kKey}}}, {"integrity", {{"key", kKey}}}};
}
std::vector<MicroProtocolSpec> secured_server_specs() {
  return {{"des_privacy", {{"key", kKey}}}, {"integrity", {{"key", kKey}}}};
}

/// What one client-side run of the workload observed. Compared field by
/// field between the TCP and SimNetwork runs.
struct WorkloadResult {
  std::int64_t secure_balance = -1;
  std::int64_t reliable_balance = -1;
  bool trace_echoed = false;
};

bool operator==(const WorkloadResult& a, const WorkloadResult& b) {
  return a.secure_balance == b.secure_balance &&
         a.reliable_balance == b.reliable_balance &&
         a.trace_echoed == b.trace_echoed;
}

/// Install the two server-side endpoints on `platform`. Returns them so the
/// caller controls teardown order.
struct ServerWorld {
  std::shared_ptr<BankAccountServant> secure_servant;
  std::shared_ptr<BankAccountServant> reliable_servant;
  std::unique_ptr<QosEndpoint::ServerHandle> secure;
  std::unique_ptr<QosEndpoint::ServerHandle> reliable;
};

ServerWorld make_servers(plat::Platform& platform) {
  ServerWorld w;
  w.secure_servant = std::make_shared<BankAccountServant>();
  w.reliable_servant = std::make_shared<BankAccountServant>();
  w.secure = QosEndpoint::server(platform, w.secure_servant, "SecureAccount")
                 .qos(secured_server_specs())
                 .build();
  w.reliable =
      QosEndpoint::server(platform, w.reliable_servant, "ReliableAccount")
          .qos({{"dedup"}})
          .build();
  return w;
}

/// The client workload: secured composition + retransmit/dedup composition,
/// plus a trace-id echo check. Identical regardless of transport.
bool run_workload(plat::Platform& platform, WorkloadResult* out) {
  auto secure_client = QosEndpoint::client(platform, "SecureAccount")
                           .replicas(1)
                           .qos(secured_client_specs())
                           .invoke_timeout(ms(2000))
                           .build();
  auto reliable_client = QosEndpoint::client(platform, "ReliableAccount")
                             .replicas(1)
                             .qos({{"retransmit", {{"retries", "4"}}}})
                             .invoke_timeout(ms(2000))
                             .build();

  BankAccountStub secure(secure_client->stub_ptr());
  secure.set_balance(50'000);
  secure.deposit(1'234);
  secure.withdraw(234);
  out->secure_balance = secure.get_balance();

  BankAccountStub reliable(reliable_client->stub_ptr());
  reliable.set_balance(10);
  reliable.deposit(20);
  reliable.deposit(20);
  reliable.withdraw(5);
  out->reliable_balance = reliable.get_balance();

  RequestPtr req = secure_client->stub().call_request(
      "get_balance", {});
  CHECK(req != nullptr && req->succeeded(), "trace request failed");
  CHECK(req->trace_id != 0, "no trace id minted");
  PiggybackMap pb = req->reply_piggyback();
  auto it = pb.find(pbkey::kTraceId);
  out->trace_echoed =
      it != pb.end() &&
      static_cast<std::uint64_t>(it->second.as_i64()) == req->trace_id;
  CHECK(out->trace_echoed, "trace id not echoed in reply piggyback");
  return true;
}

/// Child: the server process. Blocks until the parent closes stop_fd.
int run_server_process(int port_fd, int stop_fd) {
  micro::register_standard_micro_protocols();
  auto net = net::make_transport(net::TransportConfig::real_tcp());
  rmi::Registry registry(*net, "nameserver");
  rmi::RmiConfig cfg;
  cfg.registry_host = "nameserver";
  rmi::RmiRuntime platform(*net, "server0", cfg);
  ServerWorld servers = make_servers(platform);

  std::uint16_t port = net->as_tcp()->listen_port();
  std::string line = std::to_string(port) + "\n";
  if (::write(port_fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    return 2;
  }
  ::close(port_fd);

  char b;
  while (::read(stop_fd, &b, 1) > 0) {
  }
  platform.shutdown();
  servers.secure->stop();
  servers.reliable->stop();
  return 0;
}

bool run_tcp_client(std::uint16_t port, WorkloadResult* out) {
  std::string addr = "127.0.0.1:" + std::to_string(port);
  net::TcpOptions topts;
  topts.peers["server0"] = addr;
  topts.peers["nameserver"] = addr;
  auto net = net::make_transport(net::TransportConfig::real_tcp(topts));
  rmi::RmiConfig cfg;
  cfg.registry_host = "nameserver";
  rmi::RmiRuntime platform(*net, "client0", cfg);
  bool ok = run_workload(platform, out);
  platform.shutdown();
  return ok;
}

bool run_sim_reference(WorkloadResult* out) {
  auto net = net::make_transport(net::TransportConfig::simulated());
  rmi::Registry registry(*net, "nameserver");
  rmi::RmiConfig cfg;
  cfg.registry_host = "nameserver";
  rmi::RmiRuntime server_platform(*net, "server0", cfg);
  rmi::RmiRuntime client_platform(*net, "client0", cfg);
  ServerWorld servers = make_servers(server_platform);
  bool ok = run_workload(client_platform, out);
  client_platform.shutdown();
  server_platform.shutdown();
  servers.secure->stop();
  servers.reliable->stop();
  return ok;
}

}  // namespace

int main() {
  int port_pipe[2];
  int stop_pipe[2];
  if (::pipe(port_pipe) != 0 || ::pipe(stop_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    ::close(port_pipe[0]);
    ::close(stop_pipe[1]);
    int rc = run_server_process(port_pipe[1], stop_pipe[0]);
    std::_Exit(rc);
  }
  ::close(port_pipe[1]);
  ::close(stop_pipe[0]);

  // Read the server's port (single short line).
  char buf[16] = {};
  ssize_t n = ::read(port_pipe[0], buf, sizeof(buf) - 1);
  ::close(port_pipe[0]);
  if (n <= 0) {
    std::fprintf(stderr, "tcp_smoke FAIL: no port from server process\n");
    ::close(stop_pipe[1]);
    ::waitpid(pid, nullptr, 0);
    return 1;
  }
  auto port = static_cast<std::uint16_t>(std::atoi(buf));

  micro::register_standard_micro_protocols();

  WorkloadResult tcp_result;
  WorkloadResult sim_result;
  bool ok = run_tcp_client(port, &tcp_result) && run_sim_reference(&sim_result);

  // Stop the server (EOF on the stop pipe) and reap it.
  ::close(stop_pipe[1]);
  int status = 0;
  ::waitpid(pid, &status, 0);

  if (!ok) return 1;
  if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
    std::fprintf(stderr, "tcp_smoke FAIL: server process exited abnormally\n");
    return 1;
  }
  if (!(tcp_result == sim_result)) {
    std::fprintf(stderr,
                 "tcp_smoke FAIL: parity broken: tcp {secure=%lld reliable=%lld "
                 "trace=%d} vs sim {secure=%lld reliable=%lld trace=%d}\n",
                 static_cast<long long>(tcp_result.secure_balance),
                 static_cast<long long>(tcp_result.reliable_balance),
                 tcp_result.trace_echoed ? 1 : 0,
                 static_cast<long long>(sim_result.secure_balance),
                 static_cast<long long>(sim_result.reliable_balance),
                 sim_result.trace_echoed ? 1 : 0);
    return 1;
  }
  std::printf(
      "tcp_smoke OK: secure=%lld reliable=%lld trace_echoed=%d "
      "(tcp == sim)\n",
      static_cast<long long>(tcp_result.secure_balance),
      static_cast<long long>(tcp_result.reliable_balance),
      tcp_result.trace_echoed ? 1 : 0);
  return 0;
}
