#include <gtest/gtest.h>

#include "cqos/config.h"
#include "micro/standard.h"

namespace cqos {
namespace {

TEST(QosConfigParse, EmptyInput) {
  QosConfig cfg = QosConfig::parse("");
  EXPECT_TRUE(cfg.client.empty());
  EXPECT_TRUE(cfg.server.empty());
}

TEST(QosConfigParse, SimpleList) {
  QosConfig cfg = QosConfig::parse("client: active_rep, majority_vote");
  ASSERT_EQ(cfg.client.size(), 2u);
  EXPECT_EQ(cfg.client[0].name, "active_rep");
  EXPECT_EQ(cfg.client[1].name, "majority_vote");
}

TEST(QosConfigParse, ParametersAndBothSections) {
  QosConfig cfg = QosConfig::parse(
      "client: des_privacy(key=0123456789abcdef);\n"
      "server: timed_sched(period_ms=50, threshold=3), access_control("
      "allow=alice:*|bob:get_balance, default=deny)");
  ASSERT_EQ(cfg.client.size(), 1u);
  EXPECT_EQ(cfg.client[0].param("key"), "0123456789abcdef");
  ASSERT_EQ(cfg.server.size(), 2u);
  EXPECT_EQ(cfg.server[0].param_int("period_ms", 0), 50);
  EXPECT_EQ(cfg.server[0].param_int("threshold", 0), 3);
  EXPECT_EQ(cfg.server[1].param("allow"), "alice:*|bob:get_balance");
  EXPECT_EQ(cfg.server[1].param("default"), "deny");
}

TEST(QosConfigParse, CommentsAndWhitespace) {
  QosConfig cfg = QosConfig::parse(
      "# full stack\n"
      "client: active_rep  # replicate\n"
      "server: total_order\n");
  ASSERT_EQ(cfg.client.size(), 1u);
  ASSERT_EQ(cfg.server.size(), 1u);
}

TEST(QosConfigParse, EmptyParensAllowed) {
  QosConfig cfg = QosConfig::parse("client: client_base()");
  ASSERT_EQ(cfg.client.size(), 1u);
  EXPECT_TRUE(cfg.client[0].params.empty());
}

TEST(QosConfigParse, Errors) {
  EXPECT_THROW(QosConfig::parse("bogus: x"), ConfigError);
  EXPECT_THROW(QosConfig::parse("client active_rep"), ConfigError);
  EXPECT_THROW(QosConfig::parse("client: p(key"), ConfigError);
  EXPECT_THROW(QosConfig::parse("client: p(=v)"), ConfigError);
}

TEST(QosConfigParse, ParamTypeErrors) {
  QosConfig cfg = QosConfig::parse("server: timed_sched(period_ms=abc)");
  EXPECT_THROW(cfg.server[0].param_int("period_ms", 0), ConfigError);
  EXPECT_EQ(cfg.server[0].param_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.server[0].param_double("missing", 1.5), 1.5);
}

TEST(QosConfig, SerializeParseRoundtrip) {
  QosConfig cfg;
  cfg.add(Side::kClient, "active_rep")
      .add(Side::kClient, "des_privacy", {{"key", "0123456789abcdef"}})
      .add(Side::kServer, "timed_sched",
           {{"period_ms", "50"}, {"threshold", "3"}});
  QosConfig back = QosConfig::parse(cfg.serialize());
  ASSERT_EQ(back.client.size(), 2u);
  ASSERT_EQ(back.server.size(), 1u);
  EXPECT_EQ(back.client[1].param("key"), "0123456789abcdef");
  EXPECT_EQ(back.server[0].param_int("threshold", 0), 3);
}

TEST(Registry, StandardProtocolsRegistered) {
  micro::register_standard_micro_protocols();
  auto& reg = MicroProtocolRegistry::instance();
  for (const char* name :
       {"client_base", "active_rep", "passive_rep", "first_success",
        "majority_vote", "des_privacy", "integrity"}) {
    EXPECT_TRUE(reg.contains(Side::kClient, name)) << name;
  }
  for (const char* name :
       {"server_base", "passive_rep", "total_order", "des_privacy",
        "integrity", "access_control", "priority_sched", "queued_sched",
        "timed_sched"}) {
    EXPECT_TRUE(reg.contains(Side::kServer, name)) << name;
  }
  // Side separation: client-only protocols are not server protocols.
  EXPECT_FALSE(reg.contains(Side::kServer, "active_rep"));
  EXPECT_FALSE(reg.contains(Side::kClient, "total_order"));
}

TEST(Registry, UnknownNameThrows) {
  micro::register_standard_micro_protocols();
  MicroProtocolSpec spec{"does_not_exist", {}};
  EXPECT_THROW(
      MicroProtocolRegistry::instance().create(Side::kClient, spec),
      ConfigError);
}

TEST(Registry, NamesListsSide) {
  micro::register_standard_micro_protocols();
  auto names = MicroProtocolRegistry::instance().names(Side::kClient);
  EXPECT_NE(std::find(names.begin(), names.end(), "active_rep"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "total_order"), names.end());
}

TEST(Registry, BadParameterSurfacesAtCreate) {
  micro::register_standard_micro_protocols();
  MicroProtocolSpec spec{"des_privacy", {{"key", "xyz"}}};  // bad hex
  EXPECT_THROW(
      MicroProtocolRegistry::instance().create(Side::kClient, spec),
      ConfigError);
}

}  // namespace
}  // namespace cqos
