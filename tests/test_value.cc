#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/value.h"

namespace cqos {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Value::Type::kNull);
}

TEST(Value, TypedAccessors) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(std::int64_t{-42}).as_i64(), -42);
  EXPECT_DOUBLE_EQ(Value(3.25).as_f64(), 3.25);
  EXPECT_EQ(Value("hello").as_string(), "hello");
  Bytes b{1, 2, 3};
  EXPECT_EQ(Value(b).as_bytes(), b);
  ValueList list{Value(1), Value("x")};
  EXPECT_EQ(Value(list).as_list().size(), 2u);
}

TEST(Value, WrongTypeThrows) {
  EXPECT_THROW(Value(1).as_string(), TypeError);
  EXPECT_THROW(Value("s").as_i64(), TypeError);
  EXPECT_THROW(Value().as_bytes(), TypeError);
  EXPECT_THROW(Value(1.5).as_bool(), TypeError);
}

TEST(Value, IntLiteralsBecomeI64) {
  Value v(7);
  EXPECT_EQ(v.type(), Value::Type::kI64);
  EXPECT_EQ(v.as_i64(), 7);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_EQ(Value(), Value());
  EXPECT_EQ(Value(ValueList{Value(1)}), Value(ValueList{Value(1)}));
}

Value roundtrip(const Value& v) {
  ByteWriter w;
  v.encode(w);
  ByteReader r(w.data());
  Value out = Value::decode(r);
  EXPECT_TRUE(r.done());
  return out;
}

TEST(Value, EncodeDecodeRoundtripScalar) {
  EXPECT_EQ(roundtrip(Value()), Value());
  EXPECT_EQ(roundtrip(Value(true)), Value(true));
  EXPECT_EQ(roundtrip(Value(false)), Value(false));
  EXPECT_EQ(roundtrip(Value(std::int64_t{1} << 62)), Value(std::int64_t{1} << 62));
  EXPECT_EQ(roundtrip(Value(-1)), Value(-1));
  EXPECT_EQ(roundtrip(Value(2.718281828)), Value(2.718281828));
  EXPECT_EQ(roundtrip(Value("")), Value(""));
  EXPECT_EQ(roundtrip(Value(std::string(1000, 'x'))),
            Value(std::string(1000, 'x')));
}

TEST(Value, EncodeDecodeRoundtripNested) {
  Value nested(ValueList{
      Value(1), Value("two"),
      Value(ValueList{Value(3.0), Value(Bytes{9, 9, 9}), Value()})});
  EXPECT_EQ(roundtrip(nested), nested);
}

TEST(Value, ListCodecRoundtrip) {
  ValueList params{Value(10), Value("abc"), Value(Bytes{0, 255})};
  Bytes encoded = Value::encode_list(params);
  ValueList decoded = Value::decode_list(encoded);
  ASSERT_EQ(decoded.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(decoded[i], params[i]);
  }
}

TEST(Value, DecodeRejectsTruncated) {
  Value v("hello world");
  ByteWriter w;
  v.encode(w);
  Bytes data = w.data();
  data.resize(data.size() - 3);
  ByteReader r(data);
  EXPECT_THROW(Value::decode(r), DecodeError);
}

TEST(Value, DecodeRejectsUnknownTag) {
  Bytes data{0x77};
  ByteReader r(data);
  EXPECT_THROW(Value::decode(r), DecodeError);
}

TEST(Value, DecodeListRejectsTrailingBytes) {
  Bytes encoded = Value::encode_list({Value(1)});
  encoded.push_back(0);
  EXPECT_THROW(Value::decode_list(encoded), DecodeError);
}

TEST(Value, DecodeRejectsHugeListLength) {
  // Claim 2^40 elements with an empty body: must not allocate/loop.
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(Value::Type::kList));
  w.put_varint(std::uint64_t{1} << 40);
  ByteReader r(w.data());
  EXPECT_THROW(Value::decode(r), DecodeError);
}

TEST(Value, ToStringRendersStructure) {
  Value v(ValueList{Value(1), Value("x"), Value(Bytes{1, 2})});
  EXPECT_EQ(v.to_string(), "[1, \"x\", bytes[2]]");
  EXPECT_EQ(Value().to_string(), "null");
  EXPECT_EQ(Value(true).to_string(), "true");
}

TEST(Piggyback, Roundtrip) {
  PiggybackMap pb{{"cq.id", Value(std::int64_t{77})},
                  {"cq.prio", Value(9)},
                  {"who", Value("alice")}};
  ByteWriter w;
  encode_piggyback(w, pb);
  ByteReader r(w.data());
  PiggybackMap out = decode_piggyback(r);
  EXPECT_EQ(out, pb);
  EXPECT_TRUE(r.done());
}

TEST(Piggyback, EmptyRoundtrip) {
  ByteWriter w;
  encode_piggyback(w, {});
  ByteReader r(w.data());
  EXPECT_TRUE(decode_piggyback(r).empty());
}

TEST(Piggyback, DuplicateKeyRejected) {
  // encode_piggyback can never produce duplicates (the map dedupes), so
  // hand-craft a frame carrying the same key twice. Decoding must throw
  // instead of silently keeping the first entry.
  ByteWriter w;
  w.put_varint(2);
  w.put_string("cq.id");
  Value(std::int64_t{1}).encode(w);
  w.put_string("cq.id");
  Value(std::int64_t{2}).encode(w);
  ByteReader r(w.data());
  EXPECT_THROW(decode_piggyback(r), DecodeError);
}

// Property: random nested values survive the codec.
class ValueFuzzRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

Value random_value(Rng& rng, int depth) {
  switch (rng.next_below(depth > 2 ? 6 : 7)) {
    case 0:
      return Value();
    case 1:
      return Value(rng.next_bool(0.5));
    case 2:
      return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3:
      return Value(rng.next_double() * 1e12 - 5e11);
    case 4: {
      std::string s;
      for (std::uint64_t i = 0, n = rng.next_below(40); i < n; ++i) {
        s.push_back(static_cast<char>('a' + rng.next_below(26)));
      }
      return Value(std::move(s));
    }
    case 5: {
      Bytes b;
      for (std::uint64_t i = 0, n = rng.next_below(64); i < n; ++i) {
        b.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
      }
      return Value(std::move(b));
    }
    default: {
      ValueList list;
      for (std::uint64_t i = 0, n = rng.next_below(5); i < n; ++i) {
        list.push_back(random_value(rng, depth + 1));
      }
      return Value(std::move(list));
    }
  }
}

TEST_P(ValueFuzzRoundtrip, RandomValueSurvivesCodec) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Value v = random_value(rng, 0);
    EXPECT_EQ(roundtrip(v), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueFuzzRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace cqos
