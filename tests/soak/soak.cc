#include "soak/soak.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "common/error.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "cqos/verify.h"
#include "sim/modeled_load.h"
#include "micro/standard.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::soak {

using net::FaultEvent;
using net::FaultKind;
using net::FaultPlan;
using sim::BankAccountServant;
using sim::BankAccountStub;
using sim::ClientHandle;
using sim::Cluster;
using sim::ClusterOptions;
using sim::PlatformKind;

namespace {

// --- configurations ----------------------------------------------------------

// Soundness gating (which fault profiles may run, whether replica logs must
// agree) is NOT stored here: it is derived from the composition's manifests
// via composition_traits() — see config_traits() below.
struct ConfigSpec {
  const char* name;
  int replicas;
  void (*apply)(ClusterOptions&);
};

const ConfigSpec kConfigs[] = {
    // Unreplicated server behind retransmission; the shared dedup
    // micro-protocol provides at-most-once execution.
    {"retransmit-dedup", 1,
     [](ClusterOptions& o) {
       o.invoke_timeout = ms(150);
       // admission sits in front with a bound generous enough never to
       // reject at soak load: overload protection must be invariant-neutral
       // (a reject is a VISIBLE failure, so no-lost-ack still holds), and
       // having it here keeps the composition under verifier + soak gating.
       o.qos.add(Side::kClient, "retransmit", {{"retries", "8"}})
           .add(Side::kServer, "admission", {{"max_pending", "256"}})
           .add(Side::kServer, "dedup");
     }},
    // Primary-backup replication with failover, retransmission and a
    // failure detector (dedup is built into passive_rep).
    {"passive-rep", 3,
     [](ClusterOptions& o) {
       o.invoke_timeout = ms(400);
       o.qos.add(Side::kClient, "passive_rep")
           .add(Side::kClient, "retransmit", {{"retries", "6"}})
           .add(Side::kClient, "failure_detector", {{"period_ms", "40"}})
           .add(Side::kServer, "passive_rep");
     }},
    // Active replication under total order: every replica applies the same
    // deposit sequence. The "total-order" manifest property makes the
    // derived traits exclude loss-type faults (a drop toward one replica
    // stalls the total order, making agreement unsound to assert), so this
    // config runs the duplication/reordering/latency profiles.
    {"active-total", 3,
     [](ClusterOptions& o) {
       o.invoke_timeout = ms(800);
       o.qos.add(Side::kClient, "active_rep")
           .add(Side::kServer, "total_order")
           .add(Side::kServer, "dedup");
     }},
    // The passive-rep stack with security micro-protocols on the
    // client<->primary edge: chaos must not break at-most-once under
    // encrypted+signed traffic. Backups run passive_rep without the
    // security pair — the primary's forwarding path sends intra-cluster
    // replication traffic in the clear, so a backup with des_privacy
    // installed would reject every forward.
    {"secured-passive", 3,
     [](ClusterOptions& o) {
       constexpr const char* kKey = "0123456789abcdef";
       o.invoke_timeout = ms(400);
       o.qos.add(Side::kClient, "passive_rep")
           .add(Side::kClient, "retransmit", {{"retries", "6"}})
           .add(Side::kClient, "failure_detector", {{"period_ms", "40"}})
           .add(Side::kClient, "des_privacy", {{"key", kKey}})
           .add(Side::kClient, "integrity", {{"key", kKey}});
       o.server_specs_fn = [](int replica) -> std::vector<MicroProtocolSpec> {
         if (replica == 0) {
           return {{"des_privacy", {{"key", "0123456789abcdef"}}},
                   {"integrity", {{"key", "0123456789abcdef"}}},
                   {"passive_rep"}};
         }
         return {{"passive_rep"}};
       };
     }},
};

const ConfigSpec& find_config(const std::string& name) {
  for (const ConfigSpec& c : kConfigs) {
    if (name == c.name) return c;
  }
  throw ConfigError("soak: unknown config: " + name);
}

/// Semantic traits of a soak config, derived from its manifests: agreement
/// is asserted exactly when the composition provides total order, and
/// loss-type faults are injected exactly when it tolerates loss.
CompositionTraits config_traits(const std::string& name) {
  micro::register_standard_micro_protocols();
  return composition_traits(soak_qos_config(name));
}

// --- chaos profiles ----------------------------------------------------------

const char* kProfiles[] = {
    "backup-churn",   "partition-flap", "drop-storm",      "dup-flood",
    "reorder-storm",  "latency-quake",  "mixed-mayhem",    "calm-then-chaos",
};

/// Loss-type profiles (unsound for agreement configs).
bool profile_needs_loss(const std::string& p) {
  return p == "backup-churn" || p == "partition-flap" || p == "drop-storm";
}

std::uint64_t mix_profile(std::string_view profile, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the profile name
  for (char c : profile) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h ^ seed;
}

void add(FaultPlan& plan, Duration at, FaultKind kind, FaultEvent proto = {}) {
  proto.at = at;
  proto.kind = kind;
  plan.events.push_back(proto);
}

}  // namespace

FaultPlan make_profile_plan(const std::string& profile, std::uint64_t seed,
                            std::vector<std::string> crashable,
                            bool allow_loss) {
  Rng rng(mix_profile(profile, seed));
  FaultPlan plan;
  plan.name = profile;
  plan.seed = seed;
  auto pick_host = [&]() -> std::string {
    return crashable[rng.next_below(crashable.size())];
  };

  if (profile == "backup-churn") {
    for (int k = 0; k < 4 && !crashable.empty(); ++k) {
      Duration t = ms(100 + 250 * k);
      std::string victim = pick_host();
      add(plan, t, FaultKind::kCrash, {.host_a = victim});
      add(plan, t + ms(60 + rng.next_below(80)), FaultKind::kRecover,
          {.host_a = victim});
    }
  } else if (profile == "partition-flap") {
    for (int k = 0; k < 4 && !crashable.empty(); ++k) {
      Duration t = ms(120 + 240 * k);
      std::string a = pick_host();
      // Flap against the primary or another backup, whichever the draw
      // picks (self-pairs degenerate to the primary).
      std::string b = rng.next_bool(0.5) ? Cluster::replica_host(0) : pick_host();
      if (a == b) b = Cluster::replica_host(0);
      add(plan, t, FaultKind::kPartition, {.host_a = a, .host_b = b});
      add(plan, t + ms(60 + rng.next_below(60)), FaultKind::kHeal,
          {.host_a = a, .host_b = b});
    }
  } else if (profile == "drop-storm") {
    add(plan, ms(0), FaultKind::kDropRate, {.rate = 0.15});
    add(plan, ms(250), FaultKind::kDropBurst,
        {.host_a = "*", .host_b = Cluster::replica_host(0), .rate = 1.0,
         .duration = ms(60 + rng.next_below(40))});
    add(plan, ms(400), FaultKind::kDropRate,
        {.rate = 0.25 + 0.1 * rng.next_double()});
    add(plan, ms(650), FaultKind::kDropBurst,
        {.host_a = Cluster::replica_host(0), .host_b = "*", .rate = 1.0,
         .duration = ms(50 + rng.next_below(40))});
    add(plan, ms(850), FaultKind::kDropRate, {.rate = 0.1});
    add(plan, ms(1100), FaultKind::kDropRate, {.rate = 0.0});
  } else if (profile == "dup-flood") {
    add(plan, ms(0), FaultKind::kDuplicate, {.rate = 0.5});
    add(plan, ms(350), FaultKind::kDuplicate,
        {.rate = 0.7 + 0.25 * rng.next_double()});
    add(plan, ms(750), FaultKind::kDuplicate, {.rate = 0.3});
    add(plan, ms(1100), FaultKind::kDuplicate, {.rate = 0.0});
  } else if (profile == "reorder-storm") {
    add(plan, ms(0), FaultKind::kReorder, {.rate = 0.5, .window = 4});
    add(plan, ms(400), FaultKind::kReorder,
        {.rate = 0.6 + 0.2 * rng.next_double(), .window = 6});
    add(plan, ms(800), FaultKind::kReorder, {.rate = 0.3, .window = 3});
    add(plan, ms(1100), FaultKind::kReorder, {.rate = 0.0, .window = 0});
  } else if (profile == "latency-quake") {
    for (int k = 0; k < 3; ++k) {
      add(plan, ms(100 + 320 * k), FaultKind::kLatencySpike,
          {.duration = ms(100 + rng.next_below(60)),
           .factor = 4.0 + 4.0 * rng.next_double()});
    }
  } else if (profile == "mixed-mayhem") {
    add(plan, ms(0), FaultKind::kDuplicate, {.rate = 0.3});
    add(plan, ms(100), FaultKind::kReorder, {.rate = 0.4, .window = 4});
    if (allow_loss) {
      add(plan, ms(200), FaultKind::kDropRate, {.rate = 0.15});
      add(plan, ms(500), FaultKind::kDropBurst,
          {.host_a = "*", .host_b = Cluster::replica_host(0), .rate = 1.0,
           .duration = ms(60)});
    }
    if (allow_loss && !crashable.empty()) {
      std::string victim = pick_host();
      add(plan, ms(600), FaultKind::kCrash, {.host_a = victim});
      add(plan, ms(720 + rng.next_below(60)), FaultKind::kRecover,
          {.host_a = victim});
    }
    add(plan, ms(800), FaultKind::kLatencySpike,
        {.duration = ms(100), .factor = 5.0});
    add(plan, ms(900), FaultKind::kDuplicate, {.rate = 0.6});
    add(plan, ms(1100), FaultKind::kDuplicate, {.rate = 0.0});
    if (allow_loss) add(plan, ms(1100), FaultKind::kDropRate, {.rate = 0.0});
    add(plan, ms(1100), FaultKind::kReorder, {.rate = 0.0, .window = 0});
  } else if (profile == "calm-then-chaos") {
    add(plan, ms(600), FaultKind::kDuplicate, {.rate = 0.7});
    add(plan, ms(650), FaultKind::kReorder, {.rate = 0.5, .window = 5});
    add(plan, ms(700), FaultKind::kLatencySpike,
        {.duration = ms(120 + rng.next_below(60)), .factor = 6.0});
    if (allow_loss) {
      add(plan, ms(750), FaultKind::kDropRate,
          {.rate = 0.2 + 0.1 * rng.next_double()});
      add(plan, ms(1050), FaultKind::kDropRate, {.rate = 0.0});
    }
    add(plan, ms(1100), FaultKind::kDuplicate, {.rate = 0.0});
    add(plan, ms(1100), FaultKind::kReorder, {.rate = 0.0, .window = 0});
  } else {
    throw ConfigError("soak: unknown profile: " + profile);
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::vector<std::string> soak_configs() {
  std::vector<std::string> names;
  for (const ConfigSpec& c : kConfigs) names.push_back(c.name);
  return names;
}

std::vector<std::string> soak_profiles() {
  return {std::begin(kProfiles), std::end(kProfiles)};
}

QosConfig soak_qos_config(const std::string& config) {
  const ConfigSpec& spec = find_config(config);
  ClusterOptions copts;
  spec.apply(copts);
  QosConfig qc = copts.qos;
  if (copts.server_specs_fn) qc.server = copts.server_specs_fn(0);
  return qc;
}

std::vector<std::string> soak_profiles_for(const std::string& config) {
  const CompositionTraits traits = config_traits(config);
  std::vector<std::string> names;
  for (const char* p : kProfiles) {
    if (!traits.loss_tolerant && profile_needs_loss(p)) continue;
    names.push_back(p);
  }
  return names;
}

std::string SoakOutcome::repro() const {
  return "chaos_soak --config=" + config + " --profile=" + profile +
         " --seed=" + std::to_string(seed);
}

std::string SoakOutcome::summary() const {
  std::string s = ok() ? "PASS " : "FAIL ";
  s += config + "/" + profile + " seed=" + std::to_string(seed) +
       " acked=" + std::to_string(acked) + " failed=" + std::to_string(failed);
  if (!ok()) {
    s += " violations=" + std::to_string(violations.size()) + " [repro: " +
         repro() + "]";
  }
  return s;
}

SoakOutcome run_soak(const std::string& config, const std::string& profile,
                     std::uint64_t seed, const SoakOptions& opts) {
  const ConfigSpec& spec = find_config(config);

  // The set of configs this run will serve: the starting one plus every
  // cycle entry. Soundness (profile gating, agreement assertion) must hold
  // for EVERY config the run passes through, so traits are AND-combined.
  std::vector<std::string> cycle = opts.reconfig_cycle;
  if (opts.reconfigure_every > 0 && cycle.empty()) cycle.push_back(config);
  std::vector<std::string> all_configs{config};
  for (const std::string& name : cycle) {
    if (std::find(all_configs.begin(), all_configs.end(), name) ==
        all_configs.end()) {
      all_configs.push_back(name);
    }
  }

  CompositionTraits traits = config_traits(config);
  for (const std::string& name : all_configs) {
    const CompositionTraits t = config_traits(name);
    traits.total_order = traits.total_order && t.total_order;
    traits.loss_tolerant = traits.loss_tolerant && t.loss_tolerant;
    auto sound = soak_profiles_for(name);
    if (std::find(sound.begin(), sound.end(), profile) == sound.end()) {
      throw ConfigError("soak: profile " + profile + " is unsound for " +
                        name);
    }
    // Every soak composition must be statically sound before it is allowed
    // to produce runtime evidence: a verifier error here means the matrix
    // itself regressed, not the protocols under test.
    VerifyResult vr = verify_composition(soak_qos_config(name));
    if (!vr.ok()) {
      throw ConfigError("soak: config " + name +
                        " failed composition verification:\n" + vr.text());
    }
  }

  int replicas = spec.replicas;
  Duration invoke_timeout{};
  for (const std::string& name : all_configs) {
    ClusterOptions scratch;
    find_config(name).apply(scratch);
    replicas = std::max(replicas, find_config(name).replicas);
    invoke_timeout = std::max(invoke_timeout, scratch.invoke_timeout);
  }

  std::vector<std::string> crashable;
  for (int i = 1; i < replicas; ++i) {
    crashable.push_back(Cluster::replica_host(i));
  }
  FaultPlan plan =
      make_profile_plan(profile, seed, crashable, traits.loss_tolerant);

  SoakOutcome out;
  out.config = config;
  out.profile = profile;
  out.seed = seed;
  out.plan_text = plan.serialize();

  ClusterOptions copts;
  copts.platform = PlatformKind::kRmi;
  copts.net.seed = seed;
  copts.net.jitter = 0.05;
  copts.request_timeout = ms(8000);
  auto servants =
      std::make_shared<std::vector<std::shared_ptr<BankAccountServant>>>();
  copts.servant_factory = [servants] {
    auto s = std::make_shared<BankAccountServant>();
    servants->push_back(s);
    return s;
  };
  spec.apply(copts);
  copts.num_replicas = replicas;
  copts.invoke_timeout = invoke_timeout;
  if (opts.start_plain) {
    // Base-only stacks: the first hot-swap installs the real composition.
    copts.qos = QosConfig{};
    copts.server_specs_fn = nullptr;
  }
  Cluster cluster(copts);

  std::vector<std::unique_ptr<ClientHandle>> clients;
  for (int c = 0; c < opts.clients; ++c) {
    clients.push_back(cluster.make_client());
    // Warm the path (name resolution, composite spin-up) before the chaos
    // starts, so the plan measures the steady state.
    try {
      BankAccountStub(clients.back()->stub_ptr()).get_balance();
    } catch (const std::exception&) {
    }
  }

  Mutex mu;
  std::set<std::int64_t> acked;
  std::atomic<int> failed{0};
  std::vector<std::string> reconfig_violations;  // guarded by mu

  // Generous quiescence bounds: drain must outlast the 8s server-side
  // processing timeout so a parked total-order request can still fail
  // visibly (and release its skeleton thread) before the drain gives up.
  auto apply_cycle_config = [&](const std::string& name) {
    const ConfigSpec& cs = find_config(name);
    ClusterOptions scratch;
    cs.apply(scratch);
    for (int i = 0; i < replicas; ++i) {
      std::vector<MicroProtocolSpec> sspecs = scratch.server_specs_fn
                                                  ? scratch.server_specs_fn(i)
                                                  : scratch.qos.server;
      cluster.reconfigure_server(i, std::move(sspecs));
    }
    for (auto& cl : clients) cl->reconfigure(scratch.qos.client);
  };
  auto swap_to = [&](const std::string& name) {
    try {
      apply_cycle_config(name);
    } catch (const std::exception& e) {
      MutexLock lk(mu);
      reconfig_violations.push_back("reconfigure to " + name +
                                    " failed: " + e.what());
    }
  };
  if (opts.reconfigure_every > 0) {
    ReconfigOptions ropts;
    ropts.drain_timeout = ms(10000);
    ropts.park_timeout = ms(15000);
    ropts.max_parked = 1024;
    for (int i = 0; i < replicas; ++i) {
      cluster.server_handle(i).set_reconfig_options(ropts);
    }
    for (auto& cl : clients) cl->endpoint().set_reconfig_options(ropts);
  }

  std::size_t cycle_next = 0;
  if (opts.start_plain && !cycle.empty()) {
    // Plain → customized under live fault-free traffic: hammer deposits from
    // every client while the first hot-swap runs, then settle before chaos.
    std::atomic<bool> prelude_done{false};
    std::vector<std::thread> prelude;
    for (int c = 0; c < opts.clients; ++c) {
      prelude.emplace_back([&, c] {
        BankAccountStub account(
            clients[static_cast<std::size_t>(c)]->stub_ptr());
        for (int k = 0; !prelude_done.load(); ++k) {
          std::int64_t amount = (c + 1) * 1'000'000 + 500'000 + k + 1;
          try {
            account.deposit(amount);
            MutexLock lk(mu);
            acked.insert(amount);
          } catch (const std::exception&) {
            failed.fetch_add(1);
          }
        }
      });
    }
    swap_to(cycle[cycle_next % cycle.size()]);
    ++cycle_next;
    prelude_done.store(true);
    for (std::thread& t : prelude) t.join();
  }

  cluster.faults().run_plan(plan);

  std::atomic<int> ops_done{0};
  std::atomic<bool> drivers_done{false};
  std::thread reconfigurator;
  if (opts.reconfigure_every > 0) {
    reconfigurator = std::thread([&] {
      int target = opts.reconfigure_every;
      while (!drivers_done.load()) {
        if (ops_done.load() < target) {
          std::this_thread::sleep_for(ms(20));
          continue;
        }
        swap_to(cycle[cycle_next % cycle.size()]);
        ++cycle_next;
        target += opts.reconfigure_every;
      }
    });
  }

  std::vector<std::thread> drivers;
  for (int c = 0; c < opts.clients; ++c) {
    drivers.emplace_back([&, c] {
      BankAccountStub account(clients[static_cast<std::size_t>(c)]->stub_ptr());
      for (int k = 0; k < opts.ops_per_client; ++k) {
        // Unique per-op amount: the deposit log identifies every op.
        std::int64_t amount = (c + 1) * 1'000'000 + k + 1;
        try {
          account.deposit(amount);
          MutexLock lk(mu);
          acked.insert(amount);
        } catch (const std::exception&) {
          failed.fetch_add(1);
        }
        ops_done.fetch_add(1);
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  drivers_done.store(true);
  if (reconfigurator.joinable()) reconfigurator.join();

  cluster.faults().wait_plan_done(plan.duration() + ms(3000));
  cluster.faults().clear_all_faults();

  // Settle: forwarded/parked work may still be draining. Wait until every
  // replica's log stops growing (and, for agreement configs, the logs
  // converge) before judging.
  auto logs = [&] {
    std::vector<std::vector<std::int64_t>> all;
    for (const auto& s : *servants) all.push_back(s->deposit_log());
    return all;
  };
  std::vector<std::vector<std::int64_t>> stable = logs();
  TimePoint deadline = now() + ms(3000);
  for (;;) {
    std::this_thread::sleep_for(ms(150));
    auto next = logs();
    bool converged = next == stable;
    if (traits.total_order) {
      for (const auto& log : next) converged = converged && log == next[0];
    }
    stable = std::move(next);
    if (converged || now() >= deadline) break;
  }

  out.trace = cluster.faults().event_trace();
  {
    MutexLock lk(mu);
    out.acked = static_cast<int>(acked.size());
    out.violations = reconfig_violations;
  }
  out.failed = failed.load();

  // Invariant: no amount applied twice at any replica.
  for (std::size_t r = 0; r < stable.size(); ++r) {
    std::set<std::int64_t> seen;
    for (std::int64_t amount : stable[r]) {
      if (!seen.insert(amount).second) {
        out.violations.push_back("double-applied deposit " +
                                 std::to_string(amount) + " at replica " +
                                 std::to_string(r));
      }
    }
  }
  // Invariant: every acked deposit is applied somewhere.
  {
    MutexLock lk(mu);
    for (std::int64_t amount : acked) {
      bool found = false;
      for (const auto& log : stable) {
        found = found ||
                std::find(log.begin(), log.end(), amount) != log.end();
      }
      if (!found) {
        out.violations.push_back("acked deposit " + std::to_string(amount) +
                                 " lost (applied nowhere)");
      }
    }
  }
  // Invariant: total-order replicas agree on the full deposit sequence.
  // Asserted exactly when the manifests declare a total-order property.
  if (traits.total_order) {
    for (std::size_t r = 1; r < stable.size(); ++r) {
      if (stable[r] != stable[0]) {
        out.violations.push_back(
            "replica " + std::to_string(r) + " log (" +
            std::to_string(stable[r].size()) +
            " deposits) disagrees with replica 0 (" +
            std::to_string(stable[0].size()) + ")");
      }
    }
  }
  return out;
}

// --- virtual-time soak -------------------------------------------------------

std::vector<std::string> virtual_soak_profiles() {
  return {"zipf-flash-crowd", "rolling-partition-sweep"};
}

SoakOutcome run_virtual_soak(const std::string& profile, std::uint64_t seed) {
  sim::ModeledOptions opts;
  opts.seed = seed;
  opts.clients = 20000;
  opts.servers = 8;
  opts.arrival_rate_hz = 80000;
  opts.duration = std::chrono::seconds(1);
  if (profile == "zipf-flash-crowd") {
    opts.zipf_s = 1.2;
    opts.flash_crowd = true;
    opts.flash_start = ms(300);
    opts.flash_len = ms(300);
    opts.flash_multiplier = 6.0;
  } else if (profile == "rolling-partition-sweep") {
    opts.zipf_s = 0.8;
    opts.rolling_partition = true;
    opts.partition_period = ms(120);
    opts.forward_rate = 0.25;  // ring traffic the partitions actually cut
  } else {
    throw ConfigError("soak: unknown virtual profile " + profile);
  }

  net::NetConfig net_cfg;
  net_cfg.time_mode = TimeMode::kVirtual;
  net_cfg.seed = seed;
  net_cfg.pair_metrics = false;  // 20k modeled clients: no per-pair counters
  metrics::Registry reg;
  net_cfg.metrics = &reg;
  net::SimNetwork net(net_cfg);
  sim::ModeledStats stats = sim::run_modeled(net, opts);

  SoakOutcome out;
  out.config = "modeled-virtual";
  out.profile = profile;
  out.seed = seed;
  out.acked = static_cast<int>(stats.delivered);
  out.failed = static_cast<int>(stats.send_drops);
  out.violations = stats.check(opts.expect_fifo);
  out.trace = net.faults().event_trace();
  if (opts.rolling_partition) {
    // The plan the driver built, for the failure printout.
    out.plan_text = "rolling partition sweep over " +
                    std::to_string(opts.servers) + " hosts, period " +
                    std::to_string(to_ms(opts.partition_period)) + "ms\n";
  }
  return out;
}

}  // namespace cqos::soak
