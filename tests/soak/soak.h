// Invariant-checked chaos soak harness.
//
// One soak run = one QoS configuration of the bank-account cluster sim
// driven by concurrent depositing clients while a seeded FaultPlan (a
// "chaos profile") executes against the network. Every deposit carries a
// unique amount, and the servant keeps a per-replica deposit log, so after
// the plan finishes and all faults clear the harness can check:
//
//   no-double-apply   no amount appears twice in any replica's log, despite
//                     message duplication and client retransmission
//   no-lost-ack       every deposit the client saw succeed is in at least
//                     one replica's log
//   agreement         (total-order configs) every replica applied the same
//                     deposit sequence, elementwise
//
// A violated run prints the seed and the plan text; re-running the same
// (config, profile, seed) triple through the chaos_soak binary reproduces
// the same fault schedule and per-message fault decisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cqos/config.h"
#include "net/fault.h"

namespace cqos::soak {

struct SoakOptions {
  int clients = 2;
  int ops_per_client = 20;
  /// Live reconfiguration (DESIGN.md §16): every `reconfigure_every` driver
  /// ops (acked or failed, summed across clients) hot-swap every endpoint —
  /// replicas first, then clients — to the next config in `reconfig_cycle`
  /// (soak config names, wrapping around; empty = cycle back to `config`
  /// itself). 0 disables reconfiguration. A failed or rolled-back swap is
  /// recorded as an invariant violation.
  int reconfigure_every = 0;
  std::vector<std::string> reconfig_cycle;
  /// Start serving with base-only (plain) stacks and hot-swap to the first
  /// cycle entry under live fault-free traffic before the chaos plan starts
  /// — the paper's plain → customized transition as one soak run.
  bool start_plain = false;
};

struct SoakOutcome {
  std::string config;
  std::string profile;
  std::uint64_t seed = 0;
  int acked = 0;   // deposits the clients saw succeed
  int failed = 0;  // deposits that visibly failed (allowed)
  std::vector<std::string> violations;
  std::vector<std::string> trace;  // applied fault events, in order
  std::string plan_text;

  bool ok() const { return violations.empty(); }
  /// Command line that reproduces this run.
  std::string repro() const;
  /// One-line summary ("PASS config/profile seed=N acked=K ...").
  std::string summary() const;
};

/// QoS configurations under soak. All include the dedup hardening they need
/// for the no-double-apply invariant.
std::vector<std::string> soak_configs();

/// All chaos profiles.
std::vector<std::string> soak_profiles();

/// The effective client + replica-0 QoS composition of a soak config (the
/// replica-0 stack is the fullest one when a per-replica override is set).
/// This is what the composition verifier and the trait derivation see.
QosConfig soak_qos_config(const std::string& config);

/// Profiles sound for `config`, derived from the manifests via
/// composition_traits(): total-order compositions exclude loss-type faults
/// (drops, crashes, partitions toward a replica stall the agreed sequence),
/// so they run the duplication/reordering/latency profiles. There is no
/// hand-maintained per-config flag to drift out of sync.
std::vector<std::string> soak_profiles_for(const std::string& config);

/// Build the seeded fault plan for one profile. `crashable` hosts may be
/// crashed or partitioned (the harness passes backup replicas only);
/// `allow_loss` gates drop-type events.
net::FaultPlan make_profile_plan(const std::string& profile,
                                 std::uint64_t seed,
                                 std::vector<std::string> crashable,
                                 bool allow_loss);

/// Execute one soak run. Throws ConfigError for unknown config/profile
/// names (including profiles unsound for the config).
SoakOutcome run_soak(const std::string& config, const std::string& profile,
                     std::uint64_t seed, const SoakOptions& opts = {});

// --- virtual-time soak (discrete-event SimNetwork, DESIGN.md §14) ------------

/// Profiles for the modeled-load virtual-time driver: "zipf-flash-crowd"
/// (hot-shard skew + an arrival-rate flash window) and
/// "rolling-partition-sweep" (each adjacent server-host pair partitioned in
/// turn). Tens of thousands of modeled clients simulate in well under a
/// second of wall clock, so these run in CI at scales the threaded cluster
/// soak cannot touch.
std::vector<std::string> virtual_soak_profiles();

/// Run one virtual-time soak: modeled-load invariants (conservation, no
/// double delivery, per-destination FIFO) stand in for the cluster
/// invariants; `acked` counts delivered messages, `failed` counts sends
/// dropped by faults. Fully seeded and bit-reproducible. Throws ConfigError
/// for unknown profiles.
SoakOutcome run_virtual_soak(const std::string& profile, std::uint64_t seed);

}  // namespace cqos::soak
