// chaos_soak: run the invariant-checked chaos soak matrix.
//
//   chaos_soak                         # full matrix, seeds 1..N per cell
//   chaos_soak --seeds=3               # N seeds per (config, profile) cell
//   chaos_soak --config=passive-rep    # one config, all sound profiles
//   chaos_soak --config=X --profile=Y --seed=7   # reproduce one run
//   chaos_soak --virtual               # virtual-time modeled-load profiles
//   chaos_soak --virtual --profile=zipf-flash-crowd --seed=3
//   chaos_soak --config=X --reconfigure-every=10 --reconfig-cycle=A,B
//                                      # hot-swap the live stacks every 10
//                                      # ops, cycling through configs A,B
//   chaos_soak --start-plain ...       # begin with plain stacks; the first
//                                      # swap installs the composition
//
// Exit status 0 iff every run held all invariants. A failing run prints its
// seed, plan text and applied-event trace; the printed repro command
// re-executes the identical fault schedule.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "soak/soak.h"

namespace {

const char* arg_value(const char* arg, const char* name) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

void print_failure(const cqos::soak::SoakOutcome& out) {
  std::printf("%s\n", out.summary().c_str());
  for (const std::string& v : out.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
  std::printf("  plan:\n");
  std::printf("%s", out.plan_text.c_str());
  std::printf("  applied trace:\n");
  for (const std::string& line : out.trace) {
    std::printf("    %s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string config;
  std::string profile;
  std::uint64_t seed = 0;
  bool seed_set = false;
  bool virtual_mode = false;
  int seeds_per_cell = 1;
  cqos::soak::SoakOptions sopts;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--config")) {
      config = v;
    } else if (const char* v = arg_value(argv[i], "--profile")) {
      profile = v;
    } else if (const char* v = arg_value(argv[i], "--seed")) {
      seed = std::strtoull(v, nullptr, 10);
      seed_set = true;
    } else if (const char* v = arg_value(argv[i], "--seeds")) {
      seeds_per_cell = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--reconfigure-every")) {
      sopts.reconfigure_every = std::atoi(v);
    } else if (const char* v = arg_value(argv[i], "--reconfig-cycle")) {
      std::string list = v;
      for (std::size_t pos = 0; pos <= list.size();) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        if (comma > pos) sopts.reconfig_cycle.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--start-plain") == 0) {
      sopts.start_plain = true;
    } else if (std::strcmp(argv[i], "--virtual") == 0) {
      virtual_mode = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_soak [--virtual] [--config=NAME] "
                   "[--profile=NAME] [--seed=N] [--seeds=N] "
                   "[--reconfigure-every=N] [--reconfig-cycle=A,B,...] "
                   "[--start-plain]\n");
      return 2;
    }
  }

  if (virtual_mode) {
    std::vector<std::string> profiles =
        profile.empty() ? cqos::soak::virtual_soak_profiles()
                        : std::vector<std::string>{profile};
    int runs = 0, failures = 0;
    for (const std::string& p : profiles) {
      for (int s = 0; s < (seed_set ? 1 : seeds_per_cell); ++s) {
        std::uint64_t run_seed =
            seed_set ? seed : 1 + static_cast<std::uint64_t>(s);
        cqos::soak::SoakOutcome out = cqos::soak::run_virtual_soak(p, run_seed);
        ++runs;
        if (out.ok()) {
          std::printf("%s\n", out.summary().c_str());
        } else {
          ++failures;
          print_failure(out);
        }
        std::fflush(stdout);
      }
    }
    std::printf("chaos_soak: %d virtual runs, %d failed\n", runs, failures);
    return failures == 0 ? 0 : 1;
  }

  std::vector<std::string> configs =
      config.empty() ? cqos::soak::soak_configs()
                     : std::vector<std::string>{config};
  int runs = 0, failures = 0;
  for (const std::string& c : configs) {
    std::vector<std::string> profiles =
        profile.empty() ? cqos::soak::soak_profiles_for(c)
                        : std::vector<std::string>{profile};
    for (const std::string& p : profiles) {
      for (int s = 0; s < (seed_set ? 1 : seeds_per_cell); ++s) {
        std::uint64_t run_seed = seed_set ? seed : 1 + static_cast<std::uint64_t>(s);
        cqos::soak::SoakOutcome out = cqos::soak::run_soak(c, p, run_seed, sopts);
        ++runs;
        if (out.ok()) {
          std::printf("%s\n", out.summary().c_str());
        } else {
          ++failures;
          print_failure(out);
        }
        std::fflush(stdout);
      }
    }
  }
  std::printf("chaos_soak: %d runs, %d failed\n", runs, failures);
  return failures == 0 ? 0 : 1;
}
