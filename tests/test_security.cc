// Security micro-protocol tests: confidentiality on the wire, integrity
// verification (including active tampering), access control, and composition
// with replication.
#include <gtest/gtest.h>

#include <atomic>

#include "common/error.h"
#include "common/metrics.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

constexpr const char* kKey = "0123456789abcdef";

ClusterOptions secure_options(PlatformKind kind) {
  ClusterOptions opts;
  opts.platform = kind;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = 1;
  opts.net.base_latency = us(80);
  opts.net.jitter = 0;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  return opts;
}

bool contains_subsequence(const Bytes& haystack, const Bytes& needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

// --- DesPrivacy ---------------------------------------------------------------

class PrivacyOnBothPlatforms : public ::testing::TestWithParam<PlatformKind> {};

TEST_P(PrivacyOnBothPlatforms, RoundtripStillCorrect) {
  auto opts = secure_options(GetParam());
  opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}})
      .add(Side::kServer, "des_privacy", {{"key", kKey}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(987654);
  EXPECT_EQ(account.get_balance(), 987654);
}

TEST_P(PrivacyOnBothPlatforms, SecretNeverAppearsOnTheWire) {
  auto opts = secure_options(GetParam());
  opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}})
      .add(Side::kServer, "des_privacy", {{"key", kKey}});
  Cluster cluster(opts);

  // The marker below is embedded in a string parameter; with privacy on, its
  // byte sequence must never cross the network in the clear.
  const std::string marker = "TOP-SECRET-PAYLOAD-MARKER";
  Bytes marker_bytes(marker.begin(), marker.end());
  std::atomic<int> sightings{0};
  cluster.network().set_tap([&](const net::Message& m) {
    if (contains_subsequence(m.payload, marker_bytes)) sightings.fetch_add(1);
  });

  auto client = cluster.make_client();
  // BankAccount only moves integers; use the generic stub for a string echo
  // against the unknown-method error path... instead store it via deposit
  // params? Use a servant-independent check: the parameter list carries the
  // marker even though the method fails.
  try {
    client->call("audit_note", {Value(marker)});
  } catch (const InvocationError&) {
    // Expected: BankAccount has no audit_note method. The parameters still
    // crossed the wire (encrypted), which is what this test observes.
  }
  EXPECT_EQ(sightings.load(), 0);
}

TEST_P(PrivacyOnBothPlatforms, WithoutPrivacySecretIsVisible) {
  auto opts = secure_options(GetParam());  // no privacy configured
  Cluster cluster(opts);
  const std::string marker = "TOP-SECRET-PAYLOAD-MARKER";
  Bytes marker_bytes(marker.begin(), marker.end());
  std::atomic<int> sightings{0};
  cluster.network().set_tap([&](const net::Message& m) {
    if (contains_subsequence(m.payload, marker_bytes)) sightings.fetch_add(1);
  });
  auto client = cluster.make_client();
  try {
    client->call("audit_note", {Value(marker)});
  } catch (const InvocationError&) {
  }
  EXPECT_GT(sightings.load(), 0);  // sanity check of the test methodology
}

INSTANTIATE_TEST_SUITE_P(Platforms, PrivacyOnBothPlatforms,
                         ::testing::Values(PlatformKind::kRmi,
                                           PlatformKind::kCorba),
                         [](const auto& info) {
                           return info.param == PlatformKind::kRmi ? "rmi"
                                                                   : "corba";
                         });

TEST(DesPrivacy, MismatchedKeysFailCleanly) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}})
      .add(Side::kServer, "des_privacy", {{"key", "fedcba9876543210"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  EXPECT_THROW(account.set_balance(1), InvocationError);
}

TEST(DesPrivacy, ServerWithoutPrivacyRejectsGarbledParams) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  // The servant sees one bytes parameter instead of an integer.
  EXPECT_THROW(account.set_balance(1), InvocationError);
}

// --- SignedIntegrity ------------------------------------------------------------

TEST(Integrity, SignedCallsSucceed) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kClient, "integrity", {{"key", kKey}})
      .add(Side::kServer, "integrity", {{"key", kKey}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(321);
  EXPECT_EQ(account.get_balance(), 321);
}

TEST(Integrity, UnsignedRequestRejected) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kServer, "integrity", {{"key", kKey}});  // server only
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  EXPECT_THROW(account.set_balance(1), InvocationError);
}

TEST(Integrity, WrongMacKeyRejected) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kClient, "integrity", {{"key", kKey}})
      .add(Side::kServer, "integrity", {{"key", "00112233445566778899aabb"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  EXPECT_THROW(account.set_balance(1), InvocationError);
}

TEST(Integrity, CompositionWithPrivacyWorks) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}})
      .add(Side::kClient, "integrity", {{"key", kKey}})
      .add(Side::kServer, "des_privacy", {{"key", kKey}})
      .add(Side::kServer, "integrity", {{"key", kKey}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(11);
  account.deposit(22);
  EXPECT_EQ(account.get_balance(), 33);
}

// --- AccessControl ---------------------------------------------------------------

TEST(AccessControl, AllowsPermittedPrincipalAndMethod) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kServer, "access_control",
               {{"allow", "alice:*|bob:get_balance"}});
  Cluster cluster(opts);

  CqosStub::Options alice;
  alice.principal = "alice";
  auto alice_client = cluster.make_client(alice);
  BankAccountStub alice_account(alice_client->stub_ptr());
  alice_account.set_balance(9);
  EXPECT_EQ(alice_account.get_balance(), 9);

  CqosStub::Options bob;
  bob.principal = "bob";
  auto bob_client = cluster.make_client(bob);
  BankAccountStub bob_account(bob_client->stub_ptr());
  EXPECT_EQ(bob_account.get_balance(), 9);          // allowed
  EXPECT_THROW(bob_account.set_balance(0), InvocationError);  // not allowed
  EXPECT_EQ(alice_account.get_balance(), 9);        // state intact
}

TEST(AccessControl, UnknownPrincipalDeniedByDefault) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kServer, "access_control", {{"allow", "alice:*"}});
  Cluster cluster(opts);
  CqosStub::Options mallory;
  mallory.principal = "mallory";
  auto client = cluster.make_client(mallory);
  BankAccountStub account(client->stub_ptr());
  EXPECT_THROW(account.get_balance(), InvocationError);
}

TEST(AccessControl, MissingPrincipalDenied) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kServer, "access_control", {{"allow", "alice:*"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();  // asserts no principal
  EXPECT_THROW(client->call("get_balance", {}), InvocationError);
}

TEST(AccessControl, DefaultAllowPermitsUnlistedPrincipals) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kServer, "access_control",
               {{"allow", "audit:get_balance"}, {"default", "allow"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(3);
  EXPECT_EQ(account.get_balance(), 3);
  // Listed principals are restricted to their allowed set.
  CqosStub::Options audit;
  audit.principal = "audit";
  auto audit_client = cluster.make_client(audit);
  BankAccountStub audit_account(audit_client->stub_ptr());
  EXPECT_EQ(audit_account.get_balance(), 3);
  EXPECT_THROW(audit_account.set_balance(0), InvocationError);
}

// --- Full composition: security + replication ------------------------------------

TEST(SecurityComposition, PrivacyIntegrityAccessControlWithActiveRep) {
  ClusterOptions opts = secure_options(PlatformKind::kRmi);
  opts.num_replicas = 3;
  opts.qos.add(Side::kClient, "active_rep")
      .add(Side::kClient, "majority_vote")
      .add(Side::kClient, "des_privacy", {{"key", kKey}})
      .add(Side::kClient, "integrity", {{"key", kKey}})
      .add(Side::kServer, "total_order")
      .add(Side::kServer, "des_privacy", {{"key", kKey}})
      .add(Side::kServer, "integrity", {{"key", kKey}})
      .add(Side::kServer, "access_control", {{"allow", "alice:*"}});
  Cluster cluster(opts);
  CqosStub::Options alice;
  alice.principal = "alice";
  auto client = cluster.make_client(alice);
  BankAccountStub account(client->stub_ptr());
  account.set_balance(123);
  EXPECT_EQ(account.get_balance(), 123);

  CqosStub::Options eve;
  eve.principal = "eve";
  auto eve_client = cluster.make_client(eve);
  BankAccountStub eve_account(eve_client->stub_ptr());
  EXPECT_THROW(eve_account.get_balance(), InvocationError);
}

// --- Single-encode invariant (DESIGN.md §10) ---------------------------------
//
// A fully secured call (privacy + integrity on both sides) is the worst case
// for parameter encodings: the MAC needs the encoded bytes, DES needs them as
// plaintext, and the platform codec needs them for the wire. With the
// encoded-params cache, exactly two *cache-miss* encodes happen per call —
// the client's first consumer encodes the plaintext list once (every later
// client-side consumer shares it), and the server's first consumer encodes
// the received list once. `cqos.request.encodes` counts cache misses, so the
// counter delta over N calls proves the invariant end to end.
TEST(SecurityComposition, SecuredCallEncodesParamsExactlyTwicePerCall) {
  auto opts = secure_options(PlatformKind::kRmi);
  opts.qos.add(Side::kClient, "des_privacy", {{"key", kKey}})
      .add(Side::kClient, "integrity", {{"key", kKey}})
      .add(Side::kServer, "des_privacy", {{"key", kKey}})
      .add(Side::kServer, "integrity", {{"key", kKey}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(0);  // settle binds + first-call effects

  auto& ctr = metrics::Registry::global().counter("cqos.request.encodes");
  const std::uint64_t before = ctr.value();
  constexpr int kCalls = 25;
  for (int i = 0; i < kCalls; ++i) account.deposit(1);
  EXPECT_EQ(ctr.value() - before, 2u * kCalls);
  EXPECT_EQ(account.get_balance(), kCalls) << "round trips must stay correct";
}

}  // namespace
}  // namespace cqos::sim
