// Configuration validation tests (cqos::validate).
#include <gtest/gtest.h>

#include "cqos/config.h"
#include "micro/standard.h"

namespace cqos {
namespace {

class Validate : public ::testing::Test {
 protected:
  void SetUp() override { micro::register_standard_micro_protocols(); }
};

TEST_F(Validate, EmptyConfigIsValid) {
  EXPECT_TRUE(validate(QosConfig{}).ok());
}

TEST_F(Validate, GoodFullStackIsValid) {
  QosConfig cfg;
  cfg.add(Side::kClient, "active_rep")
      .add(Side::kClient, "majority_vote")
      .add(Side::kClient, "des_privacy", {{"key", "0123456789abcdef"}})
      .add(Side::kServer, "total_order")
      .add(Side::kServer, "des_privacy", {{"key", "0123456789abcdef"}})
      .add(Side::kServer, "timed_sched");
  ValidationResult result = validate(cfg);
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_TRUE(result.warnings.empty())
      << (result.warnings.empty() ? "" : result.warnings[0]);
}

TEST_F(Validate, UnknownProtocolIsError) {
  QosConfig cfg;
  cfg.add(Side::kClient, "hologram_rep");
  ValidationResult result = validate(cfg);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("hologram_rep"), std::string::npos);
}

TEST_F(Validate, WrongSideIsError) {
  QosConfig cfg;
  cfg.add(Side::kServer, "active_rep");  // client-only protocol
  EXPECT_FALSE(validate(cfg).ok());
}

TEST_F(Validate, BadParameterIsError) {
  QosConfig cfg;
  cfg.add(Side::kClient, "des_privacy", {{"key", "nothex"}});
  ValidationResult result = validate(cfg);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].find("des_privacy"), std::string::npos);
}

TEST_F(Validate, MixedReplicationIsError) {
  QosConfig cfg;
  cfg.add(Side::kClient, "active_rep").add(Side::kClient, "passive_rep");
  EXPECT_FALSE(validate(cfg).ok());
}

TEST_F(Validate, ConflictingAcceptanceIsError) {
  QosConfig cfg;
  cfg.add(Side::kClient, "active_rep")
      .add(Side::kClient, "first_success")
      .add(Side::kClient, "majority_vote");
  EXPECT_FALSE(validate(cfg).ok());
}

TEST_F(Validate, ConflictingSchedulersIsError) {
  QosConfig cfg;
  cfg.add(Side::kServer, "queued_sched").add(Side::kServer, "timed_sched");
  EXPECT_FALSE(validate(cfg).ok());
}

TEST_F(Validate, OneSidedPassiveRepWarns) {
  QosConfig cfg;
  cfg.add(Side::kClient, "passive_rep");
  ValidationResult result = validate(cfg);
  EXPECT_TRUE(result.ok());
  ASSERT_FALSE(result.warnings.empty());
  EXPECT_NE(result.warnings[0].find("passive_rep"), std::string::npos);
}

TEST_F(Validate, AcceptanceWithoutReplicationWarns) {
  QosConfig cfg;
  cfg.add(Side::kClient, "majority_vote");
  ValidationResult result = validate(cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.warnings.empty());
}

TEST_F(Validate, OneSidedPrivacyWarns) {
  QosConfig cfg;
  cfg.add(Side::kClient, "des_privacy", {{"key", "0123456789abcdef"}});
  ValidationResult result = validate(cfg);
  EXPECT_TRUE(result.ok());
  ASSERT_FALSE(result.warnings.empty());
  EXPECT_NE(result.warnings[0].find("des_privacy"), std::string::npos);
}

TEST_F(Validate, MismatchedKeysWarn) {
  QosConfig cfg;
  cfg.add(Side::kClient, "integrity", {{"key", "00112233"}})
      .add(Side::kServer, "integrity", {{"key", "44556677"}});
  ValidationResult result = validate(cfg);
  EXPECT_TRUE(result.ok());
  ASSERT_FALSE(result.warnings.empty());
  EXPECT_NE(result.warnings[0].find("keys differ"), std::string::npos);
}

TEST_F(Validate, TotalOrderWithoutActiveRepWarns) {
  QosConfig cfg;
  cfg.add(Side::kServer, "total_order");
  ValidationResult result = validate(cfg);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.warnings.empty());
}

}  // namespace
}  // namespace cqos
