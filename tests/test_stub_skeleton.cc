// Direct unit tests of the CQoS stub and skeleton (without a Cluster):
// bypass modes, control routing, piggyback handling, request pooling.
#include <gtest/gtest.h>

#include "common/error.h"
#include "cqos/cactus_server.h"
#include "cqos/events.h"
#include "cqos/platform_qos.h"
#include "cqos/skeleton.h"
#include "cqos/stub.h"
#include "micro/server_base.h"
#include "sim/bank_account.h"

namespace cqos {
namespace {

/// In-process ClientQosInterface: no platform, no network — routes directly
/// to a servant handler, records invocation traffic.
class LoopbackClientQos : public ClientQosInterface {
 public:
  explicit LoopbackClientQos(std::shared_ptr<plat::ServantHandler> handler)
      : handler_(std::move(handler)) {}

  int num_servers() const override { return 1; }
  void bind(int) override { bound_ = true; }
  ServerStatus server_status(int) override {
    return bound_ ? ServerStatus::kRunning : ServerStatus::kUnknown;
  }
  ServerStatus probe(int) override { return ServerStatus::kRunning; }
  void mark_failed(int) override {}

  void invoke_server(Request& req, Invocation& inv) override {
    ++invocations_;
    PiggybackMap pb = req.piggyback;
    pb[pbkey::kRequestId] = Value(static_cast<std::int64_t>(req.id));
    pb[pbkey::kPriority] = Value(static_cast<std::int64_t>(req.priority));
    last_piggyback_ = pb;
    plat::Reply reply = handler_->handle(req.method, req.params(), pb);
    inv.success = reply.ok();
    inv.result = std::move(reply.result);
    inv.error = std::move(reply.error);
    inv.reply_piggyback = std::move(reply.piggyback);
  }

  std::string description() const override { return "loopback"; }

  int invocations() const { return invocations_; }
  const PiggybackMap& last_piggyback() const { return last_piggyback_; }

 private:
  std::shared_ptr<plat::ServantHandler> handler_;
  bool bound_ = false;
  int invocations_ = 0;
  PiggybackMap last_piggyback_;
};

class LoopbackServerQos : public ServerQosInterface {
 public:
  explicit LoopbackServerQos(std::shared_ptr<Servant> servant)
      : servant_(std::move(servant)) {}
  int num_servers() const override { return 1; }
  int replica_index() const override { return 0; }
  const std::string& object_id() const override { return object_id_; }
  void invoke_servant(Request& req) override {
    try {
      req.stage(true, servant_->dispatch(req.method, req.params()));
    } catch (const std::exception& e) {
      req.stage(false, Value(), e.what());
    }
  }
  bool peer_call(int, const std::string&, const ValueList&, Value*) override {
    return false;  // no peers in loopback
  }
  std::string description() const override { return "loopback-server"; }

 private:
  std::shared_ptr<Servant> servant_;
  std::string object_id_ = "Bank";
};

std::shared_ptr<CactusServer> make_server(std::shared_ptr<Servant> servant) {
  auto server = std::make_shared<CactusServer>(
      std::make_unique<LoopbackServerQos>(std::move(servant)));
  server->add_micro_protocol(std::make_unique<micro::ServerBase>());
  return server;
}

TEST(SkeletonUnit, FullModeDispatchesThroughCactusServer) {
  auto servant = std::make_shared<sim::BankAccountServant>(100);
  CqosSkeleton skeleton("Bank", make_server(servant));
  plat::Reply reply = skeleton.handle("get_balance", {}, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.result.as_i64(), 100);
}

TEST(SkeletonUnit, BypassModeCallsServantNatively) {
  auto servant = std::make_shared<sim::BankAccountServant>(5);
  CqosSkeleton skeleton("Bank", servant);
  plat::Reply reply = skeleton.handle("deposit", {Value(7)}, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(servant->balance(), 12);
}

TEST(SkeletonUnit, ServantExceptionBecomesAppError) {
  auto servant = std::make_shared<sim::BankAccountServant>(0);
  CqosSkeleton skeleton("Bank", make_server(servant));
  plat::Reply reply = skeleton.handle("withdraw", {Value(10)}, {});
  EXPECT_EQ(reply.status, plat::ReplyStatus::kAppError);
  EXPECT_NE(reply.error.find("insufficient funds"), std::string::npos);
}

TEST(SkeletonUnit, PiggybackIdAndPriorityAdopted) {
  auto servant = std::make_shared<sim::BankAccountServant>(0);
  auto server = make_server(servant);
  // Observe the request the Cactus server sees.
  std::uint64_t seen_id = 0;
  int seen_priority = -1;
  server->protocol().bind(
      ev::kNewServerRequest, "probe",
      [&](cactus::EventContext& ctx) {
        auto req = ctx.dyn<RequestPtr>();
        seen_id = req->id;
        seen_priority = req->priority;
      },
      cactus::kOrderFirst);
  CqosSkeleton skeleton("Bank", server);
  PiggybackMap pb{{pbkey::kRequestId, Value(std::int64_t{777})},
                  {pbkey::kPriority, Value(9)}};
  skeleton.handle("get_balance", {}, pb);
  EXPECT_EQ(seen_id, 777u);
  EXPECT_EQ(seen_priority, 9);
}

TEST(SkeletonUnit, ControlMethodRoutedToControlEvent) {
  auto servant = std::make_shared<sim::BankAccountServant>(0);
  auto server = make_server(servant);
  server->protocol().bind(
      ev::ctl("echo"), "echoer",
      [](cactus::EventContext& ctx) {
        auto msg = ctx.dyn<ControlMsgPtr>();
        msg->reply = msg->args.at(0);
      },
      cactus::kOrderDefault);
  CqosSkeleton skeleton("Bank", server);
  plat::Reply reply = skeleton.handle(
      std::string(ev::kCtlMethodPrefix) + "echo", {Value("ping")}, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.result.as_string(), "ping");
}

TEST(SkeletonUnit, ControlWithoutCactusServerIsError) {
  auto servant = std::make_shared<sim::BankAccountServant>(0);
  CqosSkeleton skeleton("Bank", servant);  // bypass mode
  plat::Reply reply = skeleton.handle(
      std::string(ev::kCtlMethodPrefix) + "echo", {}, {});
  EXPECT_EQ(reply.status, plat::ReplyStatus::kAppError);
}

TEST(StubUnit, BypassModeInvokesDirectly) {
  auto servant = std::make_shared<sim::BankAccountServant>(50);
  auto skeleton = std::make_shared<CqosSkeleton>("Bank", servant);
  auto qos = std::make_shared<LoopbackClientQos>(skeleton);
  CqosStub stub(std::static_pointer_cast<ClientQosInterface>(qos), "Bank");
  EXPECT_EQ(stub.call("get_balance", {}).as_i64(), 50);
  EXPECT_EQ(qos->invocations(), 1);
}

TEST(StubUnit, PrincipalAndPriorityEnterPiggyback) {
  auto servant = std::make_shared<sim::BankAccountServant>(0);
  auto skeleton = std::make_shared<CqosSkeleton>("Bank", servant);
  auto qos = std::make_shared<LoopbackClientQos>(skeleton);
  CqosStub::Options opts;
  opts.principal = "alice";
  opts.priority = 8;
  CqosStub stub(std::static_pointer_cast<ClientQosInterface>(qos), "Bank",
                opts);
  stub.call("get_balance", {});
  EXPECT_EQ(qos->last_piggyback().at(pbkey::kPrincipal), Value("alice"));
  EXPECT_EQ(qos->last_piggyback().at(pbkey::kPriority).as_i64(), 8);
}

TEST(StubUnit, FailureBecomesInvocationErrorWithContext) {
  auto servant = std::make_shared<sim::BankAccountServant>(0);
  auto skeleton = std::make_shared<CqosSkeleton>("Bank", servant);
  auto qos = std::make_shared<LoopbackClientQos>(skeleton);
  CqosStub stub(std::static_pointer_cast<ClientQosInterface>(qos), "Bank");
  try {
    stub.call("withdraw", {Value(1)});
    FAIL() << "expected InvocationError";
  } catch (const InvocationError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("Bank.withdraw"), std::string::npos);
    EXPECT_NE(what.find("insufficient funds"), std::string::npos);
  }
}

TEST(StubUnit, RequestPoolReusesStructures) {
  auto servant = std::make_shared<sim::BankAccountServant>(0);
  auto skeleton = std::make_shared<CqosSkeleton>("Bank", servant);
  auto qos = std::make_shared<LoopbackClientQos>(skeleton);
  CqosStub::Options opts;
  opts.reuse_requests = true;
  CqosStub stub(std::static_pointer_cast<ClientQosInterface>(qos), "Bank",
                opts);
  // Sequential calls through the pool stay correct and independent.
  for (int i = 0; i < 20; ++i) {
    stub.call("set_balance", {Value(i)});
    EXPECT_EQ(stub.call("get_balance", {}).as_i64(), i);
  }
}

TEST(StubUnit, CallRequestExposesReplyPiggyback) {
  class PbServant : public plat::ServantHandler {
   public:
    plat::Reply handle(const std::string&, ValueList, PiggybackMap) override {
      plat::Reply reply;
      reply.status = plat::ReplyStatus::kOk;
      reply.result = Value(1);
      reply.piggyback = {{"server.note", Value("hi")}};
      return reply;
    }
  };
  auto qos = std::make_shared<LoopbackClientQos>(std::make_shared<PbServant>());
  CqosStub stub(std::static_pointer_cast<ClientQosInterface>(qos), "Bank");
  RequestPtr req = stub.call_request("anything", {});
  EXPECT_TRUE(req->succeeded());
  EXPECT_EQ(req->reply_piggyback().at("server.note"), Value("hi"));
}

}  // namespace
}  // namespace cqos
