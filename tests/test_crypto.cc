#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/des.h"
#include "crypto/sha256.h"

namespace cqos::crypto {
namespace {

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (auto b : data) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

// --- DES ---------------------------------------------------------------------

// The classic worked example (Stallings / FIPS test vector).
TEST(Des, KnownVectorEncrypt) {
  Bytes key = from_hex("133457799bbcdff1");
  Bytes pt = from_hex("0123456789abcdef");
  Des des(key);
  std::uint8_t ct[8];
  des.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ct), "85e813540f0ab405");
}

TEST(Des, KnownVectorDecrypt) {
  Bytes key = from_hex("133457799bbcdff1");
  Bytes ct = from_hex("85e813540f0ab405");
  Des des(key);
  std::uint8_t pt[8];
  des.decrypt_block(ct.data(), pt);
  EXPECT_EQ(to_hex(pt), "0123456789abcdef");
}

// Weak-key all-zeros vector: DES(0,0) = 8ca64de9c1b123a7.
TEST(Des, AllZeroVector) {
  Bytes key(8, 0);
  Bytes pt(8, 0);
  Des des(key);
  std::uint8_t ct[8];
  des.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ct), "8ca64de9c1b123a7");
}

// FIPS 46-3: the low bit of each key byte is a parity bit and does not
// affect the key schedule.
TEST(Des, ParityBitsIgnored) {
  Bytes key1 = from_hex("133457799bbcdff1");
  Bytes key2 = key1;
  for (auto& b : key2) b ^= 0x01;  // flip every parity bit
  Bytes pt = from_hex("0123456789abcdef");
  std::uint8_t ct1[8], ct2[8];
  Des(key1).encrypt_block(pt.data(), ct1);
  Des(key2).encrypt_block(pt.data(), ct2);
  EXPECT_EQ(to_hex(ct1), to_hex(ct2));
}

TEST(Des, BadKeySizeThrows) {
  Bytes key(7, 0);
  EXPECT_THROW(Des d(key), Error);
}

class DesCbcRoundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DesCbcRoundtrip, EncryptDecryptIsIdentity) {
  Rng rng(GetParam() * 7919 + 1);
  Bytes key = from_hex("0123456789abcdef");
  Bytes iv = from_hex("fedcba9876543210");
  Bytes pt(GetParam());
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_below(256));
  Bytes ct = des_cbc_encrypt(key, iv, pt);
  EXPECT_EQ(ct.size() % 8, 0u);
  EXPECT_GE(ct.size(), pt.size() + 1);  // always at least one padding byte
  EXPECT_EQ(des_cbc_decrypt(key, iv, ct), pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DesCbcRoundtrip,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 63, 64, 255,
                                           1024));

TEST(DesCbc, WrongKeyFailsOrGarbles) {
  Bytes key = from_hex("0123456789abcdef");
  // Must differ in a non-parity bit: DES ignores the low bit of each key
  // byte, so e.g. ...ef vs ...ee would be the SAME effective key.
  Bytes wrong = from_hex("0323456789abcdef");
  Bytes iv(8, 0);
  Bytes pt{'s', 'e', 'c', 'r', 'e', 't'};
  Bytes ct = des_cbc_encrypt(key, iv, pt);
  try {
    Bytes out = des_cbc_decrypt(wrong, iv, ct);
    EXPECT_NE(out, pt);  // padding happened to validate: still not plaintext
  } catch (const DecodeError&) {
    SUCCEED();  // padding check rejected it
  }
}

TEST(DesCbc, CiphertextDiffersFromPlaintext) {
  Bytes key = from_hex("133457799bbcdff1");
  Bytes iv(8, 3);
  Bytes pt(64, 'A');
  Bytes ct = des_cbc_encrypt(key, iv, pt);
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 64), pt);
  // CBC: identical plaintext blocks must yield distinct ciphertext blocks.
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 8),
            Bytes(ct.begin() + 8, ct.begin() + 16));
}

TEST(DesCbc, RejectsBadLengths) {
  Bytes key(8, 1), iv(8, 0);
  EXPECT_THROW(des_cbc_decrypt(key, iv, Bytes(7, 0)), DecodeError);
  EXPECT_THROW(des_cbc_decrypt(key, iv, Bytes{}), DecodeError);
}

TEST(DesCbc, TamperedCiphertextDetectedOrGarbled) {
  Bytes key = from_hex("133457799bbcdff1");
  Bytes iv(8, 0);
  Bytes pt{'h', 'e', 'l', 'l', 'o'};
  Bytes ct = des_cbc_encrypt(key, iv, pt);
  ct[2] ^= 0x40;
  try {
    EXPECT_NE(des_cbc_decrypt(key, iv, ct), pt);
  } catch (const DecodeError&) {
    SUCCEED();
  }
}

// --- SHA-256 ------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  Bytes msg{'a', 'b', 'c'};
  EXPECT_EQ(to_hex(sha256(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  std::string s = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Bytes msg(s.begin(), s.end());
  EXPECT_EQ(to_hex(sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(4242);
  Bytes msg(777);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_below(256));
  Sha256 h;
  std::size_t off = 0;
  while (off < msg.size()) {
    std::size_t n = std::min<std::size_t>(1 + rng.next_below(100),
                                          msg.size() - off);
    h.update(std::span(msg).subspan(off, n));
    off += n;
  }
  EXPECT_EQ(h.finish(), sha256(msg));
}

// --- HMAC-SHA256 (RFC 4231) ----------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  std::string data = "Hi There";
  Bytes msg(data.begin(), data.end());
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  std::string key_s = "Jefe";
  std::string data = "what do ya want for nothing?";
  Bytes key(key_s.begin(), key_s.end());
  Bytes msg(data.begin(), data.end());
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3LongKeyHashing) {
  Bytes key(131, 0xaa);  // longer than one block: key must be hashed
  std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  Bytes msg(data.begin(), data.end());
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  Bytes k1(16, 1), k2(16, 2), msg{'m'};
  EXPECT_FALSE(digest_equal(hmac_sha256(k1, msg), hmac_sha256(k2, msg)));
}

TEST(DigestEqual, Basics) {
  Sha256Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace cqos::crypto
