// Cactus IDL compiler tests: parser and code generator.
#include <gtest/gtest.h>

#include "common/error.h"
#include "idl/codegen.h"
#include "idl/parser.h"

namespace cqos::idl {
namespace {

TEST(IdlParser, MinimalInterface) {
  Document doc = parse("interface Foo { void ping(); };");
  ASSERT_EQ(doc.interfaces.size(), 1u);
  const Interface& iface = doc.interfaces[0];
  EXPECT_EQ(iface.name, "Foo");
  EXPECT_EQ(iface.module, "");
  EXPECT_EQ(iface.qualified_name(), "Foo");
  ASSERT_EQ(iface.operations.size(), 1u);
  EXPECT_EQ(iface.operations[0].name, "ping");
  EXPECT_EQ(iface.operations[0].return_type, Type::kVoid);
  EXPECT_TRUE(iface.operations[0].params.empty());
}

TEST(IdlParser, AllTypes) {
  Document doc = parse(R"(
    interface Kitchen {
      boolean b(in boolean x);
      long long i(in long long x);
      long i2(in long x);
      double d(in double x);
      string s(in string x);
      sequence<octet> o(in sequence<octet> x);
      any a(in any x);
    };
  )");
  const auto& ops = doc.interfaces.at(0).operations;
  ASSERT_EQ(ops.size(), 7u);
  EXPECT_EQ(ops[0].return_type, Type::kBoolean);
  EXPECT_EQ(ops[1].return_type, Type::kI64);
  EXPECT_EQ(ops[2].return_type, Type::kI64);  // plain long maps to i64
  EXPECT_EQ(ops[3].return_type, Type::kDouble);
  EXPECT_EQ(ops[4].return_type, Type::kString);
  EXPECT_EQ(ops[5].return_type, Type::kBytes);
  EXPECT_EQ(ops[6].return_type, Type::kAny);
  for (const auto& op : ops) {
    ASSERT_EQ(op.params.size(), 1u);
    EXPECT_EQ(op.params[0].type, op.return_type);
  }
}

TEST(IdlParser, ModulesAndQualifiedNames) {
  Document doc = parse(R"(
    module bank {
      interface Account { long long balance(); };
      interface Audit { void log(in string entry); };
    };
    interface Root { void touch(); };
  )");
  ASSERT_EQ(doc.interfaces.size(), 3u);
  EXPECT_EQ(doc.interfaces[0].qualified_name(), "bank::Account");
  EXPECT_EQ(doc.interfaces[1].qualified_name(), "bank::Audit");
  EXPECT_EQ(doc.interfaces[2].qualified_name(), "Root");
}

TEST(IdlParser, RaisesClause) {
  Document doc = parse(
      "interface A { void f(in long x) raises (Bad, Worse); };");
  const auto& op = doc.interfaces[0].operations[0];
  ASSERT_EQ(op.raises.size(), 2u);
  EXPECT_EQ(op.raises[0], "Bad");
  EXPECT_EQ(op.raises[1], "Worse");
}

TEST(IdlParser, CommentsIgnored) {
  Document doc = parse(R"(
    // line comment
    /* block
       comment */
    interface C { void f(); /* inline */ };  // trailing
  )");
  EXPECT_EQ(doc.interfaces.at(0).operations.size(), 1u);
}

TEST(IdlParser, MultipleParameters) {
  Document doc = parse(
      "interface T { long long f(in string a, in long long b, in double c); };");
  const auto& op = doc.interfaces[0].operations[0];
  ASSERT_EQ(op.params.size(), 3u);
  EXPECT_EQ(op.params[0].name, "a");
  EXPECT_EQ(op.params[2].type, Type::kDouble);
}

TEST(IdlParser, ErrorsHaveLineNumbers) {
  try {
    parse("interface X {\n  void f(\n};");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(IdlParser, RejectsUnsupportedConstructs) {
  EXPECT_THROW(parse("interface A { void f(out long x); };"), ConfigError);
  EXPECT_THROW(parse("interface A { void f(in sequence<string> x); };"),
               ConfigError);
  EXPECT_THROW(parse("module M { module N { interface I { void f(); }; }; };"),
               ConfigError);
  EXPECT_THROW(parse("interface A { };"), ConfigError);  // no operations
  EXPECT_THROW(parse("interface A { void f(); }; interface A { void g(); };"),
               ConfigError);
  EXPECT_THROW(parse("interface A { void f(); void f(in long x); };"),
               ConfigError);  // overloading
  EXPECT_THROW(parse("interface A { void f(in void x); };"), ConfigError);
  EXPECT_THROW(parse("banana"), ConfigError);
  EXPECT_THROW(parse("interface A { widget f(); };"), ConfigError);
}

TEST(IdlParser, EmptyInputYieldsEmptyDocument) {
  EXPECT_TRUE(parse("").interfaces.empty());
  EXPECT_TRUE(parse("  // nothing\n").interfaces.empty());
}

// --- code generation --------------------------------------------------------------

std::string generate(const std::string& source) {
  return generate_header(parse(source), CodegenOptions{});
}

TEST(IdlCodegen, EmitsStubAndServantClasses) {
  std::string code = generate("interface Foo { long long f(in string s); };");
  EXPECT_NE(code.find("class FooStub"), std::string::npos);
  EXPECT_NE(code.find("class FooServantBase : public cqos::Servant"),
            std::string::npos);
  EXPECT_NE(code.find("std::int64_t f(std::string s)"), std::string::npos);
  EXPECT_NE(code.find("virtual std::int64_t f(const std::string& s) = 0;"),
            std::string::npos);
  EXPECT_NE(code.find("stub_->call(\"f\""), std::string::npos);
  EXPECT_NE(code.find("#pragma once"), std::string::npos);
}

TEST(IdlCodegen, VoidOperationsReturnAckValue) {
  std::string code = generate("interface Foo { void go(); };");
  EXPECT_NE(code.find("void go()"), std::string::npos);
  EXPECT_NE(code.find("return cqos::Value(true);"), std::string::npos);
}

TEST(IdlCodegen, ModuleBecomesNamespace) {
  std::string code = generate("module m { interface I { void f(); }; };");
  EXPECT_NE(code.find("namespace m {"), std::string::npos);
  EXPECT_NE(code.find("}  // namespace m"), std::string::npos);
}

TEST(IdlCodegen, DispatchValidatesArity) {
  std::string code =
      generate("interface Foo { void f(in long a, in long b); };");
  EXPECT_NE(code.find("params__.size() != 2"), std::string::npos);
  EXPECT_NE(code.find("expected 2 parameter(s)"), std::string::npos);
}

TEST(IdlCodegen, RaisesMentionedInComment) {
  std::string code = generate("interface F { void f() raises (Oops); };");
  EXPECT_NE(code.find("raises (Oops)"), std::string::npos);
  EXPECT_NE(code.find("cqos::InvocationError"), std::string::npos);
}

TEST(IdlCodegen, BytesAndAnyPassThroughCorrectly) {
  std::string code = generate(
      "interface B { sequence<octet> f(in any v, in sequence<octet> raw); };");
  EXPECT_NE(code.find("cqos::Bytes f(cqos::Value v, cqos::Bytes raw)"),
            std::string::npos);
  EXPECT_NE(code.find("result__.as_bytes()"), std::string::npos);
}

}  // namespace
}  // namespace cqos::idl
