#include <gtest/gtest.h>

#include <thread>

#include "common/metrics.h"
#include "cqos/request.h"

namespace cqos {
namespace {

TEST(Request, IdsAreUnique) {
  Request a("obj", "m", {});
  Request b("obj", "m", {});
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(a.id, b.id);
}

TEST(Request, CompleteIsFirstWriterWins) {
  Request req("obj", "m", {});
  EXPECT_TRUE(req.complete(true, Value(1)));
  EXPECT_FALSE(req.complete(false, Value(2), "late"));
  EXPECT_TRUE(req.succeeded());
  EXPECT_EQ(req.result(), Value(1));
  EXPECT_TRUE(req.error().empty());
}

TEST(Request, WaitBlocksUntilComplete) {
  auto req = std::make_shared<Request>("obj", "m", ValueList{});
  std::thread completer([req] {
    std::this_thread::sleep_for(ms(30));
    req->complete(true, Value(9));
  });
  EXPECT_TRUE(req->wait(ms(2000)));
  EXPECT_EQ(req->result(), Value(9));
  completer.join();
}

TEST(Request, WaitTimesOutWhenIncomplete) {
  Request req("obj", "m", {});
  EXPECT_FALSE(req.wait(ms(20)));
  EXPECT_FALSE(req.is_done());
}

TEST(Request, StageThenFinishTwoPhase) {
  Request req("obj", "m", {});
  req.stage(true, Value(5));
  EXPECT_FALSE(req.is_done());  // staged but not released
  EXPECT_TRUE(req.staged_success());
  EXPECT_EQ(req.staged_result(), Value(5));
  req.set_staged_result(Value(6));  // invokeReturn handlers may transform
  req.finish();
  EXPECT_TRUE(req.is_done());
  EXPECT_EQ(req.result(), Value(6));
}

TEST(Request, StageAfterCompleteIsIgnored) {
  Request req("obj", "m", {});
  req.complete(false, Value(), "denied");
  req.stage(true, Value(1));
  req.set_staged_result(Value(2));
  EXPECT_FALSE(req.succeeded());
  EXPECT_EQ(req.error(), "denied");
}

TEST(Request, OnceRunsExactlyOncePerFlag) {
  Request req("obj", "m", {});
  int runs = 0;
  EXPECT_TRUE(req.once("f", [&] { ++runs; }));
  EXPECT_FALSE(req.once("f", [&] { ++runs; }));
  EXPECT_TRUE(req.once("g", [&] { ++runs; }));
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(req.has_flag("f"));
  EXPECT_FALSE(req.has_flag("zzz"));
}

TEST(Request, OnceIsConcurrencySafe) {
  Request req("obj", "m", {});
  std::atomic<int> runs{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] { req.once("flag", [&] { runs.fetch_add(1); }); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(runs.load(), 1);
}

TEST(Request, OutcomeCounting) {
  Request req("obj", "m", {});
  req.set_expected_replies(3);
  Invocation ok;
  ok.success = true;
  Invocation bad;
  bad.success = false;
  auto c1 = req.record_outcome(ok);
  EXPECT_EQ(c1.successes, 1);
  EXPECT_EQ(c1.expected, 3);
  auto c2 = req.record_outcome(bad);
  EXPECT_EQ(c2.failures, 1);
  req.reclassify_success_as_failure();
  auto c3 = req.counts();
  EXPECT_EQ(c3.successes, 0);
  EXPECT_EQ(c3.failures, 2);
}

TEST(Request, ReclassifyWithoutSuccessIsNoop) {
  Request req("obj", "m", {});
  req.reclassify_success_as_failure();
  EXPECT_EQ(req.counts().failures, 0);
}

TEST(Request, ResetClearsEverything) {
  Request req("old", "m1", {Value(1)});
  std::uint64_t old_id = req.id;
  req.piggyback["k"] = Value(1);
  req.once("flag", [] {});
  req.set_expected_replies(3);
  req.complete(true, Value(5));

  req.reset("new", "m2", {Value(2)});
  EXPECT_NE(req.id, old_id);
  EXPECT_EQ(req.object_id, "new");
  EXPECT_EQ(req.method, "m2");
  EXPECT_TRUE(req.piggyback.empty());
  EXPECT_FALSE(req.is_done());
  EXPECT_FALSE(req.has_flag("flag"));
  EXPECT_EQ(req.expected_replies(), 1);
  EXPECT_EQ(req.counts().successes, 0);
}

TEST(Request, ForwardCodecRoundtrip) {
  Request req("BankAccount", "set_balance", {Value(77), Value("x")});
  req.priority = 8;
  req.piggyback["cq.prio"] = Value(8);
  req.piggyback["custom"] = Value("y");

  RequestPtr copy =
      Request::decode_forwarded("BankAccount", req.encode_for_forward());
  EXPECT_EQ(copy->id, req.id);
  EXPECT_EQ(copy->object_id, "BankAccount");
  EXPECT_EQ(copy->method, "set_balance");
  EXPECT_EQ(copy->params(), req.params());
  EXPECT_EQ(copy->piggyback.at("custom"), Value("y"));
  EXPECT_EQ(copy->priority, 8);
  EXPECT_TRUE(copy->forwarded);
}

TEST(Request, ReplyPiggybackMerges) {
  Request req("obj", "m", {});
  req.merge_reply_piggyback({{"a", Value(1)}});
  req.merge_reply_piggyback({{"a", Value(2)}, {"b", Value(3)}});
  PiggybackMap pb = req.reply_piggyback();
  EXPECT_EQ(pb.at("a"), Value(2));
  EXPECT_EQ(pb.at("b"), Value(3));
}

// --- encoded-params cache (the single-encode invariant, DESIGN.md §10) -------

std::uint64_t encodes() {
  return metrics::Registry::global().counter("cqos.request.encodes").value();
}

TEST(RequestEncodeCache, EncodedParamsIsComputedOnceAndShared) {
  Request req("obj", "m", {Value(42), Value("hello")});
  std::uint64_t before = encodes();
  auto a = req.encoded_params();
  auto b = req.encoded_params();
  auto c = req.encoded_params();
  EXPECT_EQ(a.get(), b.get());  // same shared buffer, not a re-encode
  EXPECT_EQ(b.get(), c.get());
  EXPECT_EQ(*a, Value::encode_list(req.params()));
  EXPECT_EQ(encodes() - before, 1u);
}

TEST(RequestEncodeCache, SetParamsInvalidatesTheCache) {
  Request req("obj", "m", {Value(1)});
  auto stale = req.encoded_params();
  req.set_params({Value(2), Value(3)});
  std::uint64_t before = encodes();
  auto fresh = req.encoded_params();
  EXPECT_NE(stale.get(), fresh.get());
  EXPECT_EQ(*fresh, Value::encode_list({Value(2), Value(3)}));
  // The old shared_ptr still holds the old bytes (late readers are safe).
  EXPECT_EQ(*stale, Value::encode_list({Value(1)}));
  EXPECT_EQ(encodes() - before, 1u);
}

TEST(RequestEncodeCache, SetEncryptedParamsPrimesWithoutACountedEncode) {
  Request req("obj", "m", {Value(7)});
  Bytes ciphertext{0xde, 0xad, 0xbe, 0xef};
  std::uint64_t before = encodes();
  req.set_encrypted_params(Bytes(ciphertext));
  auto encoded = req.encoded_params();
  // Priming replaced the params with [bytes] and pre-filled the cache: no
  // counted encode happened, and the bytes match a real traversal.
  EXPECT_EQ(encodes() - before, 0u);
  ASSERT_EQ(req.params().size(), 1u);
  EXPECT_EQ(req.params()[0].as_bytes(), ciphertext);
  EXPECT_EQ(*encoded, Value::encode_list(req.params()));
}

TEST(RequestEncodeCache, ResetInvalidatesTheCache) {
  Request req("obj", "m", {Value(1)});
  auto stale = req.encoded_params();
  req.reset("obj", "m2", {Value(9)});
  auto fresh = req.encoded_params();
  EXPECT_NE(stale.get(), fresh.get());
  EXPECT_EQ(*fresh, Value::encode_list({Value(9)}));
}

TEST(RequestEncodeCache, DisabledCacheReencodesEveryCall) {
  Request::set_encode_cache_enabled(false);
  Request req("obj", "m", {Value(5)});
  std::uint64_t before = encodes();
  auto a = req.encoded_params();
  auto b = req.encoded_params();
  Request::set_encode_cache_enabled(true);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(encodes() - before, 2u);
}

}  // namespace
}  // namespace cqos
