// Direct unit tests of CactusClient / CactusServer: blocking semantics,
// timeout paths, control dispatch, and micro-protocol wiring guards.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "cqos/cactus_client.h"
#include "cqos/cactus_server.h"
#include "cqos/events.h"
#include "micro/base.h"
#include "micro/client_base.h"
#include "micro/server_base.h"
#include "sim/bank_account.h"

namespace cqos {
namespace {

/// Client interface whose behaviour is scripted per test.
class ScriptedClientQos : public ClientQosInterface {
 public:
  std::function<void(Request&, Invocation&)> on_invoke =
      [](Request&, Invocation& inv) {
        inv.success = true;
        inv.result = Value(1);
      };

  int num_servers() const override { return servers; }
  void bind(int) override {}
  ServerStatus server_status(int) override { return ServerStatus::kRunning; }
  ServerStatus probe(int) override { return ServerStatus::kRunning; }
  void mark_failed(int) override {}
  void invoke_server(Request& req, Invocation& inv) override {
    on_invoke(req, inv);
  }
  std::string description() const override { return "scripted"; }

  int servers = 1;
};

class NullServerQos : public ServerQosInterface {
 public:
  int num_servers() const override { return 1; }
  int replica_index() const override { return 0; }
  const std::string& object_id() const override { return object_id_; }
  void invoke_servant(Request& req) override { req.stage(true, Value(7)); }
  bool peer_call(int, const std::string&, const ValueList&, Value*) override {
    return true;
  }
  std::string description() const override { return "null"; }

 private:
  std::string object_id_ = "Obj";
};

TEST(CactusClientUnit, RequestCompletesThroughBaseChain) {
  CactusClient client(std::make_unique<ScriptedClientQos>());
  client.add_micro_protocol(std::make_unique<micro::ClientBase>());
  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  client.cactus_request(req);
  EXPECT_TRUE(req->succeeded());
  EXPECT_EQ(req->result(), Value(1));
}

TEST(CactusClientUnit, TimesOutWhenNothingCompletesTheRequest) {
  CactusClient::Options opts;
  opts.request_timeout = ms(80);
  // No micro-protocols at all: newRequest has no handlers, nothing will
  // ever complete the request — the client must fail it at the deadline.
  CactusClient client(std::make_unique<ScriptedClientQos>(), opts);
  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  TimePoint before = now();
  client.cactus_request(req);
  EXPECT_TRUE(req->is_done());
  EXPECT_FALSE(req->succeeded());
  EXPECT_NE(req->error().find("timed out"), std::string::npos);
  EXPECT_GE(now() - before, ms(80));
}

TEST(CactusClientUnit, SlowInterfaceStillWithinTimeoutSucceeds) {
  CactusClient::Options opts;
  opts.request_timeout = ms(2000);
  auto qos = std::make_unique<ScriptedClientQos>();
  qos->on_invoke = [](Request&, Invocation& inv) {
    std::this_thread::sleep_for(ms(50));
    inv.success = true;
    inv.result = Value("slow-ok");
  };
  CactusClient client(std::move(qos), opts);
  client.add_micro_protocol(std::make_unique<micro::ClientBase>());
  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  client.cactus_request(req);
  EXPECT_TRUE(req->succeeded());
  EXPECT_EQ(req->result(), Value("slow-ok"));
}

TEST(CactusClientUnit, AppErrorPropagatesAsFailure) {
  auto qos = std::make_unique<ScriptedClientQos>();
  qos->on_invoke = [](Request&, Invocation& inv) {
    inv.success = false;
    inv.error = "servant said no";
  };
  CactusClient client(std::move(qos));
  client.add_micro_protocol(std::make_unique<micro::ClientBase>());
  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  client.cactus_request(req);
  EXPECT_FALSE(req->succeeded());
  EXPECT_EQ(req->error(), "servant said no");
}

TEST(CactusServerUnit, ProcessRequestStagesAndFinishes) {
  CactusServer server(std::make_unique<NullServerQos>());
  server.add_micro_protocol(std::make_unique<micro::ServerBase>());
  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  server.process_request(req);
  EXPECT_TRUE(req->succeeded());
  EXPECT_EQ(req->result(), Value(7));
}

TEST(CactusServerUnit, TimesOutWhenNoBaseInstalled) {
  CactusServer::Options opts;
  opts.process_timeout = ms(80);
  CactusServer server(std::make_unique<NullServerQos>(), opts);
  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  server.process_request(req);
  EXPECT_FALSE(req->succeeded());
  EXPECT_NE(req->error().find("timed out"), std::string::npos);
}

TEST(CactusServerUnit, ControlWithoutHandlerReturnsNull) {
  CactusServer server(std::make_unique<NullServerQos>());
  Value reply = server.handle_control("nobody", {Value(1)});
  EXPECT_TRUE(reply.is_null());
}

TEST(CactusServerUnit, RequestReturnedRaisedAfterCompletion) {
  CactusServer server(std::make_unique<NullServerQos>());
  server.add_micro_protocol(std::make_unique<micro::ServerBase>());
  std::atomic<int> returned{0};
  server.protocol().bind(
      ev::kRequestReturned, "probe",
      [&](cactus::EventContext&) { returned.fetch_add(1); },
      cactus::kOrderDefault);
  auto req = std::make_shared<Request>("Obj", "m", ValueList{});
  server.process_request(req);
  for (int i = 0; i < 200 && returned.load() == 0; ++i) {
    std::this_thread::sleep_for(ms(5));
  }
  EXPECT_EQ(returned.load(), 1);
}

TEST(MicroProtocolGuards, ClientProtocolRejectsServerComposite) {
  // Installing a client-side micro-protocol into a composite that is not a
  // Cactus client must fail loudly at init time, not corrupt state later.
  cactus::CompositeProtocol bare;
  micro::ClientBase base;
  EXPECT_THROW(base.init(bare), ConfigError);
}

TEST(MicroProtocolGuards, ServerProtocolRejectsClientComposite) {
  CactusClient client(std::make_unique<ScriptedClientQos>());
  micro::ServerBase base;
  EXPECT_THROW(base.init(client.protocol()), ConfigError);
}

TEST(CactusClientUnit, ConcurrentRequestsThroughOneClient) {
  auto qos = std::make_unique<ScriptedClientQos>();
  qos->on_invoke = [](Request& req, Invocation& inv) {
    inv.success = true;
    inv.result = Value(req.params().at(0).as_i64() * 2);
  };
  CactusClient client(std::move(qos));
  client.add_micro_protocol(std::make_unique<micro::ClientBase>());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto req = std::make_shared<Request>(
            "Obj", "m", ValueList{Value(t * 100 + i)});
        client.cactus_request(req);
        if (!req->succeeded() ||
            req->result().as_i64() != (t * 100 + i) * 2) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace cqos
