// RMI-IIOP tests (paper §4.2): RMI semantics over the CORBA transport, with
// CQoS interception via the CORBA mechanisms, interoperable with plain
// CORBA clients.
#include <gtest/gtest.h>

#include "cqos/cactus_client.h"
#include "cqos/cactus_server.h"
#include "cqos/config.h"
#include "cqos/platform_qos.h"
#include "cqos/skeleton.h"
#include "cqos/stub.h"
#include "micro/standard.h"
#include "net/sim_network.h"
#include "platform/corba/agent.h"
#include "platform/rmi/rmi_iiop.h"
#include "sim/bank_account.h"

namespace cqos {
namespace {

struct IiopFixture {
  net::SimNetwork net;
  corba::SmartAgent agent;
  rmi::RmiIiopRuntime server_platform;
  rmi::RmiIiopRuntime client_platform;
  std::shared_ptr<sim::BankAccountServant> servant;

  IiopFixture()
      : net([] {
          net::NetConfig cfg;
          cfg.base_latency = us(60);
          cfg.jitter = 0;
          return cfg;
        }()),
        agent(net, "nameserver"),
        server_platform(net, "server0"),
        client_platform(net, "client0"),
        servant(std::make_shared<sim::BankAccountServant>()) {
    micro::register_standard_micro_protocols();
  }
};

TEST(RmiIiop, NamingConventionUsesFixedPoa) {
  net::SimNetwork net;
  corba::SmartAgent agent(net, "nameserver");
  rmi::RmiIiopRuntime runtime(net, "h");
  EXPECT_EQ(runtime.name(), "rmi-iiop");
  EXPECT_EQ(runtime.replica_name("Bank", 2),
            "rmi_iiop_poa/Bank_CQoS_Skeleton_2");
  EXPECT_EQ(runtime.direct_name("Bank"), "rmi_iiop_poa/Bank");
}

TEST(RmiIiop, FullCqosStackWorksOverIiop) {
  IiopFixture fix;

  // Server side: Cactus server + CQoS skeleton registered under the
  // RMI-IIOP naming convention, DSI dispatch (the CORBA mechanism).
  auto server_qos = std::make_unique<PlatformServerQos>(
      fix.server_platform, fix.servant, "Bank",
      std::vector<std::string>{fix.server_platform.replica_name("Bank", 1)},
      0);
  auto cactus_server = std::make_shared<CactusServer>(std::move(server_qos));
  QosConfig qos;
  qos.add(Side::kServer, "integrity").add(Side::kServer, "server_base");
  MicroProtocolRegistry::instance().install(Side::kServer, qos.server,
                                            cactus_server->protocol());
  auto skeleton = std::make_shared<CqosSkeleton>("Bank", cactus_server);
  register_cqos_skeleton(fix.server_platform, skeleton, 1);

  // Client side: CQoS stub for CORBA over the RMI-IIOP platform.
  auto client_qos = std::make_unique<PlatformClientQos>(
      fix.client_platform, "Bank",
      std::vector<std::string>{fix.client_platform.replica_name("Bank", 1)});
  auto cactus_client = std::make_shared<CactusClient>(std::move(client_qos));
  QosConfig client_cfg;
  client_cfg.add(Side::kClient, "integrity")
      .add(Side::kClient, "client_base");
  MicroProtocolRegistry::instance().install(Side::kClient, client_cfg.client,
                                            cactus_client->protocol());
  auto stub = std::make_shared<CqosStub>(cactus_client, "Bank");

  sim::BankAccountStub account(stub);
  account.set_balance(4242);
  EXPECT_EQ(account.get_balance(), 4242);

  cactus_client->stop();
  cactus_server->stop();
  fix.client_platform.shutdown();
  fix.server_platform.shutdown();
}

TEST(RmiIiop, PlainCorbaClientInteroperates) {
  IiopFixture fix;

  // An RMI-IIOP server registered directly (no CQoS) ...
  class StaticSkeleton : public plat::ServantHandler {
   public:
    explicit StaticSkeleton(std::shared_ptr<Servant> servant)
        : servant_(std::move(servant)) {}
    plat::Reply handle(const std::string& method, ValueList params,
                       PiggybackMap) override {
      plat::Reply reply;
      try {
        reply.result = servant_->dispatch(method, params);
        reply.status = plat::ReplyStatus::kOk;
      } catch (const std::exception& e) {
        reply.status = plat::ReplyStatus::kAppError;
        reply.error = e.what();
      }
      return reply;
    }

   private:
    std::shared_ptr<Servant> servant_;
  };
  fix.server_platform.register_servant(
      fix.server_platform.direct_name("Bank"),
      std::make_shared<StaticSkeleton>(fix.servant),
      plat::DispatchMode::kStatic);

  // ... is reachable from a PLAIN CORBA ORB on another host: both speak
  // GIOP and share the smart agent, so the CORBA client resolves the
  // RMI-IIOP POA/object-id directly.
  corba::CorbaOrb corba_client(fix.net, "corbaclient");
  auto ref = corba_client.resolve("rmi_iiop_poa/Bank", ms(500));
  plat::Reply reply = ref->invoke("set_balance", {Value(7)}, {}, ms(500));
  ASSERT_TRUE(reply.ok());
  plat::Reply balance = ref->invoke("get_balance", {}, {}, ms(500));
  ASSERT_TRUE(balance.ok());
  EXPECT_EQ(balance.result.as_i64(), 7);

  corba_client.shutdown();
  fix.client_platform.shutdown();
  fix.server_platform.shutdown();
}

TEST(RmiIiop, DynamicInvocationUsesDiiPath) {
  IiopFixture fix;
  fix.server_platform.register_servant(
      fix.server_platform.direct_name("Echo"),
      std::make_shared<CqosSkeleton>("Echo", fix.servant),
      plat::DispatchMode::kDsi);
  auto ref =
      fix.client_platform.resolve(fix.client_platform.direct_name("Echo"),
                                  ms(500));
  // Both paths work and agree — the dynamic one is CORBA DII underneath.
  plat::Reply s = ref->invoke("get_balance", {}, {}, ms(500));
  plat::Reply d = ref->invoke_dynamic("get_balance", {}, {}, ms(500));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(s.result, d.result);
  fix.client_platform.shutdown();
  fix.server_platform.shutdown();
}

}  // namespace
}  // namespace cqos
