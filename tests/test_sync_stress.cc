// Stress tests for the synchronization primitives (common/sync.h) and the
// PriorityThreadPool shutdown contract. These exist to give TSan and the
// thread-safety-annotation build something real to chew on: hundreds of
// threads hammering Gate / CountdownLatch / the pool, plus the specific
// lifetime hazard the primitives guard against (a wakened waiter
// destroying the primitive while the setter is still inside it — which is
// why Gate/CountdownLatch notify while holding the mutex).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cactus/thread_pool.h"
#include "common/clock.h"
#include "common/sync.h"

namespace cqos {
namespace {

// Sized so the whole file stays well under the 120 s ctest timeout even
// under TSan (~10-20x slowdown).
constexpr int kManyThreads = 200;
constexpr int kRounds = 50;

TEST(SyncStress, GateManyWaitersOneSetter) {
  for (int round = 0; round < kRounds; ++round) {
    Gate gate;
    std::atomic<int> woke{0};
    std::vector<std::thread> waiters;
    waiters.reserve(16);
    for (int i = 0; i < 16; ++i) {
      waiters.emplace_back([&] {
        gate.wait();
        woke.fetch_add(1, std::memory_order_relaxed);
      });
    }
    gate.set();
    for (auto& t : waiters) t.join();
    EXPECT_EQ(woke.load(), 16);
    EXPECT_TRUE(gate.is_set());
  }
}

// The use-after-free shape: the waiter owns the Gate and destroys it as
// soon as wait_for() returns. Because set() notifies under the lock, the
// setter has fully left the Gate before the waiter can observe set_ and
// return. TSan validates the ordering.
TEST(SyncStress, GateDestroyedByWaiterAfterSet) {
  for (int round = 0; round < kRounds * 4; ++round) {
    auto gate = std::make_unique<Gate>();
    CountdownLatch started(1);
    std::thread waiter([&] {
      started.count_down();
      ASSERT_TRUE(gate->wait_for(std::chrono::seconds(10)));
      gate.reset();  // destroy while the setter may still be returning
    });
    started.wait();
    gate->set();
    waiter.join();
    EXPECT_EQ(gate, nullptr);
  }
}

TEST(SyncStress, GateWaitForTimesOutWhenNeverSet) {
  Gate gate;
  EXPECT_FALSE(gate.wait_for(std::chrono::milliseconds(10)));
  EXPECT_FALSE(gate.is_set());
}

TEST(SyncStress, CountdownLatchManyCounters) {
  CountdownLatch latch(kManyThreads);
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  threads.reserve(kManyThreads + 8);
  // 8 waiters, kManyThreads counters, all racing.
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      latch.wait();
      after.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (int i = 0; i < kManyThreads; ++i) {
    threads.emplace_back([&] { latch.count_down(); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), 8);
  // Extra count_down()s must be harmless (saturating at zero).
  latch.count_down();
  EXPECT_TRUE(latch.wait_for(std::chrono::milliseconds(1)));
}

TEST(SyncStress, CountdownLatchWaiterDestroysAfterLastCount) {
  for (int round = 0; round < kRounds * 4; ++round) {
    auto latch = std::make_unique<CountdownLatch>(1);
    std::thread waiter([&] {
      latch->wait();
      latch.reset();  // destroy immediately after release
    });
    std::this_thread::yield();
    latch->count_down();
    waiter.join();
  }
}

TEST(SyncStress, ThreadPoolManySubmittersAllTasksRun) {
  cactus::PriorityThreadPool pool(8, "stress");
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kManyThreads);
  for (int i = 0; i < kManyThreads; ++i) {
    submitters.emplace_back([&, i] {
      for (int j = 0; j < 20; ++j) {
        if (pool.submit(i % 5, [&] {
              ran.fetch_add(1, std::memory_order_relaxed);
            })) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.shutdown();
  // Drain-then-join: every accepted task ran before shutdown() returned.
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_EQ(accepted.load(), kManyThreads * 20);
}

TEST(SyncStress, ThreadPoolShutdownDrainsPendingQueue) {
  for (int round = 0; round < 20; ++round) {
    cactus::PriorityThreadPool pool(2, "drain");
    std::atomic<int> ran{0};
    constexpr int kTasks = 500;
    int submitted = 0;
    for (int i = 0; i < kTasks; ++i) {
      if (pool.submit(i % 3,
                      [&] { ran.fetch_add(1, std::memory_order_relaxed); })) {
        ++submitted;
      }
    }
    ASSERT_EQ(submitted, kTasks);  // nothing raced shutdown yet
    pool.shutdown();
    EXPECT_EQ(ran.load(), kTasks) << "shutdown() dropped queued tasks";
  }
}

TEST(SyncStress, ThreadPoolConcurrentShutdownAllCallersBlockUntilJoined) {
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<cactus::PriorityThreadPool>(4, "race");
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
      pool->submit(0, [&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    CountdownLatch go(1);
    std::vector<std::thread> closers;
    for (int i = 0; i < 8; ++i) {
      closers.emplace_back([&] {
        go.wait();
        pool->shutdown();
        // Deterministic contract: by the time ANY shutdown() caller
        // returns, every accepted task has run and workers have exited.
        EXPECT_EQ(ran.load(), 100);
      });
    }
    go.count_down();
    for (auto& t : closers) t.join();
    EXPECT_FALSE(pool->submit(0, [] {}));  // closed pool rejects work
    pool.reset();
  }
}

TEST(SyncStress, ThreadPoolSubmitRacingShutdownNeverLosesAcceptedTask) {
  for (int round = 0; round < 40; ++round) {
    cactus::PriorityThreadPool pool(3, "race2");
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    CountdownLatch go(1);
    std::vector<std::thread> submitters;
    for (int i = 0; i < 6; ++i) {
      submitters.emplace_back([&] {
        go.wait();
        for (int j = 0; j < 50; ++j) {
          if (pool.submit(1, [&] {
                ran.fetch_add(1, std::memory_order_relaxed);
              })) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::thread closer([&] {
      go.wait();
      pool.shutdown();
    });
    go.count_down();
    for (auto& t : submitters) t.join();
    closer.join();
    pool.shutdown();  // idempotent
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(SyncStress, CondVarProducerConsumerHandoff) {
  Mutex mu;
  CondVar cv;
  int value = 0;        // guarded by mu
  bool has_value = false;
  std::atomic<long> sum{0};
  constexpr int kItems = 2000;

  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lk(mu);
      while (!has_value) cv.wait(mu);
      sum.fetch_add(value, std::memory_order_relaxed);
      has_value = false;
      cv.notify_one();
    }
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      MutexLock lk(mu);
      while (has_value) cv.wait(mu);
      value = i;
      has_value = true;
      cv.notify_one();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems + 1) / 2);
}

}  // namespace
}  // namespace cqos
