// BufferPool tests: free-list recycling semantics, retention caps,
// cross-thread recycle, the enable knob, and a concurrent stress designed to
// run under TSan (tools/sanitize.sh tsan) — the pool is thread-local by
// design, so the only shared state the stress exercises is the hand-off of
// whole buffers between threads (the moved-payload path in SimNetwork).
#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"

namespace cqos {
namespace {

/// Every test starts from an empty thread cache and leaves the pool enabled.
class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BufferPool::set_enabled(true);
    BufferPool::clear_thread_cache();
  }
  void TearDown() override {
    BufferPool::set_enabled(true);
    BufferPool::clear_thread_cache();
  }
};

TEST_F(BufferPoolTest, AcquireReturnsEmptyBufferWithRequestedCapacity) {
  Bytes b = BufferPool::acquire(100);
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), 100u);
}

TEST_F(BufferPoolTest, RecycledBufferKeepsItsCapacity) {
  Bytes b = BufferPool::acquire();
  b.resize(4096, 0xab);
  const std::size_t cap = b.capacity();
  BufferPool::recycle(std::move(b));
  ASSERT_EQ(BufferPool::thread_cache_size(), 1u);

  Bytes again = BufferPool::acquire();
  EXPECT_TRUE(again.empty());          // cleared, no stale bytes
  EXPECT_GE(again.capacity(), cap);    // but the allocation survived
  EXPECT_EQ(BufferPool::thread_cache_size(), 0u);
}

TEST_F(BufferPoolTest, FreeListDepthIsCapped) {
  for (std::size_t i = 0; i < BufferPool::kMaxFreeList + 8; ++i) {
    Bytes b;
    b.resize(64);
    BufferPool::recycle(std::move(b));
  }
  EXPECT_LE(BufferPool::thread_cache_size(), BufferPool::kMaxFreeList);
}

TEST_F(BufferPoolTest, OversizedBuffersAreNotRetained) {
  Bytes big;
  big.resize(BufferPool::kMaxRetainedCapacity + 1);
  BufferPool::recycle(std::move(big));
  EXPECT_EQ(BufferPool::thread_cache_size(), 0u);
}

TEST_F(BufferPoolTest, EmptyAndMovedFromBuffersAreDroppedCheaply) {
  Bytes moved_from;
  BufferPool::recycle(std::move(moved_from));
  EXPECT_EQ(BufferPool::thread_cache_size(), 0u);
}

TEST_F(BufferPoolTest, DisabledPoolRetainsNothing) {
  BufferPool::set_enabled(false);
  Bytes b;
  b.resize(128);
  BufferPool::recycle(std::move(b));
  EXPECT_EQ(BufferPool::thread_cache_size(), 0u);
  Bytes fresh = BufferPool::acquire(64);
  EXPECT_TRUE(fresh.empty());
  EXPECT_GE(fresh.capacity(), 64u);
}

TEST_F(BufferPoolTest, CrossThreadRecycleFeedsTheRecyclingThread) {
  Bytes b = BufferPool::acquire();
  b.resize(2048);
  std::size_t other_cache = 0;
  std::thread t([&, buf = std::move(b)]() mutable {
    BufferPool::clear_thread_cache();
    BufferPool::recycle(std::move(buf));
    other_cache = BufferPool::thread_cache_size();
    BufferPool::clear_thread_cache();
  });
  t.join();
  EXPECT_EQ(other_cache, 1u);              // receiver's pool got it
  EXPECT_EQ(BufferPool::thread_cache_size(), 0u);  // not ours
}

TEST_F(BufferPoolTest, PooledBytesRecyclesOnDestruction) {
  {
    PooledBytes pb(256);
    pb->resize(256, 0x11);
  }
  EXPECT_EQ(BufferPool::thread_cache_size(), 1u);
}

TEST_F(BufferPoolTest, PooledBytesTakeTransfersOwnership) {
  Bytes out;
  {
    PooledBytes pb(64);
    pb->resize(32, 0x22);
    out = std::move(pb).take();
  }
  // take() moved the allocation out; the destructor recycled an empty shell,
  // which the pool drops.
  EXPECT_EQ(out.size(), 32u);
  EXPECT_EQ(BufferPool::thread_cache_size(), 0u);
}

// Concurrent stress: each thread runs acquire/fill/recycle cycles against
// its own pool while trading whole buffers with the other threads through a
// locked exchange slot — the same ownership hand-off a moved network payload
// makes. Run under TSan this proves the pool needs no synchronization beyond
// the hand-off itself.
TEST_F(BufferPoolTest, ConcurrentAcquireRecycleStress) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;

  std::mutex mu;
  std::vector<Bytes> exchange;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BufferPool::clear_thread_cache();
      for (int i = 0; i < kIters; ++i) {
        Bytes b = BufferPool::acquire(64 + static_cast<std::size_t>(i % 512));
        b.push_back(static_cast<std::uint8_t>(t));
        b.push_back(static_cast<std::uint8_t>(i));
        if (i % 3 == 0) {
          // Ship the buffer to whichever thread picks it up next.
          std::lock_guard<std::mutex> lk(mu);
          exchange.push_back(std::move(b));
        } else {
          BufferPool::recycle(std::move(b));
        }
        if (i % 5 == 0) {
          Bytes incoming;
          {
            std::lock_guard<std::mutex> lk(mu);
            if (!exchange.empty()) {
              incoming = std::move(exchange.back());
              exchange.pop_back();
            }
          }
          BufferPool::recycle(std::move(incoming));
        }
      }
      EXPECT_LE(BufferPool::thread_cache_size(), BufferPool::kMaxFreeList);
      BufferPool::clear_thread_cache();
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace cqos
