// HTTP platform tests (paper §2.1: "it would be feasible to intercept HTTP
// requests and replies, in which case the TCP socket layer would be viewed
// as the middleware layer").
#include <gtest/gtest.h>

#include "common/error.h"
#include "platform/http/http.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos {
namespace {

// --- wire format ----------------------------------------------------------------

TEST(HttpWire, RequestRoundtrip) {
  PiggybackMap pb{{"cq.id", Value(7)}, {"cq.prio", Value(9)}};
  ValueList params{Value(1), Value("x"), Value(Bytes{0, 255})};
  Bytes frame = http::wire::encode_request(42, "cli/httpcli0", "Bank",
                                           "set_balance", pb, params);
  // The header block is readable text.
  std::string text(frame.begin(), frame.end());
  EXPECT_NE(text.find("POST /Bank CQOS/1.0\r\n"), std::string::npos);
  EXPECT_NE(text.find("X-Method: set_balance\r\n"), std::string::npos);

  http::wire::Parsed parsed = http::wire::parse(frame);
  EXPECT_EQ(parsed.kind, http::wire::Parsed::Kind::kRequest);
  EXPECT_EQ(parsed.call_id, 42u);
  EXPECT_EQ(parsed.path, "Bank");
  EXPECT_EQ(parsed.method, "set_balance");
  EXPECT_EQ(parsed.reply_to, "cli/httpcli0");
  EXPECT_EQ(parsed.piggyback, pb);
  EXPECT_EQ(parsed.params, params);
}

TEST(HttpWire, ResponseRoundtripBothStatuses) {
  Bytes ok = http::wire::encode_response(1, true, Value(123), "", {});
  http::wire::Parsed parsed_ok = http::wire::parse(ok);
  EXPECT_EQ(parsed_ok.kind, http::wire::Parsed::Kind::kResponse);
  EXPECT_TRUE(parsed_ok.ok);
  EXPECT_EQ(parsed_ok.result, Value(123));

  Bytes err = http::wire::encode_response(2, false, Value(), "boom", {});
  http::wire::Parsed parsed_err = http::wire::parse(err);
  EXPECT_FALSE(parsed_err.ok);
  EXPECT_EQ(parsed_err.error, "boom");
}

TEST(HttpWire, PingPongRoundtrip) {
  http::wire::Parsed ping =
      http::wire::parse(http::wire::encode_ping(5, "cli/x"));
  EXPECT_EQ(ping.kind, http::wire::Parsed::Kind::kPing);
  EXPECT_EQ(ping.reply_to, "cli/x");
  http::wire::Parsed pong = http::wire::parse(http::wire::encode_pong(5));
  EXPECT_EQ(pong.kind, http::wire::Parsed::Kind::kPong);
  EXPECT_EQ(pong.call_id, 5u);
}

TEST(HttpWire, MalformedMessagesRejected) {
  auto reject = [](const std::string& text) {
    Bytes data(text.begin(), text.end());
    EXPECT_THROW(http::wire::parse(data), DecodeError) << text;
  };
  reject("GET / HTTP/1.1\r\n\r\n");             // wrong protocol
  reject("POST /x CQOS/1.0\r\n\r\n");           // missing headers
  reject("no header terminator at all");
  reject("POST /x CQOS/1.0\r\nX-Call-Id: 1\r\nX-Reply-To: a\r\nX-Method: m\r\n"
         "X-Piggyback: 00\r\nContent-Length: 999\r\n\r\nshort");  // truncated
}

TEST(HttpWire, HexRoundtrip) {
  Bytes data{0x00, 0x7f, 0xff, 0x12};
  EXPECT_EQ(http::wire::from_hex(http::wire::to_hex(data)), data);
  EXPECT_THROW(http::wire::from_hex("abc"), DecodeError);
  EXPECT_THROW(http::wire::from_hex("zz"), DecodeError);
}

// --- platform behaviour -----------------------------------------------------------

TEST(HttpPlatform, UrlNamingConvention) {
  net::SimNetwork net;
  http::HttpPlatform platform(net, "client0");
  EXPECT_EQ(platform.name(), "http");
  EXPECT_EQ(platform.replica_name("Bank", 2),
            "http://server1/Bank_CQoS_Skeleton_2");
  EXPECT_EQ(platform.direct_name("Bank"), "http://server0/Bank");
  EXPECT_THROW(platform.resolve("not-a-url", ms(100)), NameNotFound);
}

TEST(HttpPlatform, UnknownPathIs404) {
  net::SimNetwork net;
  http::HttpPlatform server(net, "server0");
  http::HttpPlatform client(net, "client0");
  auto ref = client.resolve("http://server0/Ghost", ms(100));
  plat::Reply reply = ref->invoke("m", {}, {}, ms(500));
  EXPECT_EQ(reply.status, plat::ReplyStatus::kAppError);
  EXPECT_NE(reply.error.find("404"), std::string::npos);
}

// --- full CQoS over HTTP -----------------------------------------------------------

sim::ClusterOptions http_options(int replicas = 1) {
  sim::ClusterOptions opts;
  opts.platform = sim::PlatformKind::kHttp;
  opts.num_replicas = replicas;
  opts.net.jitter = 0;
  opts.servant_factory = [] {
    return std::make_shared<sim::BankAccountServant>();
  };
  return opts;
}

TEST(HttpCqos, BasicCallsThroughFullStack) {
  sim::Cluster cluster(http_options());
  auto client = cluster.make_client();
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(31);
  account.deposit(11);
  EXPECT_EQ(account.get_balance(), 42);
  EXPECT_THROW(account.withdraw(1000), InvocationError);
}

TEST(HttpCqos, SecurityMicroProtocolsRunUnchanged) {
  auto opts = http_options();
  opts.qos.add(Side::kClient, "des_privacy", {{"key", "0123456789abcdef"}})
      .add(Side::kClient, "integrity")
      .add(Side::kServer, "des_privacy", {{"key", "0123456789abcdef"}})
      .add(Side::kServer, "integrity")
      .add(Side::kServer, "access_control", {{"allow", "alice:*"}});
  sim::Cluster cluster(opts);
  CqosStub::Options alice;
  alice.principal = "alice";
  auto client = cluster.make_client(alice);
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(5);
  EXPECT_EQ(account.get_balance(), 5);

  CqosStub::Options eve;
  eve.principal = "eve";
  auto eve_client = cluster.make_client(eve);
  EXPECT_THROW(eve_client->call("get_balance", {}), InvocationError);
}

TEST(HttpCqos, ActiveReplicationWithVotingOverHttp) {
  auto opts = http_options(3);
  opts.qos.add(Side::kClient, "active_rep")
      .add(Side::kClient, "majority_vote");
  sim::Cluster cluster(opts);
  auto client = cluster.make_client();
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(99);
  EXPECT_EQ(account.get_balance(), 99);
  cluster.crash_replica(2);
  EXPECT_EQ(account.get_balance(), 99);  // 2-of-3 majority survives
}

TEST(HttpCqos, PassiveFailoverOverHttp) {
  auto opts = http_options(2);
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  sim::Cluster cluster(opts);
  auto client = cluster.make_client();
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(7);
  cluster.crash_replica(0);
  EXPECT_EQ(account.get_balance(), 7);
}

}  // namespace
}  // namespace cqos
