#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "net/fault.h"
#include "net/sim_network.h"

namespace cqos::net {
namespace {

NetConfig fast_config() {
  NetConfig cfg;
  cfg.base_latency = us(200);
  cfg.per_byte = std::chrono::nanoseconds(10);
  cfg.loopback_latency = us(20);
  cfg.jitter = 0;
  return cfg;
}

TEST(SimNetwork, DeliversAfterLatency) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  TimePoint before = now();
  ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes{1, 2, 3}));
  auto msg = b->recv(ms(1000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(now() - before, us(200));
  EXPECT_EQ(msg->payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(msg->from, "hostA/x");
  (void)a;
}

TEST(SimNetwork, RecvTimesOutWhenSilent) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  TimePoint before = now();
  EXPECT_FALSE(a->recv(ms(30)).has_value());
  EXPECT_GE(now() - before, ms(30));
}

TEST(SimNetwork, FifoPerDestination) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  (void)a;
  // A large message (slower) then a tiny one: delivery must stay FIFO.
  net.send("hostA/x", "hostB/y", Bytes(4096, 1));
  net.send("hostA/x", "hostB/y", Bytes{2});
  auto first = b->recv(ms(1000));
  auto second = b->recv(ms(1000));
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->payload.size(), 4096u);
  EXPECT_EQ(second->payload.size(), 1u);
}

TEST(SimNetwork, UnknownDestinationDropped) {
  SimNetwork net(fast_config());
  net.create_endpoint("hostA/x");
  EXPECT_FALSE(net.send("hostA/x", "nowhere/z", Bytes{1}));
}

TEST(SimNetwork, DuplicateEndpointIdRejected) {
  SimNetwork net(fast_config());
  net.create_endpoint("hostA/x");
  EXPECT_THROW(net.create_endpoint("hostA/x"), Error);
}

TEST(SimNetwork, RemoveEndpointClosesIt) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  net.remove_endpoint("hostA/x");
  EXPECT_TRUE(a->closed());
  EXPECT_FALSE(a->recv(ms(10)).has_value());
  // The id can be reused afterwards.
  auto again = net.create_endpoint("hostA/x");
  EXPECT_FALSE(again->closed());
}

TEST(SimNetwork, CrashedHostDropsTraffic) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  (void)a;
  net.faults().crash_host("hostB");
  EXPECT_TRUE(net.faults().is_crashed("hostB"));
  EXPECT_FALSE(net.send("hostA/x", "hostB/y", Bytes{1}));
  EXPECT_FALSE(b->recv(ms(20)).has_value());
  // Crashed hosts cannot send either.
  EXPECT_FALSE(net.send("hostB/y", "hostA/x", Bytes{1}));
}

TEST(SimNetwork, CrashLosesQueuedMessages) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  (void)a;
  net.send("hostA/x", "hostB/y", Bytes{1});  // in flight
  net.faults().crash_host("hostB");
  EXPECT_FALSE(b->recv(ms(50)).has_value());
}

// Regression for the deposit-after-crash race: send() validates crash state
// under mu_ but deposits after releasing it, so a crash_host() sneaking into
// that window used to land a message on an already-crashed host. The tap runs
// exactly inside the window, which lets the test hold the sender there
// deterministically.
TEST(SimNetwork, DepositAfterCrashRefused) {
  SimNetwork net(fast_config());
  net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  Gate in_window, resume;
  net.set_tap([&](const Message&) {
    in_window.set();
    resume.wait();
  });
  std::thread sender([&] {
    EXPECT_TRUE(net.send("hostA/x", "hostB/y", Bytes{7}));
  });
  ASSERT_TRUE(in_window.wait_for(ms(5000)));  // validated, not yet deposited
  net.faults().crash_host("hostB");  // guarantees no later delivery
  resume.set();
  sender.join();
  EXPECT_FALSE(b->recv(ms(50)).has_value());
}

// Chaos variant of the same race: many senders hammer a host that crashes
// mid-storm. Once crash_host() returns, nothing may arrive — not even sends
// that had already passed validation.
TEST(SimNetwork, CrashStormNeverDeliversAfterCrash) {
  NetConfig cfg = fast_config();
  cfg.base_latency = us(20);
  SimNetwork net(cfg);
  auto b = net.create_endpoint("hostB/y");
  constexpr int kSenders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> senders;
  for (int i = 0; i < kSenders; ++i) {
    net.create_endpoint("hostA/s" + std::to_string(i));
    senders.emplace_back([&net, i, &stop] {
      std::string from = "hostA/s" + std::to_string(i);
      while (!stop.load()) net.send(from, "hostB/y", Bytes{1});
    });
  }
  while (!b->recv(ms(1000)).has_value()) {
  }  // storm is flowing
  net.faults().crash_host("hostB");
  EXPECT_FALSE(b->recv(ms(100)).has_value());
  stop.store(true);
  for (auto& t : senders) t.join();
  EXPECT_FALSE(b->recv(ms(50)).has_value());
}

// Regression for the FIFO-clamp leak: remove_endpoint must drop the
// per-destination clamp entry, or endpoint churn grows the map forever.
TEST(SimNetwork, RemoveEndpointPrunesFifoClamp) {
  SimNetwork net(fast_config());
  net.create_endpoint("hostA/x");
  for (int i = 0; i < 10; ++i) {
    std::string id = "hostB/y" + std::to_string(i);
    auto ep = net.create_endpoint(id);
    ASSERT_TRUE(net.send("hostA/x", id, Bytes{1}));
    ASSERT_TRUE(ep->recv(ms(1000)).has_value());
    net.remove_endpoint(id);
  }
  EXPECT_EQ(net.fifo_clamp_entries(), 0u);
}

TEST(SimNetwork, MetricsCountSendsAndDrops) {
  metrics::Registry reg;
  NetConfig cfg = fast_config();
  cfg.metrics = &reg;
  SimNetwork net(cfg);
  net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes(10, 0)));
  ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes(5, 0)));
  ASSERT_TRUE(b->recv(ms(1000)).has_value());
  ASSERT_TRUE(b->recv(ms(1000)).has_value());
  EXPECT_FALSE(net.send("hostA/x", "nowhere/z", Bytes{1}));
  net.faults().partition("hostA", "hostB");
  EXPECT_FALSE(net.send("hostA/x", "hostB/y", Bytes{1}));

  EXPECT_EQ(reg.counter("net.sent.msgs").value(), 2u);
  EXPECT_EQ(reg.counter("net.sent.bytes").value(), 15u);
  EXPECT_EQ(reg.counter("net.pair.hostA:hostB.msgs").value(), 2u);
  EXPECT_EQ(reg.counter("net.pair.hostA:hostB.bytes").value(), 15u);
  EXPECT_EQ(reg.counter("net.drop.unknown_dest").value(), 1u);
  EXPECT_EQ(reg.counter("net.drop.partition").value(), 1u);
  EXPECT_EQ(reg.counter("net.pair.hostA:hostB.drops").value(), 1u);
}

TEST(SimNetwork, RecoveredHostReceivesAgain) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  (void)a;
  net.faults().crash_host("hostB");
  net.faults().recover_host("hostB");
  EXPECT_FALSE(net.faults().is_crashed("hostB"));
  ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes{7}));
  auto msg = b->recv(ms(1000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, Bytes{7});
}

TEST(SimNetwork, PartitionBlocksBothDirectionsUntilHealed) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  net.faults().partition("hostA", "hostB");
  EXPECT_FALSE(net.send("hostA/x", "hostB/y", Bytes{1}));
  EXPECT_FALSE(net.send("hostB/y", "hostA/x", Bytes{1}));
  net.faults().heal("hostA", "hostB");
  EXPECT_TRUE(net.send("hostA/x", "hostB/y", Bytes{1}));
  EXPECT_TRUE(b->recv(ms(1000)).has_value());
  (void)a;
}

TEST(SimNetwork, DropRateLosesRoughlyThatFraction) {
  NetConfig cfg = fast_config();
  cfg.drop_rate = 0.5;
  cfg.seed = 7;
  SimNetwork net(cfg);
  net.create_endpoint("hostA/x");
  net.create_endpoint("hostB/y");
  int delivered = 0;
  for (int i = 0; i < 400; ++i) {
    if (net.send("hostA/x", "hostB/y", Bytes{1})) ++delivered;
  }
  EXPECT_GT(delivered, 120);
  EXPECT_LT(delivered, 280);
}

TEST(SimNetwork, LoopbackFasterThanRemote) {
  SimNetwork net(fast_config());
  auto a = net.create_endpoint("hostA/x");
  auto local = net.create_endpoint("hostA/y");
  auto remote = net.create_endpoint("hostB/y");
  (void)a;
  // Wall-clock timings on a busy machine are noisy; compare the minimum
  // over several samples, which tracks the simulated latency floor.
  auto min_latency = [&](const std::string& to,
                         const std::shared_ptr<Endpoint>& sink) -> Duration {
    Duration best = ms(1000);
    for (int i = 0; i < 20; ++i) {
      TimePoint before = now();
      net.send("hostA/x", to, Bytes{1});
      EXPECT_TRUE(sink->recv(ms(1000)).has_value());
      best = std::min(best, now() - before);
    }
    return best;
  };
  Duration loopback = min_latency("hostA/y", local);
  Duration inter_host = min_latency("hostB/y", remote);
  EXPECT_LT(loopback, inter_host);
}

TEST(SimNetwork, TapObservesPayloads) {
  SimNetwork net(fast_config());
  net.create_endpoint("hostA/x");
  auto b = net.create_endpoint("hostB/y");
  std::atomic<int> tapped{0};
  net.set_tap([&](const Message& m) {
    EXPECT_EQ(m.to, "hostB/y");
    tapped.fetch_add(1);
  });
  net.send("hostA/x", "hostB/y", Bytes{1});
  ASSERT_TRUE(b->recv(ms(1000)).has_value());
  EXPECT_EQ(tapped.load(), 1);
}

TEST(SimNetwork, CountersAdvance) {
  SimNetwork net(fast_config());
  net.create_endpoint("hostA/x");
  net.create_endpoint("hostB/y");
  net.send("hostA/x", "hostB/y", Bytes(10, 0));
  net.send("hostA/x", "hostB/y", Bytes(5, 0));
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 15u);
}

TEST(SimNetwork, HostOfParsesPrefix) {
  EXPECT_EQ(SimNetwork::host_of("alpha/orb0"), "alpha");
  EXPECT_EQ(SimNetwork::host_of("bare"), "bare");
}

TEST(SimNetwork, ConcurrentSendersAllDeliver) {
  SimNetwork net(fast_config());
  auto sink = net.create_endpoint("sinkhost/in");
  constexpr int kSenders = 4, kEach = 50;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    net.create_endpoint("src" + std::to_string(s) + "/out");
    threads.emplace_back([&net, s] {
      for (int i = 0; i < kEach; ++i) {
        net.send("src" + std::to_string(s) + "/out", "sinkhost/in", Bytes{1});
      }
    });
  }
  for (auto& t : threads) t.join();
  int received = 0;
  while (sink->recv(ms(200)).has_value()) ++received;
  EXPECT_EQ(received, kSenders * kEach);
}

// --- RNG stream split regressions --------------------------------------------
// Jitter and fault decisions each come from per-sender streams seeded with
// NetConfig::seed. These pin the single-sender sequences to the pre-split
// shared-Rng behaviour (one Rng(seed) consumed in traffic order) and verify
// sender independence — the property the split buys.

TEST(SimNetworkRngSplit, SingleSenderDropSequenceMatchesSeededRng) {
  constexpr std::uint64_t kSeed = 7;
  constexpr double kDrop = 0.5;
  constexpr int kSends = 200;
  NetConfig cfg = fast_config();
  cfg.seed = kSeed;
  cfg.drop_rate = kDrop;
  SimNetwork net(cfg);
  auto dst = net.create_endpoint("hostB/y");
  std::vector<bool> got;
  for (int i = 0; i < kSends; ++i) {
    got.push_back(net.send("hostA/x", "hostB/y", Bytes{1}));
  }
  // Pre-split reference: one shared Rng(seed), one next_bool(drop) per
  // inter-host message.
  Rng ref(kSeed);
  std::vector<bool> want;
  for (int i = 0; i < kSends; ++i) want.push_back(!ref.next_bool(kDrop));
  EXPECT_EQ(got, want);
  (void)dst;
}

TEST(SimNetworkRngSplit, SingleSenderJitterSequenceMatchesSeededRng) {
  constexpr std::uint64_t kSeed = 13;
  constexpr int kSends = 50;
  NetConfig cfg;
  cfg.seed = kSeed;
  cfg.jitter = 0.25;
  cfg.time_mode = TimeMode::kVirtual;  // deliver_at is exact virtual latency
  SimNetwork net(cfg);
  auto dst = net.create_endpoint("hostB/y");
  std::vector<TimePoint> stamps;
  net.set_tap([&](const Message& m) { stamps.push_back(m.deliver_at); });
  for (int i = 0; i < kSends; ++i) {
    ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes(16, 0)));
  }
  ASSERT_EQ(stamps.size(), static_cast<std::size_t>(kSends));
  // Pre-split reference: one shared Rng(seed), one next_double per message.
  Rng ref(kSeed);
  Duration base = cfg.base_latency + cfg.per_byte * 16;
  for (int i = 0; i < kSends; ++i) {
    double j = ref.next_double() * cfg.jitter;
    Duration want = base + std::chrono::duration_cast<Duration>(
                               std::chrono::duration<double>(
                                   std::chrono::duration<double>(base).count() * j));
    // Sent at virtual t=0 with no clamp interference beyond monotonicity;
    // jitter >= 0 keeps the sequence non-decreasing only per coincidence,
    // so compare against the unclamped expectation via max-so-far.
    TimePoint unclamped = TimePoint{} + want;
    TimePoint expect = i == 0 ? unclamped : std::max(stamps[i - 1], unclamped);
    EXPECT_EQ(stamps[i], expect) << "jitter draw " << i << " diverged";
  }
  (void)dst;
}

TEST(SimNetworkRngSplit, SenderSequencesIndependentOfOtherSenders) {
  constexpr std::uint64_t kSeed = 21;
  constexpr double kDrop = 0.4;
  constexpr int kSends = 120;
  auto run = [&](bool with_b) {
    NetConfig cfg = fast_config();
    cfg.seed = kSeed;
    cfg.drop_rate = kDrop;
    SimNetwork net(cfg);
    auto dst = net.create_endpoint("hostC/z");
    std::vector<bool> a_outcomes;
    for (int i = 0; i < kSends; ++i) {
      if (with_b) {
        // Interleave another sender's traffic; pre-split this shifted A's
        // draws, post-split it must not.
        net.send("hostB/other", "hostC/z", Bytes{2});
      }
      a_outcomes.push_back(net.send("hostA/x", "hostC/z", Bytes{1}));
    }
    (void)dst;
    return a_outcomes;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SimNetworkRngSplit, PairCountersSurviveEndpointChurn) {
  // The cached per-pair metric handles must keep counting across endpoint
  // remove/recreate cycles (handles cache counters, not endpoints).
  metrics::Registry reg;
  NetConfig cfg = fast_config();
  cfg.metrics = &reg;
  SimNetwork net(cfg);
  for (int round = 0; round < 3; ++round) {
    auto ep = net.create_endpoint("hostB/y");
    ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes{1, 2}));
    ASSERT_TRUE(ep->recv(ms(1000)).has_value());
    net.remove_endpoint("hostB/y");
    EXPECT_FALSE(net.send("hostA/x", "hostB/y", Bytes{3}));
  }
  EXPECT_EQ(reg.counter("net.pair.hostA:hostB.msgs").value(), 3u);
  EXPECT_EQ(reg.counter("net.pair.hostA:hostB.bytes").value(), 6u);
  EXPECT_EQ(reg.counter("net.pair.hostA:hostB.drops").value(), 3u);
  EXPECT_EQ(reg.counter("net.drop.unknown_dest").value(), 3u);
}

}  // namespace
}  // namespace cqos::net
