// Chaos tests: randomized fault injection against the full fault-tolerance
// stacks, asserting liveness and state consistency rather than exact
// schedules.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "micro/extensions.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

BankAccountServant& account_servant(Cluster& cluster, int i) {
  return static_cast<BankAccountServant&>(cluster.servant(i));
}

void wait_for(const std::function<bool()>& cond, Duration timeout = ms(5000)) {
  TimePoint deadline = now() + timeout;
  while (!cond() && now() < deadline) std::this_thread::sleep_for(ms(10));
}

/// Passive replication with a failure detector and retransmission, under a
/// chaos monkey that repeatedly crashes and recovers ONE backup (the primary
/// stays up, matching the prototype's fault model: the sequencer/primary
/// fail-stop case is exercised separately). Every deposit the client
/// observes as successful must be reflected exactly once in the surviving
/// state.
class ChaosBackupCrash : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosBackupCrash, DepositsNeverLostOrDoubled) {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.num_replicas = 3;
  opts.net.jitter = 0.05;
  opts.net.seed = GetParam();
  opts.request_timeout = ms(8000);
  opts.invoke_timeout = ms(400);
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.qos.add(Side::kClient, "passive_rep")
      .add(Side::kClient, "retransmit", {{"retries", "4"}})
      .add(Side::kClient, "failure_detector", {{"period_ms", "40"}})
      .add(Side::kServer, "passive_rep");
  Cluster cluster(opts);

  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(0);

  std::atomic<bool> stop{false};
  std::thread monkey([&] {
    Rng rng(GetParam() * 31 + 5);
    while (!stop.load()) {
      int victim = 1 + static_cast<int>(rng.next_below(2));  // backups only
      cluster.crash_replica(victim);
      std::this_thread::sleep_for(ms(30 + rng.next_below(50)));
      cluster.recover_replica(victim);
      std::this_thread::sleep_for(ms(30 + rng.next_below(50)));
    }
  });

  std::int64_t confirmed = 0;
  for (int i = 0; i < 60; ++i) {
    try {
      account.deposit(1);
      ++confirmed;
    } catch (const InvocationError&) {
      // A deposit may fail visibly; it must then not be applied at the
      // primary (the primary is never crashed in this scenario, so a
      // visible failure means the request never executed there).
    }
  }
  stop.store(true);
  monkey.join();

  // The primary's state is the ground truth: exactly the confirmed deposits.
  EXPECT_EQ(account_servant(cluster, 0).balance(), confirmed);
  // And the client still agrees.
  EXPECT_EQ(account.get_balance(), confirmed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosBackupCrash,
                         ::testing::Values(11, 23, 47));

/// Active replication with majority voting under repeated single-replica
/// crash/recovery. A recovered replica has MISSED updates, so without state
/// transfer its answers would eventually break the majority (exactly why
/// the paper lists "request logging, server recovery" as needed
/// extensions); after each recovery the replica replays the missed suffix
/// from a live peer via the request_log micro-protocol, and the majority is
/// preserved through every round.
class ChaosActiveVote : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosActiveVote, MajorityHoldsWithLogReplayRecovery) {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.num_replicas = 3;
  opts.net.jitter = 0.05;
  opts.net.seed = GetParam();
  opts.request_timeout = ms(8000);
  opts.invoke_timeout = ms(400);
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.qos.add(Side::kClient, "active_rep")
      .add(Side::kClient, "majority_vote")
      .add(Side::kClient, "failure_detector", {{"period_ms", "40"}})
      .add(Side::kServer, "request_log", {{"reads", "get_balance"}});
  Cluster cluster(opts);

  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(0);

  Rng rng(GetParam());
  int failures = 0;
  for (int round = 0; round < 6; ++round) {
    int victim = 1 + static_cast<int>(rng.next_below(2));
    cluster.crash_replica(victim);
    wait_for([&] {
      return client->cactus_client()->qos().server_status(victim) ==
             ServerStatus::kFailed;
    });
    for (int i = 0; i < 5; ++i) {
      try {
        account.deposit(1);
      } catch (const InvocationError&) {
        ++failures;
      }
    }
    cluster.recover_replica(victim);
    wait_for([&] {
      return client->cactus_client()->qos().server_status(victim) ==
             ServerStatus::kRunning;
    });
    // State transfer: replay the missed log suffix from replica 0.
    micro::recover_from_peer(*cluster.cactus_server(victim), 0);
  }
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(account.get_balance(), 30);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(account_servant(cluster, i).balance(), 30) << "replica " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosActiveVote, ::testing::Values(3, 9));

}  // namespace
}  // namespace cqos::sim
