#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "cactus/composite.h"
#include "common/priority.h"
#include "common/sync.h"

namespace cqos::cactus {
namespace {

TEST(Composite, SyncRaiseRunsHandlersInOrder) {
  CompositeProtocol proto;
  std::vector<int> trace;
  proto.bind("ev", "second", [&](EventContext&) { trace.push_back(2); }, 10);
  proto.bind("ev", "first", [&](EventContext&) { trace.push_back(1); }, -10);
  proto.bind("ev", "third", [&](EventContext&) { trace.push_back(3); },
             kOrderLast);
  proto.raise("ev");
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Composite, SameOrderRunsInBindSequence) {
  CompositeProtocol proto;
  std::vector<int> trace;
  proto.bind("ev", "a", [&](EventContext&) { trace.push_back(1); }, 0);
  proto.bind("ev", "b", [&](EventContext&) { trace.push_back(2); }, 0);
  proto.bind("ev", "c", [&](EventContext&) { trace.push_back(3); }, 0);
  proto.raise("ev");
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Composite, HaltStopsLaterHandlers) {
  CompositeProtocol proto;
  std::vector<int> trace;
  proto.bind("ev", "early", [&](EventContext& ctx) {
    trace.push_back(1);
    ctx.halt();
  }, -10);
  proto.bind("ev", "base", [&](EventContext&) { trace.push_back(2); },
             kOrderLast);
  proto.raise("ev");
  EXPECT_EQ(trace, (std::vector<int>{1}));
}

TEST(Composite, DynamicArgumentIsDelivered) {
  CompositeProtocol proto;
  int seen = 0;
  proto.bind("ev", "h", [&](EventContext& ctx) { seen = ctx.dyn<int>(); });
  proto.raise("ev", 42);
  EXPECT_EQ(seen, 42);
}

TEST(Composite, WrongDynTypeThrowsTypeError) {
  CompositeProtocol proto;
  bool threw = false;
  proto.bind("ev", "h", [&](EventContext& ctx) {
    try {
      (void)ctx.dyn<std::string>();
    } catch (const TypeError&) {
      threw = true;
    }
  });
  proto.raise("ev", 42);
  EXPECT_TRUE(threw);
}

TEST(Composite, StaticArgumentPerBinding) {
  CompositeProtocol proto;
  std::vector<int> seen;
  auto handler = [&](EventContext& ctx) {
    seen.push_back(ctx.static_arg<int>());
  };
  proto.bind("ev", "h", handler, 0, std::any(7));
  proto.bind("ev", "h", handler, 0, std::any(8));
  proto.raise("ev");
  EXPECT_EQ(seen, (std::vector<int>{7, 8}));
}

TEST(Composite, MultipleBindingsOfSameHandlerEachExecute) {
  CompositeProtocol proto;
  int count = 0;
  auto handler = [&](EventContext&) { ++count; };
  for (int i = 0; i < 5; ++i) proto.bind("ev", "h", handler);
  proto.raise("ev");
  EXPECT_EQ(count, 5);
}

TEST(Composite, UnbindRemovesHandler) {
  CompositeProtocol proto;
  int count = 0;
  BindingId id = proto.bind("ev", "h", [&](EventContext&) { ++count; });
  proto.raise("ev");
  EXPECT_TRUE(proto.unbind(id));
  EXPECT_FALSE(proto.unbind(id));  // second unbind is a no-op
  proto.raise("ev");
  EXPECT_EQ(count, 1);
  EXPECT_EQ(proto.binding_count("ev"), 0u);
}

TEST(Composite, RaiseWithNoHandlersIsNoop) {
  CompositeProtocol proto;
  proto.raise("nobody-home", 1);
  SUCCEED();
}

TEST(Composite, HandlerExceptionDoesNotStopOthers) {
  CompositeProtocol proto;
  int after = 0;
  proto.bind("ev", "boom",
             [](EventContext&) { throw Error("intentional"); }, -1);
  proto.bind("ev", "after", [&](EventContext&) { ++after; }, 1);
  proto.raise("ev");
  EXPECT_EQ(after, 1);
}

TEST(Composite, HandlerCanBindDuringActivation) {
  CompositeProtocol proto;
  int second_event = 0;
  proto.bind("ev", "binder", [&](EventContext& ctx) {
    ctx.protocol().bind("ev2", "late",
                        [&](EventContext&) { ++second_event; });
  });
  proto.raise("ev");
  proto.raise("ev2");
  EXPECT_EQ(second_event, 1);
}

TEST(Composite, AsyncRaiseRunsConcurrently) {
  CompositeProtocol proto;
  Gate started, release;
  std::atomic<int> done{0};
  proto.bind("ev", "h", [&](EventContext&) {
    started.set();
    release.wait();
    done.fetch_add(1);
  });
  proto.raise_async("ev");
  ASSERT_TRUE(started.wait_for(ms(2000)));
  EXPECT_EQ(done.load(), 0);  // caller was not blocked
  release.set();
  for (int i = 0; i < 200 && done.load() == 0; ++i) {
    std::this_thread::sleep_for(ms(5));
  }
  EXPECT_EQ(done.load(), 1);
}

TEST(Composite, AsyncPreservesRaisersPriority) {
  CompositeProtocol proto;
  Gate ran;
  std::atomic<int> observed{-1};
  proto.bind("ev", "h", [&](EventContext&) {
    observed.store(current_thread_priority());
    ran.set();
  });
  {
    PriorityGuard guard(9);
    proto.raise_async("ev");
  }
  ASSERT_TRUE(ran.wait_for(ms(2000)));
  EXPECT_EQ(observed.load(), 9);
}

TEST(Composite, AsyncExplicitPriorityOverrides) {
  CompositeProtocol proto;
  Gate ran;
  std::atomic<int> observed{-1};
  proto.bind("ev", "h", [&](EventContext&) {
    observed.store(current_thread_priority());
    ran.set();
  });
  proto.raise_async("ev", {}, 2);
  ASSERT_TRUE(ran.wait_for(ms(2000)));
  EXPECT_EQ(observed.load(), 2);
}

TEST(Composite, SyncExplicitPriorityAppliesAndRestores) {
  CompositeProtocol proto;
  int during = -1;
  proto.bind("ev", "h", [&](EventContext&) {
    during = current_thread_priority();
  });
  int before = current_thread_priority();
  proto.raise("ev", {}, 8);
  EXPECT_EQ(during, 8);
  EXPECT_EQ(current_thread_priority(), before);
}

TEST(Composite, DelayedRaiseFires) {
  CompositeProtocol proto;
  Gate fired;
  proto.bind("ev", "h", [&](EventContext&) { fired.set(); });
  proto.raise_delayed("ev", {}, ms(30));
  EXPECT_FALSE(fired.is_set());
  EXPECT_TRUE(fired.wait_for(ms(2000)));
}

TEST(Composite, DelayedRaiseCancellable) {
  CompositeProtocol proto;
  std::atomic<int> fired{0};
  proto.bind("ev", "h", [&](EventContext&) { fired.fetch_add(1); });
  TimerId id = proto.raise_delayed("ev", {}, ms(80));
  EXPECT_TRUE(proto.cancel_delayed(id));
  EXPECT_FALSE(proto.cancel_delayed(id));  // already cancelled
  std::this_thread::sleep_for(ms(150));
  EXPECT_EQ(fired.load(), 0);
}

TEST(Composite, SharedDataSameKeySameObject) {
  CompositeProtocol proto;
  auto a = proto.shared().get_or_create<int>("counter");
  auto b = proto.shared().get_or_create<int>("counter");
  *a = 5;
  EXPECT_EQ(*b, 5);
  EXPECT_EQ(a.get(), b.get());
}

TEST(Composite, SharedDataTypeMismatchThrows) {
  CompositeProtocol proto;
  proto.shared().get_or_create<int>("k");
  EXPECT_THROW(proto.shared().get_or_create<double>("k"), TypeError);
}

TEST(Composite, StopIsIdempotentAndDropsAsyncWork) {
  CompositeProtocol proto;
  proto.bind("ev", "h", [](EventContext&) {});
  proto.stop();
  proto.stop();
  proto.raise_async("ev");  // dropped, no crash
  SUCCEED();
}

TEST(Composite, ThreadPerEventModeStillWorks) {
  CompositeProtocol::Options opts;
  opts.use_thread_pool = false;
  CompositeProtocol proto(opts);
  CountdownLatch latch(8);
  proto.bind("ev", "h", [&](EventContext&) { latch.count_down(); });
  for (int i = 0; i < 8; ++i) proto.raise_async("ev");
  EXPECT_TRUE(latch.wait_for(ms(2000)));
  proto.stop();
}

TEST(Composite, MicroProtocolLifecycle) {
  class Probe : public MicroProtocol {
   public:
    explicit Probe(int* shutdowns) : shutdowns_(shutdowns) {}
    std::string_view name() const override { return "probe"; }
    void init(CompositeProtocol& proto) override {
      proto.bind("ev", "probe", [](EventContext&) {});
    }
    void shutdown() override { ++*shutdowns_; }

   private:
    int* shutdowns_;
  };

  int shutdowns = 0;
  CompositeProtocol proto;
  proto.add_protocol(std::make_unique<Probe>(&shutdowns));
  EXPECT_NE(proto.find_protocol("probe"), nullptr);
  EXPECT_EQ(proto.find_protocol("nope"), nullptr);
  EXPECT_EQ(proto.binding_count("ev"), 1u);
  EXPECT_EQ(proto.protocol_names(), std::vector<std::string>{"probe"});
  proto.stop();
  EXPECT_EQ(shutdowns, 1);
}

TEST(PriorityPool, HigherPriorityRunsFirst) {
  PriorityThreadPool pool(1);
  Gate block, seeded;
  std::vector<int> order;
  std::mutex mu;
  // Occupy the single worker so subsequent tasks queue up.
  pool.submit(kNormalPriority, [&] {
    seeded.set();
    block.wait();
  });
  ASSERT_TRUE(seeded.wait_for(ms(2000)));
  CountdownLatch latch(3);
  for (int prio : {3, 9, 5}) {
    pool.submit(prio, [&, prio] {
      std::scoped_lock lk(mu);
      order.push_back(prio);
      latch.count_down();
    });
  }
  block.set();
  ASSERT_TRUE(latch.wait_for(ms(2000)));
  EXPECT_EQ(order, (std::vector<int>{9, 5, 3}));
}

TEST(PriorityPool, FifoWithinPriority) {
  PriorityThreadPool pool(1);
  Gate block, seeded;
  std::vector<int> order;
  std::mutex mu;
  pool.submit(kNormalPriority, [&] {
    seeded.set();
    block.wait();
  });
  ASSERT_TRUE(seeded.wait_for(ms(2000)));
  CountdownLatch latch(4);
  for (int i = 0; i < 4; ++i) {
    pool.submit(kNormalPriority, [&, i] {
      std::scoped_lock lk(mu);
      order.push_back(i);
      latch.count_down();
    });
  }
  block.set();
  ASSERT_TRUE(latch.wait_for(ms(2000)));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PriorityPool, SubmitAfterShutdownRejected) {
  PriorityThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit(5, [] {}));
}

TEST(Timer, ScheduleAndCancel) {
  TimerService timers;
  std::atomic<int> fired{0};
  TimerId keep = timers.schedule(ms(20), [&] { fired.fetch_add(1); });
  TimerId cancel = timers.schedule(ms(20), [&] { fired.fetch_add(100); });
  EXPECT_NE(keep, kInvalidTimer);
  EXPECT_TRUE(timers.cancel(cancel));
  std::this_thread::sleep_for(ms(120));
  EXPECT_EQ(fired.load(), 1);
}

TEST(Timer, EarlierTimerAddedLaterStillFiresFirst) {
  TimerService timers;
  std::vector<int> order;
  std::mutex mu;
  CountdownLatch latch(2);
  timers.schedule(ms(80), [&] {
    std::scoped_lock lk(mu);
    order.push_back(2);
    latch.count_down();
  });
  timers.schedule(ms(10), [&] {
    std::scoped_lock lk(mu);
    order.push_back(1);
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(ms(2000)));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace cqos::cactus
