// External configuration service tests (paper §2.3.3, the third dynamic
// customization mode: both client and server fetch their configuration from
// a service keyed by [user, service] pairs).
#include <gtest/gtest.h>

#include "common/error.h"
#include "cqos/config_service.h"
#include "platform/rmi/rmi.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace cqos::sim {
namespace {

constexpr const char* kKey = "0123456789abcdef";

/// Deploy a config service on its own host inside a cluster's network.
struct ServiceHost {
  std::unique_ptr<plat::Platform> platform;
  std::shared_ptr<ConfigServiceServant> servant;

  ServiceHost(Cluster& cluster) {
    rmi::RmiConfig cfg;
    cfg.registry_host = "nameserver";
    platform = std::make_unique<rmi::RmiRuntime>(cluster.network(),
                                                 "confighost", cfg);
    servant = std::make_shared<ConfigServiceServant>();
    register_config_service(*platform, servant);
  }
  ~ServiceHost() { platform->shutdown(); }
};

ClusterOptions cs_options() {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = 1;
  opts.net.jitter = 0;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.qos.add(Side::kServer, "des_privacy", {{"key", kKey}});
  return opts;
}

TEST(ConfigService, PutGetRoundtrip) {
  Cluster cluster(cs_options());
  ServiceHost service(cluster);

  QosConfig cfg;
  cfg.add(Side::kClient, "des_privacy", {{"key", kKey}});
  publish_config(*service.platform, "alice", "BankAccount", cfg, ms(500));

  auto client = cluster.make_client();
  QosConfig fetched =
      fetch_config_for(client->platform(), "alice", "BankAccount", ms(500));
  ASSERT_EQ(fetched.client.size(), 1u);
  EXPECT_EQ(fetched.client[0].name, "des_privacy");
  EXPECT_EQ(fetched.client[0].param("key"), kKey);
}

TEST(ConfigService, WildcardUserFallback) {
  Cluster cluster(cs_options());
  ServiceHost service(cluster);
  QosConfig cfg;
  cfg.add(Side::kClient, "client_cache", {{"methods", "get_balance"}});
  publish_config(*service.platform, "*", "BankAccount", cfg, ms(500));

  auto client = cluster.make_client();
  QosConfig fetched =
      fetch_config_for(client->platform(), "anyone", "BankAccount", ms(500));
  EXPECT_EQ(fetched.client.at(0).name, "client_cache");
}

TEST(ConfigService, UndefinedPairIsError) {
  Cluster cluster(cs_options());
  ServiceHost service(cluster);
  auto client = cluster.make_client();
  EXPECT_THROW(
      fetch_config_for(client->platform(), "alice", "Ghost", ms(500)),
      InvocationError);
}

TEST(ConfigService, MalformedConfigRejectedAtPut) {
  Cluster cluster(cs_options());
  ServiceHost service(cluster);
  auto client = cluster.make_client();
  auto ref = client->platform().resolve(
      client->platform().direct_name(kConfigServiceName), ms(500));
  plat::Reply reply = ref->invoke(
      "put", {Value("u"), Value("s"), Value("not a config ::::")}, {}, ms(500));
  EXPECT_EQ(reply.status, plat::ReplyStatus::kAppError);
}

TEST(ConfigService, RemoveDropsEntry) {
  Cluster cluster(cs_options());
  ServiceHost service(cluster);
  QosConfig cfg;
  cfg.add(Side::kClient, "client_base");
  publish_config(*service.platform, "bob", "BankAccount", cfg, ms(500));
  auto client = cluster.make_client();
  auto ref = client->platform().resolve(
      client->platform().direct_name(kConfigServiceName), ms(500));
  plat::Reply removed =
      ref->invoke("remove", {Value("bob"), Value("BankAccount")}, {}, ms(500));
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.result.as_bool());
  EXPECT_THROW(
      fetch_config_for(client->platform(), "bob", "BankAccount", ms(500)),
      InvocationError);
}

TEST(ConfigService, ClientBootstrapsWorkingStackFromService) {
  Cluster cluster(cs_options());  // server requires des_privacy
  ServiceHost service(cluster);

  QosConfig advertised;
  advertised.add(Side::kClient, "des_privacy", {{"key", kKey}});
  service.servant->put("*", "BankAccount", advertised);

  // An unconfigured client fails against the privacy-requiring server...
  std::vector<MicroProtocolSpec> bare;
  auto client = cluster.make_client({}, &bare);
  EXPECT_THROW(client->call("get_balance", {}), InvocationError);

  // ...until it installs the stack the configuration service defines for
  // this [user, service] pair.
  QosConfig fetched =
      fetch_config_for(client->platform(), "alice", "BankAccount", ms(500));
  MicroProtocolRegistry::instance().install(
      Side::kClient, fetched.client, client->cactus_client()->protocol());
  BankAccountStub account(client->stub_ptr());
  account.set_balance(55);
  EXPECT_EQ(account.get_balance(), 55);
}

}  // namespace
}  // namespace cqos::sim
