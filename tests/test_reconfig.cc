// Live reconfiguration tests (DESIGN.md §16): the QuiesceGate state
// machine, micro-protocol state handoff (dedup caches, retransmit
// windows), revision plumbing (ConfigRevision, config service, advertised
// config, endpoint handles), rollback on rejected/failed swaps, the
// registration-last naming contract, and the reconfiguring chaos-soak
// matrix (every soak config hot-swapped to every other under faults).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cactus/composite.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/sync.h"
#include "cqos/config.h"
#include "cqos/config_service.h"
#include "cqos/dynamic_config.h"
#include "cqos/endpoint.h"
#include "cqos/reconfig.h"
#include "micro/dedup.h"
#include "micro/extensions.h"
#include "micro/standard.h"
#include "net/sim_network.h"
#include "platform/rmi/registry.h"
#include "platform/rmi/rmi.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"
#include "soak/soak.h"

namespace cqos {
namespace {

void sleep_ms(int n) {
  std::this_thread::sleep_for(std::chrono::milliseconds(n));
}

// --- QuiesceGate state machine ----------------------------------------------

TEST(QuiesceGate, LiveGateCountsInflight) {
  QuiesceGate gate;
  EXPECT_EQ(gate.phase(), GatePhase::kLive);
  ASSERT_TRUE(gate.enter());
  ASSERT_TRUE(gate.enter());
  EXPECT_EQ(gate.inflight(), 2);
  gate.exit();
  gate.exit();
  EXPECT_EQ(gate.inflight(), 0);
}

TEST(QuiesceGate, DrainSwapResumeRoundTrip) {
  QuiesceGate gate;
  ASSERT_TRUE(gate.begin_drain(ReconfigOptions{}));
  EXPECT_EQ(gate.phase(), GatePhase::kDraining);
  gate.begin_swap();
  EXPECT_EQ(gate.phase(), GatePhase::kSwapping);
  gate.resume();
  EXPECT_EQ(gate.phase(), GatePhase::kLive);
}

TEST(QuiesceGate, ArrivalParksDuringSwapAndReleasesOnResume) {
  QuiesceGate gate;
  ASSERT_TRUE(gate.begin_drain(ReconfigOptions{}));
  std::atomic<int> entered{-1};
  std::thread arrival([&] {
    entered.store(gate.enter() ? 1 : 0);
    if (entered.load() == 1) gate.exit();
  });
  // Wait until the arrival is actually parked before swapping.
  for (int i = 0; i < 2000 && gate.parked_peak() == 0; ++i) sleep_ms(1);
  ASSERT_EQ(gate.parked_peak(), 1);
  gate.begin_swap();
  gate.resume();
  arrival.join();
  EXPECT_EQ(entered.load(), 1);
  EXPECT_EQ(gate.released(), 1u);
  EXPECT_EQ(gate.inflight(), 0);
}

TEST(QuiesceGate, ParkedQueueOverflowRejectsVisibly) {
  QuiesceGate gate;
  ReconfigOptions opts;
  opts.max_parked = 0;  // no parking capacity at all
  ASSERT_TRUE(gate.begin_drain(opts));
  EXPECT_FALSE(gate.enter());  // rejected, not silently dropped
  gate.begin_swap();
  gate.resume();
}

TEST(QuiesceGate, ParkTimeoutRejectsWhileSwapDrags) {
  QuiesceGate gate;
  ReconfigOptions opts;
  opts.park_timeout = ms(50);
  ASSERT_TRUE(gate.begin_drain(opts));
  gate.begin_swap();
  std::atomic<int> entered{-1};
  std::thread arrival([&] { entered.store(gate.enter() ? 1 : 0); });
  arrival.join();  // must come back on its own via the park timeout
  EXPECT_EQ(entered.load(), 0);
  gate.resume();
}

TEST(QuiesceGate, DrainTimeoutRevertsToLive) {
  QuiesceGate gate;
  ASSERT_TRUE(gate.enter());  // held in flight for the whole drain
  ReconfigOptions opts;
  opts.drain_timeout = ms(50);
  EXPECT_FALSE(gate.begin_drain(opts));
  EXPECT_EQ(gate.phase(), GatePhase::kLive);
  gate.exit();
  EXPECT_TRUE(gate.enter());  // still admitting
  gate.exit();
}

TEST(QuiesceGate, ClosedGateRejectsEverything) {
  QuiesceGate gate;
  gate.close();
  EXPECT_EQ(gate.phase(), GatePhase::kClosed);
  EXPECT_FALSE(gate.enter());
}

TEST(QuiesceGate, ControlCheckpointBlocksOnlyDuringSwap) {
  QuiesceGate gate;
  ASSERT_TRUE(gate.begin_drain(ReconfigOptions{}));
  gate.control_checkpoint();  // draining must NOT block controls
  gate.begin_swap();
  std::atomic<bool> passed{false};
  std::thread control([&] {
    gate.control_checkpoint();
    passed.store(true);
  });
  sleep_ms(50);
  EXPECT_FALSE(passed.load());  // parked at the swapping window
  gate.resume();
  control.join();
  EXPECT_TRUE(passed.load());
}

// --- state handoff: dedup cache ---------------------------------------------

micro::DedupState::Cached cached(int amount) {
  micro::DedupState::Cached c;
  c.success = true;
  c.result = Value(amount);
  return c;
}

void seed_dedup(micro::DedupState& state, std::uint64_t id, int amount) {
  MutexLock lk(state.mu);
  state.cache.emplace(id, cached(amount));
  state.cache_fifo.push_back(id);
}

TEST(StateHandoff, DedupCacheSurvivesExportImport) {
  micro::DedupState from;
  seed_dedup(from, 1, 100);
  seed_dedup(from, 2, 200);

  cactus::StateBag bag;
  micro::export_dedup_state(from, bag);
  EXPECT_TRUE(bag.contains(micro::kDedupBagKey));

  micro::DedupState to;
  micro::import_dedup_state(bag, to);
  MutexLock lk(to.mu);
  ASSERT_EQ(to.cache.size(), 2u);
  EXPECT_TRUE(to.cache.at(1).success);
  EXPECT_EQ(to.cache.at(2).result.as_i64(), 200);
}

TEST(StateHandoff, DedupExportMergesTwoProtocolsIntoOneBagEntry) {
  // "dedup" and PassiveRepServer export under the SAME canonical key; a
  // second exporter must merge, not clobber.
  micro::DedupState a, b;
  seed_dedup(a, 1, 100);
  seed_dedup(b, 2, 200);

  cactus::StateBag bag;
  micro::export_dedup_state(a, bag);
  micro::export_dedup_state(b, bag);

  micro::DedupState to;
  micro::import_dedup_state(bag, to);
  MutexLock lk(to.mu);
  EXPECT_EQ(to.cache.size(), 2u);
}

TEST(StateHandoff, DedupImportTrimsFifoOldestToCapacity) {
  micro::DedupState from;
  seed_dedup(from, 1, 100);
  seed_dedup(from, 2, 200);
  seed_dedup(from, 3, 300);

  cactus::StateBag bag;
  micro::export_dedup_state(from, bag);

  micro::DedupState to;
  {
    MutexLock lk(to.mu);
    to.max_cache = 2;
  }
  micro::import_dedup_state(bag, to);
  MutexLock lk(to.mu);
  ASSERT_EQ(to.cache.size(), 2u);
  EXPECT_EQ(to.cache.count(1), 0u);  // FIFO-oldest evicted
  EXPECT_EQ(to.cache.count(2), 1u);
  EXPECT_EQ(to.cache.count(3), 1u);
}

TEST(StateHandoff, DedupInflightMapIsNotExported) {
  // A swap runs at quiescence; in-flight residue belongs to abandoned
  // requests and must not travel.
  micro::DedupState from;
  seed_dedup(from, 1, 100);
  {
    MutexLock lk(from.mu);
    from.inflight.emplace(7, nullptr);
  }
  cactus::StateBag bag;
  micro::export_dedup_state(from, bag);

  micro::DedupState to;
  micro::import_dedup_state(bag, to);
  MutexLock lk(to.mu);
  EXPECT_EQ(to.cache.size(), 1u);
  EXPECT_TRUE(to.inflight.empty());
}

// --- state handoff: retransmit windows --------------------------------------

TEST(StateHandoff, RetrySlotsCountUpThenExhaust) {
  micro::RetransmitState state;
  EXPECT_EQ(micro::consume_retry_slot(state, 42, 0, 2), 1);
  EXPECT_EQ(micro::consume_retry_slot(state, 42, 0, 2), 2);
  EXPECT_EQ(micro::consume_retry_slot(state, 42, 0, 2), 0);  // exhausted
}

TEST(StateHandoff, RetryBudgetIsPerReplica) {
  micro::RetransmitState state;
  EXPECT_EQ(micro::consume_retry_slot(state, 42, 0, 1), 1);
  EXPECT_EQ(micro::consume_retry_slot(state, 42, 0, 1), 0);
  EXPECT_EQ(micro::consume_retry_slot(state, 42, 1, 1), 1);  // other replica
}

TEST(StateHandoff, RetryBudgetSurvivesExportImport) {
  // The reconfiguration acceptance property: a swap must not refund retry
  // budget a request already spent.
  micro::RetransmitState from;
  EXPECT_EQ(micro::consume_retry_slot(from, 42, 0, 2), 1);

  cactus::StateBag bag;
  micro::export_retransmit_state(from, bag);
  micro::RetransmitState to;
  micro::import_retransmit_state(bag, to);

  EXPECT_EQ(micro::consume_retry_slot(to, 42, 0, 2), 2);  // continues, not 1
  EXPECT_EQ(micro::consume_retry_slot(to, 42, 0, 2), 0);
  // A fresh request id starts a fresh window.
  EXPECT_EQ(micro::consume_retry_slot(to, 43, 0, 2), 1);
}

TEST(StateHandoff, RetransmitExportMergesByMaxSlotsUsed) {
  micro::RetransmitState a, b;
  EXPECT_EQ(micro::consume_retry_slot(a, 42, 0, 8), 1);
  EXPECT_EQ(micro::consume_retry_slot(b, 42, 0, 8), 1);
  EXPECT_EQ(micro::consume_retry_slot(b, 42, 0, 8), 2);

  cactus::StateBag bag;
  micro::export_retransmit_state(a, bag);  // 1 slot used
  micro::export_retransmit_state(b, bag);  // 2 slots used -> max wins

  micro::RetransmitState to;
  micro::import_retransmit_state(bag, to);
  EXPECT_EQ(micro::consume_retry_slot(to, 42, 0, 8), 3);
}

TEST(StateHandoff, RetransmitWindowFifoIsBounded) {
  micro::RetransmitState state;
  {
    MutexLock lk(state.mu);
    state.max_windows = 2;
  }
  EXPECT_EQ(micro::consume_retry_slot(state, 1, 0, 8), 1);
  EXPECT_EQ(micro::consume_retry_slot(state, 2, 0, 8), 1);
  EXPECT_EQ(micro::consume_retry_slot(state, 3, 0, 8), 1);  // evicts id 1
  MutexLock lk(state.mu);
  EXPECT_LE(state.used.size(), 2u);
  EXPECT_EQ(state.used.count({1, 0}), 0u);
}

// --- ConfigRevision ----------------------------------------------------------

TEST(ConfigRevisionTest, RoundTripsRevisionAndProvenance) {
  ConfigRevision rev;
  rev.revision = 42;
  rev.provenance = "unit-test";
  rev.config.add(Side::kClient, "retransmit", {{"retries", "3"}});

  ConfigRevision back = ConfigRevision::parse(rev.serialize());
  EXPECT_EQ(back.revision, 42u);
  EXPECT_EQ(back.provenance, "unit-test");
  ASSERT_EQ(back.config.client.size(), 1u);
  EXPECT_EQ(back.config.client[0].name, "retransmit");
  EXPECT_EQ(back.config.client[0].param("retries"), "3");
}

TEST(ConfigRevisionTest, BareConfigTextParsesAsRevisionZero) {
  QosConfig cfg;
  cfg.add(Side::kServer, "dedup");
  ConfigRevision rev = ConfigRevision::parse(cfg.serialize());
  EXPECT_EQ(rev.revision, 0u);
  EXPECT_TRUE(rev.provenance.empty());
  ASSERT_EQ(rev.config.server.size(), 1u);
  EXPECT_EQ(rev.config.server[0].name, "dedup");
}

TEST(ConfigRevisionTest, HeadersAreCommentsToLegacyParsers) {
  ConfigRevision rev;
  rev.revision = 7;
  rev.config.add(Side::kClient, "retransmit");
  QosConfig legacy = QosConfig::parse(rev.serialize());
  ASSERT_EQ(legacy.client.size(), 1u);
  EXPECT_EQ(legacy.client[0].name, "retransmit");
}

TEST(ConfigRevisionTest, MalformedRevisionHeaderThrows) {
  EXPECT_THROW(ConfigRevision::parse("# revision: banana\n"), ConfigError);
}

// --- config service revision monotonicity ------------------------------------

std::uint64_t service_revision(ConfigServiceServant& svc) {
  Value text = svc.dispatch("get", {Value("alice"), Value("bank")});
  return ConfigRevision::parse(text.as_string()).revision;
}

TEST(ConfigServiceRevision, PutBumpsAndVersionedPutJumpsNeverBackwards) {
  ConfigServiceServant svc;
  QosConfig cfg;
  cfg.add(Side::kClient, "retransmit");

  svc.dispatch("put", {Value("alice"), Value("bank"), Value(cfg.serialize())});
  EXPECT_EQ(service_revision(svc), 1u);

  svc.dispatch("put", {Value("alice"), Value("bank"), Value(cfg.serialize())});
  EXPECT_EQ(service_revision(svc), 2u);

  ConfigRevision pushed;
  pushed.revision = 10;
  pushed.config = cfg;
  svc.dispatch("put",
               {Value("alice"), Value("bank"), Value(pushed.serialize())});
  EXPECT_EQ(service_revision(svc), 10u);  // jumps forward

  svc.dispatch("put", {Value("alice"), Value("bank"), Value(cfg.serialize())});
  EXPECT_EQ(service_revision(svc), 11u);

  pushed.revision = 5;  // stale push cannot move it backwards
  svc.dispatch("put",
               {Value("alice"), Value("bank"), Value(pushed.serialize())});
  EXPECT_EQ(service_revision(svc), 12u);
}

// --- endpoint handles on a live cluster --------------------------------------

sim::ClusterOptions small_cluster_options(int replicas = 1) {
  sim::ClusterOptions opts;
  opts.platform = sim::PlatformKind::kRmi;
  opts.level = sim::InterceptionLevel::kFull;
  opts.num_replicas = replicas;
  opts.net.base_latency = us(80);
  opts.net.jitter = 0;
  opts.servant_factory = [] {
    return std::make_shared<sim::BankAccountServant>();
  };
  opts.qos.add(Side::kClient, "retransmit", {{"retries", "4"}})
      .add(Side::kServer, "dedup");
  return opts;
}

TEST(EndpointRevision, ReconfigureAdvancesMonotonically) {
  sim::Cluster cluster(small_cluster_options());
  auto client = cluster.make_client();
  QosEndpoint::ClientHandle& handle = client->endpoint();
  EXPECT_EQ(handle.config_revision(), 1u);

  ReconfigReport report =
      handle.reconfigure(std::vector<MicroProtocolSpec>{{"retransmit"}});
  EXPECT_EQ(report.revision, 2u);
  EXPECT_EQ(handle.config_revision(), 2u);
  EXPECT_FALSE(report.rolled_back);

  // A revision-gated push applies only when strictly newer, and adopts the
  // pushed revision id.
  ConfigRevision push;
  push.revision = 10;
  push.config.add(Side::kClient, "retransmit", {{"retries", "2"}});
  EXPECT_TRUE(handle.reconfigure(push));
  EXPECT_EQ(handle.config_revision(), 10u);

  push.revision = 5;  // stale: no-op
  EXPECT_FALSE(handle.reconfigure(push));
  EXPECT_EQ(handle.config_revision(), 10u);
  ASSERT_EQ(handle.current_specs().size(), 1u);
  EXPECT_EQ(handle.current_specs()[0].param("retries"), "2");

  // The endpoint still serves after all of that.
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(5);
  EXPECT_EQ(account.get_balance(), 5);
}

TEST(EndpointRevision, VerifierRejectedReconfigureLeavesTrafficUntouched) {
  sim::Cluster cluster(small_cluster_options());
  auto client = cluster.make_client();
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(7);

  // Side-local conflict: the verifier rejects before the gate is touched.
  try {
    client->endpoint().reconfigure(
        std::vector<MicroProtocolSpec>{{"passive_rep"}, {"active_rep"}});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("failed composition verification"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(client->endpoint().config_revision(), 1u);
  ASSERT_EQ(client->endpoint().current_specs().size(), 1u);
  EXPECT_EQ(client->endpoint().current_specs()[0].name, "retransmit");
  EXPECT_EQ(account.get_balance(), 7);
}

TEST(EndpointRevision, InstallFailureRollsBackToPriorComposition) {
  sim::Cluster cluster(small_cluster_options());
  auto client = cluster.make_client();
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(9);

  // "zz" is not valid hex: passes the manifest-level verifier, throws from
  // the factory at install time — the rollback path, not the reject path.
  EXPECT_THROW(cluster.server_handle(0).reconfigure(
                   std::vector<MicroProtocolSpec>{
                       {"des_privacy", {{"key", "zz"}}}, {"dedup"}}),
               ConfigError);
  EXPECT_EQ(cluster.server_handle(0).config_revision(), 1u);
  ASSERT_EQ(cluster.server_handle(0).current_specs().size(), 1u);
  EXPECT_EQ(cluster.server_handle(0).current_specs()[0].name, "dedup");

  // The rolled-back server still serves its prior revision.
  EXPECT_EQ(account.get_balance(), 9);
  account.deposit(100);
  EXPECT_EQ(account.get_balance(), 109);
}

TEST(EndpointRevision, ServerSwapKeepsServingWithAtMostOnceIntact) {
  sim::Cluster cluster(small_cluster_options());
  auto client = cluster.make_client();
  sim::BankAccountStub account(client->stub_ptr());
  account.set_balance(0);
  account.deposit(11);
  account.deposit(22);

  ReconfigReport report = cluster.reconfigure_server(
      0, {{"admission", {{"max_pending", "256"}}}, {"dedup"}});
  EXPECT_EQ(report.revision, 2u);
  EXPECT_FALSE(report.rolled_back);

  account.deposit(33);
  EXPECT_EQ(account.get_balance(), 66);

  auto& servant =
      dynamic_cast<sim::BankAccountServant&>(cluster.servant(0));
  std::vector<std::int64_t> log = servant.deposit_log();
  std::set<std::int64_t> unique(log.begin(), log.end());
  EXPECT_EQ(unique.size(), log.size()) << "a deposit was applied twice";
  EXPECT_EQ(log.size(), 3u);
}

// --- advertised config + watcher ---------------------------------------------

ConfigRevision advertised_revision(std::uint64_t n) {
  ConfigRevision rev;
  rev.revision = n;
  rev.provenance = "test-advertiser";
  rev.config.add(Side::kClient, "retransmit", {{"retries", "4"}});
  return rev;
}

TEST(AdvertisedConfigTest, UpdateIsRevisionGated) {
  sim::Cluster cluster(small_cluster_options(2));
  advertise_config(*cluster.cactus_server(0), advertised_revision(1));

  EXPECT_FALSE(update_advertised_config(*cluster.cactus_server(0),
                                        advertised_revision(1)));  // duplicate
  EXPECT_TRUE(update_advertised_config(*cluster.cactus_server(0),
                                       advertised_revision(2)));
  EXPECT_FALSE(update_advertised_config(*cluster.cactus_server(0),
                                        advertised_revision(2)));  // stale now
  // Nothing was ever advertised on replica 1.
  EXPECT_FALSE(update_advertised_config(*cluster.cactus_server(1),
                                        advertised_revision(9)));

  auto client = cluster.make_client();
  ConfigRevision fetched = fetch_config_revision(
      client->platform(), cluster.options().object_id, 1, ms(500));
  EXPECT_EQ(fetched.revision, 2u);
  EXPECT_EQ(fetched.provenance, "test-advertiser");
}

TEST(AdvertisedConfigTest, WatcherSeesPushedRevision) {
  sim::Cluster cluster(small_cluster_options());
  advertise_config(*cluster.cactus_server(0), advertised_revision(1));
  auto client = cluster.make_client();

  CountdownLatch saw_push(1);
  ConfigWatcher watcher(client->platform(), cluster.options().object_id, 1,
                        ms(25), [&](const ConfigRevision& rev) {
                          if (rev.revision >= 2) saw_push.count_down();
                        });
  ASSERT_TRUE(update_advertised_config(*cluster.cactus_server(0),
                                       advertised_revision(2)));
  saw_push.wait();
  EXPECT_GE(watcher.last_revision(), 2u);
  watcher.stop();
}

// --- registration-last naming contract ---------------------------------------

class NamingContractTest : public ::testing::Test {
 protected:
  NamingContractTest()
      : net_(net::NetConfig{}),
        registry_(net_, "nameserver"),
        server_platform_(net_, "server0", rmi_config()),
        client_platform_(net_, "client0", rmi_config()) {
    micro::register_standard_micro_protocols();
  }

  static rmi::RmiConfig rmi_config() {
    rmi::RmiConfig cfg;
    cfg.registry_host = "nameserver";
    return cfg;
  }

  bool resolvable(const std::string& name) {
    try {
      client_platform_.resolve(name, ms(200));
      return true;
    } catch (const Error&) {
      return false;
    }
  }

  net::SimNetwork net_;
  rmi::Registry registry_;
  rmi::RmiRuntime server_platform_;
  rmi::RmiRuntime client_platform_;
};

TEST_F(NamingContractTest, FailedBuildsLeaveNoNameBehind) {
  auto servant = std::make_shared<sim::BankAccountServant>();

  // Learn the registered name from a good build, then free it again.
  std::string name;
  {
    auto good = QosEndpoint::server(server_platform_, servant, "BankAccount")
                    .qos({{"dedup"}})
                    .build();
    name = good->registered_name();
    ASSERT_TRUE(resolvable(name));
    good->close();
  }
  EXPECT_FALSE(resolvable(name)) << "close() must unregister " << name;

  // A build the verifier rejects never registers.
  EXPECT_THROW(QosEndpoint::server(server_platform_, servant, "BankAccount")
                   .qos({{"access_control"}})  // missing required 'allow'
                   .build(),
               ConfigError);
  EXPECT_FALSE(resolvable(name));

  // A build that passes verification but fails at install time (bad hex
  // key throws from the factory) never registers either: registration is
  // strictly the last step.
  EXPECT_THROW(QosEndpoint::server(server_platform_, servant, "BankAccount")
                   .qos({{"des_privacy", {{"key", "zz"}}}})
                   .build(),
               ConfigError);
  EXPECT_FALSE(resolvable(name));

  // The name is still free for the next good build.
  auto again = QosEndpoint::server(server_platform_, servant, "BankAccount")
                   .qos({{"dedup"}})
                   .build();
  EXPECT_EQ(again->registered_name(), name);
  EXPECT_TRUE(resolvable(name));
  again->close();
  EXPECT_FALSE(resolvable(name));
}

// --- reconfiguring chaos soak ------------------------------------------------

soak::SoakOptions reconfig_soak_options(int every,
                                        std::vector<std::string> cycle,
                                        bool start_plain = false) {
  soak::SoakOptions opts;
  opts.reconfigure_every = every;
  opts.reconfig_cycle = std::move(cycle);
  opts.start_plain = start_plain;
  return opts;
}

/// Every ordered pair of soak configs, hot-swapped mid-run under the
/// latency-quake profile (sound for all four compositions, total-order
/// included). One PASS here means: zero invariant violations while the
/// whole cluster — replicas first, then clients — swaps stacks under load.
using ConfigPair = std::pair<std::string, std::string>;

class ReconfigMatrix : public ::testing::TestWithParam<ConfigPair> {};

TEST_P(ReconfigMatrix, SwapUnderLatencyQuakeHoldsInvariants) {
  const auto& [from, to] = GetParam();
  soak::SoakOutcome out = soak::run_soak(
      from, "latency-quake", /*seed=*/1,
      reconfig_soak_options(10, {to, from}));
  EXPECT_TRUE(out.ok()) << out.summary() << "\nrepro: " << out.repro();
  EXPECT_GT(out.acked, 0);
}

std::vector<ConfigPair> all_config_pairs() {
  std::vector<ConfigPair> pairs;
  for (const std::string& from : soak::soak_configs()) {
    for (const std::string& to : soak::soak_configs()) {
      if (from != to) pairs.emplace_back(from, to);
    }
  }
  return pairs;
}

std::string pair_name(const ::testing::TestParamInfo<ConfigPair>& info) {
  std::string n = info.param.first + "_to_" + info.param.second;
  std::replace(n.begin(), n.end(), '-', '_');
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ReconfigMatrix,
                         ::testing::ValuesIn(all_config_pairs()), pair_name);

TEST(ReconfigSoak, PlainToSecuredUnderDuplicateFlood) {
  // The paper's plain → customized transition: serve with base-only stacks,
  // hot-swap the security composition in under live traffic, then survive
  // a duplicate flood across further swaps.
  soak::SoakOutcome out = soak::run_soak(
      "retransmit-dedup", "dup-flood", /*seed=*/1,
      reconfig_soak_options(8, {"secured-passive", "retransmit-dedup"},
                            /*start_plain=*/true));
  EXPECT_TRUE(out.ok()) << out.summary() << "\nrepro: " << out.repro();
}

TEST(ReconfigSoak, MixedMayhemAcrossThreeCompositions) {
  soak::SoakOutcome out = soak::run_soak(
      "retransmit-dedup", "mixed-mayhem", /*seed=*/2,
      reconfig_soak_options(
          10, {"passive-rep", "secured-passive", "retransmit-dedup"}));
  EXPECT_TRUE(out.ok()) << out.summary() << "\nrepro: " << out.repro();
}

TEST(ReconfigSoak, TotalOrderSelfCycleUnderDuplicateFlood) {
  soak::SoakOutcome out = soak::run_soak("active-total", "dup-flood",
                                         /*seed=*/3,
                                         reconfig_soak_options(12, {}));
  EXPECT_TRUE(out.ok()) << out.summary() << "\nrepro: " << out.repro();
}

}  // namespace
}  // namespace cqos
