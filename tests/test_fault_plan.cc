// FaultPlan / FaultController unit tests: plan text round-trip, scheduling
// determinism, duplication delivery, and the bounded-reordering contract.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/error.h"
#include "net/fault.h"
#include "net/sim_network.h"

namespace cqos::net {
namespace {

NetConfig quiet_config(std::uint64_t seed = 42) {
  NetConfig cfg;
  cfg.jitter = 0.0;
  cfg.seed = seed;
  return cfg;
}

constexpr const char* kPlanText =
    "plan backup-churn\n"
    "seed 42\n"
    "@100ms drop_rate 0.15\n"
    "@120ms crash server1\n"
    "@150ms drop_burst server0 client0 80ms 1\n"
    "@200ms latency_spike 100ms x6\n"
    "@210ms duplicate 0.4\n"
    "@220ms reorder 0.5 window=4\n"
    "@260ms recover server1\n"
    "@300ms partition server1 server2\n"
    "@420ms heal server1 server2\n";

TEST(FaultPlan, ParseSerializeRoundTrip) {
  FaultPlan plan = FaultPlan::parse(kPlanText);
  EXPECT_EQ(plan.name, "backup-churn");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.events.size(), 9u);
  EXPECT_EQ(plan.duration(), ms(420));

  // serialize() emits the same syntax parse() accepts, and the round trip
  // is a fixed point.
  FaultPlan again = FaultPlan::parse(plan.serialize());
  EXPECT_EQ(plan.serialize(), again.serialize());
}

TEST(FaultPlan, EventsSortedByOffsetStably) {
  FaultPlan plan = FaultPlan::parse(
      "plan p\nseed 1\n@50ms crash b\n@10ms crash a\n@50ms recover b\n");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].host_a, "a");
  EXPECT_EQ(plan.events[1].kind, FaultKind::kCrash);  // textual order kept
  EXPECT_EQ(plan.events[2].kind, FaultKind::kRecover);
}

TEST(FaultPlan, ParseRejectsGarbage) {
  EXPECT_THROW(FaultPlan::parse("plan p\n@10ms explode host\n"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("plan p\n@abc crash host\n"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("plan p\n@10ms crash\n"), ConfigError);
}

TEST(FaultPlan, SchedulingIsDeterministic) {
  FaultPlan plan = FaultPlan::parse(kPlanText);
  std::vector<std::string> traces[2];
  for (int run = 0; run < 2; ++run) {
    SimNetwork net(quiet_config());
    net.faults().run_plan(plan);
    ASSERT_TRUE(net.faults().wait_plan_done(ms(5000)));
    traces[run] = net.faults().event_trace();
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
  // The trace is the applied plan: header plus one line per event.
  EXPECT_EQ(traces[0].size(), 1 + FaultPlan::parse(kPlanText).events.size());
}

TEST(FaultController, PlanEventsActuallyApply) {
  SimNetwork net(quiet_config());
  FaultPlan plan = FaultPlan::parse(
      "plan apply\nseed 7\n@0ms crash hostB\n@60ms drop_rate 0.5\n");
  net.faults().run_plan(plan);
  ASSERT_TRUE(net.faults().wait_plan_done(ms(5000)));
  EXPECT_TRUE(net.faults().is_crashed("hostB"));
  EXPECT_DOUBLE_EQ(net.faults().drop_rate(), 0.5);

  net.faults().clear_all_faults();
  EXPECT_FALSE(net.faults().is_crashed("hostB"));
  EXPECT_DOUBLE_EQ(net.faults().drop_rate(), 0.0);
}

TEST(FaultController, DuplicateRateDeliversTwice) {
  SimNetwork net(quiet_config());
  net.create_endpoint("hostA/x");
  auto rx = net.create_endpoint("hostB/y");
  net.faults().set_duplicate_rate(1.0);

  constexpr int kMsgs = 20;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes(1, static_cast<std::uint8_t>(i))));
  }
  std::map<int, int> copies;
  for (int i = 0; i < 2 * kMsgs; ++i) {
    auto msg = rx->recv(ms(1000));
    ASSERT_TRUE(msg.has_value()) << "only " << i << " deliveries";
    copies[msg->payload.at(0)]++;
  }
  EXPECT_FALSE(rx->recv(ms(20)).has_value());  // exactly twice, no more
  for (const auto& [id, n] : copies) EXPECT_EQ(n, 2) << "message " << id;
}

/// The bounded-reordering contract: a held-back message is overtaken by AT
/// MOST `window` later-sent messages, reordering does happen at rate 0.5,
/// and nothing is lost (the deadline sweep releases stranded holds).
TEST(FaultController, ReorderingIsBoundedByWindow) {
  constexpr int kWindow = 3;
  constexpr int kMsgs = 150;
  SimNetwork net(quiet_config(7));
  net.create_endpoint("hostA/x");
  auto rx = net.create_endpoint("hostB/y");
  net.faults().set_reorder(0.5, kWindow);

  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes(1, static_cast<std::uint8_t>(i))));
  }
  std::vector<int> received;
  for (int i = 0; i < kMsgs; ++i) {
    auto msg = rx->recv(ms(1000));
    ASSERT_TRUE(msg.has_value()) << "lost after " << i << " deliveries";
    received.push_back(msg->payload.at(0));
  }

  int max_overtakes = 0;
  int total_inversions = 0;
  for (std::size_t p = 0; p < received.size(); ++p) {
    int overtakes = 0;  // later-sent messages delivered before this one
    for (std::size_t q = 0; q < p; ++q) {
      if (received[q] > received[p]) ++overtakes;
    }
    total_inversions += overtakes;
    max_overtakes = std::max(max_overtakes, overtakes);
  }
  EXPECT_GT(total_inversions, 0) << "rate 0.5 produced no reordering";
  EXPECT_LE(max_overtakes, kWindow);
}

TEST(FaultController, ClearAllFaultsFlushesHeldMessages) {
  SimNetwork net(quiet_config());
  net.create_endpoint("hostA/x");
  auto rx = net.create_endpoint("hostB/y");
  net.faults().set_reorder(1.0, 8);  // everything is held back

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(net.send("hostA/x", "hostB/y", Bytes(1, 0)));
  }
  EXPECT_GT(net.faults().held_count(), 0u);
  net.faults().clear_all_faults();
  EXPECT_EQ(net.faults().held_count(), 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(rx->recv(ms(1000)).has_value()) << "flushed message " << i;
  }
}

TEST(FaultController, ShimsForwardToController) {
  SimNetwork net(quiet_config());
  net.crash_host("hostC");
  EXPECT_TRUE(net.faults().is_crashed("hostC"));
  EXPECT_TRUE(net.is_crashed("hostC"));
  net.recover_host("hostC");
  EXPECT_FALSE(net.faults().is_crashed("hostC"));

  net.partition("a", "b");
  EXPECT_TRUE(net.faults().is_partitioned("a", "b"));
  EXPECT_TRUE(net.faults().is_partitioned("b", "a"));
  net.heal("a", "b");
  EXPECT_FALSE(net.faults().is_partitioned("a", "b"));

  net.set_drop_rate(0.25);
  EXPECT_DOUBLE_EQ(net.faults().drop_rate(), 0.25);
}

}  // namespace
}  // namespace cqos::net
