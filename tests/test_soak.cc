// Chaos soak: the at-most-once regression pair plus a sampled matrix of the
// invariant-checked soak harness (the full seeded matrix runs through the
// chaos_soak binary; tools/chaos_smoke.sh).
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "common/error.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"
#include "soak/soak.h"

namespace cqos::sim {
namespace {

BankAccountServant& account_servant(Cluster& cluster, int i) {
  return static_cast<BankAccountServant&>(cluster.servant(i));
}

ClusterOptions plain_options() {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.num_replicas = 1;
  opts.net.jitter = 0.0;
  opts.net.seed = 7;
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  return opts;
}

void wait_for(const std::function<bool()>& cond, Duration timeout = ms(3000)) {
  TimePoint deadline = now() + timeout;
  while (!cond() && now() < deadline) std::this_thread::sleep_for(ms(10));
}

/// The regression the dedup micro-protocol exists for: with duplication on
/// and NO dedup in the server stack, a duplicated deposit is applied twice.
/// This test pins the vulnerable behaviour — it is what the soak's
/// no-double-apply invariant would catch, demonstrated without the fix.
TEST(DedupRegression, DuplicatedDepositDoubleAppliesWithoutDedup) {
  ClusterOptions opts = plain_options();  // server_base only: no dedup
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(0);

  cluster.faults().set_duplicate_rate(1.0);
  account.deposit(7);
  cluster.faults().set_duplicate_rate(0.0);

  // The duplicate of the request is dispatched independently of the reply
  // the client already got.
  wait_for([&] { return account_servant(cluster, 0).deposit_log().size() >= 2; });
  EXPECT_EQ(account_servant(cluster, 0).deposit_log(),
            (std::vector<std::int64_t>{7, 7}))
      << "expected the unprotected server to double-apply — if this fails, "
         "the regression pair in DedupPreventsDoubleApply is vacuous";
  EXPECT_EQ(account_servant(cluster, 0).balance(), 14);
}

TEST(DedupRegression, DedupPreventsDoubleApply) {
  ClusterOptions opts = plain_options();
  opts.qos.add(Side::kServer, "dedup");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(0);

  cluster.faults().set_duplicate_rate(1.0);
  account.deposit(7);
  cluster.faults().set_duplicate_rate(0.0);

  // Give the duplicate time to arrive and (correctly) be swallowed.
  std::this_thread::sleep_for(ms(400));
  EXPECT_EQ(account_servant(cluster, 0).deposit_log(),
            (std::vector<std::int64_t>{7}));
  EXPECT_EQ(account_servant(cluster, 0).balance(), 7);
}

/// Retransmission crossing a duplicated wire is the compound case: the
/// retry and the duplicate both reach the server; exactly one application
/// must survive.
TEST(DedupRegression, RetransmitPlusDuplicationStaysAtMostOnce) {
  ClusterOptions opts = plain_options();
  opts.invoke_timeout = ms(150);
  opts.request_timeout = ms(8000);
  opts.qos.add(Side::kClient, "retransmit", {{"retries", "6"}})
      .add(Side::kServer, "dedup");
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  account.set_balance(0);

  cluster.faults().set_duplicate_rate(0.5);
  cluster.faults().set_drop_rate(0.2);
  for (int i = 0; i < 15; ++i) account.deposit(i + 1);
  cluster.faults().clear_all_faults();

  std::this_thread::sleep_for(ms(400));
  auto log = account_servant(cluster, 0).deposit_log();
  std::set<std::int64_t> seen;
  for (std::int64_t amount : log) {
    EXPECT_TRUE(seen.insert(amount).second)
        << "deposit " << amount << " applied twice";
  }
  EXPECT_EQ(log.size(), 15u);  // all acked deposits applied exactly once
}

/// TotalOrder agreement under reordering + duplication: every replica
/// applies the same deposit sequence (satellite of the chaos engine; the
/// full profile matrix runs in chaos_soak).
TEST(SoakMatrix, TotalOrderAgreesUnderReorderStorm) {
  soak::SoakOutcome out = soak::run_soak("active-total", "reorder-storm", 5);
  EXPECT_TRUE(out.ok()) << out.summary() << "\n" << out.plan_text;
  EXPECT_GT(out.acked, 0);
}

TEST(SoakMatrix, TotalOrderAgreesUnderDupFlood) {
  soak::SoakOutcome out = soak::run_soak("active-total", "dup-flood", 3);
  EXPECT_TRUE(out.ok()) << out.summary() << "\n" << out.plan_text;
  EXPECT_GT(out.acked, 0);
}

TEST(SoakMatrix, RetransmitDedupSurvivesMixedMayhem) {
  soak::SoakOutcome out = soak::run_soak("retransmit-dedup", "mixed-mayhem", 2);
  EXPECT_TRUE(out.ok()) << out.summary() << "\n" << out.plan_text;
}

TEST(SoakMatrix, PassiveRepSurvivesBackupChurn) {
  soak::SoakOutcome out = soak::run_soak("passive-rep", "backup-churn", 4);
  EXPECT_TRUE(out.ok()) << out.summary() << "\n" << out.plan_text;
  EXPECT_GT(out.acked, 0);
}

TEST(SoakMatrix, SecuredPassiveSurvivesDupFlood) {
  soak::SoakOutcome out = soak::run_soak("secured-passive", "dup-flood", 6);
  EXPECT_TRUE(out.ok()) << out.summary() << "\n" << out.plan_text;
  EXPECT_GT(out.acked, 0);
}

TEST(SoakMatrix, SameSeedReproducesTheFaultSchedule) {
  soak::SoakOutcome a = soak::run_soak("retransmit-dedup", "calm-then-chaos", 9);
  soak::SoakOutcome b = soak::run_soak("retransmit-dedup", "calm-then-chaos", 9);
  EXPECT_TRUE(a.ok()) << a.summary();
  EXPECT_EQ(a.plan_text, b.plan_text);
  EXPECT_EQ(a.trace, b.trace);  // identical applied-event schedule
  EXPECT_EQ(a.repro(),
            "chaos_soak --config=retransmit-dedup --profile=calm-then-chaos "
            "--seed=9");
}

TEST(SoakMatrix, ProfileSoundnessIsEnforced) {
  // Loss-type profiles are rejected for the agreement config instead of
  // producing an unsound run.
  EXPECT_THROW(soak::run_soak("active-total", "drop-storm", 1), ConfigError);
  auto sound = soak::soak_profiles_for("active-total");
  EXPECT_EQ(sound.size(), 5u);
  EXPECT_EQ(soak::soak_profiles().size(), 8u);
  EXPECT_EQ(soak::soak_configs().size(), 4u);
}

TEST(VirtualSoak, ProfilesHoldInvariantsAndReproduce) {
  for (const std::string& p : soak::virtual_soak_profiles()) {
    soak::SoakOutcome a = soak::run_virtual_soak(p, 1);
    EXPECT_TRUE(a.ok()) << a.summary();
    EXPECT_GT(a.acked, 1000);
    soak::SoakOutcome b = soak::run_virtual_soak(p, 1);
    EXPECT_EQ(a.acked, b.acked) << p;  // bit-reproducible at the same seed
    EXPECT_EQ(a.failed, b.failed) << p;
    EXPECT_EQ(a.trace, b.trace) << p;
  }
  EXPECT_THROW(soak::run_virtual_soak("no-such-profile", 1), ConfigError);
}

}  // namespace
}  // namespace cqos::sim
