
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cqos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/micro/CMakeFiles/cqos_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/cqos/CMakeFiles/cqos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cqos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cqos_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/cactus/CMakeFiles/cqos_cactus.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cqos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
