# Empty compiler generated dependencies file for secure_trading.
# This may be replaced when dependencies are built.
