file(REMOVE_RECURSE
  "CMakeFiles/secure_trading.dir/secure_trading.cpp.o"
  "CMakeFiles/secure_trading.dir/secure_trading.cpp.o.d"
  "secure_trading"
  "secure_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
