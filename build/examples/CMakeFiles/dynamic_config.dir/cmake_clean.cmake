file(REMOVE_RECURSE
  "CMakeFiles/dynamic_config.dir/dynamic_config.cpp.o"
  "CMakeFiles/dynamic_config.dir/dynamic_config.cpp.o.d"
  "dynamic_config"
  "dynamic_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
