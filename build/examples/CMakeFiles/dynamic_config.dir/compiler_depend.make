# Empty compiler generated dependencies file for dynamic_config.
# This may be replaced when dependencies are built.
