# Empty dependencies file for lossy_wan.
# This may be replaced when dependencies are built.
