# Empty dependencies file for idl_generated.
# This may be replaced when dependencies are built.
