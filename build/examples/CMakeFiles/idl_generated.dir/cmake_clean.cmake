file(REMOVE_RECURSE
  "CMakeFiles/idl_generated.dir/idl_generated.cpp.o"
  "CMakeFiles/idl_generated.dir/idl_generated.cpp.o.d"
  "idl_generated"
  "idl_generated.pdb"
  "trading_generated.h"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idl_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
