# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicated_bank "/root/repo/build/examples/replicated_bank")
set_tests_properties(example_replicated_bank PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_trading "/root/repo/build/examples/secure_trading")
set_tests_properties(example_secure_trading PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_config "/root/repo/build/examples/dynamic_config")
set_tests_properties(example_dynamic_config PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lossy_wan "/root/repo/build/examples/lossy_wan")
set_tests_properties(example_lossy_wan PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_idl_generated "/root/repo/build/examples/idl_generated")
set_tests_properties(example_idl_generated PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
