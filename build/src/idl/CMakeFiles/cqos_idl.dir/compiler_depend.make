# Empty compiler generated dependencies file for cqos_idl.
# This may be replaced when dependencies are built.
