file(REMOVE_RECURSE
  "CMakeFiles/cqos_idl.dir/codegen.cc.o"
  "CMakeFiles/cqos_idl.dir/codegen.cc.o.d"
  "CMakeFiles/cqos_idl.dir/parser.cc.o"
  "CMakeFiles/cqos_idl.dir/parser.cc.o.d"
  "libcqos_idl.a"
  "libcqos_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
