file(REMOVE_RECURSE
  "libcqos_idl.a"
)
