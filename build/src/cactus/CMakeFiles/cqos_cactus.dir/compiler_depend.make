# Empty compiler generated dependencies file for cqos_cactus.
# This may be replaced when dependencies are built.
