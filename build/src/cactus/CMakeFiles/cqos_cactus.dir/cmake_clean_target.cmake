file(REMOVE_RECURSE
  "libcqos_cactus.a"
)
