file(REMOVE_RECURSE
  "CMakeFiles/cqos_cactus.dir/composite.cc.o"
  "CMakeFiles/cqos_cactus.dir/composite.cc.o.d"
  "CMakeFiles/cqos_cactus.dir/thread_pool.cc.o"
  "CMakeFiles/cqos_cactus.dir/thread_pool.cc.o.d"
  "CMakeFiles/cqos_cactus.dir/timer.cc.o"
  "CMakeFiles/cqos_cactus.dir/timer.cc.o.d"
  "libcqos_cactus.a"
  "libcqos_cactus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
