
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cactus/composite.cc" "src/cactus/CMakeFiles/cqos_cactus.dir/composite.cc.o" "gcc" "src/cactus/CMakeFiles/cqos_cactus.dir/composite.cc.o.d"
  "/root/repo/src/cactus/thread_pool.cc" "src/cactus/CMakeFiles/cqos_cactus.dir/thread_pool.cc.o" "gcc" "src/cactus/CMakeFiles/cqos_cactus.dir/thread_pool.cc.o.d"
  "/root/repo/src/cactus/timer.cc" "src/cactus/CMakeFiles/cqos_cactus.dir/timer.cc.o" "gcc" "src/cactus/CMakeFiles/cqos_cactus.dir/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
