file(REMOVE_RECURSE
  "CMakeFiles/cqos_core.dir/cactus_client.cc.o"
  "CMakeFiles/cqos_core.dir/cactus_client.cc.o.d"
  "CMakeFiles/cqos_core.dir/cactus_server.cc.o"
  "CMakeFiles/cqos_core.dir/cactus_server.cc.o.d"
  "CMakeFiles/cqos_core.dir/config.cc.o"
  "CMakeFiles/cqos_core.dir/config.cc.o.d"
  "CMakeFiles/cqos_core.dir/config_service.cc.o"
  "CMakeFiles/cqos_core.dir/config_service.cc.o.d"
  "CMakeFiles/cqos_core.dir/dynamic_config.cc.o"
  "CMakeFiles/cqos_core.dir/dynamic_config.cc.o.d"
  "CMakeFiles/cqos_core.dir/platform_qos.cc.o"
  "CMakeFiles/cqos_core.dir/platform_qos.cc.o.d"
  "CMakeFiles/cqos_core.dir/request.cc.o"
  "CMakeFiles/cqos_core.dir/request.cc.o.d"
  "CMakeFiles/cqos_core.dir/skeleton.cc.o"
  "CMakeFiles/cqos_core.dir/skeleton.cc.o.d"
  "CMakeFiles/cqos_core.dir/stub.cc.o"
  "CMakeFiles/cqos_core.dir/stub.cc.o.d"
  "libcqos_core.a"
  "libcqos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
