file(REMOVE_RECURSE
  "libcqos_core.a"
)
