# Empty dependencies file for cqos_core.
# This may be replaced when dependencies are built.
