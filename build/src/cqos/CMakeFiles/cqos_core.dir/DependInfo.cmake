
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqos/cactus_client.cc" "src/cqos/CMakeFiles/cqos_core.dir/cactus_client.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/cactus_client.cc.o.d"
  "/root/repo/src/cqos/cactus_server.cc" "src/cqos/CMakeFiles/cqos_core.dir/cactus_server.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/cactus_server.cc.o.d"
  "/root/repo/src/cqos/config.cc" "src/cqos/CMakeFiles/cqos_core.dir/config.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/config.cc.o.d"
  "/root/repo/src/cqos/config_service.cc" "src/cqos/CMakeFiles/cqos_core.dir/config_service.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/config_service.cc.o.d"
  "/root/repo/src/cqos/dynamic_config.cc" "src/cqos/CMakeFiles/cqos_core.dir/dynamic_config.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/dynamic_config.cc.o.d"
  "/root/repo/src/cqos/platform_qos.cc" "src/cqos/CMakeFiles/cqos_core.dir/platform_qos.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/platform_qos.cc.o.d"
  "/root/repo/src/cqos/request.cc" "src/cqos/CMakeFiles/cqos_core.dir/request.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/request.cc.o.d"
  "/root/repo/src/cqos/skeleton.cc" "src/cqos/CMakeFiles/cqos_core.dir/skeleton.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/skeleton.cc.o.d"
  "/root/repo/src/cqos/stub.cc" "src/cqos/CMakeFiles/cqos_core.dir/stub.cc.o" "gcc" "src/cqos/CMakeFiles/cqos_core.dir/stub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cqos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cactus/CMakeFiles/cqos_cactus.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cqos_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cqos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
