file(REMOVE_RECURSE
  "CMakeFiles/cqos_micro.dir/acceptance.cc.o"
  "CMakeFiles/cqos_micro.dir/acceptance.cc.o.d"
  "CMakeFiles/cqos_micro.dir/active_rep.cc.o"
  "CMakeFiles/cqos_micro.dir/active_rep.cc.o.d"
  "CMakeFiles/cqos_micro.dir/client_base.cc.o"
  "CMakeFiles/cqos_micro.dir/client_base.cc.o.d"
  "CMakeFiles/cqos_micro.dir/extensions.cc.o"
  "CMakeFiles/cqos_micro.dir/extensions.cc.o.d"
  "CMakeFiles/cqos_micro.dir/passive_rep.cc.o"
  "CMakeFiles/cqos_micro.dir/passive_rep.cc.o.d"
  "CMakeFiles/cqos_micro.dir/security.cc.o"
  "CMakeFiles/cqos_micro.dir/security.cc.o.d"
  "CMakeFiles/cqos_micro.dir/server_base.cc.o"
  "CMakeFiles/cqos_micro.dir/server_base.cc.o.d"
  "CMakeFiles/cqos_micro.dir/standard.cc.o"
  "CMakeFiles/cqos_micro.dir/standard.cc.o.d"
  "CMakeFiles/cqos_micro.dir/timeliness.cc.o"
  "CMakeFiles/cqos_micro.dir/timeliness.cc.o.d"
  "CMakeFiles/cqos_micro.dir/total_order.cc.o"
  "CMakeFiles/cqos_micro.dir/total_order.cc.o.d"
  "libcqos_micro.a"
  "libcqos_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
