
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/micro/acceptance.cc" "src/micro/CMakeFiles/cqos_micro.dir/acceptance.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/acceptance.cc.o.d"
  "/root/repo/src/micro/active_rep.cc" "src/micro/CMakeFiles/cqos_micro.dir/active_rep.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/active_rep.cc.o.d"
  "/root/repo/src/micro/client_base.cc" "src/micro/CMakeFiles/cqos_micro.dir/client_base.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/client_base.cc.o.d"
  "/root/repo/src/micro/extensions.cc" "src/micro/CMakeFiles/cqos_micro.dir/extensions.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/extensions.cc.o.d"
  "/root/repo/src/micro/passive_rep.cc" "src/micro/CMakeFiles/cqos_micro.dir/passive_rep.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/passive_rep.cc.o.d"
  "/root/repo/src/micro/security.cc" "src/micro/CMakeFiles/cqos_micro.dir/security.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/security.cc.o.d"
  "/root/repo/src/micro/server_base.cc" "src/micro/CMakeFiles/cqos_micro.dir/server_base.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/server_base.cc.o.d"
  "/root/repo/src/micro/standard.cc" "src/micro/CMakeFiles/cqos_micro.dir/standard.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/standard.cc.o.d"
  "/root/repo/src/micro/timeliness.cc" "src/micro/CMakeFiles/cqos_micro.dir/timeliness.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/timeliness.cc.o.d"
  "/root/repo/src/micro/total_order.cc" "src/micro/CMakeFiles/cqos_micro.dir/total_order.cc.o" "gcc" "src/micro/CMakeFiles/cqos_micro.dir/total_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cqos/CMakeFiles/cqos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cqos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cqos_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/cactus/CMakeFiles/cqos_cactus.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cqos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
