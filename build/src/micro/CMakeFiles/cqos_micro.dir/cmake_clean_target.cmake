file(REMOVE_RECURSE
  "libcqos_micro.a"
)
