# Empty dependencies file for cqos_micro.
# This may be replaced when dependencies are built.
