file(REMOVE_RECURSE
  "libcqos_crypto.a"
)
