file(REMOVE_RECURSE
  "CMakeFiles/cqos_crypto.dir/des.cc.o"
  "CMakeFiles/cqos_crypto.dir/des.cc.o.d"
  "CMakeFiles/cqos_crypto.dir/sha256.cc.o"
  "CMakeFiles/cqos_crypto.dir/sha256.cc.o.d"
  "libcqos_crypto.a"
  "libcqos_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
