# Empty compiler generated dependencies file for cqos_crypto.
# This may be replaced when dependencies are built.
