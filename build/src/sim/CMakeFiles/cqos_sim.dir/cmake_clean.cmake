file(REMOVE_RECURSE
  "CMakeFiles/cqos_sim.dir/bank_account.cc.o"
  "CMakeFiles/cqos_sim.dir/bank_account.cc.o.d"
  "CMakeFiles/cqos_sim.dir/cluster.cc.o"
  "CMakeFiles/cqos_sim.dir/cluster.cc.o.d"
  "libcqos_sim.a"
  "libcqos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
