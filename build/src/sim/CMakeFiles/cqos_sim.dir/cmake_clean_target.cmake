file(REMOVE_RECURSE
  "libcqos_sim.a"
)
