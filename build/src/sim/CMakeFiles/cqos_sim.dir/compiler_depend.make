# Empty compiler generated dependencies file for cqos_sim.
# This may be replaced when dependencies are built.
