# Empty dependencies file for cqos_net.
# This may be replaced when dependencies are built.
