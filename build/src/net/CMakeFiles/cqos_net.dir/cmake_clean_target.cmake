file(REMOVE_RECURSE
  "libcqos_net.a"
)
