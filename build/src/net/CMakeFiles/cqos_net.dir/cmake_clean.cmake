file(REMOVE_RECURSE
  "CMakeFiles/cqos_net.dir/sim_network.cc.o"
  "CMakeFiles/cqos_net.dir/sim_network.cc.o.d"
  "libcqos_net.a"
  "libcqos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
