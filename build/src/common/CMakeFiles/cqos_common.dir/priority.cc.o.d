src/common/CMakeFiles/cqos_common.dir/priority.cc.o: \
 /root/repo/src/common/priority.cc /usr/include/stdc-predef.h \
 /root/repo/src/common/priority.h
