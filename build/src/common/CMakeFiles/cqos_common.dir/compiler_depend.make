# Empty compiler generated dependencies file for cqos_common.
# This may be replaced when dependencies are built.
