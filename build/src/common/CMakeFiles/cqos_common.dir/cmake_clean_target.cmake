file(REMOVE_RECURSE
  "libcqos_common.a"
)
