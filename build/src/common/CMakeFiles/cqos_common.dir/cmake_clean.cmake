file(REMOVE_RECURSE
  "CMakeFiles/cqos_common.dir/log.cc.o"
  "CMakeFiles/cqos_common.dir/log.cc.o.d"
  "CMakeFiles/cqos_common.dir/priority.cc.o"
  "CMakeFiles/cqos_common.dir/priority.cc.o.d"
  "CMakeFiles/cqos_common.dir/value.cc.o"
  "CMakeFiles/cqos_common.dir/value.cc.o.d"
  "libcqos_common.a"
  "libcqos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
