
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/corba/agent.cc" "src/platform/CMakeFiles/cqos_platform.dir/corba/agent.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/corba/agent.cc.o.d"
  "/root/repo/src/platform/corba/cdr.cc" "src/platform/CMakeFiles/cqos_platform.dir/corba/cdr.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/corba/cdr.cc.o.d"
  "/root/repo/src/platform/corba/giop.cc" "src/platform/CMakeFiles/cqos_platform.dir/corba/giop.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/corba/giop.cc.o.d"
  "/root/repo/src/platform/corba/orb.cc" "src/platform/CMakeFiles/cqos_platform.dir/corba/orb.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/corba/orb.cc.o.d"
  "/root/repo/src/platform/http/http.cc" "src/platform/CMakeFiles/cqos_platform.dir/http/http.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/http/http.cc.o.d"
  "/root/repo/src/platform/rmi/jrmp.cc" "src/platform/CMakeFiles/cqos_platform.dir/rmi/jrmp.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/rmi/jrmp.cc.o.d"
  "/root/repo/src/platform/rmi/registry.cc" "src/platform/CMakeFiles/cqos_platform.dir/rmi/registry.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/rmi/registry.cc.o.d"
  "/root/repo/src/platform/rmi/rmi.cc" "src/platform/CMakeFiles/cqos_platform.dir/rmi/rmi.cc.o" "gcc" "src/platform/CMakeFiles/cqos_platform.dir/rmi/rmi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cqos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cqos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cactus/CMakeFiles/cqos_cactus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
