file(REMOVE_RECURSE
  "libcqos_platform.a"
)
