file(REMOVE_RECURSE
  "CMakeFiles/cqos_platform.dir/corba/agent.cc.o"
  "CMakeFiles/cqos_platform.dir/corba/agent.cc.o.d"
  "CMakeFiles/cqos_platform.dir/corba/cdr.cc.o"
  "CMakeFiles/cqos_platform.dir/corba/cdr.cc.o.d"
  "CMakeFiles/cqos_platform.dir/corba/giop.cc.o"
  "CMakeFiles/cqos_platform.dir/corba/giop.cc.o.d"
  "CMakeFiles/cqos_platform.dir/corba/orb.cc.o"
  "CMakeFiles/cqos_platform.dir/corba/orb.cc.o.d"
  "CMakeFiles/cqos_platform.dir/http/http.cc.o"
  "CMakeFiles/cqos_platform.dir/http/http.cc.o.d"
  "CMakeFiles/cqos_platform.dir/rmi/jrmp.cc.o"
  "CMakeFiles/cqos_platform.dir/rmi/jrmp.cc.o.d"
  "CMakeFiles/cqos_platform.dir/rmi/registry.cc.o"
  "CMakeFiles/cqos_platform.dir/rmi/registry.cc.o.d"
  "CMakeFiles/cqos_platform.dir/rmi/rmi.cc.o"
  "CMakeFiles/cqos_platform.dir/rmi/rmi.cc.o.d"
  "libcqos_platform.a"
  "libcqos_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
