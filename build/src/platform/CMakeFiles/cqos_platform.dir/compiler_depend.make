# Empty compiler generated dependencies file for cqos_platform.
# This may be replaced when dependencies are built.
