# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/src/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_idlc "/root/repo/build/src/tools/cqos_idlc" "/root/repo/examples/trading.idl" "/root/repo/build/src/tools/idlc_test_out.h")
set_tests_properties(tool_idlc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_config_valid "/root/repo/build/src/tools/cqos_config" "/root/repo/examples/sample.cfg")
set_tests_properties(tool_config_valid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_idlc_rejects_bad_input "/root/repo/build/src/tools/cqos_idlc" "/root/repo/examples/sample.cfg" "/root/repo/build/src/tools/idlc_bad_out.h")
set_tests_properties(tool_idlc_rejects_bad_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
