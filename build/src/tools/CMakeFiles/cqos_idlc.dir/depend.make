# Empty dependencies file for cqos_idlc.
# This may be replaced when dependencies are built.
