file(REMOVE_RECURSE
  "CMakeFiles/cqos_idlc.dir/cqos_idlc.cc.o"
  "CMakeFiles/cqos_idlc.dir/cqos_idlc.cc.o.d"
  "cqos_idlc"
  "cqos_idlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_idlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
