file(REMOVE_RECURSE
  "CMakeFiles/cqos_config.dir/cqos_config.cc.o"
  "CMakeFiles/cqos_config.dir/cqos_config.cc.o.d"
  "cqos_config"
  "cqos_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqos_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
