# Empty dependencies file for cqos_config.
# This may be replaced when dependencies are built.
