# Empty compiler generated dependencies file for cqos_tests.
# This may be replaced when dependencies are built.
