
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bytes.cc" "tests/CMakeFiles/cqos_tests.dir/test_bytes.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_bytes.cc.o.d"
  "/root/repo/tests/test_cactus.cc" "tests/CMakeFiles/cqos_tests.dir/test_cactus.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_cactus.cc.o.d"
  "/root/repo/tests/test_cactus_components.cc" "tests/CMakeFiles/cqos_tests.dir/test_cactus_components.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_cactus_components.cc.o.d"
  "/root/repo/tests/test_chaos.cc" "tests/CMakeFiles/cqos_tests.dir/test_chaos.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_chaos.cc.o.d"
  "/root/repo/tests/test_combinations.cc" "tests/CMakeFiles/cqos_tests.dir/test_combinations.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_combinations.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/cqos_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_config_service.cc" "tests/CMakeFiles/cqos_tests.dir/test_config_service.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_config_service.cc.o.d"
  "/root/repo/tests/test_crypto.cc" "tests/CMakeFiles/cqos_tests.dir/test_crypto.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_crypto.cc.o.d"
  "/root/repo/tests/test_dynamic_config.cc" "tests/CMakeFiles/cqos_tests.dir/test_dynamic_config.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_dynamic_config.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/cqos_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fault_tolerance.cc" "tests/CMakeFiles/cqos_tests.dir/test_fault_tolerance.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_fault_tolerance.cc.o.d"
  "/root/repo/tests/test_http.cc" "tests/CMakeFiles/cqos_tests.dir/test_http.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_http.cc.o.d"
  "/root/repo/tests/test_idl.cc" "tests/CMakeFiles/cqos_tests.dir/test_idl.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_idl.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/cqos_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/cqos_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_platform.cc" "tests/CMakeFiles/cqos_tests.dir/test_platform.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_platform.cc.o.d"
  "/root/repo/tests/test_request.cc" "tests/CMakeFiles/cqos_tests.dir/test_request.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_request.cc.o.d"
  "/root/repo/tests/test_rmi_iiop.cc" "tests/CMakeFiles/cqos_tests.dir/test_rmi_iiop.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_rmi_iiop.cc.o.d"
  "/root/repo/tests/test_security.cc" "tests/CMakeFiles/cqos_tests.dir/test_security.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_security.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/cqos_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_stub_skeleton.cc" "tests/CMakeFiles/cqos_tests.dir/test_stub_skeleton.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_stub_skeleton.cc.o.d"
  "/root/repo/tests/test_timeliness.cc" "tests/CMakeFiles/cqos_tests.dir/test_timeliness.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_timeliness.cc.o.d"
  "/root/repo/tests/test_validate.cc" "tests/CMakeFiles/cqos_tests.dir/test_validate.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_validate.cc.o.d"
  "/root/repo/tests/test_value.cc" "tests/CMakeFiles/cqos_tests.dir/test_value.cc.o" "gcc" "tests/CMakeFiles/cqos_tests.dir/test_value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cqos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/micro/CMakeFiles/cqos_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/cqos/CMakeFiles/cqos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/cqos_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cqos_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cqos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cactus/CMakeFiles/cqos_cactus.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cqos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
