file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stack.dir/bench_ablation_stack.cc.o"
  "CMakeFiles/bench_ablation_stack.dir/bench_ablation_stack.cc.o.d"
  "bench_ablation_stack"
  "bench_ablation_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
