file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_threadpool.dir/bench_ablation_threadpool.cc.o"
  "CMakeFiles/bench_ablation_threadpool.dir/bench_ablation_threadpool.cc.o.d"
  "bench_ablation_threadpool"
  "bench_ablation_threadpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_threadpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
