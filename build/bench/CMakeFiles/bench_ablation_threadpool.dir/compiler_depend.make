# Empty compiler generated dependencies file for bench_ablation_threadpool.
# This may be replaced when dependencies are built.
