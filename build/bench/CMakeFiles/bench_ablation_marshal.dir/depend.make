# Empty dependencies file for bench_ablation_marshal.
# This may be replaced when dependencies are built.
