file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_marshal.dir/bench_ablation_marshal.cc.o"
  "CMakeFiles/bench_ablation_marshal.dir/bench_ablation_marshal.cc.o.d"
  "bench_ablation_marshal"
  "bench_ablation_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
