#!/usr/bin/env bash
# Smoke-run the bench binaries and validate the BENCH_*.json files they emit
# (schema in bench/harness.h). Meant for CI: a reduced CQOS_BENCH_PAIRS makes
# this a correctness check of the reporting pipeline, not a performance
# measurement.
#
# Usage: tools/bench_smoke.sh [BUILD_DIR] [BENCH...]
#   BUILD_DIR default: build
#   BENCH...  subset of benches to run (default: all of them); lets a
#             focused CI job (e.g. overload-smoke) validate one binary
#             without building the rest.
set -euo pipefail

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
BENCHES=("$@")
if [ "${#BENCHES[@]}" -eq 0 ]; then
  BENCHES=(bench_table1 bench_table2 bench_table3 bench_degraded
           bench_overload bench_scale bench_tcp bench_reconfig)
fi
OUT_DIR="${CQOS_BENCH_OUT_DIR:-$BUILD_DIR/bench-out}"
mkdir -p "$OUT_DIR"
export CQOS_BENCH_OUT_DIR="$OUT_DIR"
export CQOS_BENCH_PAIRS="${CQOS_BENCH_PAIRS:-20}"

for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "bench_smoke: missing $bin — build the repo first" >&2
    exit 1
  fi
  echo "== $b (CQOS_BENCH_PAIRS=$CQOS_BENCH_PAIRS)"
  "$bin" >"$OUT_DIR/$b.log" 2>&1
  grep "wrote " "$OUT_DIR/$b.log" || {
    echo "bench_smoke: $b did not report writing its JSON" >&2
    tail -n 20 "$OUT_DIR/$b.log" >&2
    exit 1
  }
done

python3 - "$OUT_DIR" "${BENCHES[@]}" <<'EOF'
import json, sys
from pathlib import Path

out_dir = Path(sys.argv[1])
benches = set(sys.argv[2:])
# rows per table: t1 = 5 levels x 2 platforms; t2 = 7 configs x 2;
# t3 = 5 configs x 2 priority classes x 2.
expected_rows = {1: 10, 2: 14, 3: 20}
row_keys = {"platform", "label", "servers", "mean_ms", "p50_ms", "p99_ms",
            "cov_pct"}

def fail(msg):
    print(f"bench_smoke: {msg}", file=sys.stderr)
    sys.exit(1)

def check_rows(path, rows):
    for row in rows:
        missing = row_keys - row.keys()
        if missing:
            fail(f"{path}: row {row.get('label')} missing {sorted(missing)}")
        for k in ("mean_ms", "p50_ms", "p99_ms", "cov_pct"):
            if not isinstance(row[k], (int, float)) or row[k] < 0:
                fail(f"{path}: row {row['label']}: bad {k}={row[k]!r}")
        if row["p50_ms"] > row["p99_ms"]:
            fail(f"{path}: row {row['label']}: p50 > p99")
        if "class" in row and row["class"] not in ("high", "low",
                                                   "virtual", "real"):
            fail(f"{path}: row {row['label']}: bad class {row['class']!r}")

for t, want in expected_rows.items():
    if f"bench_table{t}" not in benches:
        continue
    path = out_dir / f"BENCH_table{t}.json"
    if not path.exists():
        fail(f"{path} missing")
    doc = json.loads(path.read_text())
    if doc.get("table") != t:
        fail(f"{path}: table={doc.get('table')}, want {t}")
    if not isinstance(doc.get("pairs"), int) or doc["pairs"] <= 0:
        fail(f"{path}: bad pairs field")
    if not isinstance(doc.get("warmup"), int) or doc["warmup"] < 0:
        fail(f"{path}: bad warmup field")
    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != want:
        fail(f"{path}: {len(rows or [])} rows, want {want}")
    check_rows(path, rows)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: metrics snapshot missing")
    counters = metrics.get("counters", {})
    if counters.get("net.sent.msgs", 0) <= 0:
        fail(f"{path}: net.sent.msgs counter missing or zero")
    if not any(n.startswith("micro.") for n in metrics.get("histograms", {})):
        fail(f"{path}: no micro.* handler histograms in snapshot")
    print(f"{path.name}: {len(rows)} rows OK, "
          f"{len(counters)} counters, {len(metrics['histograms'])} histograms")

# BENCH_degraded.json: 3 configs x clean/degraded, named-report schema
# ("bench" in place of "table"), and the degraded rows must show the chaos
# engine actually ran (net.fault.* counters).
if "bench_degraded" in benches:
    path = out_dir / "BENCH_degraded.json"
    if not path.exists():
        fail(f"{path} missing")
    doc = json.loads(path.read_text())
    if doc.get("bench") != "degraded":
        fail(f"{path}: bench={doc.get('bench')!r}, want 'degraded'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != 6:
        fail(f"{path}: {len(rows or [])} rows, want 6")
    labels = {row.get("label") for row in rows}
    for cfg in ("retransmit-dedup", "passive-rep", "active-total"):
        for kind in ("clean", "degraded"):
            if f"{cfg}/{kind}" not in labels:
                fail(f"{path}: missing row {cfg}/{kind}")
    check_rows(path, rows)
    counters = doc.get("metrics", {}).get("counters", {})
    if counters.get("net.fault.duplicate", 0) <= 0:
        fail(f"{path}: net.fault.duplicate counter missing — "
             "chaos plan never ran")
    if counters.get("net.fault.reorder.held", 0) <= 0:
        fail(f"{path}: net.fault.reorder.held counter missing — "
             "chaos plan never ran")
    print(f"{path.name}: {len(rows)} rows OK")

# BENCH_overload.json: two-class overload run. Three class-tagged rows, and
# the metrics must prove the protection stack engaged: the admission layer
# rejected best-effort overflow (not silently queued it), and the traffic-
# class dispatch pools saw both classes.
if "bench_overload" in benches:
    path = out_dir / "BENCH_overload.json"
    if not path.exists():
        fail(f"{path} missing")
    doc = json.loads(path.read_text())
    if doc.get("bench") != "overload":
        fail(f"{path}: bench={doc.get('bench')!r}, want 'overload'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != 3:
        fail(f"{path}: {len(rows or [])} rows, want 3")
    tagged = {(row.get("label"), row.get("class")) for row in rows}
    for want_row in (("uncontended", "high"), ("overload", "high"),
                     ("overload", "low")):
        if want_row not in tagged:
            fail(f"{path}: missing row {want_row}")
    check_rows(path, rows)
    counters = doc.get("metrics", {}).get("counters", {})
    if counters.get("cqos.admission.rejected.low", 0) <= 0:
        fail(f"{path}: cqos.admission.rejected.low is zero — "
             "overload never triggered admission control")
    if not any(".high.enqueued" in n and v > 0 for n, v in counters.items()):
        fail(f"{path}: no high-class dispatch enqueues recorded")
    if not any(".low.enqueued" in n and v > 0 for n, v in counters.items()):
        fail(f"{path}: no low-class dispatch enqueues recorded")
    by_row = {(r["label"], r.get("class")): r for r in rows}
    base = by_row[("uncontended", "high")]["p99_ms"]
    over = by_row[("overload", "high")]["p99_ms"]
    if base > 0 and over > 2.0 * base:
        fail(f"{path}: high-priority p99 degraded {over / base:.2f}x under "
             "overload (acceptance: <= 2x)")
    print(f"{path.name}: {len(rows)} rows OK, "
          f"{counters['cqos.admission.rejected.low']} admission rejects")

# BENCH_scale.json: virtual-time scale + send-path contention. The virtual
# rows must carry a positive wall-per-event cost, and the exported scale.*
# counters must prove the acceptance scenario ran: >= 100k modeled clients,
# a non-trivial event count, and bit-identical same-seed runs.
if "bench_scale" in benches:
    path = out_dir / "BENCH_scale.json"
    if not path.exists():
        fail(f"{path} missing")
    doc = json.loads(path.read_text())
    if doc.get("bench") != "scale":
        fail(f"{path}: bench={doc.get('bench')!r}, want 'scale'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != 5:
        fail(f"{path}: {len(rows or [])} rows, want 5")
    labels = {row.get("label") for row in rows}
    for want_label in ("virtual-zipf-flash-100k",
                       "virtual-rolling-partition-100k",
                       "contend-1", "contend-4", "contend-4-serialized"):
        if want_label not in labels:
            fail(f"{path}: missing row {want_label}")
    check_rows(path, rows)
    for row in rows:
        if row["label"].startswith("virtual-") and row["mean_ms"] <= 0:
            fail(f"{path}: row {row['label']}: wall-per-event is zero")
    counters = doc.get("metrics", {}).get("counters", {})
    if counters.get("scale.clients", 0) < 100000:
        fail(f"{path}: scale.clients={counters.get('scale.clients')} — "
             "the 100k-modeled-client scenario never ran")
    if counters.get("scale.events", 0) <= 100000:
        fail(f"{path}: scale.events={counters.get('scale.events')} — "
             "suspiciously few virtual events dispatched")
    if counters.get("scale.runs_match", 0) < 1:
        fail(f"{path}: scale.runs_match=0 — same-seed runs diverged")
    print(f"{path.name}: {len(rows)} rows OK, "
          f"{counters['scale.events']} virtual events, runs match")

# BENCH_tcp.json: real-socket transport rows. All four rows must be present
# (the sim-raw calibration row included), and the metrics must prove frames
# actually crossed the kernel: the TCP transport's receive counters only
# move when the epoll loop decodes a frame off a real socket.
if "bench_tcp" in benches:
    path = out_dir / "BENCH_tcp.json"
    if not path.exists():
        fail(f"{path} missing")
    doc = json.loads(path.read_text())
    if doc.get("bench") != "tcp":
        fail(f"{path}: bench={doc.get('bench')!r}, want 'tcp'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != 4:
        fail(f"{path}: {len(rows or [])} rows, want 4")
    keyed = {(row.get("platform"), row.get("label")) for row in rows}
    for want_row in (("tcp", "loopback-raw"), ("tcp", "multiproc-raw"),
                     ("sim", "sim-raw"), ("tcp", "loopback-rmi-secured")):
        if want_row not in keyed:
            fail(f"{path}: missing row {want_row}")
    check_rows(path, rows)
    for row in rows:
        if row["mean_ms"] <= 0:
            fail(f"{path}: row {row['label']}: mean_ms is zero")
    counters = doc.get("metrics", {}).get("counters", {})
    if counters.get("net.recv.msgs", 0) <= 0:
        fail(f"{path}: net.recv.msgs is zero — no frame ever crossed "
             "a real socket")
    if counters.get("net.sent.msgs", 0) <= 0:
        fail(f"{path}: net.sent.msgs is zero")
    print(f"{path.name}: {len(rows)} rows OK, "
          f"{counters['net.recv.msgs']} frames received off real sockets")

# BENCH_reconfig.json: live-reconfiguration cost. Three rows (an unloaded
# swap, a swap under four hammer threads, and the caller-observed latency of
# that traffic), and the counters must prove the quiescence protocol really
# ran: swaps happened, concurrent arrivals parked against the gate and were
# released, and nothing rolled back.
if "bench_reconfig" in benches:
    path = out_dir / "BENCH_reconfig.json"
    if not path.exists():
        fail(f"{path} missing")
    doc = json.loads(path.read_text())
    if doc.get("bench") != "reconfig":
        fail(f"{path}: bench={doc.get('bench')!r}, want 'reconfig'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != 3:
        fail(f"{path}: {len(rows or [])} rows, want 3")
    keyed = {(row.get("platform"), row.get("label")) for row in rows}
    for want_label in ("idle-swap", "loaded-swap", "call-during-swap"):
        if ("sim", want_label) not in keyed:
            fail(f"{path}: missing row {want_label}")
    check_rows(path, rows)
    for row in rows:
        if row["mean_ms"] <= 0:
            fail(f"{path}: row {row['label']}: mean_ms is zero")
    counters = doc.get("metrics", {}).get("counters", {})
    if counters.get("cqos.reconfig.swaps", 0) <= 0:
        fail(f"{path}: cqos.reconfig.swaps is zero — no swap ever ran")
    if counters.get("cqos.reconfig.released.total", 0) <= 0:
        fail(f"{path}: cqos.reconfig.released.total is zero — no arrival "
             "ever parked against the quiesce gate and released")
    if counters.get("cqos.reconfig.rollback", 0) != 0:
        fail(f"{path}: cqos.reconfig.rollback nonzero — a swap failed "
             "and rolled back during the bench")
    print(f"{path.name}: {len(rows)} rows OK, "
          f"{counters['cqos.reconfig.swaps']} swaps, "
          f"{counters['cqos.reconfig.released.total']} parked arrivals "
          "released")

print("bench_smoke: all BENCH JSON files valid")
EOF
