// cqos_idlc: the Cactus IDL compiler CLI.
//
// Usage: cqos_idlc <input.idl> <output.h>
//
// Reads an IDL file (see src/idl/ast.h for the supported subset) and writes
// a C++ header with typed CQoS stub and servant-base classes per interface.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "idl/codegen.h"
#include "idl/parser.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: cqos_idlc <input.idl> <output.h>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cqos_idlc: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    cqos::idl::Document doc = cqos::idl::parse(source.str());
    cqos::idl::CodegenOptions opts;
    std::string header = cqos::idl::generate_header(doc, opts);
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "cqos_idlc: cannot write " << argv[2] << "\n";
      return 1;
    }
    out << header;
    std::size_t ops = 0;
    for (const auto& iface : doc.interfaces) ops += iface.operations.size();
    std::cerr << "cqos_idlc: " << doc.interfaces.size() << " interface(s), "
              << ops << " operation(s) -> " << argv[2] << "\n";
    return 0;
  } catch (const cqos::Error& e) {
    std::cerr << "cqos_idlc: " << e.what() << "\n";
    return 1;
  }
}
