#!/usr/bin/env bash
# Bounded chaos-soak run for CI: the full (config x sound-profile) matrix of
# the invariant-checked soak harness with a fixed number of seeds per cell.
# Every run is reproducible — a failure prints a `chaos_soak --config=...
# --profile=... --seed=N` command that re-executes the identical fault
# schedule.
#
# Usage: tools/chaos_smoke.sh [BUILD_DIR]   (default: build)
#   CQOS_CHAOS_SEEDS  seeds per (config, profile) cell (default 2)
set -euo pipefail

BUILD_DIR="${1:-build}"
SEEDS="${CQOS_CHAOS_SEEDS:-2}"

bin="$BUILD_DIR/tests/soak/chaos_soak"
if [ ! -x "$bin" ]; then
  echo "chaos_smoke: missing $bin — build the repo first" >&2
  exit 1
fi

echo "== chaos_soak matrix (seeds per cell: $SEEDS)"
"$bin" --seeds="$SEEDS"

echo "== chaos_soak virtual-time modeled-load profiles (seeds per cell: $SEEDS)"
"$bin" --virtual --seeds="$SEEDS"
