// cqos_config: configuration checker CLI (the CactusBuilder-like tool role).
//
// Usage: cqos_config <config-file>
//
// Parses a QoS configuration, resolves every micro-protocol against the
// standard registry, applies composition rules and prints the resolved
// stacks. Exit codes: 0 valid, 1 errors, 2 usage/IO.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "cqos/config.h"
#include "micro/standard.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: cqos_config <config-file>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cqos_config: cannot open " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream source;
  source << in.rdbuf();

  cqos::micro::register_standard_micro_protocols();
  try {
    cqos::QosConfig config = cqos::QosConfig::parse(source.str());
    std::cout << "resolved configuration:\n" << config.serialize();

    cqos::ValidationResult result = cqos::validate(config);
    for (const auto& warning : result.warnings) {
      std::cout << "warning: " << warning << "\n";
    }
    for (const auto& error : result.errors) {
      std::cout << "error: " << error << "\n";
    }
    if (!result.ok()) {
      std::cout << "INVALID (" << result.errors.size() << " error(s))\n";
      return 1;
    }
    std::cout << "OK"
              << (result.warnings.empty()
                      ? ""
                      : " (with " + std::to_string(result.warnings.size()) +
                            " warning(s))")
              << "\n";
    return 0;
  } catch (const cqos::Error& e) {
    std::cerr << "cqos_config: " << e.what() << "\n";
    return 1;
  }
}
