#!/usr/bin/env python3
"""Compare a freshly generated BENCH_table JSON against a committed baseline.

Rows are matched by (platform, label[, class]); a row regresses when its
mean_ms exceeds the baseline mean by more than --tolerance (default 25%).
Rows present only on one side are reported: a missing current row fails
(coverage must not silently shrink), a new current row is informational.

The cluster benches spend most of each round trip in *simulated* network
latency, which is deterministic, so even the reduced CI iteration count
(CQOS_BENCH_PAIRS=20) yields means stable enough for a 25% gate.

Usage: tools/bench_compare.py BASELINE CURRENT [--tolerance 0.25]
Exit status: 0 ok, 1 regression or structural mismatch.
"""

import argparse
import json
import sys
from pathlib import Path


def row_key(row):
    key = (row.get("platform"), row.get("label"))
    if "class" in row:
        key += (row["class"],)
    return key


def load_rows(path):
    doc = json.loads(Path(path).read_text())
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"bench_compare: {path}: no rows")
    out = {}
    for row in rows:
        key = row_key(row)
        if key in out:
            sys.exit(f"bench_compare: {path}: duplicate row {key}")
        out[key] = row
    return doc, out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional mean_ms increase (default 0.25)")
    args = ap.parse_args()

    base_doc, base = load_rows(args.baseline)
    cur_doc, cur = load_rows(args.current)
    if base_doc.get("table") != cur_doc.get("table"):
        sys.exit(f"bench_compare: table mismatch: baseline table "
                 f"{base_doc.get('table')}, current {cur_doc.get('table')}")

    failures = []
    width = max(len(" / ".join(str(p) for p in k)) for k in base)
    print(f"{'row':<{width}}  {'base_ms':>9}  {'cur_ms':>9}  {'delta':>8}")
    for key in sorted(base):
        name = " / ".join(str(p) for p in key)
        if key not in cur:
            failures.append(f"row missing from current run: {name}")
            continue
        b = float(base[key]["mean_ms"])
        c = float(cur[key]["mean_ms"])
        delta = (c - b) / b if b > 0 else 0.0
        mark = ""
        if b > 0 and delta > args.tolerance:
            failures.append(
                f"{name}: mean {c:.4f} ms vs baseline {b:.4f} ms "
                f"(+{delta:.0%} > {args.tolerance:.0%})")
            mark = "  <-- REGRESSION"
        print(f"{name:<{width}}  {b:9.4f}  {c:9.4f}  {delta:+8.1%}{mark}")
    for key in sorted(set(cur) - set(base)):
        print(f"{' / '.join(str(p) for p in key):<{width}}  "
              f"{'-':>9}  {float(cur[key]['mean_ms']):9.4f}  (new row)")

    if failures:
        print("bench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(base)} rows within "
          f"{args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
