#!/usr/bin/env bash
# Full verification driver for the CQoS repo: builds and runs the test
# suite under each sanitizer mode, plus static analysis where the tools
# exist.
#
# Usage: tools/check.sh [mode ...]
#   modes: default | asan | tsan | lint-only     (default: all three builds)
#
# Each build mode gets its own out-of-tree build directory (build-check-*)
# so the developer's own build/ is never touched. Exit status is non-zero
# if ANY stage fails; every stage is reported at the end.
set -u

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
JOBS="$(nproc 2>/dev/null || echo 4)"
SUPP_DIR="$REPO_ROOT/tools/sanitizers"

MODES=("$@")
if [ ${#MODES[@]} -eq 0 ]; then
  MODES=(default asan tsan)
fi

declare -a RESULTS=()
FAILED=0

note() { printf '\n==== %s ====\n' "$*"; }

record() {
  # record <stage> <status> — only FAIL marks the run failed; "skipped
  # (no clang++)" etc. are informational.
  RESULTS+=("$(printf '%-28s %s' "$1" "$2")")
  [ "$2" = "FAIL" ] && FAILED=1
  return 0
}

run_build_and_test() {
  # run_build_and_test <stage-name> <build-dir> <env...> -- <cmake args...>
  local stage="$1" dir="$2"
  shift 2
  local -a envs=()
  while [ "$1" != "--" ]; do envs+=("$1"); shift; done
  shift
  note "$stage: configure + build ($dir)"
  if ! cmake -B "$dir" -S "$REPO_ROOT" "$@" >"$dir.configure.log" 2>&1; then
    tail -40 "$dir.configure.log"
    record "$stage (configure)" FAIL
    return
  fi
  if ! cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1; then
    tail -40 "$dir.build.log"
    record "$stage (build)" FAIL
    return
  fi
  note "$stage: ctest"
  if (cd "$dir" && env "${envs[@]}" ctest --output-on-failure -j "$JOBS") ; then
    record "$stage" ok
  else
    record "$stage (ctest)" FAIL
  fi
}

for mode in "${MODES[@]}"; do
  case "$mode" in
    default)
      run_build_and_test "default" "$REPO_ROOT/build-check-default" \
        "IGNORE=1" -- -DCQOS_SANITIZE=
      ;;
    asan)
      # address implies undefined (see root CMakeLists.txt).
      run_build_and_test "asan+ubsan" "$REPO_ROOT/build-check-asan" \
        "ASAN_OPTIONS=detect_leaks=1:suppressions=$SUPP_DIR/asan.supp" \
        "UBSAN_OPTIONS=print_stacktrace=1:suppressions=$SUPP_DIR/ubsan.supp" \
        -- -DCQOS_SANITIZE=address
      ;;
    tsan)
      run_build_and_test "tsan" "$REPO_ROOT/build-check-tsan" \
        "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1:suppressions=$SUPP_DIR/tsan.supp" \
        -- -DCQOS_SANITIZE=thread
      ;;
    lint-only)
      ;;  # falls through to the shared lint stage below
    *)
      echo "unknown mode: $mode (expected default|asan|tsan|lint-only)" >&2
      exit 2
      ;;
  esac
done

# --- Static analysis (shared across modes) --------------------------------

# cqos_lint always runs: build it in whichever check dir exists, or default.
LINT_DIR="$REPO_ROOT/build-check-default"
[ -d "$LINT_DIR" ] || LINT_DIR="$REPO_ROOT/build-check-lint"
note "cqos_lint"
if cmake -B "$LINT_DIR" -S "$REPO_ROOT" >/dev/null 2>&1 \
   && cmake --build "$LINT_DIR" -j "$JOBS" --target cqos_lint >/dev/null 2>&1 \
   && "$LINT_DIR/src/tools/cqos_lint" --root "$REPO_ROOT"; then
  record "cqos_lint" ok
else
  record "cqos_lint" FAIL
fi

# Clang-only stages: thread-safety analysis and clang-tidy. Skipped (not
# failed) when the toolchain isn't installed — CI runs them where it is.
if command -v clang++ >/dev/null 2>&1; then
  note "clang -Werror=thread-safety"
  if cmake -B "$REPO_ROOT/build-check-clang" -S "$REPO_ROOT" \
        -DCMAKE_CXX_COMPILER=clang++ >/dev/null 2>&1 \
     && cmake --build "$REPO_ROOT/build-check-clang" -j "$JOBS" \
        >"$REPO_ROOT/build-check-clang.log" 2>&1; then
    record "clang thread-safety" ok
  else
    tail -40 "$REPO_ROOT/build-check-clang.log"
    record "clang thread-safety" FAIL
  fi
else
  record "clang thread-safety" "skipped (no clang++)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy (src/common src/cactus)"
  TIDY_DB="$REPO_ROOT/build-check-default"
  [ -f "$TIDY_DB/compile_commands.json" ] || \
    cmake -B "$TIDY_DB" -S "$REPO_ROOT" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null 2>&1
  if find src/common src/cactus -name '*.cc' -print0 \
       | xargs -0 clang-tidy -p "$TIDY_DB" --quiet --warnings-as-errors='*'; then
    record "clang-tidy" ok
  else
    record "clang-tidy" FAIL
  fi
else
  record "clang-tidy" "skipped (no clang-tidy)"
fi

note "summary"
for r in "${RESULTS[@]}"; do echo "  $r"; done
exit "$FAILED"
