// cqos_lint: micro-protocol discipline linter for the CQoS suite.
//
// The composition rules the paper relies on (§3.5) are easy to break
// silently: a handler bound but never unbound leaks across dynamic
// reconfigurations, a typo'd event name is simply never delivered, and a
// blocking wait inside a handler stalls the composite's dispatch thread.
// This tool enforces those invariants mechanically over src/micro/:
//
//   1. balanced-bind  — handlers must be registered via
//      MicroBase::bind_tracked(), never raw CompositeProtocol::bind();
//      shutdown() overrides must call unbind_all()/MicroBase::shutdown().
//   2. event-names    — every string-literal event bound in src/micro must
//      be raised somewhere in src/micro and vice versa (dead handlers /
//      dead raises); ev::k* names must exist in src/cqos/events.h.
//      Standard-vocabulary events and ev::ctl(...) control events are
//      anchored by the runtime (cactus_client/cactus_server/skeleton) and
//      are exempt from the raise-side check.
//   3. no-dispatch-wait — no indefinite .wait() / ->wait() inside handler
//      code (timed wait(ms(...)) overloads are allowed).
//   4. cfg-factories  — every protocol named in examples/sample.cfg must
//      map to a factory registered for that side in src/micro/standard.cc.
//   5. manifest-sync  — every class that defines
//      init(cactus::CompositeProtocol&) must define a manifest() in the same
//      file; every event the source binds/raises (statically nameable) must
//      be declared in the manifest via .binds()/.raises(); every event the
//      manifest declares must still be mentioned somewhere in the class's
//      method bodies (stale entries are drift too); and every reg.add()
//      in src/micro/standard.cc must pass a manifest. This pins the effect
//      models the composition verifier (cqos/verify.h) analyzes to what the
//      handlers actually do — drift is a build failure, not a latent
//      misanalysis.
//   6. transport-seam — code above the net/ library (src/ minus src/net/,
//      bench/, examples/) must not construct SimNetwork/TcpTransport
//      directly; deployments go through net::make_transport(TransportConfig)
//      so they stay transport-neutral. Sim-only drivers waive a line with
//      `// cqos-lint: allow-transport-construction`.
//   7. reconfig-seam  — src/ code outside the reconfiguration seam
//      (cactus/composite.*, cqos/reconfig.cc, cqos/endpoint.cc,
//      cqos/config.cc) must not mutate a composite's handler graph
//      directly (.add_protocol / .add_micro_protocol / .extract_protocols /
//      .install call sites): a stack assembled behind the QuiesceGate's
//      back cannot be drained, swapped or rolled back, so mutation goes
//      through QosEndpoint::Handle::reconfigure(). Deliberate bypasses
//      (boot-time installs into a not-yet-serving composite) waive a line
//      with `// cqos-lint: allow-reconfig-seam`.
//
// Usage: cqos_lint --root <repo_root> [--micro <dir>] [--cfg <file>]
//                  [--seam <dir>] [--reconfig-seam <dir>]
//   --micro / --cfg default to src/micro and examples/sample.cfg under
//   the root; --seam / --reconfig-seam replace the default scan roots of
//   the transport-seam / reconfig-seam rules. The overrides exist so the
//   self-test fixtures under tools/lint_fixtures/ can exercise each rule
//   (registered WILL_FAIL).
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

int g_errors = 0;

void fail(const std::string& file, const std::string& rule,
          const std::string& msg) {
  std::cerr << file << ": [" << rule << "] " << msg << "\n";
  ++g_errors;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::cerr << "cqos_lint: cannot read " << p << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strip // and /* */ comments and string *contents we do not care about
/// stay intact — we need event-name literals, so strings are preserved.
std::string strip_comments(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_line = false, in_block = false, in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    char n = i + 1 < s.size() ? s[i + 1] : '\0';
    if (in_line) {
      if (c == '\n') { in_line = false; out.push_back(c); }
      continue;
    }
    if (in_block) {
      if (c == '*' && n == '/') { in_block = false; ++i; }
      else if (c == '\n') out.push_back(c);  // keep line numbers stable
      continue;
    }
    if (in_str) {
      out.push_back(c);
      if (c == '\\') { if (i + 1 < s.size()) out.push_back(s[++i]); }
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') { in_str = true; out.push_back(c); continue; }
    if (c == '/' && n == '/') { in_line = true; continue; }
    if (c == '/' && n == '*') { in_block = true; ++i; continue; }
    out.push_back(c);
  }
  return out;
}

/// Collapse all whitespace runs to single spaces (multi-line calls become
/// scannable) while keeping a parallel map back to original line numbers.
struct FlatText {
  std::string text;
  std::vector<int> line;  // line[i] = 1-based source line of text[i]
};

FlatText flatten(const std::string& s) {
  FlatText f;
  int ln = 1;
  bool pending_space = false;
  for (char c : s) {
    if (c == '\n') ++ln;
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !f.text.empty()) {
      f.text.push_back(' ');
      f.line.push_back(ln);
    }
    pending_space = false;
    f.text.push_back(c);
    f.line.push_back(ln);
  }
  return f;
}

int line_at(const FlatText& f, std::size_t pos) {
  return pos < f.line.size() ? f.line[pos] : -1;
}

/// Extract the first argument of a call starting right after `(`.
/// Handles nested parens (ev::ctl(kFoo)) and string literals.
std::string first_arg(const std::string& s, std::size_t open_paren) {
  int depth = 0;
  bool in_str = false;
  std::string arg;
  for (std::size_t i = open_paren; i < s.size(); ++i) {
    char c = s[i];
    if (in_str) {
      arg.push_back(c);
      if (c == '\\') { if (i + 1 < s.size()) arg.push_back(s[++i]); }
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') { in_str = true; if (depth > 0) arg.push_back(c); continue; }
    if (c == '(') { if (depth++ > 0) arg.push_back(c); continue; }
    if (c == ')') { if (--depth == 0) break; arg.push_back(c); continue; }
    if (c == ',' && depth == 1) break;
    if (depth > 0) arg.push_back(c);
  }
  // trim
  auto b = arg.find_first_not_of(' ');
  auto e = arg.find_last_not_of(' ');
  if (b == std::string::npos) return "";
  return arg.substr(b, e - b + 1);
}

/// If `expr` is a plain string literal, return its contents; else "".
std::string literal_of(const std::string& expr) {
  if (expr.size() >= 2 && expr.front() == '"' && expr.back() == '"')
    return expr.substr(1, expr.size() - 2);
  return "";
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Find each occurrence of `needle` in `hay`. When the needle starts with
/// an identifier character, require a non-identifier character before it
/// (so "raise(" does not match "do_raise(" and "bind_tracked(" does not
/// match "rebind_tracked("); needles starting with '.' or '-' are member
/// accesses and are matched as-is.
std::vector<std::size_t> find_calls(const std::string& hay,
                                    const std::string& needle) {
  std::vector<std::size_t> out;
  const bool word_start = is_identifier_char(needle.front());
  std::size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    if (!word_start || pos == 0 || !is_identifier_char(hay[pos - 1]))
      out.push_back(pos);
    pos += 1;
  }
  return out;
}

struct EventUse {
  std::string file;
  int line;
};

struct Corpus {
  // literal event name -> where bound / raised
  std::map<std::string, std::vector<EventUse>> literal_binds;
  std::map<std::string, std::vector<EventUse>> literal_raises;
  // ev::kFoo symbol -> where used
  std::map<std::string, std::vector<EventUse>> symbol_uses;
};

// ---------------------------------------------------------------------------
// Rule 1: balanced-bind discipline.
// ---------------------------------------------------------------------------
void check_bind_discipline(const std::string& fname, const FlatText& f) {
  // base.h hosts bind_tracked() itself — the one legal raw-bind site.
  if (fs::path(fname).filename() == "base.h") return;

  for (const char* pat : {"proto.bind(", ".protocol().bind(", "proto->bind("}) {
    for (std::size_t pos : find_calls(f.text, pat)) {
      fail(fname + ":" + std::to_string(line_at(f, pos)), "balanced-bind",
           std::string("raw CompositeProtocol::bind() — use "
                       "MicroBase::bind_tracked() so teardown stays "
                       "balanced (matched '") + pat + "')");
    }
  }

  // shutdown() overrides must keep the unbind side of the ledger.
  std::size_t pos = 0;
  while ((pos = f.text.find("::shutdown()", pos)) != std::string::npos) {
    std::size_t body_open = f.text.find('{', pos);
    std::size_t sig_end = f.text.find(';', pos);
    pos += 1;
    if (body_open == std::string::npos) continue;
    if (sig_end != std::string::npos && sig_end < body_open) continue;  // decl
    // Walk the brace-balanced body.
    int depth = 0;
    std::size_t body_close = body_open;
    for (std::size_t i = body_open; i < f.text.size(); ++i) {
      if (f.text[i] == '{') ++depth;
      else if (f.text[i] == '}' && --depth == 0) { body_close = i; break; }
    }
    std::string body = f.text.substr(body_open, body_close - body_open + 1);
    if (body.find("unbind_all(") == std::string::npos &&
        body.find("MicroBase::shutdown(") == std::string::npos) {
      fail(fname + ":" + std::to_string(line_at(f, body_open)),
           "balanced-bind",
           "shutdown() override neither calls unbind_all() nor "
           "MicroBase::shutdown() — tracked handlers would leak");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2 (collection): record bind/raise event names.
// ---------------------------------------------------------------------------
void collect_events(const std::string& fname, const FlatText& f, Corpus& c) {
  auto record = [&](const std::string& needle, bool is_bind) {
    for (std::size_t pos : find_calls(f.text, needle)) {
      std::size_t open = pos + needle.size() - 1;
      std::string arg;
      if (needle.find("bind_tracked") != std::string::npos) {
        // bind_tracked(proto, EVENT, ...) — the event is the SECOND arg;
        // re-anchor extraction just past the first comma.
        std::size_t comma = f.text.find(',', open);
        if (comma == std::string::npos) continue;
        arg = first_arg("(" + f.text.substr(comma + 1), 0);
      } else {
        arg = first_arg(f.text, open);
      }
      EventUse use{fname, line_at(f, pos)};
      std::string lit = literal_of(arg);
      if (!lit.empty()) {
        (is_bind ? c.literal_binds : c.literal_raises)[lit].push_back(use);
      } else if (arg.rfind("ev::ctl(", 0) == 0) {
        // Control events are anchored by the runtime ctl dispatcher.
      } else if (arg.rfind("ev::k", 0) == 0 &&
                 std::all_of(arg.begin() + 4, arg.end(), is_identifier_char)) {
        c.symbol_uses[arg.substr(4)].push_back(use);  // "kFoo"
      } else {
        // Computed name (ternary, variable): can't check statically.
      }
    }
  };
  record("bind_tracked(", /*is_bind=*/true);
  record("raise(", /*is_bind=*/false);
  record("raise_async(", /*is_bind=*/false);
  record("raise_delayed(", /*is_bind=*/false);
}

// ---------------------------------------------------------------------------
// Rule 3: no indefinite wait on the dispatch thread.
// ---------------------------------------------------------------------------
void check_no_blocking_wait(const std::string& fname, const FlatText& f) {
  for (const char* pat : {".wait()", "->wait()"}) {
    for (std::size_t pos : find_calls(f.text, pat)) {
      fail(fname + ":" + std::to_string(line_at(f, pos)), "no-dispatch-wait",
           "indefinite wait() in micro-protocol code — handlers run on the "
           "composite's dispatch thread; use a timed wait(duration)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2 (verdicts): cross-check the collected event names.
// ---------------------------------------------------------------------------
std::set<std::string> parse_event_vocab(const fs::path& events_h) {
  // Matches: inline constexpr std::string_view kFoo = "...";
  std::set<std::string> vocab;
  FlatText f = flatten(strip_comments(read_file(events_h)));
  std::size_t pos = 0;
  while ((pos = f.text.find("std::string_view k", pos)) != std::string::npos) {
    std::size_t b = f.text.find('k', pos + 17);
    std::size_t e = b;
    while (e < f.text.size() && is_identifier_char(f.text[e])) ++e;
    vocab.insert(f.text.substr(b, e - b));
    pos = e;
  }
  return vocab;
}

void check_events(const Corpus& c, const std::set<std::string>& vocab) {
  for (const auto& [name, uses] : c.symbol_uses) {
    if (!vocab.count(name)) {
      for (const auto& u : uses)
        fail(u.file + ":" + std::to_string(u.line), "event-names",
             "ev::" + name + " is not declared in src/cqos/events.h");
    }
  }
  for (const auto& [name, uses] : c.literal_binds) {
    if (!c.literal_raises.count(name)) {
      for (const auto& u : uses)
        fail(u.file + ":" + std::to_string(u.line), "event-names",
             "handler bound to \"" + name +
                 "\" but nothing in src/micro raises it (dead handler)");
    }
  }
  for (const auto& [name, uses] : c.literal_raises) {
    if (!c.literal_binds.count(name)) {
      for (const auto& u : uses)
        fail(u.file + ":" + std::to_string(u.line), "event-names",
             "\"" + name +
                 "\" is raised but no handler in src/micro binds it "
                 "(dead raise)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: configuration names map to registered factories.
// ---------------------------------------------------------------------------
struct Registry {
  std::set<std::string> client;
  std::set<std::string> server;
};

Registry parse_registry(const fs::path& standard_cc) {
  Registry reg;
  FlatText f = flatten(strip_comments(read_file(standard_cc)));
  std::size_t pos = 0;
  while ((pos = f.text.find("reg.add(", pos)) != std::string::npos) {
    std::size_t open = pos + 7;
    std::string side = first_arg(f.text, open);
    std::size_t q1 = f.text.find('"', open);
    std::size_t q2 = q1 == std::string::npos ? q1 : f.text.find('"', q1 + 1);
    pos = open + 1;
    if (q2 == std::string::npos) continue;
    std::string name = f.text.substr(q1 + 1, q2 - q1 - 1);
    if (side.find("kClient") != std::string::npos) reg.client.insert(name);
    else if (side.find("kServer") != std::string::npos) reg.server.insert(name);
  }
  return reg;
}

void check_cfg(const fs::path& cfg_path, const Registry& reg) {
  std::ifstream in(cfg_path);
  if (!in) {
    std::cerr << "cqos_lint: cannot read " << cfg_path << "\n";
    std::exit(2);
  }
  std::string line;
  int ln = 0;
  const std::set<std::string>* side = nullptr;
  const char* side_name = "";
  std::string pending;  // protocol list may continue across lines
  auto flush = [&](int at_line) {
    if (side == nullptr) { pending.clear(); return; }
    // Split on commas OUTSIDE parameter parens:
    //   "timed_sched(period_ms=5, threshold=8)" is one item.
    std::vector<std::string> items;
    std::string cur;
    int depth = 0;
    for (char ch : pending) {
      if (ch == '(') ++depth;
      else if (ch == ')') { if (depth > 0) --depth; }
      if (ch == ',' && depth == 0) { items.push_back(cur); cur.clear(); }
      else cur.push_back(ch);
    }
    items.push_back(cur);
    for (const std::string& item : items) {
      // strip parameters and whitespace: "timed_sched(period_ms=5..." -> name
      std::string name;
      for (char ch : item) {
        if (ch == '(') break;
        if (!std::isspace(static_cast<unsigned char>(ch))) name.push_back(ch);
      }
      if (name.empty()) continue;
      if (!side->count(name)) {
        fail(cfg_path.string() + ":" + std::to_string(at_line),
             "cfg-factories",
             std::string("protocol '") + name + "' is not registered for "
                 "side '" + side_name + "' in src/micro/standard.cc");
      }
    }
    pending.clear();
  };
  while (std::getline(in, line)) {
    ++ln;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    auto colon = line.find(':');
    std::string head;
    if (colon != std::string::npos) {
      head = line.substr(0, colon);
      head.erase(std::remove_if(head.begin(), head.end(),
                                [](unsigned char ch) {
                                  return std::isspace(ch);
                                }),
                 head.end());
    }
    if (head == "client" || head == "server") {
      flush(ln - 1);
      side = head == "client" ? &reg.client : &reg.server;
      side_name = head == "client" ? "client" : "server";
      pending = line.substr(colon + 1);
    } else {
      pending += line;
    }
    // A list continues iff the (comment-stripped) line ends with ','.
    auto last = pending.find_last_not_of(" \t\r");
    if (last == std::string::npos || pending[last] != ',') {
      flush(ln);
      side = nullptr;
    }
  }
  flush(ln);
}

// ---------------------------------------------------------------------------
// Rule 5: manifest-sync.
// ---------------------------------------------------------------------------
struct MethodDef {
  std::string method;
  std::string params;  // text inside the parameter parens
  std::string body;    // text inside the outer braces
  int line;
};

/// Walk a brace-balanced body starting at `open` ('{'); returns one past the
/// matching close brace, or npos. Braces inside string literals are skipped.
std::size_t body_end(const std::string& s, std::size_t open) {
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = open; i < s.size(); ++i) {
    char c = s[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{') ++depth;
    else if (c == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Qualified method definitions (`X::method(params) ... { body }`) grouped
/// by class name. A definition is distinguished from a call by what follows
/// the balanced parameter list: '{' (possibly after const/noexcept/override)
/// or — for constructors only (X::X) — an initializer list.
std::map<std::string, std::vector<MethodDef>> parse_method_defs(
    const FlatText& f) {
  std::map<std::string, std::vector<MethodDef>> defs;
  const std::string& s = f.text;
  std::size_t pos = 0;
  while ((pos = s.find("::", pos)) != std::string::npos) {
    std::size_t sep = pos;
    pos += 2;
    // Identifier before '::' — skip multi-level qualifications (std::…::)
    // by requiring the class name not itself be preceded by '::'.
    std::size_t cb = sep;
    while (cb > 0 && is_identifier_char(s[cb - 1])) --cb;
    if (cb == sep || (cb >= 2 && s[cb - 1] == ':' && s[cb - 2] == ':')) {
      continue;
    }
    std::string cls = s.substr(cb, sep - cb);
    // Identifier after '::', immediately followed by '('.
    std::size_t me = sep + 2;
    while (me < s.size() && is_identifier_char(s[me])) ++me;
    if (me == sep + 2 || me >= s.size() || s[me] != '(') continue;
    std::string method = s.substr(sep + 2, me - sep - 2);
    // Balanced parameter list.
    int depth = 0;
    bool in_str = false;
    std::size_t close = std::string::npos;
    for (std::size_t i = me; i < s.size(); ++i) {
      char c = s[i];
      if (in_str) {
        if (c == '\\') ++i;
        else if (c == '"') in_str = false;
        continue;
      }
      if (c == '"') in_str = true;
      else if (c == '(') ++depth;
      else if (c == ')' && --depth == 0) { close = i; break; }
    }
    if (close == std::string::npos) continue;
    std::string params = s.substr(me + 1, close - me - 1);
    // What follows decides: definition body, ctor initializer list, or a
    // mere call (rejected).
    std::size_t after = close + 1;
    for (;;) {
      while (after < s.size() && s[after] == ' ') ++after;
      bool skipped = false;
      for (const char* kw : {"const", "noexcept", "override"}) {
        std::size_t n = std::strlen(kw);
        if (s.compare(after, n, kw) == 0 &&
            (after + n >= s.size() || !is_identifier_char(s[after + n]))) {
          after += n;
          skipped = true;
          break;
        }
      }
      if (!skipped) break;
    }
    std::size_t open = std::string::npos;
    if (after < s.size() && s[after] == '{') {
      open = after;
    } else if (after < s.size() && s[after] == ':' && cls == method) {
      // Constructor initializer list: scan to the body's '{' outside parens.
      int pd = 0;
      for (std::size_t i = after + 1; i < s.size(); ++i) {
        char c = s[i];
        if (c == '(') ++pd;
        else if (c == ')') --pd;
        else if (c == '{' && pd == 0) { open = i; break; }
        else if (c == ';' && pd == 0) break;
      }
    }
    if (open == std::string::npos) continue;
    std::size_t end = body_end(s, open);
    if (end == std::string::npos) continue;
    MethodDef def;
    def.method = method;
    def.params = params;
    def.body = s.substr(open + 1, end - open - 2);
    def.line = line_at(f, cb);
    defs[cls].push_back(std::move(def));
    pos = end;
  }
  return defs;
}

/// Statically nameable event expression of a bind/raise call site: the
/// literal or ev::k symbol text, or "" when the name is computed (ternary,
/// variable) or a control event (ev::ctl(...) — runtime-anchored, exempt).
std::string nameable_event(const std::string& arg) {
  if (!literal_of(arg).empty()) return arg;
  if (arg.rfind("ev::ctl(", 0) == 0) return "";
  if (arg.rfind("ev::k", 0) == 0 &&
      std::all_of(arg.begin() + 4, arg.end(), is_identifier_char)) {
    return arg;
  }
  return "";
}

/// Collect the event arguments of `.binds(...)` / `.raises(...)` chains in a
/// manifest() body.
std::set<std::string> manifest_decls(const std::string& body,
                                     const std::string& needle) {
  std::set<std::string> out;
  for (std::size_t pos : find_calls(body, needle)) {
    std::string arg = first_arg(body, pos + needle.size() - 1);
    if (!arg.empty()) out.insert(arg);
  }
  return out;
}

void check_manifest_sync(const std::string& fname, const FlatText& f) {
  for (const auto& [cls, methods] : parse_method_defs(f)) {
    const MethodDef* init = nullptr;
    const MethodDef* manifest = nullptr;
    for (const MethodDef& m : methods) {
      if (m.method == "init" &&
          m.params.find("cactus::CompositeProtocol") != std::string::npos) {
        init = &m;
      }
      if (m.method == "manifest") manifest = &m;
    }
    if (init == nullptr) continue;  // not a micro-protocol class
    if (manifest == nullptr) {
      fail(fname + ":" + std::to_string(init->line), "manifest-sync",
           cls + " defines init(cactus::CompositeProtocol&) but no "
                 "manifest() in this file — every micro-protocol must "
                 "publish its effect model for the composition verifier");
      continue;
    }

    // The class's behavior, excluding the manifest body itself (else the
    // staleness check below would be vacuously satisfied).
    std::string behavior;
    for (const MethodDef& m : methods) {
      if (&m != manifest) behavior += m.body + "\n";
    }
    std::set<std::string> binds = manifest_decls(manifest->body, ".binds(");
    std::set<std::string> raises = manifest_decls(manifest->body, ".raises(");

    // Direction 1: what the source does, the manifest must declare.
    auto require_declared = [&](const std::string& needle, bool is_bind) {
      for (std::size_t pos : find_calls(behavior, needle)) {
        std::size_t open = pos + needle.size() - 1;
        std::string arg;
        if (needle.find("bind_tracked") != std::string::npos) {
          std::size_t comma = behavior.find(',', open);
          if (comma == std::string::npos) continue;
          arg = first_arg("(" + behavior.substr(comma + 1), 0);
        } else {
          arg = first_arg(behavior, open);
        }
        std::string event = nameable_event(arg);
        if (event.empty()) continue;
        const std::set<std::string>& declared = is_bind ? binds : raises;
        if (!declared.count(event)) {
          fail(fname, "manifest-sync",
               cls + (is_bind ? " binds " : " raises ") + event +
                   " but its manifest() does not declare it via " +
                   (is_bind ? ".binds()" : ".raises()") + " — manifest drift");
        }
      }
    };
    require_declared("bind_tracked(", /*is_bind=*/true);
    require_declared("raise(", /*is_bind=*/false);
    require_declared("raise_async(", /*is_bind=*/false);
    require_declared("raise_delayed(", /*is_bind=*/false);

    // Direction 2: what the manifest declares, the source must mention.
    auto require_mentioned = [&](const std::set<std::string>& declared,
                                 const char* what) {
      for (const std::string& event : declared) {
        if (behavior.find(event) == std::string::npos) {
          fail(fname + ":" + std::to_string(manifest->line), "manifest-sync",
               cls + "'s manifest() declares " + std::string(what) + " " +
                   event + " but no method of " + cls +
                   " mentions it — stale manifest entry");
        }
      }
    };
    require_mentioned(binds, "bind of");
    require_mentioned(raises, "raise of");
  }
}

/// Every factory registration in standard.cc must carry a manifest: an
/// add() without one makes the protocol opaque to the verifier, silently
/// weakening every composition it appears in.
void check_registry_manifests(const fs::path& standard_cc) {
  FlatText f = flatten(strip_comments(read_file(standard_cc)));
  std::size_t pos = 0;
  while ((pos = f.text.find("reg.add(", pos)) != std::string::npos) {
    std::size_t open = pos + 7;
    int depth = 0;
    std::size_t close = open;
    for (std::size_t i = open; i < f.text.size(); ++i) {
      char c = f.text[i];
      if (c == '(') ++depth;
      else if (c == ')' && --depth == 0) { close = i; break; }
    }
    std::string call = f.text.substr(open, close - open + 1);
    if (call.find("manifest()") == std::string::npos) {
      std::size_t q1 = call.find('"');
      std::size_t q2 = q1 == std::string::npos ? q1 : call.find('"', q1 + 1);
      std::string name = q2 == std::string::npos
                             ? "?"
                             : call.substr(q1 + 1, q2 - q1 - 1);
      fail(standard_cc.string() + ":" + std::to_string(line_at(f, pos)),
           "manifest-sync",
           "registration of '" + name + "' does not pass a manifest — "
           "use reg.add(side, name, factory, Class::manifest())");
    }
    pos = close;
  }
}

// --- Rule 7: transport-seam ---------------------------------------------------
// Code above the net/ library must not construct a concrete transport
// (SimNetwork, TcpTransport) directly: construction goes through
// net::make_transport(TransportConfig), the single factory, so deployments
// stay transport-neutral (src/net/transport.h). References (parameters,
// pointers, forward declarations, friend declarations) are fine — only
// instantiation is flagged. Sim-specific drivers that legitimately need a
// concrete simulator (virtual-time benches) waive a line with
//   // cqos-lint: allow-transport-construction
// on the same or preceding line.

void check_transport_seam_file(const std::string& fname,
                               const std::string& raw) {
  std::set<int> waived;
  {
    std::istringstream ss(raw);
    std::string line;
    int ln = 1;
    while (std::getline(ss, line)) {
      if (line.find("cqos-lint: allow-transport-construction") !=
          std::string::npos) {
        waived.insert(ln);
        waived.insert(ln + 1);
      }
      ++ln;
    }
  }

  FlatText f = flatten(strip_comments(raw));
  const std::string& t = f.text;
  for (const char* type : {"SimNetwork", "TcpTransport"}) {
    const std::size_t len = std::strlen(type);
    for (std::size_t pos = t.find(type); pos != std::string::npos;
         pos = t.find(type, pos + len)) {
      // Whole-identifier match only.
      if (pos > 0 && is_identifier_char(t[pos - 1])) continue;
      std::size_t after = pos + len;
      if (after < t.size() && is_identifier_char(t[after])) continue;
      int ln = line_at(f, pos);
      if (waived.count(ln) != 0) continue;

      // Skip any namespace qualifier so "new cqos::net::SimNetwork" is
      // classified by what precedes the full qualified name.
      std::size_t q = pos;
      while (q >= 2 && t.compare(q - 2, 2, "::") == 0) {
        std::size_t r = q - 2;
        while (r > 0 && is_identifier_char(t[r - 1])) --r;
        q = r;
      }
      auto preceded_by = [&](const std::string& kw) {
        return q >= kw.size() && t.compare(q - kw.size(), kw.size(), kw) == 0;
      };

      bool violation = false;
      std::string what;
      if (preceded_by("new ")) {
        violation = true;
        what = std::string("new ") + type;
      } else if (preceded_by("make_unique<") || preceded_by("make_shared<")) {
        violation = true;
        what = std::string("make_unique/make_shared<") + type + ">";
      } else if (preceded_by("class ") || preceded_by("struct ")) {
        // Forward / friend declaration: a type mention, not a construction.
      } else {
        // Declaration form: "<Type> ident (..." / "{...}" / ";" constructs
        // an instance (stack variable or default-constructed member).
        // "<Type>&", "<Type>*" and "<Type>>" are references/type args.
        std::size_t p = after;
        while (p < t.size() && t[p] == ' ') ++p;
        if (p < t.size() && (std::isalpha(static_cast<unsigned char>(t[p])) ||
                             t[p] == '_')) {
          std::size_t id_end = p;
          while (id_end < t.size() && is_identifier_char(t[id_end])) ++id_end;
          std::size_t p2 = id_end;
          while (p2 < t.size() && t[p2] == ' ') ++p2;
          if (p2 < t.size() && (t[p2] == '(' || t[p2] == '{' || t[p2] == ';' ||
                                t[p2] == '=')) {
            violation = true;
            what = std::string(type) + " " + t.substr(p, id_end - p);
          }
        }
      }
      if (violation) {
        fail(fname + ":" + std::to_string(ln), "transport-seam",
             "direct construction of " + what +
                 " — build transports via net::make_transport("
                 "TransportConfig); sim-only drivers may waive with "
                 "'// cqos-lint: allow-transport-construction'");
      }
    }
  }
}

void check_transport_seam(const fs::path& root, const fs::path& seam_dir) {
  auto scan_tree = [&](const fs::path& dir, const fs::path& skip) {
    if (!fs::exists(dir)) return;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      const fs::path& p = entry.path();
      if (!skip.empty()) {
        auto rel = fs::relative(p, dir).string();
        if (rel.rfind(skip.string(), 0) == 0) continue;
      }
      auto ext = p.extension();
      if (ext != ".cc" && ext != ".cpp" && ext != ".h") continue;
      check_transport_seam_file(p.string(), read_file(p));
    }
  };
  if (!seam_dir.empty()) {
    scan_tree(seam_dir, {});
    return;
  }
  // The net/ library itself implements the seam; everything above it is in
  // scope. Tests may construct concrete transports freely (they test them).
  scan_tree(root / "src", fs::path("net"));
  scan_tree(root / "bench", {});
  scan_tree(root / "examples", {});
}

// --- Rule 8: reconfig-seam ----------------------------------------------------
// The live-reconfiguration invariant (DESIGN.md §16) only holds if every
// mutation of a composite's micro-protocol stack flows through the seam
// that owns the QuiesceGate: cactus/composite.* (the primitive),
// cqos/config.cc (MicroProtocolRegistry::install), cqos/reconfig.cc (the
// swap engine) and cqos/endpoint.cc (build + Handle::reconfigure). Any
// other src/ call site of the mutation primitives assembles a stack the
// gate cannot drain, swap or roll back. Tests and benches hand-assemble
// composites deliberately and stay out of scope; in-scope boot-time
// installs into a composite that is not serving yet waive a line with
//   // cqos-lint: allow-reconfig-seam
// on the same or preceding line.

void check_reconfig_seam_file(const std::string& fname,
                              const std::string& raw) {
  std::set<int> waived;
  {
    std::istringstream ss(raw);
    std::string line;
    int ln = 1;
    while (std::getline(ss, line)) {
      if (line.find("cqos-lint: allow-reconfig-seam") != std::string::npos) {
        waived.insert(ln);
        waived.insert(ln + 1);
      }
      ++ln;
    }
  }

  FlatText f = flatten(strip_comments(raw));
  const std::string& t = f.text;
  for (const char* method : {"add_protocol", "add_micro_protocol",
                             "extract_protocols", "install"}) {
    const std::size_t len = std::strlen(method);
    for (std::size_t pos = t.find(method); pos != std::string::npos;
         pos = t.find(method, pos + len)) {
      // Whole-identifier match only ("install" must not fire on
      // "reinstall" or "installed").
      if (pos > 0 && is_identifier_char(t[pos - 1])) continue;
      std::size_t after = pos + len;
      if (after < t.size() && is_identifier_char(t[after])) continue;
      // A call site: member access before, argument list after. Plain
      // declarations/definitions and qualified definitions
      // (CompositeProtocol::add_protocol) are type-level mentions.
      std::size_t b = pos;
      while (b > 0 && t[b - 1] == ' ') --b;
      bool member_access =
          (b >= 1 && t[b - 1] == '.') ||
          (b >= 2 && t[b - 2] == '-' && t[b - 1] == '>');
      std::size_t a = after;
      while (a < t.size() && t[a] == ' ') ++a;
      bool called = a < t.size() && t[a] == '(';
      if (!member_access || !called) continue;
      int ln = line_at(f, pos);
      if (waived.count(ln) != 0) continue;
      fail(fname + ":" + std::to_string(ln), "reconfig-seam",
           std::string("direct composite mutation via ") + method +
               "() outside the reconfiguration seam — go through "
               "QosEndpoint::Handle::reconfigure() (or waive a deliberate "
               "boot-time install with "
               "'// cqos-lint: allow-reconfig-seam')");
    }
  }
}

void check_reconfig_seam(const fs::path& root, const fs::path& override_dir) {
  static const std::set<std::string> kSeamFiles = {
      "cactus/composite.h", "cactus/composite.cc", "cqos/reconfig.cc",
      "cqos/endpoint.cc",   "cqos/config.cc",
  };
  auto scan_tree = [&](const fs::path& dir, bool skip_seam) {
    if (!fs::exists(dir)) return;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      const fs::path& p = entry.path();
      auto ext = p.extension();
      if (ext != ".cc" && ext != ".cpp" && ext != ".h") continue;
      if (skip_seam &&
          kSeamFiles.count(fs::relative(p, dir).generic_string()) != 0) {
        continue;
      }
      check_reconfig_seam_file(p.string(), read_file(p));
    }
  };
  if (!override_dir.empty()) {
    scan_tree(override_dir, false);
    return;
  }
  scan_tree(root / "src", true);
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root, micro_dir, cfg_path, seam_dir, reconfig_seam_dir;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* flag) -> fs::path {
      if (i + 1 >= argc) {
        std::cerr << "cqos_lint: " << flag << " requires a value\n";
        std::exit(2);
      }
      return fs::path(argv[++i]);
    };
    if (a == "--root") root = need("--root");
    else if (a == "--micro") micro_dir = need("--micro");
    else if (a == "--cfg") cfg_path = need("--cfg");
    else if (a == "--seam") seam_dir = need("--seam");
    else if (a == "--reconfig-seam") reconfig_seam_dir = need("--reconfig-seam");
    else {
      std::cerr << "usage: cqos_lint --root <repo_root> [--micro <dir>] "
                   "[--cfg <file>] [--seam <dir>] [--reconfig-seam <dir>]\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: cqos_lint --root <repo_root> [--micro <dir>] "
                 "[--cfg <file>] [--seam <dir>] [--reconfig-seam <dir>]\n";
    return 2;
  }
  if (micro_dir.empty()) micro_dir = root / "src" / "micro";
  if (cfg_path.empty()) cfg_path = root / "examples" / "sample.cfg";

  // Standard-vocabulary events (ev::k*) are raised by the Cactus
  // client/server runtime and the platform skeleton, so they are only
  // checked for existence in events.h; the bidirectional bind/raise check
  // applies to string-literal events local to the micro-protocol suite.
  std::set<std::string> vocab =
      parse_event_vocab(root / "src" / "cqos" / "events.h");

  Corpus corpus;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(micro_dir)) {
    const fs::path& p = entry.path();
    if (p.extension() == ".cc" || p.extension() == ".h") files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "cqos_lint: no sources found under " << micro_dir << "\n";
    return 2;
  }

  for (const fs::path& p : files) {
    FlatText f = flatten(strip_comments(read_file(p)));
    std::string fname = p.string();
    check_bind_discipline(fname, f);
    check_no_blocking_wait(fname, f);
    check_manifest_sync(fname, f);
    collect_events(fname, f, corpus);
  }

  check_events(corpus, vocab);
  check_cfg(cfg_path, parse_registry(root / "src" / "micro" / "standard.cc"));
  check_registry_manifests(root / "src" / "micro" / "standard.cc");
  check_transport_seam(root, seam_dir);
  check_reconfig_seam(root, reconfig_seam_dir);

  if (g_errors > 0) {
    std::cerr << "cqos_lint: " << g_errors << " violation(s)\n";
    return 1;
  }
  std::cout << "cqos_lint: " << files.size() << " files clean\n";
  return 0;
}
