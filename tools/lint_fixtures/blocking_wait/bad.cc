// Lint self-test fixture: blocks indefinitely inside a handler, which
// would stall the composite's dispatch thread. Must trip
// 'no-dispatch-wait'. Not compiled — only scanned by cqos_lint.
void BadProtocol_init(cactus::CompositeProtocol& proto) {
  bind_tracked(proto, ev::kNewRequest, "bad.blocker",
               [](cactus::EventContext& ctx) {
                 auto req = std::any_cast<RequestPtr>(ctx.arg());
                 req->wait();  // indefinite — no timeout
               });
}
