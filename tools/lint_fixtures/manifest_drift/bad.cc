// Lint self-test fixture: the source binds an event ("md:extra") that the
// manifest() fails to declare — the effect model has drifted from the code,
// so the composition verifier would misanalyze every stack containing this
// protocol. Must trip 'manifest-sync'. Not compiled — only scanned by
// cqos_lint.
void BadProtocol::init(cactus::CompositeProtocol& proto) {
  bind_tracked(proto, ev::kNewRequest, "bad.entry",
               [](cactus::EventContext& ctx) {
                 ctx.protocol().raise("md:extra", std::any{});
               });
  bind_tracked(proto, "md:extra", "bad.extra",
               [](cactus::EventContext& ctx) { (void)ctx; });
}

MicroManifest BadProtocol::manifest() {
  // Drift: the bind of "md:extra" above is not declared here.
  return MicroManifest("bad_protocol", Side::kClient)
      .binds(ev::kNewRequest)
      .raises("md:extra");
}
