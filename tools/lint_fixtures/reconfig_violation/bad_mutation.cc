// Self-test fixture: mutates a composite's handler graph outside the
// reconfiguration seam. The reconfig-seam rule must flag all three call
// forms (member call, pointer call, registry install) but NOT the
// declaration, the qualified definition, or the waived line.
#include <memory>

namespace cqos::cactus {
class MicroProtocol {};
class CompositeProtocol {
 public:
  void add_protocol(std::unique_ptr<MicroProtocol> mp);  // declaration: ok
  std::vector<std::unique_ptr<MicroProtocol>> extract_protocols();
};
}  // namespace cqos::cactus

void sneaky_assembly(cqos::cactus::CompositeProtocol& proto,
                     cqos::cactus::CompositeProtocol* pproto) {
  proto.add_protocol(nullptr);              // violation: member call
  pproto->extract_protocols();              // violation: pointer call
  registry().install(0, {}, proto);         // violation: registry install
  // cqos-lint: allow-reconfig-seam (fixture: the waiver must suppress this)
  proto.add_protocol(nullptr);
}
