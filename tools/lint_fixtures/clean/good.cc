// Lint self-test fixture: a well-behaved micro-protocol. Must pass all
// lint rules. Not compiled — only scanned by cqos_lint.
void GoodProtocol::init(cactus::CompositeProtocol& proto) {
  bind_tracked(proto, ev::kNewRequest, "good.entry",
               [](cactus::EventContext& ctx) {
                 ctx.protocol().raise("good:internal", std::any{});
               });
  bind_tracked(proto, "good:internal", "good.internal",
               [](cactus::EventContext& ctx) { (void)ctx; });
}

void GoodProtocol::shutdown() {
  stopped_.store(true);
  MicroBase::shutdown();
}

MicroManifest GoodProtocol::manifest() {
  return MicroManifest("good_protocol", Side::kClient)
      .binds(ev::kNewRequest)
      .binds("good:internal")
      .raises("good:internal");
}
