// Self-test fixture: constructs a concrete transport directly instead of
// going through net::make_transport. The transport-seam rule must flag all
// three forms (stack declaration, new, make_unique).
namespace cqos::net {
struct NetConfig {};
class SimNetwork {
 public:
  explicit SimNetwork(NetConfig) {}
};
class TcpTransport {};
}  // namespace cqos::net

void assemble() {
  cqos::net::SimNetwork net(cqos::net::NetConfig{});
  auto* raw = new cqos::net::TcpTransport();
  delete raw;
}
