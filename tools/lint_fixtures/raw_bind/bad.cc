// Lint self-test fixture: registers a handler through the raw composite
// bind() instead of MicroBase::bind_tracked(). Must trip 'balanced-bind'.
// Not compiled — only scanned by cqos_lint.
void BadProtocol_init(cactus::CompositeProtocol& proto) {
  proto.bind(ev::kNewRequest, "bad.handler",
             [](cactus::EventContext& ctx) { (void)ctx; });
}
