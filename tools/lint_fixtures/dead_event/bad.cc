// Lint self-test fixture: binds a handler to an internal event that is
// never raised (dead handler) and raises one nothing listens to (dead
// raise), plus an ev:: symbol missing from events.h. Must trip
// 'event-names'. Not compiled — only scanned by cqos_lint.
void BadProtocol_init(cactus::CompositeProtocol& proto) {
  bind_tracked(proto, "zz:never-raised", "bad.dead_handler",
               [](cactus::EventContext& ctx) { (void)ctx; });
  bind_tracked(proto, ev::kNoSuchEvent, "bad.unknown_symbol",
               [](cactus::EventContext& ctx) { (void)ctx; });
  proto.raise("zz:never-bound", std::any{});
}
