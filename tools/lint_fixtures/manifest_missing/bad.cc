// Lint self-test fixture: a micro-protocol class that defines
// init(cactus::CompositeProtocol&) without publishing a manifest(), so the
// composition verifier would treat it as opaque. Must trip 'manifest-sync'.
// Not compiled — only scanned by cqos_lint.
void BadProtocol::init(cactus::CompositeProtocol& proto) {
  bind_tracked(proto, ev::kNewRequest, "bad.entry",
               [](cactus::EventContext& ctx) {
                 ctx.protocol().raise("mm:internal", std::any{});
               });
  bind_tracked(proto, "mm:internal", "bad.internal",
               [](cactus::EventContext& ctx) { (void)ctx; });
}
