// Lint self-test fixture: overrides shutdown() without unbinding the
// tracked handlers, leaking them across dynamic reconfigurations. Must
// trip 'balanced-bind'. Not compiled — only scanned by cqos_lint.
void BadProtocol::init(cactus::CompositeProtocol& proto) {
  bind_tracked(proto, ev::kNewRequest, "bad.handler",
               [](cactus::EventContext& ctx) { (void)ctx; });
}

void BadProtocol::shutdown() {
  stopped_.store(true);
  // Missing: unbind_all() / MicroBase::shutdown().
}

MicroManifest BadProtocol::manifest() {
  return MicroManifest("bad_protocol", Side::kClient)
      .binds(ev::kNewRequest);
}
