// cqos_verify: static composition verifier CLI.
//
// Where cqos_config instantiates factories and applies coarse pairing rules,
// cqos_verify analyzes compositions WITHOUT constructing them, purely from
// the MicroManifest effect models (cqos/verify.h): event-flow graph rules
// (dangling raises, unreachable handlers), piggyback write conflicts,
// same-stack constraints, client/server asymmetry, and config-key checks.
//
// Usage:
//   cqos_verify --config <file> [--report]
//       Verify one configuration file.
//   cqos_verify --all --root <repo> [--report]
//       Verify every registered composition: examples/sample.cfg plus every
//       chaos-soak config, and enumerate the soak profile matrix with its
//       manifest-derived gating.
//
// Exit codes: 0 all verified, 1 verifier errors, 2 usage/IO.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "cqos/config.h"
#include "cqos/verify.h"
#include "micro/standard.h"
#include "soak/soak.h"

namespace {

struct Options {
  bool all = false;
  bool report = false;
  std::string config_file;
  std::string root = ".";
};

int usage() {
  std::cerr << "usage: cqos_verify --config <file> [--report]\n"
               "       cqos_verify --all --root <repo> [--report]\n";
  return 2;
}

/// Verify one named composition; print its diagnostics and (optionally) the
/// event-flow report. Returns the number of errors.
std::size_t verify_one(const std::string& label, const cqos::QosConfig& config,
                       bool report) {
  cqos::VerifyResult result = cqos::verify_composition(config);
  const std::size_t errors = result.errors().size();
  std::cout << (errors == 0 ? "PASS " : "FAIL ") << label;
  if (!result.issues.empty()) {
    std::cout << " (" << errors << " error(s), " << result.warnings().size()
              << " warning(s))";
  }
  std::cout << "\n";
  for (const auto& issue : result.issues) {
    std::cout << "  " << issue.text() << "\n";
  }
  if (report) {
    std::istringstream lines(cqos::event_flow_report(config));
    for (std::string line; std::getline(lines, line);) {
      std::cout << "    " << line << "\n";
    }
  }
  return errors;
}

cqos::QosConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw cqos::ConfigError("cannot open " + path);
  std::ostringstream source;
  source << in.rdbuf();
  return cqos::QosConfig::parse(source.str());
}

/// --all: every composition this repository registers anywhere.
std::size_t verify_all(const Options& opts) {
  std::size_t errors = 0;

  // The example configuration shipped with the repo.
  const std::string sample = opts.root + "/examples/sample.cfg";
  errors += verify_one("examples/sample.cfg", load_config(sample),
                       opts.report);

  // Every chaos-soak composition, plus the profile matrix its manifests
  // derive. The gating line makes drift visible in CI logs: a manifest
  // change that flips a config's loss tolerance shows up as a changed
  // profile list, not as a silent soak-matrix reshuffle.
  for (const std::string& name : cqos::soak::soak_configs()) {
    cqos::QosConfig config = cqos::soak::soak_qos_config(name);
    errors += verify_one("soak/" + name, config, opts.report);
    cqos::CompositionTraits traits = cqos::composition_traits(config);
    std::cout << "  traits: total-order=" << traits.total_order
              << " at-most-once=" << traits.at_most_once
              << " replicated=" << traits.replicated
              << " loss-tolerant=" << traits.loss_tolerant << "\n";
    std::cout << "  profiles:";
    for (const std::string& p : cqos::soak::soak_profiles_for(name)) {
      std::cout << " " << p;
    }
    std::cout << "\n";
  }

  const std::size_t total = cqos::soak::soak_profiles().size();
  std::cout << "profile matrix: " << cqos::soak::soak_configs().size()
            << " configs x " << total << " profiles (gated per traits)\n";
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--all") {
      opts.all = true;
    } else if (arg == "--report") {
      opts.report = true;
    } else if (arg == "--config" && i + 1 < argc) {
      opts.config_file = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else {
      return usage();
    }
  }
  if (opts.all == !opts.config_file.empty()) return usage();

  cqos::micro::register_standard_micro_protocols();
  try {
    std::size_t errors = 0;
    if (opts.all) {
      errors = verify_all(opts);
    } else {
      errors = verify_one(opts.config_file, load_config(opts.config_file),
                          opts.report);
    }
    if (errors > 0) {
      std::cout << "INVALID (" << errors << " error(s))\n";
      return 1;
    }
    std::cout << "OK\n";
    return 0;
  } catch (const cqos::Error& e) {
    std::cerr << "cqos_verify: " << e.what() << "\n";
    return 2;
  }
}
