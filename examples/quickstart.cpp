// Quickstart: transparently add CQoS to a BankAccount service.
//
// Assembles a one-replica deployment on the RMI-like platform with the
// fluent QosEndpoint builders — one builder per side instead of threading
// five option structs through four constructors — then makes a few calls
// through the CQoS stub. Interception is invisible to the application: the
// client code is exactly what it would be against the plain middleware.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "cqos/endpoint.h"
#include "micro/standard.h"
#include "net/transport.h"
#include "platform/rmi/registry.h"
#include "platform/rmi/rmi.h"
#include "sim/bank_account.h"

int main() {
  using namespace cqos;
  using namespace cqos::sim;

  // 1. The deployment substrate: a transport (here the simulated network —
  //    TransportConfig::real_tcp() would put the same stacks on real
  //    sockets), an RMI registry, and one platform instance per "machine".
  //    Micro-protocols resolve by name through the registry, so register
  //    the standard set once.
  micro::register_standard_micro_protocols();
  auto net = net::make_transport(net::TransportConfig::simulated());
  rmi::Registry registry(*net, "nameserver");
  rmi::RmiConfig rmi_cfg;
  rmi_cfg.registry_host = "nameserver";
  rmi::RmiRuntime server_platform(*net, "server0", rmi_cfg);
  rmi::RmiRuntime client_platform(*net, "client0", rmi_cfg);

  // 2. The server side: servant behind a CQoS skeleton + Cactus server.
  //    build() installs the stack (server_base is appended automatically)
  //    and registers the skeleton with the platform.
  auto servant = std::make_shared<BankAccountServant>();
  auto server = QosEndpoint::server(server_platform, servant, "BankAccount")
                    .qos({{"dedup"}})
                    .process_timeout(ms(3000))
                    .build();

  // 3. The client side: a Cactus client + CQoS stub resolving the replica
  //    names the server registered under. The typed stub below is what the
  //    Cactus IDL compiler would generate from the BankAccount IDL.
  auto client = QosEndpoint::client(client_platform, "BankAccount")
                    .replicas(1)
                    .qos({{"retransmit"}})
                    .invoke_timeout(ms(500))
                    .build();
  BankAccountStub account(client->stub_ptr());

  // 4. Use it like a local object.
  account.set_balance(10'000);
  account.deposit(2'500);
  std::printf("balance after deposit:  %lld cents\n",
              static_cast<long long>(account.get_balance()));

  account.withdraw(500);
  std::printf("balance after withdraw: %lld cents\n",
              static_cast<long long>(account.get_balance()));

  // 4b. build() returned lifecycle handles: the composition is a runtime
  //     policy object. Hot-swap the server to a deduplicating + secured
  //     stack while the endpoint stays registered and live — the swap
  //     drains in-flight work, parks arrivals, and hands dedup state to
  //     the incoming stack (DESIGN.md §16).
  const char* kKey = "00112233445566aa";
  server->reconfigure({{"dedup", {}}, {"des_privacy", {{"key", kKey}}}});
  client->reconfigure({{"retransmit", {}}, {"des_privacy", {{"key", kKey}}}});
  account.deposit(100);
  std::printf("balance after reconfig: %lld cents (revision %llu)\n",
              static_cast<long long>(account.get_balance()),
              static_cast<unsigned long long>(server->config_revision()));

  // 5. Application errors propagate as exceptions, exactly as with the
  //    plain middleware.
  try {
    account.withdraw(1'000'000);
  } catch (const InvocationError& e) {
    std::printf("withdraw too much:      rejected (%s)\n", e.what());
  }

  std::printf("network messages sent:  %llu\n",
              static_cast<unsigned long long>(net->messages_sent()));

  // 6. Teardown: client endpoint first, then the platforms, then the server
  //    composite (its handlers may still be draining).
  client.reset();
  client_platform.shutdown();
  server_platform.shutdown();
  server->stop();
  std::printf("quickstart OK\n");
  return 0;
}
