// Quickstart: transparently add CQoS to a BankAccount service.
//
// Builds a one-replica deployment on the RMI-like platform, makes a few
// calls through the CQoS stub, and shows that interception is invisible to
// the application: the client code is exactly what it would be against the
// plain middleware.
//
//   $ ./quickstart
#include <cstdio>

#include "sim/bank_account.h"
#include "sim/cluster.h"

int main() {
  using namespace cqos;
  using namespace cqos::sim;

  // 1. Assemble a "cluster": a simulated network, an RMI registry, and one
  //    server host running the servant behind a CQoS skeleton + Cactus
  //    server with the base micro-protocols.
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.level = InterceptionLevel::kFull;
  opts.num_replicas = 1;
  opts.object_id = "BankAccount";
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  Cluster cluster(opts);

  // 2. A client host. The typed stub below is what the Cactus IDL compiler
  //    would generate from the BankAccount IDL; it delegates to the generic
  //    CQoS stub, which builds abstract requests and hands them to the
  //    Cactus client.
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());

  // 3. Use it like a local object.
  account.set_balance(10'000);
  account.deposit(2'500);
  std::printf("balance after deposit:  %lld cents\n",
              static_cast<long long>(account.get_balance()));

  account.withdraw(500);
  std::printf("balance after withdraw: %lld cents\n",
              static_cast<long long>(account.get_balance()));

  // 4. Application errors propagate as exceptions, exactly as with the
  //    plain middleware.
  try {
    account.withdraw(1'000'000);
  } catch (const InvocationError& e) {
    std::printf("withdraw too much:      rejected (%s)\n", e.what());
  }

  std::printf("network messages sent:  %llu\n",
              static_cast<unsigned long long>(cluster.network().messages_sent()));
  std::printf("quickstart OK\n");
  return 0;
}
