// Replicated bank: fault tolerance with active and passive replication.
//
// Part 1 — active replication, majority voting, total order: three replicas
// execute every request in the same order; a replica is crashed mid-run and
// service continues without the client noticing.
//
// Part 2 — passive replication: the primary serves and forwards to backups;
// when the primary crashes the client transparently fails over.
//
//   $ ./replicated_bank
#include <cstdio>
#include <thread>

#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace {

using namespace cqos;
using namespace cqos::sim;

void wait_for(const std::function<bool()>& cond) {
  for (int i = 0; i < 300 && !cond(); ++i) {
    std::this_thread::sleep_for(ms(10));
  }
}

BankAccountServant& servant(Cluster& cluster, int i) {
  return static_cast<BankAccountServant&>(cluster.servant(i));
}

void active_replication_demo() {
  std::printf("== active replication + majority vote + total order ==\n");
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.num_replicas = 3;
  opts.object_id = "BankAccount";
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.qos.add(Side::kClient, "active_rep")
      .add(Side::kClient, "majority_vote")
      .add(Side::kServer, "total_order");
  Cluster cluster(opts);

  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());

  account.set_balance(1'000);
  for (int i = 0; i < 20; ++i) account.deposit(100);
  std::printf("balance with 3 live replicas: %lld\n",
              static_cast<long long>(account.get_balance()));

  std::printf("crashing replica 1 mid-run...\n");
  cluster.crash_replica(1);
  for (int i = 0; i < 20; ++i) account.deposit(100);
  std::printf("balance after crash (majority of 2 still agrees): %lld\n",
              static_cast<long long>(account.get_balance()));

  wait_for([&] { return servant(cluster, 0).balance() == 5'000; });
  std::printf("replica 0 state: %lld, replica 2 state: %lld (identical: %s)\n",
              static_cast<long long>(servant(cluster, 0).balance()),
              static_cast<long long>(servant(cluster, 2).balance()),
              servant(cluster, 0).balance() == servant(cluster, 2).balance()
                  ? "yes"
                  : "NO");
}

void passive_replication_demo() {
  std::printf("\n== passive replication with primary failover ==\n");
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.num_replicas = 3;
  opts.object_id = "BankAccount";
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.qos.add(Side::kClient, "passive_rep").add(Side::kServer, "passive_rep");
  Cluster cluster(opts);

  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());

  account.set_balance(42'000);
  wait_for([&] { return servant(cluster, 1).balance() == 42'000; });
  std::printf("primary (replica 0) served; backups in sync: %lld / %lld\n",
              static_cast<long long>(servant(cluster, 1).balance()),
              static_cast<long long>(servant(cluster, 2).balance()));

  std::printf("crashing the primary...\n");
  cluster.crash_replica(0);
  std::printf("next read transparently served by the new primary: %lld\n",
              static_cast<long long>(account.get_balance()));
  account.deposit(1'000);
  std::printf("balance after deposit on new primary: %lld\n",
              static_cast<long long>(account.get_balance()));

  std::printf("recovering old primary and rebinding (paper: bind() rebinds "
              "to a recovered server)...\n");
  cluster.recover_replica(0);
  client->cactus_client()->qos().bind(0);
  std::printf("replica 0 status: %s\n",
              client->cactus_client()->qos().server_status(0) ==
                      ServerStatus::kRunning
                  ? "running"
                  : "failed");
}

}  // namespace

int main() {
  active_replication_demo();
  passive_replication_demo();
  std::printf("\nreplicated_bank OK\n");
  return 0;
}
