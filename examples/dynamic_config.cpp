// Dynamic customization (rBoot/rControl analogue, paper §2.3.3).
//
// The server replicas advertise the client-side micro-protocol stack their
// deployment requires (active replication + first-success + DES privacy).
// A freshly started client knows NOTHING about this configuration: it boots
// with an empty stack, downloads the configuration from the server, resolves
// each name against the micro-protocol registry and installs it — then talks
// to the service correctly. Updating QoS policy therefore only requires
// touching the servers, exactly the deployment property the paper argues for.
//
//   $ ./dynamic_config
#include <cstdio>

#include "cqos/dynamic_config.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

int main() {
  using namespace cqos;
  using namespace cqos::sim;

  constexpr const char* kKey = "0f1e2d3c4b5a6978";

  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.num_replicas = 3;
  opts.object_id = "BankAccount";
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.qos.add(Side::kServer, "des_privacy", {{"key", kKey}});
  Cluster cluster(opts);

  // The deployment's required client stack, advertised by every replica.
  QosConfig advertised;
  advertised.add(Side::kClient, "active_rep")
      .add(Side::kClient, "first_success")
      .add(Side::kClient, "des_privacy", {{"key", kKey}});
  for (int i = 0; i < 3; ++i) {
    advertise_config(*cluster.cactus_server(i), advertised);
  }
  std::printf("server advertises:\n%s\n", advertised.serialize().c_str());

  // A client with an empty micro-protocol stack cannot talk to the service
  // (the server rejects plaintext requests).
  std::vector<MicroProtocolSpec> empty_stack;
  auto naive = cluster.make_client({}, &empty_stack);
  try {
    naive->call("get_balance", {});
    std::printf("ERROR: unconfigured client should have been rejected\n");
    return 1;
  } catch (const InvocationError& e) {
    std::printf("unconfigured client: rejected (%s)\n", e.what());
  }

  // Bootstrap: fetch the advertised configuration and install it.
  auto client = cluster.make_client({}, &empty_stack);
  std::printf("\nbootstrapping client configuration from replica 1...\n");
  bootstrap_client(*client->cactus_client(), client->platform(),
                   opts.object_id, /*replica_index=*/1, ms(500));

  std::printf("installed micro-protocols:");
  for (const auto& name : client->cactus_client()->protocol().protocol_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  BankAccountStub account(client->stub_ptr());
  account.set_balance(777);
  std::printf("balance via bootstrapped stack: %lld\n",
              static_cast<long long>(account.get_balance()));

  std::printf("dynamic_config OK\n");
  return 0;
}
