// Lossy WAN: the extension micro-protocols working together over the HTTP
// platform (the paper's "any request/reply middleware" claim, §2.1, plus the
// §3.5 extension list).
//
// Deployment: a primary/backup group of three replicas reached over a
// wide-area network that drops 15% of messages. The client composes
//   passive_rep + retransmit + failure_detector + client_cache
// and the run demonstrates, in order: message loss masked by retransmission
// (with server-side dedup protecting against re-execution); reads served
// from the client cache; anti-entropy — backups that missed best-effort
// forwards under loss are resynchronized by replaying the primary's request
// log; primary failover; and automatic recovery detection.
//
//   $ ./lossy_wan
#include <cstdio>
#include <thread>

#include "micro/extensions.h"
#include "sim/bank_account.h"
#include "sim/cluster.h"

namespace {
using namespace cqos;
using namespace cqos::sim;

void wait_for(const std::function<bool()>& cond) {
  for (int i = 0; i < 500 && !cond(); ++i) {
    std::this_thread::sleep_for(ms(10));
  }
}

BankAccountServant& servant(Cluster& cluster, int i) {
  return static_cast<BankAccountServant&>(cluster.servant(i));
}
}  // namespace

int main() {
  ClusterOptions opts;
  opts.platform = PlatformKind::kHttp;
  opts.num_replicas = 3;
  opts.object_id = "BankAccount";
  opts.invoke_timeout = ms(150);  // fast retransmission timeout
  opts.request_timeout = ms(8000);
  opts.servant_factory = [] { return std::make_shared<BankAccountServant>(); };
  opts.qos.add(Side::kClient, "passive_rep")
      .add(Side::kClient, "retransmit", {{"retries", "6"}})
      .add(Side::kClient, "failure_detector", {{"period_ms", "50"}})
      .add(Side::kClient, "client_cache",
           {{"methods", "get_balance"}, {"ttl_ms", "200"}})
      .add(Side::kServer, "passive_rep")
      .add(Side::kServer, "request_log", {{"reads", "get_balance"}});
  Cluster cluster(opts);
  auto client = cluster.make_client();
  BankAccountStub account(client->stub_ptr());
  std::printf("platform: http (URL naming, text headers + binary bodies)\n");

  account.set_balance(0);
  std::printf("enabling 15%% message loss on the WAN...\n");
  cluster.faults().set_drop_rate(0.15);

  int ok = 0, failed = 0;
  for (int i = 0; i < 40; ++i) {
    try {
      account.deposit(25);
      ++ok;
    } catch (const InvocationError&) {
      ++failed;
    }
  }
  std::printf("deposits under loss: %d ok, %d failed (retransmit masks the "
              "drops; dedup prevents double-execution)\n", ok, failed);
  cluster.faults().set_drop_rate(0);
  std::printf("primary balance: %lld cents (exactly %d x 25)\n",
              static_cast<long long>(account.get_balance()), ok);

  // Cached reads: repeated balance queries stop hitting the wire.
  std::uint64_t wire_before = cluster.network().messages_sent();
  for (int i = 0; i < 20; ++i) (void)account.get_balance();
  std::uint64_t wire_after = cluster.network().messages_sent();
  std::printf("20 cached reads cost %llu wire messages\n",
              static_cast<unsigned long long>(wire_after - wire_before));

  // Under loss, the primary's best-effort forwards to the backups were
  // themselves dropped: the backups are legitimately stale. Anti-entropy:
  // replay the primary's request log into each backup before trusting them.
  std::printf("backup state before anti-entropy: %lld / %lld cents\n",
              static_cast<long long>(servant(cluster, 1).balance()),
              static_cast<long long>(servant(cluster, 2).balance()));
  for (int backup : {1, 2}) {
    // Full replay (from = 0): losses are interleaved, not a suffix; the
    // passive_rep dedup answers already-executed requests from its cache.
    std::size_t offered = micro::recover_from_peer(
        *cluster.cactus_server(backup), /*peer=*/0, /*from=*/0);
    std::printf("backup %d re-offered %zu logged request(s)\n", backup,
                offered);
  }
  std::printf("backup state after  anti-entropy: %lld / %lld cents\n",
              static_cast<long long>(servant(cluster, 1).balance()),
              static_cast<long long>(servant(cluster, 2).balance()));

  std::printf("crashing the primary; the failure detector notices and the "
              "client fails over...\n");
  cluster.crash_replica(0);
  wait_for([&] {
    return client->cactus_client()->qos().server_status(0) ==
           ServerStatus::kFailed;
  });
  for (int i = 0; i < 6; ++i) account.deposit(1);
  std::printf("balance served by the new primary: %lld cents\n",
              static_cast<long long>(account.get_balance()));

  cluster.recover_replica(0);
  wait_for([&] {
    return client->cactus_client()->qos().server_status(0) ==
           ServerStatus::kRunning;
  });
  std::printf("old primary recovered and rebound automatically\n");
  std::printf("lossy_wan OK\n");
  return 0;
}
