// Generated-stub example: the Cactus IDL compiler end to end.
//
// examples/trading.idl is compiled at build time by cqos_idlc into
// trading_generated.h; this program implements the generated servant base
// and talks to it through the generated typed stub — over a fully
// QoS-configured CQoS deployment (integrity + access control), never
// touching a Value by hand on either side.
//
//   $ ./idl_generated
#include <cstdio>
#include <mutex>

#include "sim/cluster.h"
#include "trading_generated.h"

namespace {

using namespace cqos;
using namespace cqos::sim;

/// Servant: implement the pure virtuals of the generated base.
class OrderBookImpl : public trading::OrderBookServantBase {
 protected:
  std::int64_t place_order(const std::string& side, std::int64_t price_cents,
                           std::int64_t quantity) override {
    std::scoped_lock lk(mu_);
    if (quantity <= 0) throw Error("BadOrder: quantity must be positive");
    (side == "buy" ? bids_ : asks_) += quantity;
    last_price_ = price_cents;
    return ++orders_;
  }

  Value depth() override {
    std::scoped_lock lk(mu_);
    return Value(ValueList{Value(bids_), Value(asks_)});
  }

  std::int64_t last_price() override {
    std::scoped_lock lk(mu_);
    return last_price_;
  }

  void reset() override {
    std::scoped_lock lk(mu_);
    bids_ = asks_ = last_price_ = orders_ = 0;
  }

  bool is_open() override { return true; }

  double midpoint(double fallback) override {
    std::scoped_lock lk(mu_);
    return last_price_ == 0 ? fallback : static_cast<double>(last_price_);
  }

  std::string describe(const std::string& who) override {
    std::scoped_lock lk(mu_);
    return "order book for " + who + ": " + std::to_string(orders_) +
           " orders";
  }

  Bytes snapshot(std::int64_t max_bytes) override {
    std::scoped_lock lk(mu_);
    Bytes snap = Value::encode_list(
        {Value(bids_), Value(asks_), Value(last_price_), Value(orders_)});
    if (static_cast<std::int64_t>(snap.size()) > max_bytes) {
      snap.resize(static_cast<std::size_t>(max_bytes));
    }
    return snap;
  }

 private:
  std::mutex mu_;
  std::int64_t bids_ = 0, asks_ = 0, last_price_ = 0, orders_ = 0;
};

}  // namespace

int main() {
  ClusterOptions opts;
  opts.platform = PlatformKind::kCorba;  // POA naming, DII/DSI path
  opts.num_replicas = 1;
  opts.object_id = "trading::OrderBook";
  opts.servant_factory = [] { return std::make_shared<OrderBookImpl>(); };
  opts.qos.add(Side::kClient, "integrity")
      .add(Side::kServer, "integrity")
      .add(Side::kServer, "access_control", {{"allow", "desk:*"}});
  Cluster cluster(opts);

  CqosStub::Options stub_opts;
  stub_opts.principal = "desk";
  auto client = cluster.make_client(stub_opts);

  // The generated typed stub: every call below is statically typed.
  trading::OrderBookStub book(client->stub_ptr());

  std::printf("open: %s\n", book.is_open() ? "yes" : "no");
  std::printf("midpoint fallback: %.1f\n", book.midpoint(99.5));
  std::int64_t orders = 0;
  orders = book.place_order("buy", 10050, 100);
  orders = book.place_order("sell", 10060, 80);
  std::printf("orders placed: %lld\n", static_cast<long long>(orders));

  Value depth = book.depth();
  std::printf("depth: bids=%lld asks=%lld\n",
              static_cast<long long>(depth.as_list()[0].as_i64()),
              static_cast<long long>(depth.as_list()[1].as_i64()));
  std::printf("last price: %lld\n", static_cast<long long>(book.last_price()));
  std::printf("describe: %s\n", book.describe("acme").c_str());
  std::printf("snapshot bytes: %zu\n", book.snapshot(1024).size());

  try {
    book.place_order("buy", 1, -5);
    std::printf("ERROR: invalid order accepted\n");
    return 1;
  } catch (const InvocationError& e) {
    std::printf("bad order rejected: %s\n", e.what());
  }

  book.reset();
  std::printf("after reset, last price: %lld\n",
              static_cast<long long>(book.last_price()));
  std::printf("idl_generated OK\n");
  return 0;
}
