// Secure trading desk: the paper's motivating "financial services" scenario —
// an application that needs SEVERAL QoS attributes at once, configured per
// object rather than baked into the middleware.
//
// The OrderBook object is deployed with:
//   - des_privacy     : order flow is confidential on the wire
//   - integrity       : orders are HMAC-signed end to end
//   - access_control  : only the trading desk may place orders; auditors may
//                       only read
//   - timed_sched     : the market-maker's requests outrank batch reporting
//
//   $ ./secure_trading
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/stats.h"
#include "sim/cluster.h"

namespace {

using namespace cqos;
using namespace cqos::sim;

constexpr const char* kDesKey = "a1b2c3d4e5f60718";
constexpr const char* kMacKey = "00112233445566778899aabbccddeeff";

/// Order book servant: place orders, query depth and last trade.
class OrderBookServant : public Servant {
 public:
  Value dispatch(const std::string& method, const ValueList& params) override {
    std::scoped_lock lk(mu_);
    if (method == "place_order") {
      // params: side ("buy"/"sell"), price (cents), quantity
      const std::string& side = params.at(0).as_string();
      std::int64_t price = params.at(1).as_i64();
      std::int64_t quantity = params.at(2).as_i64();
      if (quantity <= 0) throw Error("quantity must be positive");
      if (side == "buy") {
        bids_ += quantity;
      } else if (side == "sell") {
        asks_ += quantity;
      } else {
        throw Error("side must be buy or sell");
      }
      last_price_ = price;
      ++orders_;
      return Value(orders_);
    }
    if (method == "depth") {
      return Value(ValueList{Value(bids_), Value(asks_)});
    }
    if (method == "last_price") return Value(last_price_);
    throw Error("OrderBook: no such method: " + method);
  }

 private:
  std::mutex mu_;
  std::int64_t bids_ = 0, asks_ = 0, last_price_ = 0, orders_ = 0;
};

}  // namespace

int main() {
  ClusterOptions opts;
  opts.platform = PlatformKind::kRmi;
  opts.num_replicas = 1;
  opts.object_id = "OrderBook";
  opts.servant_factory = [] { return std::make_shared<OrderBookServant>(); };
  opts.qos
      .add(Side::kClient, "des_privacy", {{"key", kDesKey}})
      .add(Side::kClient, "integrity", {{"key", kMacKey}})
      .add(Side::kServer, "des_privacy", {{"key", kDesKey}})
      .add(Side::kServer, "integrity", {{"key", kMacKey}})
      .add(Side::kServer, "access_control",
           {{"allow", "desk:*|audit:depth|audit:last_price"}})
      .add(Side::kServer, "timed_sched",
           {{"period_ms", "50"}, {"threshold", "10000"}});
  Cluster cluster(opts);

  std::printf("configured QoS stack:\n%s\n", opts.qos.serialize().c_str());

  // The market-making desk: high priority, full access.
  CqosStub::Options desk_opts;
  desk_opts.principal = "desk";
  desk_opts.priority = 9;
  auto desk = cluster.make_client(desk_opts);

  // Batch reporting: low priority, read-only access.
  CqosStub::Options audit_opts;
  audit_opts.principal = "audit";
  audit_opts.priority = 2;
  auto audit = cluster.make_client(audit_opts);

  // An outsider with no credentials.
  CqosStub::Options outsider_opts;
  outsider_opts.principal = "outsider";
  auto outsider = cluster.make_client(outsider_opts);

  // Confidentiality check: watch the wire for the order parameters.
  std::atomic<int> leaks{0};
  const std::string side = "buy";
  Bytes side_bytes(side.begin(), side.end());
  cluster.network().set_tap([&](const net::Message& m) {
    if (std::search(m.payload.begin(), m.payload.end(), side_bytes.begin(),
                    side_bytes.end()) != m.payload.end()) {
      leaks.fetch_add(1);
    }
  });

  // Concurrent trading + reporting.
  LatencyRecorder desk_lat, audit_lat;
  std::thread trader([&] {
    for (int i = 0; i < 60; ++i) {
      TimePoint t0 = now();
      desk->call("place_order",
                 {Value("buy"), Value(10'000 + i), Value(100)});
      desk_lat.add(to_ms(now() - t0));
    }
  });
  std::thread reporter([&] {
    for (int i = 0; i < 15; ++i) {
      TimePoint t0 = now();
      audit->call("depth", {});
      audit_lat.add(to_ms(now() - t0));
    }
  });
  trader.join();
  reporter.join();

  std::printf("orders placed: %lld, last price: %lld\n",
              static_cast<long long>(desk->call("depth", {}).as_list()[0].as_i64() / 100),
              static_cast<long long>(desk->call("last_price", {}).as_i64()));
  std::printf("plaintext \"buy\" sightings on the wire: %d (0 = confidential)\n",
              leaks.load());
  std::printf("desk  mean latency: %.3f ms (priority 9)\n", desk_lat.mean());
  std::printf("audit mean latency: %.3f ms (priority 2, differentiated)\n",
              audit_lat.mean());

  // Access control in action.
  try {
    audit->call("place_order", {Value("sell"), Value(1), Value(1)});
    std::printf("ERROR: audit was allowed to trade!\n");
    return 1;
  } catch (const InvocationError& e) {
    std::printf("audit placing an order: rejected (%s)\n", e.what());
  }
  try {
    outsider->call("depth", {});
    std::printf("ERROR: outsider was allowed to read!\n");
    return 1;
  } catch (const InvocationError& e) {
    std::printf("outsider reading depth:  rejected (%s)\n", e.what());
  }

  std::printf("secure_trading OK\n");
  return 0;
}
