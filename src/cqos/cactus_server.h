// Cactus server (paper §2.3.2): the server-side composite protocol. The CQoS
// skeleton notifies it of incoming invocations via cactus_invoke(); control
// messages from peer replicas (PassiveRep forwarding, TotalOrder ordering
// info) arrive through handle_control(), which raises "ctl:<name>" events.
#pragma once

#include <memory>
#include <string>

#include "cactus/composite.h"
#include "common/clock.h"
#include "cqos/qos_interface.h"
#include "cqos/reconfig.h"

namespace cqos {

class CactusServer;

/// Control message delivered from a peer replica (or a bootstrap client).
struct ControlMsg {
  std::string control;
  ValueList args;
  /// Handlers may set a reply returned to the sending peer.
  Value reply;
};
using ControlMsgPtr = std::shared_ptr<ControlMsg>;

/// Shared-data holder through which server micro-protocols reach the Cactus
/// QoS interface and the hosting CactusServer.
struct ServerQosHolder {
  ServerQosInterface* qos = nullptr;
  CactusServer* server = nullptr;
};
inline constexpr const char* kServerQosKey = "cqos.server.holder";

class CactusServer {
 public:
  struct Options {
    cactus::CompositeProtocol::Options composite = [] {
      cactus::CompositeProtocol::Options o;
      o.name = "cactus-server";
      o.pool_threads = 4;
      o.use_thread_pool = true;
      return o;
    }();
    /// Upper bound on one request's server-side processing (covers queueing
    /// delays introduced by the scheduling micro-protocols).
    Duration process_timeout = ms(3000);
  };

  explicit CactusServer(std::unique_ptr<ServerQosInterface> qos)
      : CactusServer(std::move(qos), Options{}) {}
  CactusServer(std::unique_ptr<ServerQosInterface> qos, Options opts);
  ~CactusServer();

  CactusServer(const CactusServer&) = delete;
  CactusServer& operator=(const CactusServer&) = delete;

  cactus::CompositeProtocol& protocol() { return proto_; }
  ServerQosInterface& qos() { return *qos_; }

  /// Convenience forward for hand-assembled composites in tests/benches —
  /// live endpoints mutate their stack through
  /// QosEndpoint::Handle::reconfigure().
  void add_micro_protocol(std::unique_ptr<cactus::MicroProtocol> mp) {
    // cqos-lint: allow-reconfig-seam (the sanctioned boot-time forward)
    proto_.add_protocol(std::move(mp));
  }

  /// Blocking: raise newServerRequest, wait until the request has been
  /// executed (possibly deferred by scheduling micro-protocols), then raise
  /// requestReturned. Called by the skeleton for client requests and by
  /// PassiveRep for forwarded requests.
  void process_request(const RequestPtr& req);

  /// Alias matching the paper's interface name.
  void cactus_invoke(const RequestPtr& req) { process_request(req); }

  /// Raise the control event for an incoming "__cqos.ctl.<control>" call;
  /// returns the handler-provided reply value.
  Value handle_control(const std::string& control, ValueList args);

  void stop() { proto_.stop(); }

  /// Admission gate used by live reconfiguration (reconfig.h). Requests
  /// entering process_request() pass through it; control messages take a
  /// bounded checkpoint; the reconfigure seam (QosEndpoint::Handle) drives
  /// it through drain/swap/resume.
  QuiesceGate& reconfig_gate() { return gate_; }

 private:
  cactus::CompositeProtocol proto_;
  std::unique_ptr<ServerQosInterface> qos_;
  Duration process_timeout_;
  QuiesceGate gate_;
};

}  // namespace cqos
