#include "cqos/reconfig.h"

#include "common/error.h"
#include "common/log.h"
#include "common/metrics.h"

namespace cqos {

std::string_view gate_phase_name(GatePhase p) {
  switch (p) {
    case GatePhase::kLive:
      return "live";
    case GatePhase::kDraining:
      return "draining";
    case GatePhase::kSwapping:
      return "swapping";
    case GatePhase::kClosed:
      return "closed";
  }
  return "?";
}

// --- QuiesceGate -------------------------------------------------------------

bool QuiesceGate::enter() {
  MutexLock lk(mu_);
  if (phase_ == GatePhase::kLive) {
    ++inflight_;
    return true;
  }
  if (phase_ == GatePhase::kClosed) return false;
  // Draining or swapping: park. Bounded queue — overflow is a visible
  // rejection, never a silent drop.
  if (parked_ >= max_parked_) {
    metrics::Registry::global().counter("cqos.reconfig.park_overflow").inc();
    return false;
  }
  ++parked_;
  if (parked_ > parked_peak_) parked_peak_ = parked_;
  TimePoint deadline = now() + park_timeout_;
  bool admitted = false;
  while (true) {
    if (phase_ == GatePhase::kLive) {
      ++inflight_;
      ++released_;
      admitted = true;
      break;
    }
    if (phase_ == GatePhase::kClosed) break;
    if (now() >= deadline) {
      metrics::Registry::global().counter("cqos.reconfig.park_timeout").inc();
      break;
    }
    cv_.wait_until(mu_, deadline);
  }
  --parked_;
  cv_.notify_all();  // the drain driver may be waiting on parked_ == 0
  return admitted;
}

void QuiesceGate::exit() {
  MutexLock lk(mu_);
  if (--inflight_ == 0) cv_.notify_all();
}

void QuiesceGate::control_checkpoint() {
  MutexLock lk(mu_);
  // Bounded: the swapping window is local surgery with zero in-flight
  // requests, so this is milliseconds. The bound guards against a wedged
  // swap thread turning a control into a hang.
  TimePoint deadline = now() + ms(10'000);
  while (phase_ == GatePhase::kSwapping && now() < deadline) {
    cv_.wait_until(mu_, deadline);
  }
}

bool QuiesceGate::begin_drain(const ReconfigOptions& opts) {
  MutexLock lk(mu_);
  if (phase_ != GatePhase::kLive) {
    throw Error(std::string("QuiesceGate: begin_drain in phase ") +
                std::string(gate_phase_name(phase_)));
  }
  phase_ = GatePhase::kDraining;
  parked_peak_ = 0;
  released_ = 0;
  max_parked_ = opts.max_parked;
  park_timeout_ = opts.park_timeout;
  TimePoint deadline = now() + opts.drain_timeout;
  while (inflight_ > 0 && now() < deadline) {
    cv_.wait_until(mu_, deadline);
  }
  if (inflight_ > 0) {
    // Abort: back to live, parked arrivals release onto the old stack.
    phase_ = GatePhase::kLive;
    cv_.notify_all();
    return false;
  }
  return true;
}

void QuiesceGate::begin_swap() {
  MutexLock lk(mu_);
  if (phase_ != GatePhase::kDraining || inflight_ != 0) {
    throw Error("QuiesceGate: begin_swap without a completed drain");
  }
  phase_ = GatePhase::kSwapping;
}

void QuiesceGate::resume() {
  MutexLock lk(mu_);
  if (phase_ == GatePhase::kClosed) return;
  phase_ = GatePhase::kLive;
  cv_.notify_all();
}

void QuiesceGate::close() {
  MutexLock lk(mu_);
  phase_ = GatePhase::kClosed;
  cv_.notify_all();
}

GatePhase QuiesceGate::phase() const {
  MutexLock lk(mu_);
  return phase_;
}

int QuiesceGate::inflight() const {
  MutexLock lk(mu_);
  return inflight_;
}

int QuiesceGate::parked_peak() const {
  MutexLock lk(mu_);
  return parked_peak_;
}

std::uint64_t QuiesceGate::released() const {
  MutexLock lk(mu_);
  return released_;
}

// --- swap engine -------------------------------------------------------------

namespace {

// Tear a (possibly partially installed) stack out of the composite:
// quiesce, export into `bag` (when non-null), shutdown (unbinds handlers).
void teardown_stack(cactus::CompositeProtocol& proto, cactus::StateBag* bag) {
  auto outgoing = proto.extract_protocols();
  for (auto& mp : outgoing) mp->quiesce();
  if (bag != nullptr) {
    for (auto& mp : outgoing) mp->export_state(*bag);
  }
  for (auto& mp : outgoing) mp->shutdown();
}

// Install `specs` and import `bag` into the new instances. On any failure
// the partial install is torn down (no export) and the exception
// propagates.
void install_stack(cactus::CompositeProtocol& proto, Side side,
                   const std::vector<MicroProtocolSpec>& specs,
                   const cactus::StateBag& bag) {
  try {
    MicroProtocolRegistry::instance().install(side, specs, proto);
    for (const std::string& name : proto.protocol_names()) {
      if (cactus::MicroProtocol* mp = proto.find_protocol(name)) {
        mp->import_state(bag);
      }
    }
  } catch (...) {
    teardown_stack(proto, nullptr);
    throw;
  }
}

}  // namespace

void swap_stack(cactus::CompositeProtocol& proto, QuiesceGate& gate,
                Side side, const std::vector<MicroProtocolSpec>& old_specs,
                const std::vector<MicroProtocolSpec>& new_specs,
                const ReconfigOptions& opts, ReconfigReport& report) {
  TimePoint t0 = now();
  if (!gate.begin_drain(opts)) {
    metrics::Registry::global().counter("cqos.reconfig.drain_timeout").inc();
    throw TimeoutError("reconfigure: drain of in-flight requests timed out "
                       "after " +
                       std::to_string(to_ms(opts.drain_timeout)) +
                       " ms (stack unchanged)");
  }
  TimePoint t1 = now();
  report.drain_ms = to_ms(t1 - t0);
  gate.begin_swap();

  cactus::StateBag bag;
  teardown_stack(proto, &bag);
  try {
    install_stack(proto, side, new_specs, bag);
  } catch (const std::exception& e) {
    // Roll back: re-create the OLD stack from its specs (fresh instances —
    // re-initializing shut-down instances is not part of the micro-protocol
    // contract) and re-import the exported state.
    CQOS_LOG_WARN(proto.name(), ": reconfigure install failed (", e.what(),
                  "), rolling back to previous composition");
    metrics::Registry::global().counter("cqos.reconfig.rollback").inc();
    report.rolled_back = true;
    try {
      install_stack(proto, side, old_specs, bag);
    } catch (...) {
      // The old stack no longer installs either: the composite is left
      // empty. The endpoint stays up but unconfigured; the rollback
      // failure propagates.
      gate.resume();
      throw;
    }
    gate.resume();
    report.parked_peak = gate.parked_peak();
    report.swap_ms = to_ms(now() - t1);
    report.total_ms = to_ms(now() - t0);
    throw;
  }
  gate.resume();
  report.parked_peak = gate.parked_peak();
  report.released = gate.released();
  report.swap_ms = to_ms(now() - t1);
  report.total_ms = to_ms(now() - t0);
  metrics::Registry::global().counter("cqos.reconfig.swaps").inc();
}

}  // namespace cqos
