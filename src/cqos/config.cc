#include "cqos/config.h"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/error.h"

namespace cqos {

// --- MicroProtocolSpec ---------------------------------------------------------

std::string MicroProtocolSpec::param(const std::string& key,
                                     std::string def) const {
  auto it = params.find(key);
  return it == params.end() ? std::move(def) : it->second;
}

std::int64_t MicroProtocolSpec::param_int(const std::string& key,
                                          std::int64_t def) const {
  auto it = params.find(key);
  if (it == params.end()) return def;
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(it->second.data(),
                                   it->second.data() + it->second.size(), v);
  if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
    throw ConfigError("parameter '" + key + "' of '" + name +
                      "' is not an integer: " + it->second);
  }
  return v;
}

double MicroProtocolSpec::param_double(const std::string& key,
                                       double def) const {
  auto it = params.find(key);
  if (it == params.end()) return def;
  try {
    std::size_t consumed = 0;
    double v = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ConfigError("parameter '" + key + "' of '" + name +
                      "' is not a number: " + it->second);
  }
}

// --- QosConfig parsing -----------------------------------------------------------

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool done() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '-' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      throw ConfigError("expected identifier at offset " +
                        std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Parameter value: everything up to ',' or ')'.
  std::string value() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != ')') {
      ++pos_;
    }
    std::string v(text_.substr(start, pos_ - start));
    while (!v.empty() && std::isspace(static_cast<unsigned char>(v.back())) != 0) {
      v.pop_back();
    }
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

MicroProtocolSpec parse_spec(Lexer& lex) {
  MicroProtocolSpec spec;
  spec.name = lex.ident();
  if (lex.consume('(')) {
    if (!lex.consume(')')) {
      do {
        std::string key = lex.ident();
        if (!lex.consume('=')) {
          throw ConfigError("expected '=' after parameter '" + key + "' of '" +
                            spec.name + "'");
        }
        spec.params[key] = lex.value();
      } while (lex.consume(','));
      if (!lex.consume(')')) {
        throw ConfigError("expected ')' closing parameters of '" + spec.name +
                          "'");
      }
    }
  }
  return spec;
}

}  // namespace

QosConfig QosConfig::parse(std::string_view text) {
  QosConfig cfg;
  Lexer lex(text);
  while (!lex.done()) {
    std::string section = lex.ident();
    if (!lex.consume(':')) {
      throw ConfigError("expected ':' after section '" + section + "'");
    }
    std::vector<MicroProtocolSpec>* target = nullptr;
    if (section == "client") {
      target = &cfg.client;
    } else if (section == "server") {
      target = &cfg.server;
    } else {
      throw ConfigError("unknown section '" + section +
                        "' (expected client/server)");
    }
    if (lex.peek() == ';' || lex.done()) {  // empty section
      lex.consume(';');
      continue;
    }
    do {
      target->push_back(parse_spec(lex));
    } while (lex.consume(','));
    lex.consume(';');
  }
  return cfg;
}

std::string QosConfig::serialize() const {
  std::ostringstream os;
  auto emit = [&os](const char* label,
                    const std::vector<MicroProtocolSpec>& specs) {
    os << label << ":";
    for (std::size_t i = 0; i < specs.size(); ++i) {
      os << (i == 0 ? " " : ", ") << specs[i].name;
      if (!specs[i].params.empty()) {
        os << "(";
        bool first = true;
        for (const auto& [k, v] : specs[i].params) {
          if (!first) os << ", ";
          first = false;
          os << k << "=" << v;
        }
        os << ")";
      }
    }
    os << ";\n";
  };
  emit("client", client);
  emit("server", server);
  return os.str();
}

QosConfig& QosConfig::add(Side s, std::string name,
                          std::map<std::string, std::string> params) {
  auto& target = s == Side::kClient ? client : server;
  target.push_back(MicroProtocolSpec{std::move(name), std::move(params)});
  return *this;
}

// --- ConfigRevision ---------------------------------------------------------------

ConfigRevision ConfigRevision::parse(std::string_view text) {
  ConfigRevision rev;
  // Headers are comment lines, so they are invisible to QosConfig::parse.
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    // Trim leading whitespace.
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string_view::npos) continue;
    line.remove_prefix(start);
    if (line.empty() || line[0] != '#') continue;
    line.remove_prefix(1);
    start = line.find_first_not_of(" \t");
    if (start != std::string_view::npos) line.remove_prefix(start);
    auto header_value = [&](std::string_view key) -> std::string_view {
      if (line.substr(0, key.size()) != key) return {};
      std::string_view v = line.substr(key.size());
      std::size_t s = v.find_first_not_of(" \t");
      if (s == std::string_view::npos) return {};
      std::size_t e = v.find_last_not_of(" \t\r");
      return v.substr(s, e - s + 1);
    };
    if (std::string_view v = header_value("revision:"); !v.empty()) {
      std::uint64_t n = 0;
      auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), n);
      if (ec != std::errc() || ptr != v.data() + v.size()) {
        throw ConfigError("malformed '# revision:' header: " +
                          std::string(v));
      }
      rev.revision = n;
    } else if (std::string_view p = header_value("provenance:"); !p.empty()) {
      rev.provenance = std::string(p);
    }
  }
  rev.config = QosConfig::parse(text);
  return rev;
}

std::string ConfigRevision::serialize() const {
  std::ostringstream os;
  os << "# revision: " << revision << "\n";
  if (!provenance.empty()) os << "# provenance: " << provenance << "\n";
  os << config.serialize();
  return os.str();
}

// --- validation -------------------------------------------------------------------

namespace {

bool has(const std::vector<MicroProtocolSpec>& specs, std::string_view name) {
  for (const auto& spec : specs) {
    if (spec.name == name) return true;
  }
  return false;
}

const MicroProtocolSpec* find(const std::vector<MicroProtocolSpec>& specs,
                              std::string_view name) {
  for (const auto& spec : specs) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace

ValidationResult validate(const QosConfig& config) {
  ValidationResult result;
  const auto& registry = MicroProtocolRegistry::instance();

  // Every spec must resolve and construct (this checks parameters too).
  auto check_side = [&](Side side, const char* label) {
    for (const auto& spec : config.side(side)) {
      if (!registry.contains(side, spec.name)) {
        result.errors.push_back(std::string(label) +
                                ": unknown micro-protocol '" + spec.name + "'");
        continue;
      }
      try {
        (void)registry.create(side, spec);
      } catch (const ConfigError& e) {
        result.errors.push_back(std::string(label) + ": " + spec.name + ": " +
                                e.what());
      }
    }
  };
  check_side(Side::kClient, "client");
  check_side(Side::kServer, "server");

  const auto& c = config.client;
  const auto& s = config.server;

  // Replication style conflicts and mismatches.
  if (has(c, "active_rep") && has(c, "passive_rep")) {
    result.errors.push_back(
        "client: active_rep and passive_rep are mutually exclusive");
  }
  if (has(c, "passive_rep") != has(s, "passive_rep")) {
    result.warnings.push_back(
        "passive_rep must be configured on both sides (client assigner + "
        "server forwarding/dedup)");
  }
  if ((has(c, "first_success") || has(c, "majority_vote")) &&
      !has(c, "active_rep")) {
    result.warnings.push_back(
        "client: acceptance micro-protocols (first_success/majority_vote) "
        "have no effect without active_rep");
  }
  if (has(c, "first_success") && has(c, "majority_vote")) {
    result.errors.push_back(
        "client: first_success and majority_vote are mutually exclusive");
  }
  if (has(s, "total_order") && !has(c, "active_rep")) {
    result.warnings.push_back(
        "server: total_order without client-side active_rep orders only the "
        "requests each replica happens to receive");
  }

  // One-sided security.
  for (const char* protocol : {"des_privacy", "integrity"}) {
    const MicroProtocolSpec* on_client = find(c, protocol);
    const MicroProtocolSpec* on_server = find(s, protocol);
    if ((on_client == nullptr) != (on_server == nullptr)) {
      result.warnings.push_back(std::string(protocol) +
                                " configured on one side only: all calls "
                                "will be rejected");
    } else if (on_client != nullptr && on_server != nullptr &&
               on_client->param("key") != on_server->param("key")) {
      result.warnings.push_back(std::string(protocol) +
                                ": client and server keys differ");
    }
  }

  // Scheduler conflicts.
  int schedulers = (has(s, "queued_sched") ? 1 : 0) +
                   (has(s, "timed_sched") ? 1 : 0);
  if (schedulers > 1) {
    result.errors.push_back(
        "server: queued_sched and timed_sched are mutually exclusive");
  }

  return result;
}

// --- MicroProtocolRegistry -------------------------------------------------------

MicroProtocolRegistry& MicroProtocolRegistry::instance() {
  static MicroProtocolRegistry registry;
  return registry;
}

void MicroProtocolRegistry::add(Side side, const std::string& name,
                                Factory factory) {
  MutexLock lk(mu_);
  factories_[{static_cast<int>(side), name}] = std::move(factory);
}

void MicroProtocolRegistry::add(Side side, const std::string& name,
                                Factory factory, MicroManifest manifest) {
  MutexLock lk(mu_);
  factories_[{static_cast<int>(side), name}] = std::move(factory);
  manifest.name = name;
  manifest.side = side;
  manifests_[{static_cast<int>(side), name}] = std::move(manifest);
}

const MicroManifest* MicroProtocolRegistry::find_manifest(
    Side side, const std::string& name) const {
  MutexLock lk(mu_);
  auto it = manifests_.find({static_cast<int>(side), name});
  // Map nodes are stable and the registry is append-only, so the pointer
  // outlives the lock.
  return it == manifests_.end() ? nullptr : &it->second;
}

bool MicroProtocolRegistry::contains(Side side, const std::string& name) const {
  MutexLock lk(mu_);
  return factories_.contains({static_cast<int>(side), name});
}

std::vector<std::string> MicroProtocolRegistry::names(Side side) const {
  MutexLock lk(mu_);
  std::vector<std::string> out;
  for (const auto& [key, factory] : factories_) {
    if (key.first == static_cast<int>(side)) out.push_back(key.second);
  }
  return out;
}

std::unique_ptr<cactus::MicroProtocol> MicroProtocolRegistry::create(
    Side side, const MicroProtocolSpec& spec) const {
  Factory factory;
  {
    MutexLock lk(mu_);
    auto it = factories_.find({static_cast<int>(side), spec.name});
    if (it == factories_.end()) {
      throw ConfigError("unknown " +
                        std::string(side == Side::kClient ? "client" : "server") +
                        " micro-protocol: " + spec.name);
    }
    factory = it->second;
  }
  return factory(spec);
}

void MicroProtocolRegistry::install(Side side,
                                    const std::vector<MicroProtocolSpec>& specs,
                                    cactus::CompositeProtocol& proto) const {
  for (const auto& spec : specs) {
    proto.add_protocol(create(side, spec));
  }
}

}  // namespace cqos
