// Live reconfiguration of a running Cactus composite (DESIGN.md §16).
//
// The paper customizes QoS at boot; this module makes the composition a
// runtime-mutable policy object, following the CORBA-CCM dynamic
// reconfiguration line (PAPERS.md). Two pieces:
//
//   QuiesceGate — the admission gate a CactusClient/CactusServer wraps
//     around its request entry points. In the live phase it only counts
//     in-flight requests. A reconfiguration drives it through
//         live → draining → swapping → live
//     New arrivals during draining/swapping PARK (block, bounded queue +
//     timeout) and release onto the new stack; in-flight requests drain to
//     zero before the swap touches the handler graph. Control messages
//     (replica forwarding, ordering info) are never blocked during draining
//     — in-flight requests may need them to complete — and only pause for
//     the brief swapping window via control_checkpoint().
//
//   swap_stack() — the swap engine: drain, quiesce the outgoing
//     micro-protocols, export their invariants-bearing state into a
//     cactus::StateBag, shut them down, install the new stack through the
//     MicroProtocolRegistry, import the state, resume. Any install failure
//     rolls back by re-creating the OLD stack from its specs and
//     re-importing the bag, so the endpoint keeps serving its prior
//     revision.
//
// Static verification (cqos/verify.h) happens BEFORE the gate is touched —
// a rejected composition never perturbs traffic. See
// QosEndpoint::Handle::reconfigure() in endpoint.h for the public API.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cactus/composite.h"
#include "common/clock.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "cqos/config.h"

namespace cqos {

enum class GatePhase { kLive, kDraining, kSwapping, kClosed };

std::string_view gate_phase_name(GatePhase p);

/// Knobs for one reconfiguration. Defaults suit the soak/bench request
/// timeouts; callers with longer-running requests raise drain_timeout.
struct ReconfigOptions {
  /// Upper bound on waiting for in-flight requests to complete. On expiry
  /// the swap aborts, parked requests release onto the OLD stack, and
  /// reconfigure() throws (revision unchanged).
  Duration drain_timeout = ms(5000);
  /// Bound on the parked-arrival queue; arrivals beyond it are rejected
  /// with a visible request failure (never silently dropped).
  int max_parked = 64;
  /// Bound on how long one arrival stays parked before it is rejected.
  Duration park_timeout = ms(5000);
};

/// What one swap did — surfaced through Handle::reconfigure() and measured
/// by bench_reconfig.
struct ReconfigReport {
  std::uint64_t revision = 0;   ///< revision now live (filled by the Handle)
  double drain_ms = 0;          ///< waiting for in-flight to reach zero
  double swap_ms = 0;           ///< quiesce + export + swap + import
  double total_ms = 0;          ///< end-to-end inside the gate
  int parked_peak = 0;          ///< max arrivals parked at once
  std::uint64_t released = 0;   ///< parked arrivals released onto new stack
  bool rolled_back = false;     ///< install failed; old stack restored
};

/// Admission gate for one composite's request entry points. Thread-safe.
class QuiesceGate {
 public:
  QuiesceGate() = default;
  QuiesceGate(const QuiesceGate&) = delete;
  QuiesceGate& operator=(const QuiesceGate&) = delete;

  /// Request entry. Returns true with the in-flight count incremented (the
  /// caller MUST pair with exit()), false when the request must be failed
  /// visibly (gate closed, parked queue full, or parked past the park
  /// timeout while a swap was in progress). Park limits are those of the
  /// most recent begin_drain() (ReconfigOptions defaults otherwise).
  bool enter();

  /// Request exit — call once after a successful enter().
  void exit();

  /// Control-message checkpoint: blocks only while the gate is in the brief
  /// swapping window (bounded), so handler-graph surgery never races a
  /// control activation. Draining does NOT block controls — in-flight
  /// requests need them (replica forwards, ordering info) to complete.
  void control_checkpoint();

  // --- swap-driver side (one reconfiguring thread at a time) ---------------

  /// live → draining; waits until in-flight == 0 (opts.drain_timeout) and
  /// adopts opts' park limits for arrivals during the swap. On timeout
  /// reverts to live (parked arrivals release onto the old stack) and
  /// returns false.
  bool begin_drain(const ReconfigOptions& opts);

  /// draining → swapping (requires a successful begin_drain()).
  void begin_swap();

  /// swapping|draining → live; releases parked arrivals.
  void resume();

  /// Terminal: reject all future entries, release nothing. Parked arrivals
  /// and future enter() calls return false.
  void close();

  GatePhase phase() const;
  int inflight() const;
  /// Peak parked depth since the last begin_drain().
  int parked_peak() const;
  /// Parked arrivals released into the live phase since the last
  /// begin_drain().
  std::uint64_t released() const;

 private:
  mutable Mutex mu_;
  CondVar cv_;
  GatePhase phase_ CQOS_GUARDED_BY(mu_) = GatePhase::kLive;
  int inflight_ CQOS_GUARDED_BY(mu_) = 0;
  int parked_ CQOS_GUARDED_BY(mu_) = 0;
  int parked_peak_ CQOS_GUARDED_BY(mu_) = 0;
  std::uint64_t released_ CQOS_GUARDED_BY(mu_) = 0;
  int max_parked_ CQOS_GUARDED_BY(mu_) = ReconfigOptions{}.max_parked;
  Duration park_timeout_ CQOS_GUARDED_BY(mu_) = ReconfigOptions{}.park_timeout;
};

/// Swap `proto`'s micro-protocol stack from `old_specs` to `new_specs`
/// behind `gate`. The caller has already verified `new_specs` (static
/// composition verifier) and normalized both spec lists (base protocols
/// appended). Throws on drain timeout (stack unchanged) and rethrows
/// install failures after rolling back to the old stack; fills `report`
/// either way. The gate is live again on every return path except after
/// close().
void swap_stack(cactus::CompositeProtocol& proto, QuiesceGate& gate,
                Side side, const std::vector<MicroProtocolSpec>& old_specs,
                const std::vector<MicroProtocolSpec>& new_specs,
                const ReconfigOptions& opts, ReconfigReport& report);

}  // namespace cqos
