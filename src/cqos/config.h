// QoS configuration: which micro-protocols run on each side, with parameters.
//
// Customization is done "statically at configuration time ... by using a
// configuration file that is read by the constructor of the composite
// protocol" (paper §2.3.3) or dynamically by downloading a matching
// configuration at startup (see dynamic_config.h). The textual format:
//
//     # comment
//     client: active_rep, majority_vote, des_privacy(key=00112233445566aa)
//     server: total_order, des_privacy(key=00112233445566aa)
//
// Micro-protocol factories are looked up in the MicroProtocolRegistry, the
// C++ analogue of rControl's dynamic class loading: configurations are data,
// resolved against the registry at install time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cactus/composite.h"

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "cqos/manifest.h"

namespace cqos {

struct MicroProtocolSpec {
  std::string name;
  std::map<std::string, std::string> params;

  std::string param(const std::string& key, std::string def = {}) const;
  std::int64_t param_int(const std::string& key, std::int64_t def) const;
  double param_double(const std::string& key, double def) const;
};

struct QosConfig {
  std::vector<MicroProtocolSpec> client;
  std::vector<MicroProtocolSpec> server;

  /// Parse the textual format above. Throws ConfigError.
  static QosConfig parse(std::string_view text);

  /// Round-trippable serialization.
  std::string serialize() const;

  const std::vector<MicroProtocolSpec>& side(Side s) const {
    return s == Side::kClient ? client : server;
  }

  /// Append a spec to one side (builder-style convenience).
  QosConfig& add(Side s, std::string name,
                 std::map<std::string, std::string> params = {});
};

/// A versioned configuration: the single value type `dynamic_config` and
/// the configuration service exchange (replacing their formerly separate
/// parse paths). `revision` increases monotonically per published
/// configuration — consumers apply a revision only when it is newer than
/// what they run, so replayed or reordered pushes are harmless no-ops.
/// `provenance` records where the revision came from (config service key,
/// file, test) for diagnostics.
///
/// Serialized as comment headers atop the standard QosConfig text:
///
///     # revision: 4
///     # provenance: config-service:[alice,BankAccount]
///     client: retransmit;
///     server: dedup;
///
/// so any plain QosConfig::parse() also accepts a ConfigRevision payload
/// (headers are comments) — old readers keep working.
struct ConfigRevision {
  std::uint64_t revision = 0;
  QosConfig config;
  std::string provenance;

  /// Parse headers + configuration. Missing headers default to revision 0
  /// / empty provenance (a bare QosConfig text is a valid revision 0).
  /// Throws ConfigError on malformed input.
  static ConfigRevision parse(std::string_view text);

  /// Round-trippable serialization (headers first).
  std::string serialize() const;
};

/// Result of statically checking a configuration (the role the paper
/// assigns to a CactusBuilder-like tool, §2.3.3): errors make the
/// configuration unusable; warnings flag compositions that are legal but
/// almost certainly not what was meant.
struct ValidationResult {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  bool ok() const { return errors.empty(); }
};

/// Check every spec against the registry (unknown names, bad parameters —
/// each factory is actually constructed) and apply composition rules:
/// mixed replication styles, one-sided security, conflicting schedulers,
/// acceptance without replication, client/server stack mismatches.
ValidationResult validate(const QosConfig& config);

class MicroProtocolRegistry {
 public:
  using Factory = std::function<std::unique_ptr<cactus::MicroProtocol>(
      const MicroProtocolSpec&)>;

  /// Process-wide registry (populated by register_standard_micro_protocols
  /// in the micro library; applications may add their own).
  static MicroProtocolRegistry& instance();

  void add(Side side, const std::string& name, Factory factory);
  /// Register a factory together with its effect model. The standard
  /// micro-protocols all use this overload (enforced by cqos_lint's
  /// manifest-sync rule); manifest-less registrations are treated as
  /// opaque by the composition verifier.
  void add(Side side, const std::string& name, Factory factory,
           MicroManifest manifest);
  bool contains(Side side, const std::string& name) const;
  std::vector<std::string> names(Side side) const;

  /// Effect model registered for (side, name); nullptr when the protocol
  /// is unknown or was registered without a manifest. The pointer stays
  /// valid for the process lifetime (the registry is append-only).
  const MicroManifest* find_manifest(Side side,
                                     const std::string& name) const;

  /// Instantiate one micro-protocol. Throws ConfigError for unknown names.
  std::unique_ptr<cactus::MicroProtocol> create(
      Side side, const MicroProtocolSpec& spec) const;

  /// Instantiate and install every spec of `side` into `proto`, in order.
  void install(Side side, const std::vector<MicroProtocolSpec>& specs,
               cactus::CompositeProtocol& proto) const;

 private:
  mutable Mutex mu_;
  std::map<std::pair<int, std::string>, Factory> factories_
      CQOS_GUARDED_BY(mu_);
  std::map<std::pair<int, std::string>, MicroManifest> manifests_
      CQOS_GUARDED_BY(mu_);
};

}  // namespace cqos
