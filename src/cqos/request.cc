#include "cqos/request.h"

#include <atomic>

#include "common/metrics.h"

namespace cqos {
namespace {

std::atomic<bool> g_encode_cache_enabled{true};

metrics::Counter& encodes_counter() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("cqos.request.encodes");
  return c;
}

}  // namespace

std::uint64_t Request::next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Request::Request(std::string object_id_in, std::string method_in,
                 ValueList params_in)
    : id(next_id()),
      object_id(std::move(object_id_in)),
      method(std::move(method_in)),
      params_(std::move(params_in)) {}

void Request::set_params(ValueList params) {
  MutexLock lk(encode_mu_);
  params_ = std::move(params);
  encoded_cache_.reset();
}

void Request::set_encrypted_params(Bytes ciphertext) {
  // The encoding of a one-element [bytes] list is mechanical: count varint,
  // kBytes tag, length varint, payload. Build it directly so replacing the
  // params with ciphertext keeps the cache primed without re-traversal.
  ValueList cipher_params{Value(std::move(ciphertext))};
  ByteWriter w(Value::encoded_list_size(cipher_params));
  w.put_varint(cipher_params.size());
  for (const auto& v : cipher_params) v.encode(w);
  MutexLock lk(encode_mu_);
  params_ = std::move(cipher_params);
  encoded_cache_ = std::make_shared<const Bytes>(std::move(w).take());
}

std::shared_ptr<const Bytes> Request::encoded_params() const {
  if (!encode_cache_enabled()) {
    encodes_counter().inc();
    MutexLock lk(encode_mu_);
    return std::make_shared<const Bytes>(Value::encode_list(params_));
  }
  MutexLock lk(encode_mu_);
  if (!encoded_cache_) {
    encodes_counter().inc();
    encoded_cache_ = std::make_shared<const Bytes>(Value::encode_list(params_));
  }
  return encoded_cache_;
}

void Request::set_encode_cache_enabled(bool on) {
  g_encode_cache_enabled.store(on, std::memory_order_relaxed);
}

bool Request::encode_cache_enabled() {
  return g_encode_cache_enabled.load(std::memory_order_relaxed);
}

bool Request::complete(bool success, Value result, std::string error) {
  MutexLock lk(mu_);
  if (done_) return false;
  done_ = true;
  success_ = success;
  result_ = std::move(result);
  error_ = std::move(error);
  cv_.notify_all();
  return true;
}

void Request::stage(bool success, Value result, std::string error) {
  MutexLock lk(mu_);
  if (done_) return;
  success_ = success;
  result_ = std::move(result);
  error_ = std::move(error);
}

void Request::finish() {
  MutexLock lk(mu_);
  if (done_) return;
  done_ = true;
  cv_.notify_all();
}

bool Request::staged_success() const {
  MutexLock lk(mu_);
  return success_;
}

Value Request::staged_result() const {
  MutexLock lk(mu_);
  return result_;
}

std::string Request::staged_error() const {
  MutexLock lk(mu_);
  return error_;
}

void Request::set_staged_result(Value v) {
  MutexLock lk(mu_);
  if (done_) return;
  result_ = std::move(v);
}

bool Request::has_flag(const std::string& flag) const {
  MutexLock lk(flags_mu_);
  return flags_.contains(flag);
}

bool Request::wait(Duration timeout) {
  TimePoint deadline = now() + timeout;
  MutexLock lk(mu_);
  while (!done_) {
    if (now() >= deadline) return false;
    cv_.wait_until(mu_, deadline);
  }
  return true;
}

bool Request::is_done() const {
  MutexLock lk(mu_);
  return done_;
}

bool Request::succeeded() const {
  MutexLock lk(mu_);
  return done_ && success_;
}

Value Request::result() const {
  MutexLock lk(mu_);
  return result_;
}

std::string Request::error() const {
  MutexLock lk(mu_);
  return error_;
}

PiggybackMap Request::reply_piggyback() const {
  MutexLock lk(mu_);
  return reply_pb_;
}

void Request::merge_reply_piggyback(const PiggybackMap& pb) {
  MutexLock lk(mu_);
  for (const auto& [k, v] : pb) reply_pb_[k] = v;
}

void Request::set_expected_replies(int n) {
  MutexLock lk(mu_);
  expected_replies_ = n;
}

int Request::expected_replies() const {
  MutexLock lk(mu_);
  return expected_replies_;
}

Request::Counts Request::record_outcome(const Invocation& inv) {
  MutexLock lk(mu_);
  if (inv.success) {
    ++successes_;
  } else {
    ++failures_;
  }
  return Counts{successes_, failures_, expected_replies_};
}

void Request::reclassify_success_as_failure() {
  MutexLock lk(mu_);
  if (successes_ > 0) {
    --successes_;
    ++failures_;
  }
}

Request::Counts Request::counts() const {
  MutexLock lk(mu_);
  return Counts{successes_, failures_, expected_replies_};
}

void Request::reset(std::string object_id_in, std::string method_in,
                    ValueList params_in) {
  MutexLock fl(flags_mu_);  // hierarchy: flags_mu_ before mu_ before encode_mu_
  MutexLock lk(mu_);
  MutexLock el(encode_mu_);
  flags_.clear();
  id = next_id();
  trace_id = 0;
  object_id = std::move(object_id_in);
  method = std::move(method_in);
  params_ = std::move(params_in);
  encoded_cache_.reset();
  piggyback.clear();
  forwarded = false;
  deadline = TimePoint{};
  done_ = false;
  success_ = false;
  result_ = Value();
  error_.clear();
  reply_pb_.clear();
  expected_replies_ = 1;
  successes_ = 0;
  failures_ = 0;
}

ValueList Request::encode_for_forward() const {
  ByteWriter pb_writer;
  encode_piggyback(pb_writer, piggyback);
  return ValueList{
      Value(static_cast<std::int64_t>(id)),
      Value(method),
      Value(Bytes(*encoded_params())),
      Value(std::move(pb_writer).take()),
  };
}

RequestPtr Request::decode_forwarded(const std::string& object_id,
                                     const ValueList& args) {
  auto req = std::make_shared<Request>();
  req->id = static_cast<std::uint64_t>(args.at(0).as_i64());
  req->object_id = object_id;
  req->method = args.at(1).as_string();
  {
    // The forwarded blob *is* encode_list(params): decode it and prime the
    // cache with the wire bytes so the receiving replica never re-encodes.
    const Bytes& wire = args.at(2).as_bytes();
    MutexLock lk(req->encode_mu_);
    req->params_ = Value::decode_list(wire);
    req->encoded_cache_ = std::make_shared<const Bytes>(wire);
  }
  ByteReader pb_reader(args.at(3).as_bytes());
  req->piggyback = decode_piggyback(pb_reader);
  req->forwarded = true;
  auto it = req->piggyback.find(pbkey::kPriority);
  if (it != req->piggyback.end()) {
    req->priority = static_cast<int>(it->second.as_i64());
  }
  auto trace_it = req->piggyback.find(pbkey::kTraceId);
  if (trace_it != req->piggyback.end()) {
    req->trace_id = static_cast<std::uint64_t>(trace_it->second.as_i64());
  }
  return req;
}

}  // namespace cqos
