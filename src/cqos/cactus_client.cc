#include "cqos/cactus_client.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "cqos/events.h"

namespace cqos {
namespace {

// Mirror of the server-side default: a dropped async activation fails its
// request instead of hanging the caller (composite.cc counts the drop).
cactus::CompositeProtocol::Options with_drop_handler(
    cactus::CompositeProtocol::Options o) {
  if (!o.on_async_drop) {
    o.on_async_drop = [](std::string_view event, const std::any& dyn) {
      if (const RequestPtr* req = std::any_cast<RequestPtr>(&dyn)) {
        (*req)->complete(false, Value(),
                         "cqos: client runtime dropped '" +
                             std::string(event) +
                             "' (pool rejected or shut down)");
      }
    };
  }
  return o;
}

}  // namespace

CactusClient::CactusClient(std::unique_ptr<ClientQosInterface> qos,
                           Options opts)
    : proto_(with_drop_handler(std::move(opts.composite))),
      qos_(std::move(qos)),
      request_timeout_(opts.request_timeout) {
  auto holder = proto_.shared().get_or_create<ClientQosHolder>(kClientQosKey);
  holder->qos = qos_.get();
  holder->client = this;
}

CactusClient::~CactusClient() { stop(); }

void CactusClient::cactus_request(const RequestPtr& req) {
  static metrics::Histogram& hist =
      metrics::Registry::global().histogram("cqos.cactus.client.request");
  trace::ScopedSpan span(req->trace_id, "cqos.cactus.client.request",
                         req->method, &hist);
  // Reconfiguration gate: live requests count as in-flight; arrivals during
  // a hot-swap park and release onto the new stack. A rejected entry (gate
  // closed, parked queue full/timed out) is a visible failure, never a hang.
  if (!gate_.enter()) {
    req->complete(false, Value(),
                  "cqos: client rejected during reconfiguration (gate " +
                      std::string(gate_phase_name(gate_.phase())) + ")");
    return;
  }
  proto_.raise(ev::kNewRequest, req);
  if (!req->wait(request_timeout_)) {
    req->complete(false, Value(), "cqos: request timed out");
  }
  gate_.exit();
}

}  // namespace cqos
