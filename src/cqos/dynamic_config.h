// Dynamic customization (paper §2.3.3): matching client configurations are
// loaded at execution time rather than compiled in.
//
// The paper's Cactus/J prototype boots with the rBoot micro-protocol, which
// downloads rControl (a Java archive) over a separate TCP connection, and
// rControl then loads the configured micro-protocols dynamically. Portable
// C++ cannot load new code safely at runtime, so CQoS preserves the deployed
// behaviour instead of the mechanism: the server *advertises* its required
// client configuration as data (the serialized QosConfig), the client fetches
// it at startup over a control invocation and resolves each micro-protocol
// name against the in-process MicroProtocolRegistry (the analogue of the
// already-loaded class path). Updates therefore only need to be made at the
// server, exactly as in the paper's deployment story.
#pragma once

#include <string>

#include "cqos/cactus_client.h"
#include "cqos/cactus_server.h"
#include "cqos/config.h"
#include "platform/api.h"

namespace cqos {

/// Control name under which the advertised configuration is served.
inline constexpr const char* kConfigFetchControl = "cfg_fetch";

/// Bind a control handler on `server` that serves `config` to bootstrapping
/// clients (the rControl-analogue on the server side).
void advertise_config(CactusServer& server, const QosConfig& config);

/// Fetch the advertised configuration from replica `replica_index` (1-based)
/// of `object_id` (the rBoot-analogue on the client side). Throws on
/// unreachable server or malformed configuration.
QosConfig fetch_config(plat::Platform& platform, const std::string& object_id,
                       int replica_index, Duration timeout);

/// Convenience: fetch the configuration and install its client-side
/// micro-protocols into `client`.
void bootstrap_client(CactusClient& client, plat::Platform& platform,
                      const std::string& object_id, int replica_index,
                      Duration timeout);

}  // namespace cqos
