// Dynamic customization (paper §2.3.3): matching client configurations are
// loaded at execution time rather than compiled in.
//
// The paper's Cactus/J prototype boots with the rBoot micro-protocol, which
// downloads rControl (a Java archive) over a separate TCP connection, and
// rControl then loads the configured micro-protocols dynamically. Portable
// C++ cannot load new code safely at runtime, so CQoS preserves the deployed
// behaviour instead of the mechanism: the server *advertises* its required
// client configuration as data (a serialized ConfigRevision), the client
// fetches it at startup over a control invocation and resolves each
// micro-protocol name against the in-process MicroProtocolRegistry (the
// analogue of the already-loaded class path). Updates therefore only need to
// be made at the server, exactly as in the paper's deployment story.
//
// Live reconfiguration (DESIGN.md §16) extends this: the advertisement is a
// versioned ConfigRevision held in the server composite's shared data, so a
// server that hot-swaps its stack bumps the advertised revision in place
// (update_advertised_config) and a ConfigWatcher on the client side notices
// the new revision and reconfigures to match.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "cqos/cactus_client.h"
#include "cqos/cactus_server.h"
#include "cqos/config.h"
#include "platform/api.h"

namespace cqos {

/// Control name under which the advertised configuration is served.
inline constexpr const char* kConfigFetchControl = "cfg_fetch";

/// Shared-data slot holding the advertisement. Lives in the server
/// composite's SharedData — NOT in any micro-protocol — so it survives a
/// live stack swap and the serving control handler (also bound outside the
/// swapped stack) always answers with the current revision.
struct AdvertisedConfig {
  Mutex mu;
  ConfigRevision current CQOS_GUARDED_BY(mu);
  bool bound CQOS_GUARDED_BY(mu) = false;  // control handler installed?
};
inline constexpr const char* kAdvertisedConfigKey = "cqos.advertised_config";

/// Advertise `rev` to bootstrapping clients (the rControl-analogue on the
/// server side). First call binds the serving control handler; later calls
/// replace the advertisement unconditionally (use update_advertised_config
/// when monotonicity must be enforced).
void advertise_config(CactusServer& server, ConfigRevision rev);

/// Compatibility overload: advertise an unversioned config as revision 1.
void advertise_config(CactusServer& server, const QosConfig& config);

/// Replace the advertisement only if `rev.revision` is strictly greater
/// than the currently advertised revision. Returns false (leaving the
/// advertisement untouched) on a stale or duplicate revision, or when
/// nothing was ever advertised.
bool update_advertised_config(CactusServer& server, ConfigRevision rev);

/// Fetch the advertised revision from replica `replica_index` (1-based) of
/// `object_id` (the rBoot-analogue on the client side). Throws on
/// unreachable server or malformed configuration. Pre-revision servers
/// (plain QosConfig text) parse as revision 0.
ConfigRevision fetch_config_revision(plat::Platform& platform,
                                     const std::string& object_id,
                                     int replica_index, Duration timeout);

/// Convenience: fetch_config_revision and drop the version metadata.
QosConfig fetch_config(plat::Platform& platform, const std::string& object_id,
                       int replica_index, Duration timeout);

/// Convenience: fetch the configuration and install its client-side
/// micro-protocols into `client`.
void bootstrap_client(CactusClient& client, plat::Platform& platform,
                      const std::string& object_id, int replica_index,
                      Duration timeout);

/// RAII poller: re-fetches the advertised revision every `period` and runs
/// `on_change` (from the watcher thread) whenever the revision number
/// increases past the last one seen. Fetch failures are ignored (the next
/// tick retries); the callback typically calls Handle::reconfigure. The
/// destructor stops the thread and joins it.
class ConfigWatcher {
 public:
  using Callback = std::function<void(const ConfigRevision&)>;

  ConfigWatcher(plat::Platform& platform, std::string object_id,
                int replica_index, Duration period, Callback on_change);
  ~ConfigWatcher();

  ConfigWatcher(const ConfigWatcher&) = delete;
  ConfigWatcher& operator=(const ConfigWatcher&) = delete;

  /// Stop polling (idempotent; also called by the destructor).
  void stop();

  /// Highest revision number observed so far (0 before the first hit).
  std::uint64_t last_revision() const { return last_revision_.load(); }

 private:
  void run(plat::Platform& platform, std::string object_id, int replica_index,
           Duration period, Callback on_change);

  std::atomic<std::uint64_t> last_revision_{0};
  Mutex mu_;
  CondVar cv_;
  bool stopped_ CQOS_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace cqos
