// CQoS stub: the client-side interceptor (paper §2.2).
//
// Replaces the middleware-generated stub. Its application-facing surface is
// the generic call() that typed application stubs (the "generated from the
// server IDL" classes, e.g. BankAccountStub in the examples) delegate to.
// Each call builds an abstract Request, notifies the Cactus client, blocks
// until the request completes and converts the outcome back into a return
// value or exception.
//
// Two modes:
//   - full CQoS: a CactusClient processes the request (micro-protocols run);
//   - bypass: no Cactus client attached — the stub invokes replica 0
//     directly through the QoS interface. This is the "+CQoS stub" /
//     "+CQoS skeleton" intermediate configuration of Table 1.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/priority.h"
#include "cqos/cactus_client.h"
#include "cqos/request.h"

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos {

class CqosStub {
 public:
  struct Options {
    /// Request priority derived from client identity (paper §3.4).
    int priority = kNormalPriority;
    /// Principal asserted in the piggyback for access control.
    std::string principal;
    /// Reuse request structures across calls — the optimization the paper
    /// applies "to avoid object creation". Off in bench_ablation_reuse.
    bool reuse_requests = true;
  };

  /// Full CQoS mode.
  CqosStub(std::shared_ptr<CactusClient> client, std::string object_id,
           Options opts);
  CqosStub(std::shared_ptr<CactusClient> client, std::string object_id)
      : CqosStub(std::move(client), std::move(object_id), Options{}) {}

  /// Bypass mode: direct (dynamic) invocation of replica 0, no Cactus.
  CqosStub(std::shared_ptr<ClientQosInterface> direct, std::string object_id,
           Options opts);
  CqosStub(std::shared_ptr<ClientQosInterface> direct, std::string object_id)
      : CqosStub(std::move(direct), std::move(object_id), Options{}) {}

  /// Invoke `method`; returns the result or throws InvocationError.
  Value call(const std::string& method, ValueList params);

  /// As call(), but hands back the completed Request (advanced callers that
  /// need reply piggyback fields or failure details).
  RequestPtr call_request(const std::string& method, ValueList params);

  const std::string& object_id() const { return object_id_; }

 private:
  RequestPtr acquire(const std::string& method, ValueList params);
  void release(RequestPtr req);

  std::shared_ptr<CactusClient> client_;       // null in bypass mode
  std::shared_ptr<ClientQosInterface> direct_;  // set in bypass mode
  std::string object_id_;
  Options opts_;

  Mutex pool_mu_;
  std::vector<RequestPtr> pool_ CQOS_GUARDED_BY(pool_mu_);
};

}  // namespace cqos
