#include "cqos/endpoint.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "cqos/verify.h"

namespace cqos {
namespace {

bool has_spec(const std::vector<MicroProtocolSpec>& specs,
              std::string_view name) {
  return std::any_of(specs.begin(), specs.end(),
                     [&](const auto& s) { return s.name == name; });
}

// Duplicate names are rejected unconditionally (even under verify(false)):
// a composite keys handlers per instance, so a duplicated protocol silently
// double-handles every event it binds.
void reject_duplicate_specs(Side side,
                            const std::vector<MicroProtocolSpec>& specs) {
  std::set<std::string> seen;
  for (const auto& spec : specs) {
    if (!seen.insert(spec.name).second) {
      throw ConfigError(std::string("QosEndpoint: duplicate micro-protocol '") +
                        spec.name + "' in the " + side_name(side) + " stack");
    }
  }
}

// Fail-fast hook for kFull builds: run the side-local static analysis and
// surface every diagnostic at once instead of the first runtime symptom.
void verify_specs_or_throw(Side side,
                           const std::vector<MicroProtocolSpec>& specs) {
  VerifyResult result = verify_side(side, specs);
  if (result.ok()) return;
  throw ConfigError(std::string("QosEndpoint: ") + side_name(side) +
                    " stack failed composition verification:\n" +
                    result.text());
}

std::vector<std::string> derived_names(const plat::Platform& platform,
                                       const std::string& object_id,
                                       int replicas, EndpointMode mode) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i) {
    names.push_back(mode == EndpointMode::kStatic
                        ? platform.direct_name(object_id)
                        : platform.replica_name(object_id, i + 1));
  }
  return names;
}

}  // namespace

// --- QosClientEndpoint -------------------------------------------------------

QosClientEndpoint::~QosClientEndpoint() {
  if (cactus_) cactus_->stop();
}

// --- QosServerEndpoint -------------------------------------------------------

QosServerEndpoint::~QosServerEndpoint() { stop(); }

void QosServerEndpoint::stop() {
  if (cactus_) cactus_->stop();
}

// --- ClientBuilder -----------------------------------------------------------

QosEndpoint::ClientBuilder::ClientBuilder(plat::Platform& platform,
                                          std::string object_id)
    : platform_(platform), object_id_(std::move(object_id)) {}

QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::mode(EndpointMode m) {
  mode_ = m;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::servers(
    std::vector<std::string> names) {
  servers_ = std::move(names);
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::replicas(int n) {
  if (n < 1) throw ConfigError("QosEndpoint: replicas must be >= 1");
  replicas_ = n;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::qos(
    std::vector<MicroProtocolSpec> specs) {
  specs_ = std::move(specs);
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::verify(bool on) {
  verify_ = on;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::invoke_timeout(
    Duration d) {
  qos_opts_.invoke_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::resolve_timeout(
    Duration d) {
  qos_opts_.resolve_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::ping_timeout(
    Duration d) {
  qos_opts_.ping_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::request_timeout(
    Duration d) {
  cactus_opts_.request_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::composite_name(
    std::string name) {
  cactus_opts_.composite.name = std::move(name);
  composite_name_set_ = true;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::pool_threads(int n) {
  cactus_opts_.composite.pool_threads = n;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::thread_pool(bool on) {
  cactus_opts_.composite.use_thread_pool = on;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::priority(int p) {
  stub_opts_.priority = p;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::principal(
    std::string who) {
  stub_opts_.principal = std::move(who);
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::reuse_requests(
    bool on) {
  stub_opts_.reuse_requests = on;
  return *this;
}

std::unique_ptr<QosClientEndpoint> QosEndpoint::ClientBuilder::build() {
  qos_opts_.use_dynamic_invocation = mode_ != EndpointMode::kStatic;
  std::vector<std::string> names =
      servers_.empty() ? derived_names(platform_, object_id_, replicas_, mode_)
                       : servers_;
  auto qos = std::make_unique<PlatformClientQos>(platform_, object_id_, names,
                                                 qos_opts_);
  auto ep = std::unique_ptr<QosClientEndpoint>(new QosClientEndpoint());
  if (mode_ == EndpointMode::kFull) {
    reject_duplicate_specs(Side::kClient, specs_);
    if (verify_) verify_specs_or_throw(Side::kClient, specs_);
    if (!composite_name_set_) {
      cactus_opts_.composite.name = "cactus-client-" + object_id_;
    }
    ep->cactus_ = std::make_shared<CactusClient>(std::move(qos), cactus_opts_);
    std::vector<MicroProtocolSpec> specs = specs_;
    if (!has_spec(specs, "client_base")) {
      specs.push_back(MicroProtocolSpec{"client_base", {}});
    }
    MicroProtocolRegistry::instance().install(Side::kClient, specs,
                                              ep->cactus_->protocol());
    ep->stub_ =
        std::make_shared<CqosStub>(ep->cactus_, object_id_, stub_opts_);
  } else {
    if (!specs_.empty()) {
      throw ConfigError(
          "QosEndpoint: a micro-protocol stack needs mode kFull");
    }
    ep->stub_ = std::make_shared<CqosStub>(
        std::shared_ptr<ClientQosInterface>(std::move(qos)), object_id_,
        stub_opts_);
  }
  return ep;
}

// --- ServerBuilder -----------------------------------------------------------

QosEndpoint::ServerBuilder::ServerBuilder(plat::Platform& platform,
                                          std::shared_ptr<Servant> servant,
                                          std::string object_id)
    : platform_(platform),
      servant_(std::move(servant)),
      object_id_(std::move(object_id)) {
  if (!servant_) throw ConfigError("QosEndpoint: servant is required");
}

QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::mode(EndpointMode m) {
  mode_ = m;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::replica(
    int self_index, std::vector<std::string> peers) {
  if (self_index < 0 || self_index >= static_cast<int>(peers.size())) {
    throw ConfigError("QosEndpoint: self_index out of range");
  }
  self_index_ = self_index;
  peers_ = std::move(peers);
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::replica_of(
    int self_index, int n) {
  if (n < 1 || self_index < 0 || self_index >= n) {
    throw ConfigError("QosEndpoint: self_index out of range");
  }
  self_index_ = self_index;
  replicas_ = n;
  peers_.clear();
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::qos(
    std::vector<MicroProtocolSpec> specs) {
  specs_ = std::move(specs);
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::verify(bool on) {
  verify_ = on;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::peer_timeout(
    Duration d) {
  qos_opts_.peer_timeout = d;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::resolve_timeout(
    Duration d) {
  qos_opts_.resolve_timeout = d;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::process_timeout(
    Duration d) {
  cactus_opts_.process_timeout = d;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::composite_name(
    std::string name) {
  cactus_opts_.composite.name = std::move(name);
  composite_name_set_ = true;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::pool_threads(int n) {
  cactus_opts_.composite.pool_threads = n;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::thread_pool(bool on) {
  cactus_opts_.composite.use_thread_pool = on;
  return *this;
}

std::unique_ptr<QosServerEndpoint> QosEndpoint::ServerBuilder::build() {
  auto ep = std::unique_ptr<QosServerEndpoint>(new QosServerEndpoint());
  switch (mode_) {
    case EndpointMode::kStatic: {
      if (!specs_.empty()) {
        throw ConfigError(
            "QosEndpoint: a micro-protocol stack needs mode kFull");
      }
      platform_.register_servant(platform_.direct_name(object_id_),
                                 std::make_shared<DirectServantHandler>(servant_),
                                 plat::DispatchMode::kStatic);
      break;
    }
    case EndpointMode::kBypass: {
      if (!specs_.empty()) {
        throw ConfigError(
            "QosEndpoint: a micro-protocol stack needs mode kFull");
      }
      ep->skeleton_ = std::make_shared<CqosSkeleton>(object_id_, servant_);
      register_cqos_skeleton(platform_, ep->skeleton_, self_index_ + 1);
      break;
    }
    case EndpointMode::kFull: {
      reject_duplicate_specs(Side::kServer, specs_);
      if (verify_) verify_specs_or_throw(Side::kServer, specs_);
      std::vector<std::string> peers =
          peers_.empty()
              ? derived_names(platform_, object_id_, replicas_, mode_)
              : peers_;
      auto qos = std::make_unique<PlatformServerQos>(
          platform_, servant_, object_id_, peers, self_index_, qos_opts_);
      if (!composite_name_set_) {
        cactus_opts_.composite.name = "cactus-server-" + object_id_;
      }
      ep->cactus_ =
          std::make_shared<CactusServer>(std::move(qos), cactus_opts_);
      std::vector<MicroProtocolSpec> specs = specs_;
      if (!has_spec(specs, "server_base")) {
        specs.push_back(MicroProtocolSpec{"server_base", {}});
      }
      MicroProtocolRegistry::instance().install(Side::kServer, specs,
                                                ep->cactus_->protocol());
      ep->skeleton_ =
          std::make_shared<CqosSkeleton>(object_id_, ep->cactus_);
      register_cqos_skeleton(platform_, ep->skeleton_, self_index_ + 1);
      break;
    }
  }
  return ep;
}

}  // namespace cqos
