#include "cqos/endpoint.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/log.h"
#include "cqos/verify.h"

namespace cqos {
namespace {

bool has_spec(const std::vector<MicroProtocolSpec>& specs,
              std::string_view name) {
  return std::any_of(specs.begin(), specs.end(),
                     [&](const auto& s) { return s.name == name; });
}

// Duplicate names are rejected unconditionally (even under verify(false)):
// a composite keys handlers per instance, so a duplicated protocol silently
// double-handles every event it binds.
void reject_duplicate_specs(Side side,
                            const std::vector<MicroProtocolSpec>& specs) {
  std::set<std::string> seen;
  for (const auto& spec : specs) {
    if (!seen.insert(spec.name).second) {
      throw ConfigError(std::string("QosEndpoint: duplicate micro-protocol '") +
                        spec.name + "' in the " + side_name(side) + " stack");
    }
  }
}

// Fail-fast hook for kFull builds and reconfigurations: run the side-local
// static analysis and surface every diagnostic at once instead of the first
// runtime symptom.
void verify_specs_or_throw(Side side,
                           const std::vector<MicroProtocolSpec>& specs) {
  VerifyResult result = verify_side(side, specs);
  if (result.ok()) return;
  throw ConfigError(std::string("QosEndpoint: ") + side_name(side) +
                    " stack failed composition verification:\n" +
                    result.text());
}

// The installed stack always ends with its side's base protocol; configured
// specs omit it.
std::vector<MicroProtocolSpec> with_base(
    Side side, std::vector<MicroProtocolSpec> specs) {
  const char* base = side == Side::kClient ? "client_base" : "server_base";
  if (!has_spec(specs, base)) {
    specs.push_back(MicroProtocolSpec{base, {}});
  }
  return specs;
}

std::vector<std::string> derived_names(const plat::Platform& platform,
                                       const std::string& object_id,
                                       int replicas, EndpointMode mode) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i) {
    names.push_back(mode == EndpointMode::kStatic
                        ? platform.direct_name(object_id)
                        : platform.replica_name(object_id, i + 1));
  }
  return names;
}

}  // namespace

// --- Handle ------------------------------------------------------------------

QosEndpoint::Handle::Handle(Side side, EndpointMode mode,
                            std::vector<MicroProtocolSpec> specs, bool verify)
    : side_(side), mode_(mode), verify_(verify), specs_(std::move(specs)) {}

std::uint64_t QosEndpoint::Handle::config_revision() const {
  MutexLock lk(state_mu_);
  return revision_;
}

std::vector<MicroProtocolSpec> QosEndpoint::Handle::current_specs() const {
  MutexLock lk(state_mu_);
  return specs_;
}

ReconfigOptions QosEndpoint::Handle::reconfig_options() const {
  MutexLock lk(state_mu_);
  return reconfig_opts_;
}

void QosEndpoint::Handle::set_reconfig_options(const ReconfigOptions& opts) {
  MutexLock lk(state_mu_);
  reconfig_opts_ = opts;
}

bool QosEndpoint::Handle::closed() const {
  MutexLock lk(state_mu_);
  return closed_;
}

ReconfigReport QosEndpoint::Handle::reconfigure(
    std::vector<MicroProtocolSpec> specs) {
  return reconfigure_impl(std::move(specs), 0);
}

ReconfigReport QosEndpoint::Handle::reconfigure(const QosConfig& config) {
  return reconfigure_impl(config.side(side_), 0);
}

bool QosEndpoint::Handle::reconfigure(const ConfigRevision& rev,
                                      ReconfigReport* report) {
  {
    MutexLock lk(state_mu_);
    if (rev.revision <= revision_) return false;
  }
  ReconfigReport r = reconfigure_impl(rev.config.side(side_), rev.revision);
  if (report != nullptr) *report = r;
  return true;
}

ReconfigReport QosEndpoint::Handle::reconfigure_impl(
    std::vector<MicroProtocolSpec> specs, std::uint64_t pushed_revision) {
  if (mode_ != EndpointMode::kFull) {
    throw ConfigError("QosEndpoint: reconfigure() needs mode kFull");
  }
  MutexLock reconfig(reconfig_mu_);
  std::vector<MicroProtocolSpec> old_specs;
  ReconfigOptions opts;
  {
    MutexLock lk(state_mu_);
    if (closed_) throw ConfigError("QosEndpoint: reconfigure() after close()");
    old_specs = specs_;
    opts = reconfig_opts_;
  }
  // Validate BEFORE touching the gate: a rejected composition must not
  // perturb traffic (acceptance criterion: clean rollback to the prior
  // revision, which here means never leaving it).
  reject_duplicate_specs(side_, specs);
  if (verify_) verify_specs_or_throw(side_, specs);

  ReconfigReport report;
  swap_stack(*composite(), *quiesce_gate(), side_, with_base(side_, old_specs),
             with_base(side_, specs), opts, report);

  MutexLock lk(state_mu_);
  specs_ = std::move(specs);
  revision_ = std::max(revision_ + 1, pushed_revision);
  report.revision = revision_;
  return report;
}

bool QosEndpoint::Handle::drain(Duration timeout) {
  if (mode_ != EndpointMode::kFull) return true;
  MutexLock reconfig(reconfig_mu_);
  {
    MutexLock lk(state_mu_);
    if (closed_) return true;
  }
  QuiesceGate* gate = quiesce_gate();
  if (gate == nullptr) return true;
  ReconfigOptions opts = reconfig_options();
  opts.drain_timeout = timeout;
  bool drained = gate->begin_drain(opts);
  // No swap: straight back to live, releasing anything that parked. A
  // failed drain already reverted the gate itself.
  if (drained) gate->resume();
  return drained;
}

void QosEndpoint::Handle::close() {
  MutexLock reconfig(reconfig_mu_);
  {
    MutexLock lk(state_mu_);
    if (closed_) return;
    closed_ = true;
  }
  if (QuiesceGate* gate = quiesce_gate()) gate->close();
}

// --- ClientHandle ------------------------------------------------------------

QosEndpoint::ClientHandle::~ClientHandle() {
  if (cactus_) cactus_->stop();
}

void QosEndpoint::ClientHandle::close() {
  Handle::close();
  if (cactus_) cactus_->stop();
}

// --- ServerHandle ------------------------------------------------------------

QosEndpoint::ServerHandle::~ServerHandle() { stop(); }

void QosEndpoint::ServerHandle::stop() {
  if (cactus_) cactus_->stop();
}

void QosEndpoint::ServerHandle::close() {
  bool was_closed = closed();
  Handle::close();
  if (!was_closed && platform_ != nullptr && !registered_name_.empty()) {
    try {
      platform_->unregister_servant(registered_name_);
    } catch (const std::exception& e) {
      CQOS_LOG_WARN("QosEndpoint: close() could not unregister '",
                    registered_name_, "': ", e.what());
    }
  }
  stop();
}

// --- ClientBuilder -----------------------------------------------------------

QosEndpoint::ClientBuilder::ClientBuilder(plat::Platform& platform,
                                          std::string object_id)
    : platform_(platform), object_id_(std::move(object_id)) {}

QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::mode(EndpointMode m) {
  mode_ = m;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::servers(
    std::vector<std::string> names) {
  servers_ = std::move(names);
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::replicas(int n) {
  if (n < 1) throw ConfigError("QosEndpoint: replicas must be >= 1");
  replicas_ = n;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::qos(
    std::vector<MicroProtocolSpec> specs) {
  specs_ = std::move(specs);
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::verify(bool on) {
  verify_ = on;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::invoke_timeout(
    Duration d) {
  qos_opts_.invoke_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::resolve_timeout(
    Duration d) {
  qos_opts_.resolve_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::ping_timeout(
    Duration d) {
  qos_opts_.ping_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::request_timeout(
    Duration d) {
  cactus_opts_.request_timeout = d;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::composite_name(
    std::string name) {
  cactus_opts_.composite.name = std::move(name);
  composite_name_set_ = true;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::pool_threads(int n) {
  cactus_opts_.composite.pool_threads = n;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::thread_pool(bool on) {
  cactus_opts_.composite.use_thread_pool = on;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::priority(int p) {
  stub_opts_.priority = p;
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::principal(
    std::string who) {
  stub_opts_.principal = std::move(who);
  return *this;
}
QosEndpoint::ClientBuilder& QosEndpoint::ClientBuilder::reuse_requests(
    bool on) {
  stub_opts_.reuse_requests = on;
  return *this;
}

std::unique_ptr<QosEndpoint::ClientHandle>
QosEndpoint::ClientBuilder::build() {
  qos_opts_.use_dynamic_invocation = mode_ != EndpointMode::kStatic;
  std::vector<std::string> names =
      servers_.empty() ? derived_names(platform_, object_id_, replicas_, mode_)
                       : servers_;
  auto qos = std::make_unique<PlatformClientQos>(platform_, object_id_, names,
                                                 qos_opts_);
  auto ep = std::unique_ptr<ClientHandle>(
      new ClientHandle(Side::kClient, mode_, specs_, verify_));
  if (mode_ == EndpointMode::kFull) {
    reject_duplicate_specs(Side::kClient, specs_);
    if (verify_) verify_specs_or_throw(Side::kClient, specs_);
    if (!composite_name_set_) {
      cactus_opts_.composite.name = "cactus-client-" + object_id_;
    }
    ep->cactus_ = std::make_shared<CactusClient>(std::move(qos), cactus_opts_);
    // cqos-lint: allow-reconfig-seam (initial install at build time)
    MicroProtocolRegistry::instance().install(
        Side::kClient, with_base(Side::kClient, specs_),
        ep->cactus_->protocol());
    ep->stub_ =
        std::make_shared<CqosStub>(ep->cactus_, object_id_, stub_opts_);
  } else {
    if (!specs_.empty()) {
      throw ConfigError(
          "QosEndpoint: a micro-protocol stack needs mode kFull");
    }
    ep->stub_ = std::make_shared<CqosStub>(
        std::shared_ptr<ClientQosInterface>(std::move(qos)), object_id_,
        stub_opts_);
  }
  return ep;
}

// --- ServerBuilder -----------------------------------------------------------

QosEndpoint::ServerBuilder::ServerBuilder(plat::Platform& platform,
                                          std::shared_ptr<Servant> servant,
                                          std::string object_id)
    : platform_(platform),
      servant_(std::move(servant)),
      object_id_(std::move(object_id)) {
  if (!servant_) throw ConfigError("QosEndpoint: servant is required");
}

QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::mode(EndpointMode m) {
  mode_ = m;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::replica(
    int self_index, std::vector<std::string> peers) {
  if (self_index < 0 || self_index >= static_cast<int>(peers.size())) {
    throw ConfigError("QosEndpoint: self_index out of range");
  }
  self_index_ = self_index;
  peers_ = std::move(peers);
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::replica_of(
    int self_index, int n) {
  if (n < 1 || self_index < 0 || self_index >= n) {
    throw ConfigError("QosEndpoint: self_index out of range");
  }
  self_index_ = self_index;
  replicas_ = n;
  peers_.clear();
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::qos(
    std::vector<MicroProtocolSpec> specs) {
  specs_ = std::move(specs);
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::verify(bool on) {
  verify_ = on;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::peer_timeout(
    Duration d) {
  qos_opts_.peer_timeout = d;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::resolve_timeout(
    Duration d) {
  qos_opts_.resolve_timeout = d;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::process_timeout(
    Duration d) {
  cactus_opts_.process_timeout = d;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::composite_name(
    std::string name) {
  cactus_opts_.composite.name = std::move(name);
  composite_name_set_ = true;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::pool_threads(int n) {
  cactus_opts_.composite.pool_threads = n;
  return *this;
}
QosEndpoint::ServerBuilder& QosEndpoint::ServerBuilder::thread_pool(bool on) {
  cactus_opts_.composite.use_thread_pool = on;
  return *this;
}

std::unique_ptr<QosEndpoint::ServerHandle>
QosEndpoint::ServerBuilder::build() {
  auto ep = std::unique_ptr<ServerHandle>(
      new ServerHandle(Side::kServer, mode_, specs_, verify_));
  ep->platform_ = &platform_;
  // Every fallible step (verification, instantiation, installation) runs
  // BEFORE the name is registered, and registration is the final act of
  // each branch: a failed build leaves nothing behind in the naming
  // service. Should anything ever be added after registration, wrap it in
  // the unregistering guard below.
  switch (mode_) {
    case EndpointMode::kStatic: {
      if (!specs_.empty()) {
        throw ConfigError(
            "QosEndpoint: a micro-protocol stack needs mode kFull");
      }
      ep->registered_name_ = platform_.direct_name(object_id_);
      platform_.register_servant(
          ep->registered_name_,
          std::make_shared<DirectServantHandler>(servant_),
          plat::DispatchMode::kStatic);
      break;
    }
    case EndpointMode::kBypass: {
      if (!specs_.empty()) {
        throw ConfigError(
            "QosEndpoint: a micro-protocol stack needs mode kFull");
      }
      ep->skeleton_ = std::make_shared<CqosSkeleton>(object_id_, servant_);
      ep->registered_name_ =
          platform_.replica_name(object_id_, self_index_ + 1);
      register_cqos_skeleton(platform_, ep->skeleton_, self_index_ + 1);
      break;
    }
    case EndpointMode::kFull: {
      reject_duplicate_specs(Side::kServer, specs_);
      if (verify_) verify_specs_or_throw(Side::kServer, specs_);
      std::vector<std::string> peers =
          peers_.empty()
              ? derived_names(platform_, object_id_, replicas_, mode_)
              : peers_;
      auto qos = std::make_unique<PlatformServerQos>(
          platform_, servant_, object_id_, peers, self_index_, qos_opts_);
      if (!composite_name_set_) {
        cactus_opts_.composite.name = "cactus-server-" + object_id_;
      }
      ep->cactus_ =
          std::make_shared<CactusServer>(std::move(qos), cactus_opts_);
      // cqos-lint: allow-reconfig-seam (initial install at build time)
      MicroProtocolRegistry::instance().install(
          Side::kServer, with_base(Side::kServer, specs_),
          ep->cactus_->protocol());
      ep->skeleton_ =
          std::make_shared<CqosSkeleton>(object_id_, ep->cactus_);
      ep->registered_name_ =
          platform_.replica_name(object_id_, self_index_ + 1);
      try {
        register_cqos_skeleton(platform_, ep->skeleton_, self_index_ + 1);
      } catch (...) {
        // Defensive symmetry for the unregister guarantee: registration
        // itself failing must not leave a partial entry either.
        try {
          platform_.unregister_servant(ep->registered_name_);
        } catch (...) {
        }
        throw;
      }
      break;
    }
  }
  return ep;
}

}  // namespace cqos
