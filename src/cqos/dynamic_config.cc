#include "cqos/dynamic_config.h"

#include "common/error.h"
#include "cqos/events.h"

namespace cqos {

void advertise_config(CactusServer& server, const QosConfig& config) {
  std::string serialized = config.serialize();
  server.protocol().bind(
      ev::ctl(kConfigFetchControl), "configServer",
      [serialized](cactus::EventContext& ctx) {
        auto msg = ctx.dyn<ControlMsgPtr>();
        msg->reply = Value(serialized);
      },
      cactus::kOrderDefault);
}

QosConfig fetch_config(plat::Platform& platform, const std::string& object_id,
                       int replica_index, Duration timeout) {
  auto ref =
      platform.resolve(platform.replica_name(object_id, replica_index), timeout);
  plat::Reply reply =
      ref->invoke(std::string(ev::kCtlMethodPrefix) + kConfigFetchControl, {},
                  {}, timeout);
  if (!reply.ok()) {
    throw InvocationError("config bootstrap failed: " + reply.error);
  }
  if (reply.result.is_null()) {
    throw ConfigError("server advertises no configuration for " + object_id);
  }
  return QosConfig::parse(reply.result.as_string());
}

void bootstrap_client(CactusClient& client, plat::Platform& platform,
                      const std::string& object_id, int replica_index,
                      Duration timeout) {
  QosConfig config = fetch_config(platform, object_id, replica_index, timeout);
  MicroProtocolRegistry::instance().install(Side::kClient, config.client,
                                            client.protocol());
}

}  // namespace cqos
