#include "cqos/dynamic_config.h"

#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "cqos/events.h"

namespace cqos {
namespace {

std::shared_ptr<AdvertisedConfig> advertised_slot(CactusServer& server) {
  return server.protocol().shared().get_or_create<AdvertisedConfig>(
      kAdvertisedConfigKey);
}

}  // namespace

void advertise_config(CactusServer& server, ConfigRevision rev) {
  auto slot = advertised_slot(server);
  bool bind_handler = false;
  {
    MutexLock lk(slot->mu);
    slot->current = std::move(rev);
    bind_handler = !slot->bound;
    slot->bound = true;
  }
  if (!bind_handler) return;
  // Bound directly on the composite (not through a micro-protocol), so the
  // handler survives a live stack swap; it re-reads the slot per fetch so
  // update_advertised_config changes are served immediately.
  server.protocol().bind(
      ev::ctl(kConfigFetchControl), "configServer",
      [slot](cactus::EventContext& ctx) {
        auto msg = ctx.dyn<ControlMsgPtr>();
        std::string serialized;
        {
          MutexLock lk(slot->mu);
          serialized = slot->current.serialize();
        }
        msg->reply = Value(std::move(serialized));
      },
      cactus::kOrderDefault);
}

void advertise_config(CactusServer& server, const QosConfig& config) {
  ConfigRevision rev;
  rev.revision = 1;
  rev.config = config;
  rev.provenance = "advertise_config";
  advertise_config(server, std::move(rev));
}

bool update_advertised_config(CactusServer& server, ConfigRevision rev) {
  auto slot = advertised_slot(server);
  MutexLock lk(slot->mu);
  if (!slot->bound || rev.revision <= slot->current.revision) return false;
  slot->current = std::move(rev);
  return true;
}

ConfigRevision fetch_config_revision(plat::Platform& platform,
                                     const std::string& object_id,
                                     int replica_index, Duration timeout) {
  auto ref =
      platform.resolve(platform.replica_name(object_id, replica_index), timeout);
  plat::Reply reply =
      ref->invoke(std::string(ev::kCtlMethodPrefix) + kConfigFetchControl, {},
                  {}, timeout);
  if (!reply.ok()) {
    throw InvocationError("config bootstrap failed: " + reply.error);
  }
  if (reply.result.is_null()) {
    throw ConfigError("server advertises no configuration for " + object_id);
  }
  return ConfigRevision::parse(reply.result.as_string());
}

QosConfig fetch_config(plat::Platform& platform, const std::string& object_id,
                       int replica_index, Duration timeout) {
  return fetch_config_revision(platform, object_id, replica_index, timeout)
      .config;
}

void bootstrap_client(CactusClient& client, plat::Platform& platform,
                      const std::string& object_id, int replica_index,
                      Duration timeout) {
  QosConfig config = fetch_config(platform, object_id, replica_index, timeout);
  // cqos-lint: allow-reconfig-seam (bootstrap install into a bare client)
  MicroProtocolRegistry::instance().install(Side::kClient, config.client,
                                            client.protocol());
}

ConfigWatcher::ConfigWatcher(plat::Platform& platform, std::string object_id,
                             int replica_index, Duration period,
                             Callback on_change)
    : thread_([this, &platform, object_id = std::move(object_id),
               replica_index, period, on_change = std::move(on_change)] {
        run(platform, object_id, replica_index, period, on_change);
      }) {}

ConfigWatcher::~ConfigWatcher() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void ConfigWatcher::stop() {
  MutexLock lk(mu_);
  stopped_ = true;
  cv_.notify_all();
}

void ConfigWatcher::run(plat::Platform& platform, std::string object_id,
                        int replica_index, Duration period,
                        Callback on_change) {
  for (;;) {
    {
      MutexLock lk(mu_);
      if (stopped_) return;
      cv_.wait_until(mu_, now() + period);
      if (stopped_) return;
    }
    try {
      ConfigRevision rev =
          fetch_config_revision(platform, object_id, replica_index, period);
      if (rev.revision > last_revision_.load()) {
        last_revision_.store(rev.revision);
        if (on_change) on_change(rev);
      }
    } catch (const Error& e) {
      CQOS_LOG_DEBUG("config watcher: fetch failed (", e.what(),
                     "), retrying next tick");
    }
  }
}

}  // namespace cqos
