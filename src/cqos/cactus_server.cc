#include "cqos/cactus_server.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "cqos/events.h"

namespace cqos {

CactusServer::CactusServer(std::unique_ptr<ServerQosInterface> qos,
                           Options opts)
    : proto_(opts.composite),
      qos_(std::move(qos)),
      process_timeout_(opts.process_timeout) {
  auto holder = proto_.shared().get_or_create<ServerQosHolder>(kServerQosKey);
  holder->qos = qos_.get();
  holder->server = this;
}

CactusServer::~CactusServer() { stop(); }

void CactusServer::process_request(const RequestPtr& req) {
  static metrics::Histogram& hist =
      metrics::Registry::global().histogram("cqos.cactus.server.process");
  {
    trace::ScopedSpan span(req->trace_id, "cqos.cactus.server.process",
                           req->method, &hist);
    proto_.raise(ev::kNewServerRequest, req);
    if (!req->wait(process_timeout_)) {
      req->complete(false, Value(), "cqos: server-side processing timed out");
    }
  }
  // The reply is (about to be) sent back to the client; let scheduling
  // micro-protocols release queued work.
  proto_.raise_async(ev::kRequestReturned, req);
}

Value CactusServer::handle_control(const std::string& control,
                                   ValueList args) {
  auto msg = std::make_shared<ControlMsg>();
  msg->control = control;
  msg->args = std::move(args);
  proto_.raise(ev::ctl(control), msg);
  return msg->reply;
}

}  // namespace cqos
