#include "cqos/cactus_server.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "cqos/events.h"

namespace cqos {
namespace {

// Default drop handler: an async activation the runtime pool could not run
// (rejected or shutting down) must fail its request instead of leaving the
// waiting skeleton thread — and through it the client — to hang until the
// timeout. composite.cc already counted the drop (cactus.pool.async_dropped).
cactus::CompositeProtocol::Options with_drop_handler(
    cactus::CompositeProtocol::Options o) {
  if (!o.on_async_drop) {
    o.on_async_drop = [](std::string_view event, const std::any& dyn) {
      if (const RequestPtr* req = std::any_cast<RequestPtr>(&dyn)) {
        (*req)->complete(false, Value(),
                         "cqos: server runtime dropped '" +
                             std::string(event) +
                             "' (pool rejected or shut down)");
      }
    };
  }
  return o;
}

}  // namespace

CactusServer::CactusServer(std::unique_ptr<ServerQosInterface> qos,
                           Options opts)
    : proto_(with_drop_handler(std::move(opts.composite))),
      qos_(std::move(qos)),
      process_timeout_(opts.process_timeout) {
  auto holder = proto_.shared().get_or_create<ServerQosHolder>(kServerQosKey);
  holder->qos = qos_.get();
  holder->server = this;
}

CactusServer::~CactusServer() { stop(); }

void CactusServer::process_request(const RequestPtr& req) {
  static metrics::Histogram& hist =
      metrics::Registry::global().histogram("cqos.cactus.server.process");
  // Reconfiguration gate: see cactus_client.cc. Forwarded replica requests
  // arriving during a hot-swap park here too and execute on the new stack
  // (whose dedup state was imported, preserving at-most-once).
  if (!gate_.enter()) {
    req->complete(false, Value(),
                  "cqos: server rejected during reconfiguration (gate " +
                      std::string(gate_phase_name(gate_.phase())) + ")");
    return;
  }
  {
    trace::ScopedSpan span(req->trace_id, "cqos.cactus.server.process",
                           req->method, &hist);
    proto_.raise(ev::kNewServerRequest, req);
    if (!req->wait(process_timeout_)) {
      req->complete(false, Value(), "cqos: server-side processing timed out");
    }
  }
  gate_.exit();
  // The reply is (about to be) sent back to the client; let scheduling
  // micro-protocols release queued work. Runs outside the gate: with zero
  // in-flight requests a scheduler has nothing queued, so a concurrent swap
  // is safe (the activation snapshots bindings).
  proto_.raise_async(ev::kRequestReturned, req);
}

Value CactusServer::handle_control(const std::string& control,
                                   ValueList args) {
  // Controls are never blocked during draining (in-flight requests need
  // replica forwards / ordering info to complete); they only pause for the
  // brief handler-graph surgery window.
  gate_.control_checkpoint();
  auto msg = std::make_shared<ControlMsg>();
  msg->control = control;
  msg->args = std::move(args);
  proto_.raise(ev::ctl(control), msg);
  return msg->reply;
}

}  // namespace cqos
