// Cactus client (paper §2.3.2): the client-side composite protocol hosting
// the QoS micro-protocols. The CQoS stub notifies it of a new request via
// cactus_request(), which raises the newRequest event and blocks until the
// request completes (the base resultReturner or an acceptance micro-protocol
// releases it).
#pragma once

#include <memory>

#include "cactus/composite.h"
#include "common/clock.h"
#include "cqos/qos_interface.h"
#include "cqos/reconfig.h"

namespace cqos {

class CactusClient;

/// Shared-data holder through which client micro-protocols reach the Cactus
/// QoS interface (key kClientQosKey).
struct ClientQosHolder {
  ClientQosInterface* qos = nullptr;
  CactusClient* client = nullptr;
};
inline constexpr const char* kClientQosKey = "cqos.client.holder";

class CactusClient {
 public:
  struct Options {
    cactus::CompositeProtocol::Options composite = [] {
      cactus::CompositeProtocol::Options o;
      o.name = "cactus-client";
      o.pool_threads = 4;
      o.use_thread_pool = true;
      return o;
    }();
    /// Upper bound on one request's end-to-end completion.
    Duration request_timeout = ms(3000);
  };

  explicit CactusClient(std::unique_ptr<ClientQosInterface> qos)
      : CactusClient(std::move(qos), Options{}) {}
  CactusClient(std::unique_ptr<ClientQosInterface> qos, Options opts);
  ~CactusClient();

  CactusClient(const CactusClient&) = delete;
  CactusClient& operator=(const CactusClient&) = delete;

  cactus::CompositeProtocol& protocol() { return proto_; }
  ClientQosInterface& qos() { return *qos_; }

  /// Admission gate used by live reconfiguration (reconfig.h). Requests
  /// entering cactus_request() pass through it; the reconfigure seam
  /// (QosEndpoint::Handle) drives it through drain/swap/resume.
  QuiesceGate& reconfig_gate() { return gate_; }

  /// Install a configured micro-protocol (convenience forward for
  /// hand-assembled composites in tests/benches — live endpoints mutate
  /// their stack through QosEndpoint::Handle::reconfigure()).
  void add_micro_protocol(std::unique_ptr<cactus::MicroProtocol> mp) {
    // cqos-lint: allow-reconfig-seam (the sanctioned boot-time forward)
    proto_.add_protocol(std::move(mp));
  }

  /// Blocking: raise newRequest and wait for the request to complete. On
  /// timeout the request is completed as a failure.
  void cactus_request(const RequestPtr& req);

  void stop() { proto_.stop(); }

 private:
  cactus::CompositeProtocol proto_;
  std::unique_ptr<ClientQosInterface> qos_;
  Duration request_timeout_;
  QuiesceGate gate_;
};

}  // namespace cqos
