#include "cqos/stub.h"

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace cqos {
namespace {
constexpr std::size_t kMaxPooledRequests = 16;

metrics::Histogram& stub_call_hist() {
  static metrics::Histogram& h =
      metrics::Registry::global().histogram("cqos.stub.call");
  return h;
}
}  // namespace

CqosStub::CqosStub(std::shared_ptr<CactusClient> client, std::string object_id,
                   Options opts)
    : client_(std::move(client)),
      object_id_(std::move(object_id)),
      opts_(std::move(opts)) {}

CqosStub::CqosStub(std::shared_ptr<ClientQosInterface> direct,
                   std::string object_id, Options opts)
    : direct_(std::move(direct)),
      object_id_(std::move(object_id)),
      opts_(std::move(opts)) {}

RequestPtr CqosStub::acquire(const std::string& method, ValueList params) {
  if (opts_.reuse_requests) {
    MutexLock lk(pool_mu_);
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      // Only reuse structures no concurrent invocation still references.
      if (it->use_count() != 1) continue;
      RequestPtr req = std::move(*it);
      pool_.erase(it);
      // use_count() is a relaxed load: observing 1 proves exclusivity (the
      // pool held the only reference, and nobody can copy it under
      // pool_mu_) but does NOT order the dying holder's final unlocked
      // field reads before ours. A copy + drop performs an acquire-RMW on
      // the same counter, which reads-from that holder's release
      // decrement and publishes its accesses before reset() rewrites the
      // fields. (A plain acquire fence would also be correct but is
      // invisible to TSan.)
      { RequestPtr acquire_barrier = req; }
      req->reset(object_id_, method, std::move(params));
      return req;
    }
  }
  auto req = std::make_shared<Request>(object_id_, method, std::move(params));
  return req;
}

void CqosStub::release(RequestPtr req) {
  if (!opts_.reuse_requests) return;
  MutexLock lk(pool_mu_);
  if (pool_.size() < kMaxPooledRequests) pool_.push_back(std::move(req));
}

RequestPtr CqosStub::call_request(const std::string& method,
                                  ValueList params) {
  RequestPtr req = acquire(method, std::move(params));
  req->priority = opts_.priority;
  if (!opts_.principal.empty()) {
    req->piggyback[pbkey::kPrincipal] = Value(opts_.principal);
  }
  // Mint the per-request trace id here, at the outermost client hop; the
  // piggyback entry carries it across the wire to the skeleton.
  req->trace_id = trace::next_trace_id();
  req->piggyback[pbkey::kTraceId] =
      Value(static_cast<std::int64_t>(req->trace_id));
  trace::ScopedSpan span(req->trace_id, "cqos.stub.call", method,
                         &stub_call_hist());

  if (client_) {
    client_->cactus_request(req);
  } else {
    // Bypass mode: invoke replica 0 directly (still the dynamic invocation
    // path — the stub has already converted the call to the abstract form).
    auto inv = std::make_shared<Invocation>();
    inv->request = req;
    inv->server = 0;
    if (direct_->server_status(0) == ServerStatus::kUnknown) {
      try {
        direct_->bind(0);
      } catch (const Error& e) {
        req->complete(false, Value(), e.what());
        return req;
      }
    }
    direct_->invoke_server(*req, *inv);
    req->complete(inv->success, std::move(inv->result), std::move(inv->error));
    req->merge_reply_piggyback(inv->reply_piggyback);
  }
  return req;
}

Value CqosStub::call(const std::string& method, ValueList params) {
  RequestPtr req = call_request(method, std::move(params));
  if (!req->succeeded()) {
    std::string error = req->error();
    release(std::move(req));
    throw InvocationError(object_id_ + "." + method + ": " + error);
  }
  Value result = req->result();
  release(std::move(req));
  return result;
}

}  // namespace cqos
