// CQoS skeleton: the server-side interceptor (paper §2.2, §4).
//
// Registered with the platform in place of the application servant (via the
// DSI-style generic dispatch on CORBA; as the proxy object on RMI). Every
// incoming invocation becomes an abstract Request handed to the Cactus
// server; control invocations ("__cqos.ctl.*") from peer replicas are routed
// to the Cactus server's control events.
//
// In bypass mode (no Cactus server attached) the skeleton natively invokes
// the servant — the "+CQoS skeleton" intermediate configuration of Table 1.
#pragma once

#include <memory>
#include <string>

#include "cqos/cactus_server.h"
#include "cqos/servant.h"
#include "platform/api.h"

namespace cqos {

class CqosSkeleton : public plat::ServantHandler {
 public:
  /// Full CQoS mode.
  CqosSkeleton(std::string object_id, std::shared_ptr<CactusServer> server);

  /// Bypass mode: direct native dispatch to the servant.
  CqosSkeleton(std::string object_id, std::shared_ptr<Servant> servant);

  plat::Reply handle(const std::string& method, ValueList params,
                     PiggybackMap piggyback) override;

  const std::string& object_id() const { return object_id_; }

 private:
  RequestPtr build_request(const std::string& method, ValueList params,
                           PiggybackMap piggyback) const;

  std::string object_id_;
  std::shared_ptr<CactusServer> server_;  // null in bypass mode
  std::shared_ptr<Servant> servant_;      // set in bypass mode
};

/// Plain (non-CQoS) adapter from a Servant to the platform's dispatch
/// interface — what an IDL-generated static skeleton compiles to. Used for
/// baseline deployments and infrastructure objects (e.g. the configuration
/// service) that do not need QoS interception themselves.
class DirectServantHandler : public plat::ServantHandler {
 public:
  explicit DirectServantHandler(std::shared_ptr<Servant> servant)
      : servant_(std::move(servant)) {}

  plat::Reply handle(const std::string& method, ValueList params,
                     PiggybackMap piggyback) override;

 private:
  std::shared_ptr<Servant> servant_;
};

/// Register `skeleton` as replica `replica_index` (1-based) of its object
/// under the platform's CQoS naming convention, using the dynamic dispatch
/// path (DSI on CORBA). This is what the modified "startup" file does in the
/// paper's CORBA prototype.
void register_cqos_skeleton(plat::Platform& platform,
                            const std::shared_ptr<CqosSkeleton>& skeleton,
                            int replica_index);

}  // namespace cqos
