// Fluent assembly of CQoS endpoints.
//
// Building one side of a CQoS deployment used to mean threading five
// overlapping option structs (ClientQosOptions, ServerQosOptions,
// CqosStub::Options, CactusClient::Options, CactusServer::Options) through
// four constructors in the right order. QosEndpoint collapses that into one
// builder per side:
//
//   auto server = QosEndpoint::server(platform, servant, "BankAccount")
//                     .replica(0, peer_names)
//                     .qos(config.server)
//                     .process_timeout(ms(3000))
//                     .build();
//
//   auto client = QosEndpoint::client(platform, "BankAccount")
//                     .servers(peer_names)
//                     .qos(config.client)
//                     .invoke_timeout(ms(500))
//                     .build();
//   Value v = client->call("get_balance", {});
//
// Three assembly modes mirror the paper's incremental interception levels
// (Table 1):
//   kFull   — Cactus composite + installed micro-protocol stack (default)
//   kBypass — CQoS stub/skeleton without a Cactus composite
//   kStatic — what a generated static stub/skeleton compiles to (no
//             dynamic invocation / DSI, no interception)
//
// Micro-protocol stacks are installed through the MicroProtocolRegistry;
// callers must have populated it (micro::register_standard_micro_protocols()
// or custom add() calls) before build(). The base protocols
// (client_base/server_base) are appended automatically when missing.
//
// In kFull mode build() runs the static composition verifier (cqos/verify.h)
// over the stack and throws ConfigError with every diagnostic when the
// side-local analysis reports errors. verify(false) skips the analysis for
// experimental stacks; duplicate micro-protocol names are rejected even then.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cqos/cactus_client.h"
#include "cqos/cactus_server.h"
#include "cqos/config.h"
#include "cqos/platform_qos.h"
#include "cqos/skeleton.h"
#include "cqos/stub.h"
#include "platform/api.h"

namespace cqos {

enum class EndpointMode { kFull, kBypass, kStatic };

/// One built client side: the stub plus whatever runtime it needed.
/// Destruction stops the Cactus client (when one exists).
class QosClientEndpoint {
 public:
  ~QosClientEndpoint();
  QosClientEndpoint(const QosClientEndpoint&) = delete;
  QosClientEndpoint& operator=(const QosClientEndpoint&) = delete;

  CqosStub& stub() { return *stub_; }
  std::shared_ptr<CqosStub> stub_ptr() { return stub_; }
  /// Null below kFull.
  CactusClient* cactus() { return cactus_.get(); }

  /// Convenience passthrough.
  Value call(const std::string& method, ValueList params) {
    return stub_->call(method, std::move(params));
  }

 private:
  friend class QosEndpoint;
  QosClientEndpoint() = default;

  std::shared_ptr<CactusClient> cactus_;
  std::shared_ptr<CqosStub> stub_;
};

/// One built server side: the skeleton is registered with the platform by
/// build(). Destruction stops the Cactus server (when one exists); platform
/// shutdown stays the caller's responsibility (the platform outlives the
/// endpoint).
class QosServerEndpoint {
 public:
  ~QosServerEndpoint();
  QosServerEndpoint(const QosServerEndpoint&) = delete;
  QosServerEndpoint& operator=(const QosServerEndpoint&) = delete;

  /// Null below kFull.
  CactusServer* cactus() { return cactus_.get(); }
  /// Null in kStatic mode (the static skeleton is not a CQoS skeleton).
  std::shared_ptr<CqosSkeleton> skeleton() { return skeleton_; }

  /// Stop the Cactus composite (idempotent; also run by the destructor).
  /// Call after the platform shut down so draining handlers finish first.
  void stop();

 private:
  friend class QosEndpoint;
  QosServerEndpoint() = default;

  std::shared_ptr<CactusServer> cactus_;
  std::shared_ptr<CqosSkeleton> skeleton_;
};

class QosEndpoint {
 public:
  class ClientBuilder {
   public:
    ClientBuilder(plat::Platform& platform, std::string object_id);

    /// Assembly mode (default kFull).
    ClientBuilder& mode(EndpointMode m);
    /// Platform names of the server replicas, in replica order. Default:
    /// one replica under the platform's naming convention for the mode.
    ClientBuilder& servers(std::vector<std::string> names);
    /// Derive `n` replica names from the platform naming convention.
    ClientBuilder& replicas(int n);
    /// Client-side micro-protocol stack (kFull only). client_base is
    /// appended when missing.
    ClientBuilder& qos(std::vector<MicroProtocolSpec> specs);
    /// Run the static composition verifier (verify_side) on the stack before
    /// installing it, and fail build() with every diagnostic when it reports
    /// errors (default on). verify(false) is the escape hatch for
    /// experimental stacks; duplicate micro-protocol names are rejected
    /// regardless.
    ClientBuilder& verify(bool on);

    // Transport / QoS-interface knobs (ClientQosOptions).
    ClientBuilder& invoke_timeout(Duration d);
    ClientBuilder& resolve_timeout(Duration d);
    ClientBuilder& ping_timeout(Duration d);

    // Cactus runtime knobs (CactusClient::Options).
    ClientBuilder& request_timeout(Duration d);
    ClientBuilder& composite_name(std::string name);
    ClientBuilder& pool_threads(int n);
    ClientBuilder& thread_pool(bool on);

    // Stub knobs (CqosStub::Options).
    ClientBuilder& priority(int p);
    ClientBuilder& principal(std::string who);
    ClientBuilder& reuse_requests(bool on);

    std::unique_ptr<QosClientEndpoint> build();

   private:
    plat::Platform& platform_;
    std::string object_id_;
    EndpointMode mode_ = EndpointMode::kFull;
    std::vector<std::string> servers_;
    int replicas_ = 1;
    std::vector<MicroProtocolSpec> specs_;
    ClientQosOptions qos_opts_;
    CactusClient::Options cactus_opts_;
    CqosStub::Options stub_opts_;
    bool composite_name_set_ = false;
    bool verify_ = true;
  };

  class ServerBuilder {
   public:
    ServerBuilder(plat::Platform& platform, std::shared_ptr<Servant> servant,
                  std::string object_id);

    /// Assembly mode (default kFull).
    ServerBuilder& mode(EndpointMode m);
    /// This replica's index (0-based) and the platform names of ALL
    /// replicas, in replica order (including this one's own). Default:
    /// single replica, names derived from the naming convention.
    ServerBuilder& replica(int self_index, std::vector<std::string> peers);
    /// Single replica of an `n`-replica group, names derived from the
    /// platform naming convention.
    ServerBuilder& replica_of(int self_index, int n);
    /// Server-side micro-protocol stack (kFull only). server_base is
    /// appended when missing.
    ServerBuilder& qos(std::vector<MicroProtocolSpec> specs);
    /// Run the static composition verifier (verify_side) on the stack before
    /// installing it, and fail build() with every diagnostic when it reports
    /// errors (default on). verify(false) is the escape hatch for
    /// experimental stacks; duplicate micro-protocol names are rejected
    /// regardless.
    ServerBuilder& verify(bool on);

    // Transport / QoS-interface knobs (ServerQosOptions).
    ServerBuilder& peer_timeout(Duration d);
    ServerBuilder& resolve_timeout(Duration d);

    // Cactus runtime knobs (CactusServer::Options).
    ServerBuilder& process_timeout(Duration d);
    ServerBuilder& composite_name(std::string name);
    ServerBuilder& pool_threads(int n);
    ServerBuilder& thread_pool(bool on);

    /// Build and register with the platform (CQoS naming in kFull/kBypass,
    /// the direct name in kStatic).
    std::unique_ptr<QosServerEndpoint> build();

   private:
    plat::Platform& platform_;
    std::shared_ptr<Servant> servant_;
    std::string object_id_;
    EndpointMode mode_ = EndpointMode::kFull;
    int self_index_ = 0;
    std::vector<std::string> peers_;
    int replicas_ = 1;
    std::vector<MicroProtocolSpec> specs_;
    ServerQosOptions qos_opts_;
    CactusServer::Options cactus_opts_;
    bool composite_name_set_ = false;
    bool verify_ = true;
  };

  static ClientBuilder client(plat::Platform& platform, std::string object_id) {
    return ClientBuilder(platform, std::move(object_id));
  }
  static ServerBuilder server(plat::Platform& platform,
                              std::shared_ptr<Servant> servant,
                              std::string object_id) {
    return ServerBuilder(platform, std::move(servant), std::move(object_id));
  }
};

}  // namespace cqos
