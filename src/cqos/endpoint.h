// Fluent assembly of CQoS endpoints, returning live lifecycle handles.
//
// Building one side of a CQoS deployment used to mean threading five
// overlapping option structs (ClientQosOptions, ServerQosOptions,
// CqosStub::Options, CactusClient::Options, CactusServer::Options) through
// four constructors in the right order. QosEndpoint collapses that into one
// builder per side:
//
//   auto server = QosEndpoint::server(platform, servant, "BankAccount")
//                     .replica(0, peer_names)
//                     .qos(config.server)
//                     .process_timeout(ms(3000))
//                     .build();
//
//   auto client = QosEndpoint::client(platform, "BankAccount")
//                     .servers(peer_names)
//                     .qos(config.client)
//                     .invoke_timeout(ms(500))
//                     .build();
//   Value v = client->call("get_balance", {});
//
// build() returns a QosEndpoint::ClientHandle / ServerHandle — a live
// object owning the endpoint's lifecycle, not just its wiring:
//
//   server->reconfigure(new_config.server);   // hot-swap under traffic
//   server->config_revision();                // monotonic revision id
//   server->drain(ms(1000));                  // wait out in-flight work
//   server->close();                          // unregister + stop
//
// reconfigure() drives the quiescence protocol of DESIGN.md §16: verify the
// new composition statically, drain in-flight requests behind the
// composite's QuiesceGate, park new arrivals, swap the handler graph with
// micro-protocol state handoff (dedup caches, retransmit windows), release.
// A composition the verifier rejects never touches traffic; an install
// failure rolls back to the prior revision.
//
// Three assembly modes mirror the paper's incremental interception levels
// (Table 1):
//   kFull   — Cactus composite + installed micro-protocol stack (default)
//   kBypass — CQoS stub/skeleton without a Cactus composite
//   kStatic — what a generated static stub/skeleton compiles to (no
//             dynamic invocation / DSI, no interception)
// reconfigure() requires kFull (the other modes have no handler graph).
//
// Micro-protocol stacks are installed through the MicroProtocolRegistry;
// callers must have populated it (micro::register_standard_micro_protocols()
// or custom add() calls) before build(). The base protocols
// (client_base/server_base) are appended automatically when missing.
//
// In kFull mode build() — and every reconfigure() — runs the static
// composition verifier (cqos/verify.h) over the stack and throws
// ConfigError with every diagnostic when the side-local analysis reports
// errors. verify(false) skips the analysis for experimental stacks;
// duplicate micro-protocol names are rejected even then.
//
// Server registration with the platform naming service is the LAST step of
// ServerBuilder::build(): a build that fails verification or installation
// never leaves a dangling name behind, and ServerHandle::close()
// unregisters it again.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cqos/cactus_client.h"
#include "cqos/cactus_server.h"
#include "cqos/config.h"
#include "cqos/platform_qos.h"
#include "cqos/reconfig.h"
#include "cqos/skeleton.h"
#include "cqos/stub.h"
#include "platform/api.h"

namespace cqos {

enum class EndpointMode { kFull, kBypass, kStatic };

class QosEndpoint {
 public:
  class ClientBuilder;
  class ServerBuilder;

  /// Lifecycle owner for one built endpoint side. Thread-safe; one
  /// reconfiguration runs at a time (concurrent calls serialize).
  class Handle {
   public:
    virtual ~Handle() = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    Side side() const { return side_; }
    EndpointMode mode() const { return mode_; }

    /// Monotonic revision id of the live composition. 1 after build();
    /// each successful reconfigure() advances it (to the pushed revision
    /// for revision-carrying updates, +1 otherwise). Never decreases.
    std::uint64_t config_revision() const;

    /// The live composition (as configured — without the auto-appended
    /// base protocol).
    std::vector<MicroProtocolSpec> current_specs() const;

    /// Hot-swap the composition to `specs` (kFull only): verify, drain,
    /// park, swap with state handoff, release. Throws ConfigError when the
    /// static verifier rejects `specs` (traffic untouched, revision
    /// unchanged), TimeoutError when the drain times out (stack unchanged),
    /// and rethrows install failures after rolling back to the prior
    /// composition. Returns the swap's timing/depth report.
    ReconfigReport reconfigure(std::vector<MicroProtocolSpec> specs);

    /// Convenience: reconfigure to this side's half of `config`.
    ReconfigReport reconfigure(const QosConfig& config);

    /// Revision-gated variant for push-based updates (ConfigWatcher,
    /// config service): applies only when `rev.revision` is newer than the
    /// live revision, adopting that revision id. Returns false (no-op)
    /// otherwise.
    bool reconfigure(const ConfigRevision& rev,
                     ReconfigReport* report = nullptr);

    /// Wait until every request currently in flight has completed, without
    /// swapping anything (arrivals park meanwhile, then release). Returns
    /// false on timeout. kBypass/kStatic endpoints are trivially drained.
    bool drain(Duration timeout);

    /// Stop admitting requests and release endpoint resources (idempotent).
    /// ServerHandle additionally unregisters its platform name.
    virtual void close();

    bool closed() const;

    /// Drain/park bounds used by reconfigure() (mutable between swaps).
    ReconfigOptions reconfig_options() const;
    void set_reconfig_options(const ReconfigOptions& opts);

   protected:
    Handle(Side side, EndpointMode mode,
           std::vector<MicroProtocolSpec> specs, bool verify);

    /// Null below kFull.
    virtual cactus::CompositeProtocol* composite() = 0;
    virtual QuiesceGate* quiesce_gate() = 0;

    ReconfigReport reconfigure_impl(std::vector<MicroProtocolSpec> specs,
                                    std::uint64_t pushed_revision);

    const Side side_;
    const EndpointMode mode_;
    const bool verify_;

    /// Serializes reconfigure()/drain()/close() against each other.
    /// reconfig_mu_ is held across the whole swap; state_mu_ only guards
    /// the snapshot fields so readers never block behind a drain.
    Mutex reconfig_mu_;
    mutable Mutex state_mu_ CQOS_ACQUIRED_AFTER(reconfig_mu_);
    std::vector<MicroProtocolSpec> specs_ CQOS_GUARDED_BY(state_mu_);
    std::uint64_t revision_ CQOS_GUARDED_BY(state_mu_) = 1;
    ReconfigOptions reconfig_opts_ CQOS_GUARDED_BY(state_mu_);
    bool closed_ CQOS_GUARDED_BY(state_mu_) = false;
  };

  /// One built client side: the stub plus whatever runtime it needed.
  /// Destruction stops the Cactus client (when one exists).
  class ClientHandle final : public Handle {
   public:
    ~ClientHandle() override;

    CqosStub& stub() { return *stub_; }
    std::shared_ptr<CqosStub> stub_ptr() { return stub_; }
    /// Null below kFull.
    CactusClient* cactus() { return cactus_.get(); }

    /// Convenience passthrough.
    Value call(const std::string& method, ValueList params) {
      return stub_->call(method, std::move(params));
    }

    void close() override;

   private:
    friend class ClientBuilder;
    ClientHandle(Side side, EndpointMode mode,
                 std::vector<MicroProtocolSpec> specs, bool verify)
        : Handle(side, mode, std::move(specs), verify) {}

    cactus::CompositeProtocol* composite() override {
      return cactus_ ? &cactus_->protocol() : nullptr;
    }
    QuiesceGate* quiesce_gate() override {
      return cactus_ ? &cactus_->reconfig_gate() : nullptr;
    }

    std::shared_ptr<CactusClient> cactus_;
    std::shared_ptr<CqosStub> stub_;
  };

  /// One built server side: the skeleton is registered with the platform by
  /// build() (strictly last, after everything fallible). Destruction stops
  /// the Cactus server (when one exists); platform shutdown stays the
  /// caller's responsibility (the platform outlives the endpoint). close()
  /// additionally unregisters the platform name.
  class ServerHandle final : public Handle {
   public:
    ~ServerHandle() override;

    /// Null below kFull.
    CactusServer* cactus() { return cactus_.get(); }
    /// Null in kStatic mode (the static skeleton is not a CQoS skeleton).
    std::shared_ptr<CqosSkeleton> skeleton() { return skeleton_; }

    /// Stop the Cactus composite (idempotent; also run by the destructor).
    /// Call after the platform shut down so draining handlers finish first.
    /// Does NOT unregister the name — that is close().
    void stop();

    /// Reject new requests, unregister the platform name, stop the
    /// composite. Idempotent.
    void close() override;

    /// The platform name this endpoint registered under.
    const std::string& registered_name() const { return registered_name_; }

   private:
    friend class ServerBuilder;
    ServerHandle(Side side, EndpointMode mode,
                 std::vector<MicroProtocolSpec> specs, bool verify)
        : Handle(side, mode, std::move(specs), verify) {}

    cactus::CompositeProtocol* composite() override {
      return cactus_ ? &cactus_->protocol() : nullptr;
    }
    QuiesceGate* quiesce_gate() override {
      return cactus_ ? &cactus_->reconfig_gate() : nullptr;
    }

    std::shared_ptr<CactusServer> cactus_;
    std::shared_ptr<CqosSkeleton> skeleton_;
    plat::Platform* platform_ = nullptr;
    std::string registered_name_;
  };

  class ClientBuilder {
   public:
    ClientBuilder(plat::Platform& platform, std::string object_id);

    /// Assembly mode (default kFull).
    ClientBuilder& mode(EndpointMode m);
    /// Platform names of the server replicas, in replica order. Default:
    /// one replica under the platform's naming convention for the mode.
    ClientBuilder& servers(std::vector<std::string> names);
    /// Derive `n` replica names from the platform naming convention.
    ClientBuilder& replicas(int n);
    /// Client-side micro-protocol stack (kFull only). client_base is
    /// appended when missing.
    ClientBuilder& qos(std::vector<MicroProtocolSpec> specs);
    /// Run the static composition verifier (verify_side) on the stack before
    /// installing it, and fail build() with every diagnostic when it reports
    /// errors (default on). verify(false) is the escape hatch for
    /// experimental stacks; duplicate micro-protocol names are rejected
    /// regardless. The setting also governs reconfigure() on the handle.
    ClientBuilder& verify(bool on);

    // Transport / QoS-interface knobs (ClientQosOptions).
    ClientBuilder& invoke_timeout(Duration d);
    ClientBuilder& resolve_timeout(Duration d);
    ClientBuilder& ping_timeout(Duration d);

    // Cactus runtime knobs (CactusClient::Options).
    ClientBuilder& request_timeout(Duration d);
    ClientBuilder& composite_name(std::string name);
    ClientBuilder& pool_threads(int n);
    ClientBuilder& thread_pool(bool on);

    // Stub knobs (CqosStub::Options).
    ClientBuilder& priority(int p);
    ClientBuilder& principal(std::string who);
    ClientBuilder& reuse_requests(bool on);

    std::unique_ptr<ClientHandle> build();

   private:
    plat::Platform& platform_;
    std::string object_id_;
    EndpointMode mode_ = EndpointMode::kFull;
    std::vector<std::string> servers_;
    int replicas_ = 1;
    std::vector<MicroProtocolSpec> specs_;
    ClientQosOptions qos_opts_;
    CactusClient::Options cactus_opts_;
    CqosStub::Options stub_opts_;
    bool composite_name_set_ = false;
    bool verify_ = true;
  };

  class ServerBuilder {
   public:
    ServerBuilder(plat::Platform& platform, std::shared_ptr<Servant> servant,
                  std::string object_id);

    /// Assembly mode (default kFull).
    ServerBuilder& mode(EndpointMode m);
    /// This replica's index (0-based) and the platform names of ALL
    /// replicas, in replica order (including this one's own). Default:
    /// single replica, names derived from the naming convention.
    ServerBuilder& replica(int self_index, std::vector<std::string> peers);
    /// Single replica of an `n`-replica group, names derived from the
    /// platform naming convention.
    ServerBuilder& replica_of(int self_index, int n);
    /// Server-side micro-protocol stack (kFull only). server_base is
    /// appended when missing.
    ServerBuilder& qos(std::vector<MicroProtocolSpec> specs);
    /// Run the static composition verifier (verify_side) on the stack before
    /// installing it, and fail build() with every diagnostic when it reports
    /// errors (default on). verify(false) is the escape hatch for
    /// experimental stacks; duplicate micro-protocol names are rejected
    /// regardless. The setting also governs reconfigure() on the handle.
    ServerBuilder& verify(bool on);

    // Transport / QoS-interface knobs (ServerQosOptions).
    ServerBuilder& peer_timeout(Duration d);
    ServerBuilder& resolve_timeout(Duration d);

    // Cactus runtime knobs (CactusServer::Options).
    ServerBuilder& process_timeout(Duration d);
    ServerBuilder& composite_name(std::string name);
    ServerBuilder& pool_threads(int n);
    ServerBuilder& thread_pool(bool on);

    /// Build and register with the platform (CQoS naming in kFull/kBypass,
    /// the direct name in kStatic). Registration happens strictly after
    /// every fallible step, so a failed build leaves no name behind.
    std::unique_ptr<ServerHandle> build();

   private:
    plat::Platform& platform_;
    std::shared_ptr<Servant> servant_;
    std::string object_id_;
    EndpointMode mode_ = EndpointMode::kFull;
    int self_index_ = 0;
    std::vector<std::string> peers_;
    int replicas_ = 1;
    std::vector<MicroProtocolSpec> specs_;
    ServerQosOptions qos_opts_;
    CactusServer::Options cactus_opts_;
    bool composite_name_set_ = false;
    bool verify_ = true;
  };

  static ClientBuilder client(plat::Platform& platform, std::string object_id) {
    return ClientBuilder(platform, std::move(object_id));
  }
  static ServerBuilder server(plat::Platform& platform,
                              std::shared_ptr<Servant> servant,
                              std::string object_id) {
    return ServerBuilder(platform, std::move(servant), std::move(object_id));
  }
};

/// Deprecated pre-handle names, kept for one release: the one-shot build()
/// return types are now full lifecycle handles.
using QosClientEndpoint [[deprecated(
    "use QosEndpoint::ClientHandle")]] = QosEndpoint::ClientHandle;
using QosServerEndpoint [[deprecated(
    "use QosEndpoint::ServerHandle")]] = QosEndpoint::ServerHandle;

}  // namespace cqos
