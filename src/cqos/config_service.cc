#include "cqos/config_service.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "cqos/skeleton.h"

namespace cqos {

Value ConfigServiceServant::dispatch(const std::string& method,
                                     const ValueList& params) {
  if (method == "put") {
    const std::string& user = params.at(0).as_string();
    const std::string& service = params.at(1).as_string();
    const std::string& text = params.at(2).as_string();
    ConfigRevision pushed = ConfigRevision::parse(text);  // rejects malformed
    MutexLock lk(mu_);
    store(user, service, std::move(pushed));
    return Value(true);
  }
  if (method == "get") {
    const std::string& user = params.at(0).as_string();
    const std::string& service = params.at(1).as_string();
    MutexLock lk(mu_);
    auto it = table_.find({user, service});
    if (it == table_.end()) it = table_.find({"*", service});
    if (it == table_.end()) {
      throw Error("no configuration for [" + user + ", " + service + "]");
    }
    return Value(it->second.serialize());
  }
  if (method == "remove") {
    const std::string& user = params.at(0).as_string();
    const std::string& service = params.at(1).as_string();
    MutexLock lk(mu_);
    return Value(table_.erase({user, service}) > 0);
  }
  throw Error("ConfigService: no such method: " + method);
}

void ConfigServiceServant::store(const std::string& user,
                                 const std::string& service,
                                 ConfigRevision pushed) {
  ConfigRevision& slot = table_[{user, service}];
  // Monotonic per pair: an unversioned put still advances the revision, a
  // versioned put may jump it forward, and neither can move it backwards.
  slot.revision = std::max(slot.revision + 1, pushed.revision);
  slot.config = std::move(pushed.config);
  slot.provenance = "config-service:[" + user + ", " + service + "]";
}

void ConfigServiceServant::put(const std::string& user,
                               const std::string& service,
                               const QosConfig& config) {
  ConfigRevision pushed;
  pushed.config = config;
  MutexLock lk(mu_);
  store(user, service, std::move(pushed));
}

void register_config_service(plat::Platform& platform,
                             std::shared_ptr<ConfigServiceServant> servant) {
  platform.register_servant(platform.direct_name(kConfigServiceName),
                            std::make_shared<DirectServantHandler>(servant),
                            plat::DispatchMode::kStatic);
}

namespace {
std::shared_ptr<plat::ObjectRef> resolve_service(plat::Platform& platform,
                                                 Duration timeout) {
  return platform.resolve(platform.direct_name(kConfigServiceName), timeout);
}
}  // namespace

void publish_config(plat::Platform& platform, const std::string& user,
                    const std::string& service, const QosConfig& config,
                    Duration timeout) {
  auto ref = resolve_service(platform, timeout);
  plat::Reply reply = ref->invoke(
      "put", {Value(user), Value(service), Value(config.serialize())}, {},
      timeout);
  if (!reply.ok()) {
    throw InvocationError("config service put failed: " + reply.error);
  }
}

ConfigRevision fetch_revision_for(plat::Platform& platform,
                                  const std::string& user,
                                  const std::string& service,
                                  Duration timeout) {
  auto ref = resolve_service(platform, timeout);
  plat::Reply reply =
      ref->invoke("get", {Value(user), Value(service)}, {}, timeout);
  if (!reply.ok()) {
    throw InvocationError("config service get failed: " + reply.error);
  }
  return ConfigRevision::parse(reply.result.as_string());
}

QosConfig fetch_config_for(plat::Platform& platform, const std::string& user,
                           const std::string& service, Duration timeout) {
  return fetch_revision_for(platform, user, service, timeout).config;
}

}  // namespace cqos
