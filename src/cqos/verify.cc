#include "cqos/verify.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "cqos/events.h"

namespace cqos {
namespace {

using Severity = VerifyIssue::Severity;

const char* base_name(Side side) {
  return side == Side::kClient ? "client_base" : "server_base";
}

/// Mirror of the builders' normalization: append the side's base protocol
/// when the stack doesn't configure it explicitly.
std::vector<MicroProtocolSpec> with_base(Side side,
                                         std::vector<MicroProtocolSpec> specs) {
  const char* base = base_name(side);
  bool present = std::any_of(specs.begin(), specs.end(),
                             [&](const auto& s) { return s.name == base; });
  if (!present) specs.push_back(MicroProtocolSpec{base, {}});
  return specs;
}

/// Events the runtime itself raises into the composite (exempt sources for
/// graph analysis): the client raises newRequest per invocation; the server
/// raises newServerRequest per delivery and requestReturned after the reply
/// is released. Control events ("ctl:*") are raised by the skeleton when a
/// control invocation arrives.
bool runtime_raises(Side side, std::string_view event) {
  if (event.substr(0, 4) == "ctl:") return true;
  if (side == Side::kClient) return event == ev::kNewRequest;
  return event == ev::kNewServerRequest || event == ev::kRequestReturned;
}

struct Constraint {
  enum class Kind {
    kRequires,
    kConflicts,
    kAfter,
    kBefore,
    kRequiresPeer,
    kRequiresPeerProperty,
    kUnknown,
  };
  Kind kind = Kind::kUnknown;
  std::vector<std::string> args;  // alternatives for requires-peer
};

Constraint parse_constraint(const std::string& text) {
  Constraint c;
  auto colon = text.find(':');
  if (colon == std::string::npos) return c;
  std::string kind = text.substr(0, colon);
  std::string arg = text.substr(colon + 1);
  if (kind == "requires") c.kind = Constraint::Kind::kRequires;
  else if (kind == "conflicts") c.kind = Constraint::Kind::kConflicts;
  else if (kind == "after") c.kind = Constraint::Kind::kAfter;
  else if (kind == "before") c.kind = Constraint::Kind::kBefore;
  else if (kind == "requires-peer") c.kind = Constraint::Kind::kRequiresPeer;
  else if (kind == "requires-peer-property")
    c.kind = Constraint::Kind::kRequiresPeerProperty;
  for (std::size_t pos = 0; pos <= arg.size();) {
    auto bar = arg.find('|', pos);
    if (bar == std::string::npos) bar = arg.size();
    if (bar > pos) c.args.push_back(arg.substr(pos, bar - pos));
    pos = bar + 1;
  }
  return c;
}

/// One side's resolved stack: specs (normalized), manifests where known.
struct SideView {
  Side side;
  std::vector<MicroProtocolSpec> specs;
  std::vector<const MicroManifest*> manifests;  // parallel; null = opaque
  int opaque = 0;

  const char* label() const { return side_name(side); }

  bool has(std::string_view name) const {
    return std::any_of(specs.begin(), specs.end(),
                       [&](const auto& s) { return s.name == name; });
  }
  int index_of(std::string_view name) const {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
  bool has_property(std::string_view p) const {
    return std::any_of(manifests.begin(), manifests.end(), [&](const auto* m) {
      return m != nullptr && m->has_property(p);
    });
  }
  /// Names of protocols declaring property `p` (for diagnostics).
  std::vector<std::string> providers_of(std::string_view p) const {
    std::vector<std::string> out;
    for (const auto* m : manifests) {
      if (m != nullptr && m->has_property(p)) out.push_back(m->name);
    }
    return out;
  }
};

SideView resolve(Side side, std::vector<MicroProtocolSpec> specs) {
  SideView v;
  v.side = side;
  v.specs = with_base(side, std::move(specs));
  const auto& reg = MicroProtocolRegistry::instance();
  for (const auto& spec : v.specs) {
    const MicroManifest* m = reg.contains(side, spec.name)
                                 ? reg.find_manifest(side, spec.name)
                                 : nullptr;
    v.manifests.push_back(m);
    if (m == nullptr) ++v.opaque;
  }
  return v;
}

void add_issue(VerifyResult& out, Severity sev, std::string rule,
               std::string message) {
  out.issues.push_back(
      VerifyIssue{sev, std::move(rule), std::move(message)});
}

void verify_one_side(const SideView& v, VerifyResult& out) {
  const std::string label = v.label();
  const auto& reg = MicroProtocolRegistry::instance();

  // duplicate-protocol: a composite installs handlers per instance, so a
  // repeated protocol double-handles every event it binds.
  std::map<std::string, int> counts;
  for (const auto& spec : v.specs) ++counts[spec.name];
  for (const auto& [name, n] : counts) {
    if (n > 1) {
      add_issue(out, Severity::kError, "duplicate-protocol",
                label + ": micro-protocol '" + name + "' appears " +
                    std::to_string(n) +
                    " times in one stack — each protocol may be configured "
                    "at most once");
    }
  }

  // unknown-protocol + config-key checks (manifested protocols only).
  for (std::size_t i = 0; i < v.specs.size(); ++i) {
    const auto& spec = v.specs[i];
    if (!reg.contains(v.side, spec.name)) {
      add_issue(out, Severity::kError, "unknown-protocol",
                label + ": unknown micro-protocol '" + spec.name + "'");
      continue;
    }
    const MicroManifest* m = v.manifests[i];
    if (m == nullptr) continue;  // opaque: parameters unchecked
    for (const auto& [key, value] : spec.params) {
      if (!m->accepts_config(key)) {
        std::string accepted;
        for (const auto& k : m->config_keys) {
          if (!accepted.empty()) accepted += ", ";
          accepted += k;
        }
        add_issue(out, Severity::kError, "unknown-config-key",
                  label + ": '" + spec.name + "' does not accept config key '" +
                      key + "'" +
                      (accepted.empty() ? std::string(" (no keys accepted)")
                                        : " (accepted: " + accepted + ")"));
      }
    }
    for (const auto& key : m->required_keys) {
      if (!spec.params.contains(key)) {
        add_issue(out, Severity::kError, "missing-config-key",
                  label + ": '" + spec.name + "' requires config key '" + key +
                      "'");
      }
    }
  }

  // Event-flow graph: bound/raised sets across the stack plus the runtime
  // anchors. With opaque protocols present the graph is incomplete, so
  // findings degrade to warnings.
  Severity graph_sev = v.opaque > 0 ? Severity::kWarning : Severity::kError;
  std::set<std::string> bound;
  std::set<std::string> raised;
  for (const auto* m : v.manifests) {
    if (m == nullptr) continue;
    bound.insert(m->bind_events.begin(), m->bind_events.end());
    raised.insert(m->raise_events.begin(), m->raise_events.end());
  }
  for (const auto* m : v.manifests) {
    if (m == nullptr) continue;
    for (const auto& e : m->raise_events) {
      if (!bound.contains(e)) {
        add_issue(out, graph_sev, "dangling-raise",
                  label + ": '" + m->name + "' raises '" + e +
                      "' but no handler in the stack binds it");
      }
    }
    for (const auto& e : m->bind_events) {
      if (!raised.contains(e) && !runtime_raises(v.side, e)) {
        add_issue(out, graph_sev, "unreachable-handler",
                  label + ": '" + m->name + "' binds '" + e +
                      "' but nothing in the stack raises it");
      }
    }
  }

  // pb-conflict: two distinct protocols writing one piggyback key clobber
  // each other (per-request piggyback values are single-slot).
  std::map<std::string, std::vector<std::string>> writers;
  for (const auto* m : v.manifests) {
    if (m == nullptr) continue;
    for (const auto& key : m->pb_writes) writers[key].push_back(m->name);
  }
  for (const auto& [key, names] : writers) {
    std::vector<std::string> distinct = names;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct.size() > 1) {
      std::string who;
      for (const auto& n : distinct) {
        if (!who.empty()) who += "' and '";
        who += n;
      }
      add_issue(out, Severity::kError, "pb-conflict",
                label + ": piggyback key '" + key + "' is written by both '" +
                    who + "'");
    }
  }

  // Same-stack constraints.
  for (std::size_t i = 0; i < v.specs.size(); ++i) {
    const MicroManifest* m = v.manifests[i];
    if (m == nullptr) continue;
    for (const auto& text : m->constraints) {
      Constraint c = parse_constraint(text);
      if (c.args.empty()) continue;
      const std::string& other = c.args.front();
      switch (c.kind) {
        case Constraint::Kind::kRequires:
          if (!v.has(other)) {
            add_issue(out, Severity::kError, "requires",
                      label + ": '" + m->name + "' requires '" + other +
                          "' in the same stack");
          }
          break;
        case Constraint::Kind::kConflicts:
          if (v.has(other)) {
            add_issue(out, Severity::kError, "conflicts",
                      label + ": '" + m->name + "' conflicts with '" + other +
                          "' — configure at most one");
          }
          break;
        case Constraint::Kind::kAfter:
          if (v.has(other) &&
              v.index_of(m->name) < v.index_of(other)) {
            add_issue(out, Severity::kError, "order-constraint",
                      label + ": '" + m->name + "' must come after '" + other +
                          "' in the stack order");
          }
          break;
        case Constraint::Kind::kBefore:
          if (v.has(other) &&
              v.index_of(m->name) > v.index_of(other)) {
            add_issue(out, Severity::kError, "order-constraint",
                      label + ": '" + m->name + "' must come before '" + other +
                          "' in the stack order");
          }
          break;
        default:
          break;  // cross-side kinds handled in verify_cross
      }
    }
  }
}

void verify_cross(const SideView& a, const SideView& b, VerifyResult& out) {
  for (const auto* m : a.manifests) {
    if (m == nullptr) continue;
    for (const auto& text : m->constraints) {
      Constraint c = parse_constraint(text);
      if (c.args.empty()) continue;
      if (c.kind == Constraint::Kind::kRequiresPeer) {
        bool met = std::any_of(c.args.begin(), c.args.end(),
                               [&](const std::string& n) { return b.has(n); });
        // An opaque peer protocol may provide the capability; stay quiet
        // only when the peer stack is fully known.
        if (!met && b.opaque == 0) {
          std::string alts;
          for (const auto& n : c.args) {
            if (!alts.empty()) alts += ", ";
            alts += n;
          }
          add_issue(out, Severity::kError, "asymmetric-pair",
                    std::string(a.label()) + ": '" + m->name +
                        "' has no matching peer on the " + b.label() +
                        " side (requires one of: " + alts + ")");
        }
      } else if (c.kind == Constraint::Kind::kRequiresPeerProperty) {
        const std::string& prop = c.args.front();
        if (!b.has_property(prop) && b.opaque == 0) {
          add_issue(out, Severity::kError, "asymmetric-pair",
                    std::string(a.label()) + ": '" + m->name + "' requires a " +
                        b.label() + "-side protocol providing '" + prop +
                        "'; none is configured");
        }
      }
    }
  }
}

}  // namespace

std::vector<std::string> VerifyResult::errors() const {
  std::vector<std::string> out;
  for (const auto& i : issues) {
    if (i.severity == Severity::kError) out.push_back(i.text());
  }
  return out;
}

std::vector<std::string> VerifyResult::warnings() const {
  std::vector<std::string> out;
  for (const auto& i : issues) {
    if (i.severity == Severity::kWarning) out.push_back(i.text());
  }
  return out;
}

std::string VerifyResult::text() const {
  std::string out;
  for (const auto& line : errors()) out += line + "\n";
  for (const auto& line : warnings()) out += line + "\n";
  return out;
}

VerifyResult verify_side(Side side, std::vector<MicroProtocolSpec> specs) {
  VerifyResult result;
  verify_one_side(resolve(side, std::move(specs)), result);
  return result;
}

VerifyResult verify_composition(const QosConfig& config) {
  VerifyResult result;
  SideView client = resolve(Side::kClient, config.client);
  SideView server = resolve(Side::kServer, config.server);
  verify_one_side(client, result);
  verify_one_side(server, result);
  verify_cross(client, server, result);
  verify_cross(server, client, result);
  return result;
}

CompositionTraits composition_traits(const QosConfig& config) {
  SideView client = resolve(Side::kClient, config.client);
  SideView server = resolve(Side::kServer, config.server);
  CompositionTraits t;
  t.total_order = server.has_property("total-order");
  t.at_most_once = server.has_property("at-most-once");
  t.replicated = client.has_property("replication") ||
                 server.has_property("replication");
  t.loss_tolerant = !t.total_order;
  return t;
}

std::string event_flow_report(const QosConfig& config) {
  std::ostringstream os;
  auto join = [](const std::vector<std::string>& v) {
    std::string out;
    for (const auto& s : v) {
      if (!out.empty()) out += ", ";
      out += s;
    }
    return out.empty() ? std::string("-") : out;
  };
  for (Side side : {Side::kClient, Side::kServer}) {
    SideView v = resolve(side, config.side(side));
    os << v.label() << " stack:\n";
    for (std::size_t i = 0; i < v.specs.size(); ++i) {
      const auto& spec = v.specs[i];
      const MicroManifest* m = v.manifests[i];
      os << "  " << spec.name;
      if (m == nullptr) {
        os << "  (opaque: no manifest registered)\n";
        continue;
      }
      os << "\n    binds:  " << join(m->bind_events) << "\n"
         << "    raises: " << join(m->raise_events) << "\n";
      if (!m->pb_reads.empty() || !m->pb_writes.empty()) {
        os << "    piggyback: reads [" << join(m->pb_reads) << "] writes ["
           << join(m->pb_writes) << "]\n";
      }
      if (!m->properties.empty()) {
        os << "    properties: " << join(m->properties) << "\n";
      }
    }
    // Raise -> handler edges over the whole stack.
    std::map<std::string, std::vector<std::string>> sources;
    std::map<std::string, std::vector<std::string>> sinks;
    for (const auto* m : v.manifests) {
      if (m == nullptr) continue;
      for (const auto& e : m->raise_events) sources[e].push_back(m->name);
      for (const auto& e : m->bind_events) {
        sinks[e].push_back(m->name);
        if (runtime_raises(side, e)) sources[e];  // ensure edge line exists
      }
    }
    os << "  event flow:\n";
    for (const auto& [event, handlers] : sinks) {
      std::vector<std::string> from = sources[event];
      if (runtime_raises(side, event)) {
        from.insert(from.begin(), "[runtime]");
      }
      os << "    " << event << ": " << join(from) << " -> " << join(handlers)
         << "\n";
    }
  }
  CompositionTraits t = composition_traits(config);
  os << "traits: total-order=" << (t.total_order ? "yes" : "no")
     << " at-most-once=" << (t.at_most_once ? "yes" : "no")
     << " replication=" << (t.replicated ? "yes" : "no")
     << " loss-tolerant=" << (t.loss_tolerant ? "yes" : "no") << "\n";
  return os.str();
}

}  // namespace cqos
