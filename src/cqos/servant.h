// Application server-object interface.
//
// A Servant implements the object's methods behind a single generic dispatch
// entry point — the paper's "native Java call to the servant object" done by
// invoke_servant(). Typed server classes (e.g. the BankAccount example)
// implement dispatch() the way an IDL-generated skeleton would.
#pragma once

#include <string>

#include "common/value.h"

namespace cqos {

class Servant {
 public:
  virtual ~Servant() = default;

  /// Execute `method` with `params`, returning the result value. Throwing
  /// any std::exception reports an application error to the client.
  virtual Value dispatch(const std::string& method, const ValueList& params) = 0;
};

}  // namespace cqos
