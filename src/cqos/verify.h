// Static composition verifier for micro-protocol stacks.
//
// validate() (config.h) instantiates factories and applies coarse pairing
// rules; this verifier goes further: it analyzes a composition *without
// constructing it*, purely from the MicroManifest effect models registered
// alongside the factories, treating the composite as an event-flow graph.
// That makes it safe to run at build() time in QosEndpoint (fail-fast), from
// the standalone tools/cqos_verify CLI, and — eventually — before a live
// reconfiguration swaps a handler graph under traffic (ROADMAP).
//
// Rules (rule ids appear verbatim in diagnostics and tests):
//   duplicate-protocol    the same micro-protocol name appears twice in one
//                         stack (a composite keys handlers per instance, so
//                         duplicates double-handle every event)
//   unknown-protocol      spec names no registered factory
//   unknown-config-key    spec passes a parameter the manifest doesn't accept
//   missing-config-key    manifest marks a parameter required; spec omits it
//   dangling-raise        an event is raised but nothing in the stack (or
//                         the runtime) handles it
//   unreachable-handler   a handler is bound to an event nothing raises
//   pb-conflict           two protocols write the same piggyback key
//   requires              same-stack dependency missing
//   conflicts             mutually exclusive protocols configured together
//   order-constraint      before:/after: ordering violated by spec order
//   asymmetric-pair       requires-peer[-property] unmet on the other side
//                         (encryptor without decryptor, retransmit without
//                         at-most-once delivery, ...)
//
// Stacks are normalized exactly like QosEndpoint::*Builder::build():
// client_base/server_base are appended when missing. Protocols registered
// without a manifest are "opaque": their parameters are not checked and the
// graph rules (dangling-raise / unreachable-handler) degrade to warnings,
// since the opaque protocol may provide the missing edge.
#pragma once

#include <string>
#include <vector>

#include "cqos/config.h"

namespace cqos {

struct VerifyIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string rule;     // rule id from the table above
  std::string message;  // full human-readable diagnostic

  std::string text() const {
    return std::string(severity == Severity::kError ? "error" : "warning") +
           " [" + rule + "] " + message;
  }
};

struct VerifyResult {
  std::vector<VerifyIssue> issues;

  bool ok() const {
    for (const auto& i : issues) {
      if (i.severity == VerifyIssue::Severity::kError) return false;
    }
    return true;
  }
  std::vector<std::string> errors() const;
  std::vector<std::string> warnings() const;
  /// All issues, one per line (errors first).
  std::string text() const;
};

/// Verify one stack in isolation (side-local rules only; cross-side rules
/// like asymmetric-pair need verify_composition). The stack is normalized
/// with the side's base protocol first.
VerifyResult verify_side(Side side, std::vector<MicroProtocolSpec> specs);

/// Verify a full client+server composition: both side-local analyses plus
/// the cross-side rules.
VerifyResult verify_composition(const QosConfig& config);

/// Semantic traits derived from the manifests of a composition. The soak
/// harness derives its profile gating from these instead of hand-maintained
/// per-config flags.
struct CompositionTraits {
  bool total_order = false;   // some server protocol declares "total-order"
  bool at_most_once = false;  // some server protocol declares "at-most-once"
  bool replicated = false;    // some protocol declares "replication"
  /// Loss-type faults (drops, crashes, partitions) are sound to inject:
  /// false for total-order compositions, where a stalled replica stalls the
  /// agreed sequence.
  bool loss_tolerant = true;
};

CompositionTraits composition_traits(const QosConfig& config);

/// Human-readable event-flow report of a composition: per side, each
/// protocol with the events it binds/raises, piggyback keys, and the
/// resolved raise->handler edges. Purely informational.
std::string event_flow_report(const QosConfig& config);

}  // namespace cqos
