// Abstract request object (paper §2.2).
//
// The CQoS stub converts a method call into a Request — a platform-neutral
// representation whose parameters are a vector of Values — and the Cactus
// client/server micro-protocols manipulate it through accessor methods. The
// piggyback map carries extra CQoS parameters (request id, priority,
// principal, HMAC, ordering info) across the wire as service contexts.
//
// A Request is shared (shared_ptr) between the stub, concurrently executing
// handler instances (ActiveRep runs one invoker per replica) and late
// replies; its mutable state is guarded by an internal mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "common/clock.h"
#include "common/priority.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "common/value.h"

namespace cqos {

class Request;
using RequestPtr = std::shared_ptr<Request>;

/// One attempted server invocation of a request. ActiveRep creates one per
/// replica; the acceptance micro-protocols combine their outcomes.
struct Invocation {
  RequestPtr request;
  int server = 0;  // replica index, 0-based
  bool success = false;
  /// True when the failure was transport-level (crash/partition/timeout):
  /// the replica is presumed dead. False failures are application errors
  /// from a live server and must not trigger failover.
  bool transport_failure = false;
  Value result;
  std::string error;
  PiggybackMap reply_piggyback;
};
using InvocationPtr = std::shared_ptr<Invocation>;

/// Well-known piggyback keys.
namespace pbkey {
inline constexpr const char* kRequestId = "cq.id";
inline constexpr const char* kPriority = "cq.prio";
inline constexpr const char* kPrincipal = "cq.principal";
inline constexpr const char* kEncrypted = "cq.enc";
inline constexpr const char* kHmac = "cq.hmac";
inline constexpr const char* kForwarded = "cq.fwd";
/// Trace id minted by the CQoS stub; carried to the skeleton in the
/// request piggyback and echoed back in the reply piggyback so one id
/// spans stub -> micro-protocols -> skeleton -> reply.
inline constexpr const char* kTraceId = "cq.trace";
/// Remaining deadline budget in milliseconds, stamped by the client-side
/// "deadline" micro-protocol. Relative (not an absolute timestamp) so it is
/// clock-skew safe: the skeleton anchors it to the request's arrival time.
inline constexpr const char* kDeadline = "cq.deadline";
/// Reply-piggyback flow-control status ("overload-rejected",
/// "deadline-exceeded") set by the admission micro-protocol alongside the
/// cqos::status error marker, so tooling can key on a structured field.
inline constexpr const char* kStatus = "cq.status";
}  // namespace pbkey

/// Values carried under pbkey::kStatus.
namespace pbstatus {
inline constexpr const char* kOverloadRejected = "overload-rejected";
inline constexpr const char* kDeadlineExceeded = "deadline-exceeded";
}  // namespace pbstatus

class Request {
 public:
  /// Globally unique id (stamped by the client stub, carried in piggyback).
  static std::uint64_t next_id();

  Request() = default;
  Request(std::string object_id, std::string method, ValueList params);

  // --- immutable-ish identification (set before the request enters Cactus) --
  std::uint64_t id = 0;
  /// Observability trace id (0 = untraced); minted by the client stub and
  /// lifted from pbkey::kTraceId on the server side.
  std::uint64_t trace_id = 0;
  std::string object_id;
  std::string method;
  PiggybackMap piggyback;
  int priority = kNormalPriority;

  // --- parameters + single-encode cache (DESIGN.md §10) ---------------------

  /// The parameter list. Handlers must mutate it only through set_params /
  /// set_encrypted_params so the encoded-params cache stays coherent.
  const ValueList& params() const { return params_; }

  /// Replace the parameters, invalidating the encoded-params cache.
  void set_params(ValueList params);

  /// Replace the parameters with the single-ciphertext-blob list a privacy
  /// micro-protocol produces, and prime the cache with its (trivially
  /// constructed) encoding — no Value-tree traversal, no counted encode.
  void set_encrypted_params(Bytes ciphertext);

  /// The `Value::encode_list(params())` bytes, memoized: computed at most
  /// once per parameter state and shared by every consumer (HMAC input,
  /// DES plaintext, forwarding codec). Each cache fill increments the
  /// `cqos.request.encodes` counter — the single-encode invariant's proof.
  std::shared_ptr<const Bytes> encoded_params() const;

  /// Ablation/test knob: disabled, encoded_params() re-encodes every call.
  static void set_encode_cache_enabled(bool on);
  static bool encode_cache_enabled();

  /// Server side: true when this request arrived via replica-to-replica
  /// forwarding (PassiveRep) rather than from a client; no reply is due.
  bool forwarded = false;

  /// Absolute completion deadline, anchored by the skeleton at arrival from
  /// the relative pbkey::kDeadline budget (default: none). The admission
  /// micro-protocol sheds requests whose deadline passed before invoke.
  TimePoint deadline{};
  bool has_deadline() const { return deadline != TimePoint{}; }

  // --- completion (guarded) -------------------------------------------------

  /// First-completion wins; later calls are ignored. Returns true when this
  /// call performed the completion.
  bool complete(bool success, Value result, std::string error = {});

  /// Server-side two-phase completion: invoke_servant() *stages* the outcome
  /// so invokeReturn handlers (reply encryption, signing, forwarding) can
  /// still transform it; the base returnReleaser then finish()es, releasing
  /// the waiting skeleton thread. stage() after completion is a no-op.
  void stage(bool success, Value result, std::string error = {});
  void finish();

  bool staged_success() const;
  Value staged_result() const;
  std::string staged_error() const;
  void set_staged_result(Value v);

  /// One-shot named flag with an action: runs `fn` and returns true exactly
  /// once per flag name (later calls return false without running fn).
  /// Concurrent callers block until the first finishes, so post-condition
  /// state (e.g. encrypted parameters) is visible to everyone. Used by
  /// handlers that must be idempotent across concurrent ActiveRep
  /// activations of the same request.
  template <typename Fn>
  bool once(const std::string& flag, Fn&& fn) {
    MutexLock lk(flags_mu_);
    if (!flags_.insert(flag).second) return false;
    fn();
    return true;
  }
  bool has_flag(const std::string& flag) const;

  /// Block until complete() was called. Returns false on timeout.
  bool wait(Duration timeout);

  bool is_done() const;
  bool succeeded() const;
  /// Valid only after is_done() (completion publishes them; the completing
  /// write happened-before any reader that observed done_ under mu_).
  Value result() const;
  std::string error() const;
  PiggybackMap reply_piggyback() const;
  void merge_reply_piggyback(const PiggybackMap& pb);

  // --- acceptance bookkeeping (guarded) --------------------------------------

  /// Number of replies (success or failure) the client side expects; set by
  /// the assigner micro-protocol (1, or N for ActiveRep).
  void set_expected_replies(int n);
  int expected_replies() const;

  /// Record an invocation outcome; returns counts after recording.
  struct Counts {
    int successes = 0;
    int failures = 0;
    int expected = 0;
  };
  Counts record_outcome(const Invocation& inv);
  Counts counts() const;

  /// A reply recorded as a success turned out to be bad (failed integrity
  /// check, undecryptable): move one success to the failure column before
  /// re-raising it as invokeFailure.
  void reclassify_success_as_failure();

  /// Reset for reuse from a stub request pool (ablation: the paper's
  /// "reuse of the request data structures to avoid object creation").
  void reset(std::string object_id, std::string method, ValueList params);

  // --- forwarding codec -------------------------------------------------------

  /// Encode (id, method, params, piggyback) for replica-to-replica transfer.
  ValueList encode_for_forward() const;
  static RequestPtr decode_forwarded(const std::string& object_id,
                                     const ValueList& args);

 private:
  // Lock hierarchy: flags_mu_ may be held while taking mu_ (a once()
  // callback completing the request), never the other way around.
  // encode_mu_ is a leaf: encoded_params() is called from once() callbacks
  // (flags_mu_ held) and reset() (both held); nothing is locked under it.
  mutable Mutex flags_mu_;
  mutable Mutex mu_ CQOS_ACQUIRED_AFTER(flags_mu_);
  mutable Mutex encode_mu_ CQOS_ACQUIRED_AFTER(flags_mu_, mu_);
  CondVar cv_;
  ValueList params_;
  mutable std::shared_ptr<const Bytes> encoded_cache_
      CQOS_GUARDED_BY(encode_mu_);
  std::set<std::string> flags_ CQOS_GUARDED_BY(flags_mu_);
  bool done_ CQOS_GUARDED_BY(mu_) = false;
  bool success_ CQOS_GUARDED_BY(mu_) = false;
  Value result_ CQOS_GUARDED_BY(mu_);
  std::string error_ CQOS_GUARDED_BY(mu_);
  PiggybackMap reply_pb_ CQOS_GUARDED_BY(mu_);
  int expected_replies_ CQOS_GUARDED_BY(mu_) = 1;
  int successes_ CQOS_GUARDED_BY(mu_) = 0;
  int failures_ CQOS_GUARDED_BY(mu_) = 0;
};

}  // namespace cqos
