#include "cqos/skeleton.h"

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "cqos/events.h"

namespace cqos {
namespace {
metrics::Histogram& skeleton_handle_hist() {
  static metrics::Histogram& h =
      metrics::Registry::global().histogram("cqos.skeleton.handle");
  return h;
}
}  // namespace

CqosSkeleton::CqosSkeleton(std::string object_id,
                           std::shared_ptr<CactusServer> server)
    : object_id_(std::move(object_id)), server_(std::move(server)) {}

CqosSkeleton::CqosSkeleton(std::string object_id,
                           std::shared_ptr<Servant> servant)
    : object_id_(std::move(object_id)), servant_(std::move(servant)) {}

RequestPtr CqosSkeleton::build_request(const std::string& method,
                                       ValueList params,
                                       PiggybackMap piggyback) const {
  auto req = std::make_shared<Request>();
  req->object_id = object_id_;
  req->method = method;
  req->set_params(std::move(params));
  auto id_it = piggyback.find(pbkey::kRequestId);
  req->id = id_it != piggyback.end()
                ? static_cast<std::uint64_t>(id_it->second.as_i64())
                : Request::next_id();
  auto prio_it = piggyback.find(pbkey::kPriority);
  if (prio_it != piggyback.end()) {
    req->priority = static_cast<int>(prio_it->second.as_i64());
  }
  auto trace_it = piggyback.find(pbkey::kTraceId);
  if (trace_it != piggyback.end()) {
    req->trace_id = static_cast<std::uint64_t>(trace_it->second.as_i64());
  }
  // The client stamps a *relative* budget (clock-skew safe); anchor it to
  // the arrival time so server-side layers can shed already-late work.
  auto dl_it = piggyback.find(pbkey::kDeadline);
  if (dl_it != piggyback.end()) {
    std::int64_t budget_ms = dl_it->second.as_i64();
    if (budget_ms > 0) req->deadline = now() + ms(budget_ms);
  }
  req->piggyback = std::move(piggyback);
  return req;
}

plat::Reply CqosSkeleton::handle(const std::string& method, ValueList params,
                                 PiggybackMap piggyback) {
  plat::Reply reply;

  // Replica-to-replica (and bootstrap) control path.
  if (method.starts_with(ev::kCtlMethodPrefix)) {
    if (!server_) {
      reply.status = plat::ReplyStatus::kAppError;
      reply.error = "no cactus server attached";
      return reply;
    }
    std::string control = method.substr(ev::kCtlMethodPrefix.size());
    reply.status = plat::ReplyStatus::kOk;
    reply.result = server_->handle_control(control, std::move(params));
    return reply;
  }

  RequestPtr req = build_request(method, std::move(params), std::move(piggyback));

  {
    trace::ScopedSpan span(req->trace_id, "cqos.skeleton.handle", method,
                           &skeleton_handle_hist());
    if (server_) {
      server_->cactus_invoke(req);
    } else {
      // Bypass: native invocation of the servant.
      try {
        Value result = servant_->dispatch(req->method, req->params());
        req->complete(true, std::move(result));
      } catch (const std::exception& e) {
        req->complete(false, Value(), e.what());
      }
    }
  }

  if (req->succeeded()) {
    reply.status = plat::ReplyStatus::kOk;
    reply.result = req->result();
  } else {
    reply.status = plat::ReplyStatus::kAppError;
    reply.error = req->error();
  }
  reply.piggyback = req->reply_piggyback();
  // Echo the trace id so the reply leg is attributable client-side.
  if (req->trace_id != 0) {
    reply.piggyback[pbkey::kTraceId] =
        Value(static_cast<std::int64_t>(req->trace_id));
  }
  return reply;
}

plat::Reply DirectServantHandler::handle(const std::string& method,
                                         ValueList params,
                                         PiggybackMap piggyback) {
  (void)piggyback;
  plat::Reply reply;
  try {
    reply.result = servant_->dispatch(method, params);
    reply.status = plat::ReplyStatus::kOk;
  } catch (const std::exception& e) {
    reply.status = plat::ReplyStatus::kAppError;
    reply.error = e.what();
  }
  return reply;
}

void register_cqos_skeleton(plat::Platform& platform,
                            const std::shared_ptr<CqosSkeleton>& skeleton,
                            int replica_index) {
  platform.register_servant(
      platform.replica_name(skeleton->object_id(), replica_index), skeleton,
      plat::DispatchMode::kDsi);
}

}  // namespace cqos
