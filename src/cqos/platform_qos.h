// Platform-backed implementations of the Cactus QoS interface.
//
// These are the only CQoS components that touch plat::Platform; everything
// above them (micro-protocols, Cactus client/server) is platform neutral.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cqos/qos_interface.h"
#include "cqos/servant.h"
#include "platform/api.h"

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos {

struct ClientQosOptions {
  Duration invoke_timeout = ms(1000);
  Duration resolve_timeout = ms(500);
  Duration ping_timeout = ms(100);
  /// Use the platform's dynamic invocation path (DII on CORBA). The CQoS
  /// stub always does (paper §4.1); turning it off isolates the DII cost in
  /// bench_ablation_marshal.
  bool use_dynamic_invocation = true;
};

/// Client-side interface: resolves replica names through the platform naming
/// service and issues (dynamic) invocations. `server_names[i]` is the
/// platform name of replica i — built with Platform::replica_name() for CQoS
/// deployments or Platform::direct_name() for baseline/bypass setups.
class PlatformClientQos : public ClientQosInterface {
 public:
  PlatformClientQos(plat::Platform& platform, std::string object_id,
                    std::vector<std::string> server_names,
                    ClientQosOptions opts = {});

  int num_servers() const override {
    return static_cast<int>(slots_.size());
  }
  void bind(int server) override;
  ServerStatus server_status(int server) override;
  ServerStatus probe(int server) override;
  void mark_failed(int server) override;
  void invoke_server(Request& req, Invocation& inv) override;
  std::string description() const override;

 private:
  struct Slot {
    std::string name;
    std::shared_ptr<plat::ObjectRef> ref;
    ServerStatus status = ServerStatus::kUnknown;
  };

  std::shared_ptr<plat::ObjectRef> ref_for(int server);

  plat::Platform& platform_;
  std::string object_id_;
  ClientQosOptions opts_;
  mutable Mutex mu_;
  std::vector<Slot> slots_ CQOS_GUARDED_BY(mu_);
};

struct ServerQosOptions {
  Duration peer_timeout = ms(800);
  Duration resolve_timeout = ms(500);
};

/// Server-side interface: native servant invocation plus replica-to-replica
/// control messaging (used by PassiveRep forwarding and TotalOrder).
class PlatformServerQos : public ServerQosInterface {
 public:
  /// `peer_names[i]` is the platform name of replica i's skeleton (including
  /// this replica's own, which is never contacted).
  PlatformServerQos(plat::Platform& platform, std::shared_ptr<Servant> servant,
                    std::string object_id, std::vector<std::string> peer_names,
                    int self_index, ServerQosOptions opts = {});

  int num_servers() const override {
    return static_cast<int>(peer_names_.size());
  }
  int replica_index() const override { return self_index_; }
  const std::string& object_id() const override { return object_id_; }
  void invoke_servant(Request& req) override;
  bool peer_call(int peer, const std::string& control, const ValueList& args,
                 Value* reply) override;
  std::string description() const override;

 private:
  plat::Platform& platform_;
  std::shared_ptr<Servant> servant_;
  std::string object_id_;
  std::vector<std::string> peer_names_;
  int self_index_;
  ServerQosOptions opts_;
  Mutex mu_;
  std::vector<std::shared_ptr<plat::ObjectRef>> peer_refs_
      CQOS_GUARDED_BY(mu_);
};

}  // namespace cqos
