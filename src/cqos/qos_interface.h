// The Cactus QoS interface (paper §2.2): the abstraction through which the
// platform-independent QoS micro-protocols manipulate requests, server
// connections and the servant, without seeing platform or application
// details. Server replicas are addressed by index (0..N-1), never by
// platform identifiers.
#pragma once

#include <memory>
#include <string>

#include "cqos/request.h"

namespace cqos {

enum class ServerStatus {
  kRunning,  // bound and believed alive
  kFailed,   // marked failed (invocation error or failed ping)
  kUnknown,  // never bound
};

/// Client-side half: connection management and server invocation.
class ClientQosInterface {
 public:
  virtual ~ClientQosInterface() = default;

  virtual int num_servers() const = 0;

  /// (Re)establish the binding to `server`, clearing any failure mark.
  /// Throws (NameNotFound/TimeoutError) if the replica cannot be resolved.
  virtual void bind(int server) = 0;

  virtual ServerStatus server_status(int server) = 0;

  /// Actively probe a replica (liveness ping) and update its cached status.
  /// Unlike server_status(), this performs a network round trip. Unbound
  /// replicas are resolved first. Used by the failure-detector
  /// micro-protocol; the paper notes server_status() "could be extended to
  /// provide information such as the load conditions on the server".
  virtual ServerStatus probe(int server) = 0;

  /// Record that `server` is considered crashed (used by PassiveRep's
  /// primarySelector and by the base invoker on transport failures).
  virtual void mark_failed(int server) = 0;

  /// Blocking invocation of one replica; outcome lands in `inv`. Transport
  /// failures mark the server failed and set inv.success = false.
  virtual void invoke_server(Request& req, Invocation& inv) = 0;

  virtual std::string description() const = 0;
};

/// Server-side half: servant invocation and replica coordination.
class ServerQosInterface {
 public:
  virtual ~ServerQosInterface() = default;

  virtual int num_servers() const = 0;

  /// This replica's index (0-based).
  virtual int replica_index() const = 0;

  /// Application object id served by this replica group.
  virtual const std::string& object_id() const = 0;

  /// Invoke the actual server object with req.params(); sets the request's
  /// completion state (result or application error).
  virtual void invoke_servant(Request& req) = 0;

  /// Send a control message to a peer replica ("__cqos.ctl.<control>").
  /// Blocking; returns false if the peer is unreachable.
  virtual bool peer_send(int peer, const std::string& control,
                         const ValueList& args) {
    return peer_call(peer, control, args, nullptr);
  }

  /// As peer_send(), but also captures the control handler's reply value
  /// (used by the request-log recovery exchange).
  virtual bool peer_call(int peer, const std::string& control,
                         const ValueList& args, Value* reply) = 0;

  virtual std::string description() const = 0;
};

}  // namespace cqos
