// External configuration service (paper §2.3.3).
//
// "An external configuration service allows the properties — and thus the
// configurations — to be defined for all [user,service] pairs without
// requiring direct manual configuration of protocols."
//
// The service is itself an ordinary distributed object: a servant holding a
// [user, service] -> ConfigRevision table, registered under a well-known
// name. Clients and servers fetch their micro-protocol stacks from it at
// startup; lookups fall back from the exact user to the wildcard user "*".
//
// Every accepted put() bumps the pair's revision monotonically
// (max(stored + 1, pushed)), so a fetcher — or a ConfigWatcher polling the
// service through fetch_revision_for — can order concurrent updates and a
// live endpoint can gate reconfigure() on the revision number alone.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cqos/config.h"
#include "cqos/servant.h"
#include "platform/api.h"

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos {

/// Well-known object name of the configuration service.
inline constexpr const char* kConfigServiceName = "CQoSConfigService";

/// The service's servant. Methods (via generic dispatch):
///   put(user, service, config_text) -> true   (config_text may carry
///       ConfigRevision headers; the stored revision always increases)
///   get(user, service) -> revision_text  (ConfigRevision::serialize; exact,
///                                          then user "*"; error if neither
///                                          is defined)
///   remove(user, service) -> bool
class ConfigServiceServant : public Servant {
 public:
  Value dispatch(const std::string& method, const ValueList& params) override;

  /// Local (in-process) convenience for seeding.
  void put(const std::string& user, const std::string& service,
           const QosConfig& config);

 private:
  void store(const std::string& user, const std::string& service,
             ConfigRevision pushed) CQOS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::pair<std::string, std::string>, ConfigRevision> table_
      CQOS_GUARDED_BY(mu_);
};

/// Register `servant` with `platform` under the well-known name.
void register_config_service(plat::Platform& platform,
                             std::shared_ptr<ConfigServiceServant> servant);

/// Publish a configuration for [user, service] through the platform.
void publish_config(plat::Platform& platform, const std::string& user,
                    const std::string& service, const QosConfig& config,
                    Duration timeout);

/// Fetch the configuration for [user, service]. Throws NameNotFound if the
/// service is unreachable and InvocationError if no configuration is
/// defined for the pair (or the wildcard user).
QosConfig fetch_config_for(plat::Platform& platform, const std::string& user,
                           const std::string& service, Duration timeout);

/// Fetch the full versioned record for [user, service] — same lookup and
/// failure modes as fetch_config_for, keeping the revision number and
/// provenance so the caller can gate a live reconfigure() on staleness.
ConfigRevision fetch_revision_for(plat::Platform& platform,
                                  const std::string& user,
                                  const std::string& service,
                                  Duration timeout);

}  // namespace cqos
