// Event vocabulary of the Cactus client and server (paper Figure 3).
#pragma once

#include <string>
#include <string_view>

namespace cqos::ev {

// Client-side events.
inline constexpr std::string_view kNewRequest = "newRequest";
inline constexpr std::string_view kReadyToSend = "readyToSend";
inline constexpr std::string_view kInvokeSuccess = "invokeSuccess";
inline constexpr std::string_view kInvokeFailure = "invokeFailure";

// Server-side events.
inline constexpr std::string_view kNewServerRequest = "newServerRequest";
inline constexpr std::string_view kReadyToInvoke = "readyToInvoke";
inline constexpr std::string_view kInvokeReturn = "invokeReturn";
inline constexpr std::string_view kRequestReturned = "requestReturned";

/// Control-message events (replica-to-replica coordination): the skeleton
/// raises "ctl:<name>" when a "__cqos.ctl.<name>" invocation arrives.
inline std::string ctl(std::string_view name) {
  return "ctl:" + std::string(name);
}

/// Method-name prefix for control invocations on the skeleton.
inline constexpr std::string_view kCtlMethodPrefix = "__cqos.ctl.";

}  // namespace cqos::ev
