#include "cqos/platform_qos.h"

#include "common/error.h"
#include "common/log.h"
#include "cqos/events.h"

namespace cqos {

// --- PlatformClientQos ---------------------------------------------------------

PlatformClientQos::PlatformClientQos(plat::Platform& platform,
                                     std::string object_id,
                                     std::vector<std::string> server_names,
                                     ClientQosOptions opts)
    : platform_(platform), object_id_(std::move(object_id)), opts_(opts) {
  slots_.reserve(server_names.size());
  for (auto& name : server_names) {
    slots_.push_back(Slot{std::move(name), nullptr, ServerStatus::kUnknown});
  }
}

void PlatformClientQos::bind(int server) {
  std::string name;
  {
    MutexLock lk(mu_);
    name = slots_.at(static_cast<std::size_t>(server)).name;
  }
  // Resolve outside the lock: naming service round trip.
  std::shared_ptr<plat::ObjectRef> ref;
  try {
    ref = platform_.resolve(name, opts_.resolve_timeout);
  } catch (const Error&) {
    MutexLock lk(mu_);
    auto& slot = slots_.at(static_cast<std::size_t>(server));
    slot.ref = nullptr;
    slot.status = ServerStatus::kFailed;
    throw;
  }
  MutexLock lk(mu_);
  auto& slot = slots_.at(static_cast<std::size_t>(server));
  slot.ref = std::move(ref);
  slot.status = ServerStatus::kRunning;
}

ServerStatus PlatformClientQos::server_status(int server) {
  MutexLock lk(mu_);
  return slots_.at(static_cast<std::size_t>(server)).status;
}

ServerStatus PlatformClientQos::probe(int server) {
  std::shared_ptr<plat::ObjectRef> ref = ref_for(server);
  if (!ref) {
    try {
      bind(server);
    } catch (const Error&) {
      return ServerStatus::kFailed;  // bind() already marked it
    }
    ref = ref_for(server);
  }
  bool alive = ref && ref->ping(opts_.ping_timeout);
  MutexLock lk(mu_);
  auto& slot = slots_.at(static_cast<std::size_t>(server));
  slot.status = alive ? ServerStatus::kRunning : ServerStatus::kFailed;
  return slot.status;
}

void PlatformClientQos::mark_failed(int server) {
  MutexLock lk(mu_);
  auto& slot = slots_.at(static_cast<std::size_t>(server));
  slot.status = ServerStatus::kFailed;
}

std::shared_ptr<plat::ObjectRef> PlatformClientQos::ref_for(int server) {
  MutexLock lk(mu_);
  return slots_.at(static_cast<std::size_t>(server)).ref;
}

void PlatformClientQos::invoke_server(Request& req, Invocation& inv) {
  auto ref = ref_for(inv.server);
  if (!ref) {
    inv.success = false;
    inv.error = "server " + std::to_string(inv.server) + " not bound";
    return;
  }

  // Assemble the wire piggyback: the request's own piggyback plus the CQoS
  // bookkeeping fields.
  PiggybackMap pb = req.piggyback;
  pb[pbkey::kRequestId] = Value(static_cast<std::int64_t>(req.id));
  pb[pbkey::kPriority] = Value(static_cast<std::int64_t>(req.priority));

  plat::Reply reply =
      opts_.use_dynamic_invocation
          ? ref->invoke_dynamic(req.method, req.params(), pb,
                                opts_.invoke_timeout)
          : ref->invoke(req.method, req.params(), pb, opts_.invoke_timeout);

  switch (reply.status) {
    case plat::ReplyStatus::kOk:
      inv.success = true;
      inv.result = std::move(reply.result);
      inv.reply_piggyback = std::move(reply.piggyback);
      break;
    case plat::ReplyStatus::kAppError:
      inv.success = false;
      inv.error = std::move(reply.error);
      inv.reply_piggyback = std::move(reply.piggyback);
      break;
    case plat::ReplyStatus::kUnreachable:
      inv.success = false;
      inv.transport_failure = true;
      inv.error = "unreachable: " + reply.error;
      mark_failed(inv.server);
      break;
  }
}

std::string PlatformClientQos::description() const {
  return platform_.name() + " client qos for " + object_id_;
}

// --- PlatformServerQos ---------------------------------------------------------

PlatformServerQos::PlatformServerQos(plat::Platform& platform,
                                     std::shared_ptr<Servant> servant,
                                     std::string object_id,
                                     std::vector<std::string> peer_names,
                                     int self_index, ServerQosOptions opts)
    : platform_(platform),
      servant_(std::move(servant)),
      object_id_(std::move(object_id)),
      peer_names_(std::move(peer_names)),
      self_index_(self_index),
      opts_(opts),
      peer_refs_(peer_names_.size()) {}

void PlatformServerQos::invoke_servant(Request& req) {
  // Stage, don't finish: invokeReturn handlers may still transform the
  // result (encryption, signing) before the base returnReleaser releases
  // the skeleton thread.
  try {
    Value result = servant_->dispatch(req.method, req.params());
    req.stage(true, std::move(result));
  } catch (const std::exception& e) {
    req.stage(false, Value(), e.what());
  }
}

bool PlatformServerQos::peer_call(int peer, const std::string& control,
                                  const ValueList& args, Value* reply) {
  if (peer == self_index_) return true;
  std::shared_ptr<plat::ObjectRef> ref;
  {
    MutexLock lk(mu_);
    ref = peer_refs_.at(static_cast<std::size_t>(peer));
  }
  if (!ref) {
    try {
      ref = platform_.resolve(peer_names_.at(static_cast<std::size_t>(peer)),
                              opts_.resolve_timeout);
    } catch (const Error& e) {
      CQOS_LOG_WARN("peer_send: cannot resolve peer ", peer, ": ", e.what());
      return false;
    }
    MutexLock lk(mu_);
    peer_refs_.at(static_cast<std::size_t>(peer)) = ref;
  }
  plat::Reply out =
      ref->invoke(std::string(ev::kCtlMethodPrefix) + control, args, {},
                  opts_.peer_timeout);
  if (out.ok() && reply != nullptr) *reply = std::move(out.result);
  return out.ok();
}

std::string PlatformServerQos::description() const {
  return platform_.name() + " server qos for " + object_id_ + " replica " +
         std::to_string(self_index_);
}

}  // namespace cqos
