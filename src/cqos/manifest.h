// Declarative effect model for micro-protocols.
//
// A MicroManifest records, per micro-protocol, everything the composition
// verifier (verify.h) needs to analyze a QoS configuration statically: the
// events the protocol binds handlers to and the events it raises, the
// piggyback keys it reads and writes, the config keys it accepts and
// requires, cross-protocol constraints, and semantic properties. Manifests
// are registered alongside factories in the MicroProtocolRegistry
// (reg.add(side, name, &X::make, X::manifest())) and kept honest by the
// `manifest-sync` rule of tools/cqos_lint, which cross-checks the declared
// events against the actual bind_tracked/raise calls in the source.
//
// Constraint strings (see also verify.h):
//   requires:<name>          <name> must be present in the same stack
//   conflicts:<name>         <name> must NOT be present in the same stack
//   after:<name>             when both are configured, this protocol must
//                            appear after <name> in the stack order
//   before:<name>            mirror of after
//   requires-peer:<a|b|c>    the opposite side's stack must contain one of
//                            the listed protocols
//   requires-peer-property:<p>  the opposite side's stack must contain a
//                            protocol declaring property <p>
//
// Well-known properties:
//   total-order    replicas apply requests in one agreed sequence
//   at-most-once   duplicate deliveries of one request apply once
//   replication    the protocol fans out / manages replica groups
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

namespace cqos {

enum class Side { kClient, kServer };

inline const char* side_name(Side s) {
  return s == Side::kClient ? "client" : "server";
}

struct MicroManifest {
  std::string name;
  Side side = Side::kClient;

  std::vector<std::string> bind_events;    // events with handlers installed
  std::vector<std::string> raise_events;   // events this protocol raises
  std::vector<std::string> pb_reads;       // piggyback keys read
  std::vector<std::string> pb_writes;      // piggyback keys written
  std::vector<std::string> config_keys;    // accepted spec parameters
  std::vector<std::string> required_keys;  // parameters that must be present
  std::vector<std::string> constraints;    // encoded constraint strings
  std::vector<std::string> properties;     // semantic tags ("total-order"...)

  MicroManifest() = default;
  MicroManifest(std::string n, Side s) : name(std::move(n)), side(s) {}

  MicroManifest& binds(std::string_view event) {
    return push(bind_events, event);
  }
  MicroManifest& raises(std::string_view event) {
    return push(raise_events, event);
  }
  MicroManifest& reads_pb(std::string_view key) { return push(pb_reads, key); }
  MicroManifest& writes_pb(std::string_view key) {
    return push(pb_writes, key);
  }
  MicroManifest& config(std::string_view key) {
    return push(config_keys, key);
  }
  /// Accepted AND mandatory: verification fails when the spec omits it.
  MicroManifest& requires_config(std::string_view key) {
    push(config_keys, key);
    return push(required_keys, key);
  }
  MicroManifest& constraint(std::string_view c) {
    return push(constraints, c);
  }
  MicroManifest& property(std::string_view p) { return push(properties, p); }

  bool declares_bind(std::string_view event) const {
    return has(bind_events, event);
  }
  bool declares_raise(std::string_view event) const {
    return has(raise_events, event);
  }
  bool has_property(std::string_view p) const { return has(properties, p); }
  bool accepts_config(std::string_view key) const {
    return has(config_keys, key);
  }

 private:
  static bool has(const std::vector<std::string>& v, std::string_view s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  }
  MicroManifest& push(std::vector<std::string>& v, std::string_view s) {
    if (!has(v, s)) v.emplace_back(s);
    return *this;
  }
};

}  // namespace cqos
