#include "platform/corba/orb.h"

#include "common/error.h"
#include "common/log.h"
#include "common/priority.h"
#include "platform/corba/agent.h"
#include "platform/corba/cdr.h"

namespace cqos::corba {
namespace {
std::atomic<int> g_orb_instance{0};
}  // namespace

// --- CorbaRequest -------------------------------------------------------------

CorbaRequest::CorbaRequest(CorbaOrb& orb, Ior target, std::string operation)
    : orb_(orb), target_(std::move(target)), operation_(std::move(operation)) {}

void CorbaRequest::add_in_arg(const Value& v) {
  // Deep copy: insertion into an Any copies the value.
  nvlist_.push_back(NamedValue{"arg" + std::to_string(nvlist_.size()), v});
}

void CorbaRequest::set_service_context(const PiggybackMap& pb) {
  service_context_ = pb;
}

plat::Reply CorbaRequest::invoke(Duration timeout) {
  // DII: the request object is converted into the marshaled form — the
  // second conversion the paper identifies (abstract → DII → GIOP).
  orb_.emu_charge(orb_.cfg_.emu_marshal_cost + orb_.cfg_.emu_dii_cost);
  std::uint64_t id = orb_.next_request_id_.fetch_add(1);
  RequestBody body;
  body.reply_to = orb_.client_ep_->id();
  body.object_key = target_.object_key;
  body.operation = operation_;
  body.service_context = service_context_;
  body.params.reserve(nvlist_.size());
  for (const auto& nv : nvlist_) body.params.push_back(nv.value);
  return orb_.transact(target_, encode_request(id, body), id, timeout);
}

// --- CorbaObjectRef -----------------------------------------------------------

plat::Reply CorbaObjectRef::invoke(const std::string& method,
                                   const ValueList& params,
                                   const PiggybackMap& piggyback,
                                   Duration timeout) {
  return orb_.call_static(ior_, method, params, piggyback, timeout);
}

plat::Reply CorbaObjectRef::invoke_dynamic(const std::string& method,
                                           const ValueList& params,
                                           const PiggybackMap& piggyback,
                                           Duration timeout) {
  // Genuine DII: populate a request object (copies each argument into the
  // NVList), then marshal it.
  CorbaRequest req(orb_, ior_, method);
  for (const auto& p : params) req.add_in_arg(p);
  req.set_service_context(piggyback);
  return req.invoke(timeout);
}

bool CorbaObjectRef::ping(Duration timeout) {
  return orb_.ping_target(ior_, timeout);
}

std::string CorbaObjectRef::description() const {
  return "corba:" + ior_.endpoint + "#" + ior_.object_key;
}

// --- CorbaOrb -------------------------------------------------------------------

CorbaOrb::CorbaOrb(net::Transport& network, std::string host, OrbConfig cfg)
    : network_(network),
      host_(std::move(host)),
      cfg_(std::move(cfg)),
      agent_endpoint_(SmartAgent::endpoint_for_host(cfg_.agent_host)),
      workers_(cfg_.server_threads, cfg_.dispatch_classes,
               host_ + "-orb-workers") {
  int instance = g_orb_instance.fetch_add(1);
  client_ep_ = network_.create_endpoint(host_ + "/orbcli" + std::to_string(instance));
  server_ep_ = network_.create_endpoint(host_ + "/orb" + std::to_string(instance));
  client_thread_ = std::thread([this] { client_loop(); });
  server_thread_ = std::thread([this] { server_loop(); });
}

CorbaOrb::~CorbaOrb() { shutdown(); }

void CorbaOrb::emu_charge(Duration d) {
  if (d <= Duration::zero()) return;
  MutexLock lk(emu_cpu_mu_);
  std::this_thread::sleep_for(d);
}

void CorbaOrb::shutdown() {
  if (shutdown_.exchange(true)) return;
  client_ep_->close();
  server_ep_->close();
  if (client_thread_.joinable()) client_thread_.join();
  if (server_thread_.joinable()) server_thread_.join();
  workers_.shutdown();
  pending_.fail_all("orb shutdown");
}

std::string CorbaOrb::replica_name(const std::string& object_id,
                                   int replica) const {
  // Paper §4.1: POA for the i-th replica of object OID is "OID_agent_poa_i";
  // all replicas share the object id "OID_CQoS_Skeleton".
  return object_id + "_agent_poa_" + std::to_string(replica) + "/" +
         object_id + "_CQoS_Skeleton";
}

std::string CorbaOrb::direct_name(const std::string& object_id) const {
  return object_id + "_poa/" + object_id;
}

plat::Reply CorbaOrb::transact(const Ior& target, Bytes frame,
                               std::uint64_t request_id, Duration timeout) {
  auto [id, entry] = pending_.open();
  // Re-stamp the frame with the pending-table id (callers allocate a GIOP
  // request id before the pending entry exists). The id lives at offset 16:
  // 12-byte header + 4 alignment pad.
  (void)request_id;
  for (std::size_t i = 0; i < 8; ++i) {
    frame[16 + i] = static_cast<std::uint8_t>(id >> (8 * i));
  }
  if (!network_.send(client_ep_->id(), target.endpoint, std::move(frame))) {
    pending_.abandon(id);
    plat::Reply reply;
    reply.status = plat::ReplyStatus::kUnreachable;
    reply.error = "send failed";
    return reply;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    plat::Reply reply;
    reply.status = plat::ReplyStatus::kUnreachable;
    reply.error = "timeout";
    return reply;
  }
  return entry->reply;
}

plat::Reply CorbaOrb::call_static(const Ior& target, const std::string& method,
                                  const ValueList& params,
                                  const PiggybackMap& pb, Duration timeout) {
  emu_charge(cfg_.emu_marshal_cost);
  std::uint64_t id = next_request_id_.fetch_add(1);
  RequestBody body;
  body.reply_to = client_ep_->id();
  body.object_key = target.object_key;
  body.operation = method;
  body.service_context = pb;
  body.params = params;  // single marshal pass below
  return transact(target, encode_request(id, body), id, timeout);
}

bool CorbaOrb::ping_target(const Ior& target, Duration timeout) {
  auto [id, entry] = pending_.open();
  ByteWriter w(48);
  begin_frame(w, MsgType::kPing, id);
  encode_cdr_string(w, client_ep_->id());
  finish_frame(w);
  if (!network_.send(client_ep_->id(), target.endpoint, std::move(w).take())) {
    pending_.abandon(id);
    return false;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    return false;
  }
  return entry->reply.ok();
}

Ior CorbaOrb::agent_lookup(const std::string& poa_name,
                           const std::string& object_id, Duration timeout) {
  auto [id, entry] = pending_.open();
  Bytes frame = encode_agent_lookup(id, client_ep_->id(), poa_name, object_id);
  if (!network_.send(client_ep_->id(), agent_endpoint_, std::move(frame))) {
    pending_.abandon(id);
    throw TimeoutError("smart agent unreachable");
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    throw TimeoutError("smart agent lookup timed out");
  }
  if (!entry->reply.ok()) {
    throw NameNotFound(poa_name + "/" + object_id);
  }
  const ValueList& fields = entry->reply.result.as_list();
  Ior ior;
  ior.endpoint = fields.at(0).as_string();
  ior.object_key = fields.at(1).as_string();
  return ior;
}

bool CorbaOrb::agent_register(const std::string& poa_name,
                              const std::string& object_id, const Ior& ior,
                              bool unregister, Duration timeout) {
  auto [id, entry] = pending_.open();
  Bytes frame =
      unregister
          ? encode_agent_unregister(id, client_ep_->id(), poa_name, object_id)
          : encode_agent_register(id, client_ep_->id(), poa_name, object_id,
                                  ior);
  if (!network_.send(client_ep_->id(), agent_endpoint_, std::move(frame))) {
    return false;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    return false;
  }
  return entry->reply.ok();
}

std::shared_ptr<plat::ObjectRef> CorbaOrb::resolve(const std::string& name,
                                                   Duration timeout) {
  auto slash = name.find('/');
  if (slash == std::string::npos) {
    throw NameNotFound("corba names are '<poa>/<object-id>': " + name);
  }
  Ior ior = agent_lookup(name.substr(0, slash), name.substr(slash + 1), timeout);
  return std::make_shared<CorbaObjectRef>(*this, std::move(ior));
}

void CorbaOrb::register_servant(const std::string& name,
                                std::shared_ptr<plat::ServantHandler> handler,
                                plat::DispatchMode mode) {
  auto slash = name.find('/');
  if (slash == std::string::npos) {
    throw ConfigError("corba names are '<poa>/<object-id>': " + name);
  }
  {
    MutexLock lk(servants_mu_);
    servants_[name] = Registration{std::move(handler), mode};
  }
  Ior ior{server_ep_->id(), name};
  if (!agent_register(name.substr(0, slash), name.substr(slash + 1), ior,
                      /*unregister=*/false, cfg_.resolve_timeout)) {
    throw TimeoutError("smart agent registration failed for " + name);
  }
}

void CorbaOrb::unregister_servant(const std::string& name) {
  {
    MutexLock lk(servants_mu_);
    servants_.erase(name);
  }
  auto slash = name.find('/');
  if (slash == std::string::npos) return;
  agent_register(name.substr(0, slash), name.substr(slash + 1), {},
                 /*unregister=*/true, cfg_.resolve_timeout);
}

void CorbaOrb::client_loop() {
  for (;;) {
    auto msg = client_ep_->recv(ms(200));
    if (!msg) {
      if (client_ep_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      ByteReader r(msg->payload);
      GiopHeader header = read_frame(r);
      plat::Reply reply;
      switch (header.type) {
        case MsgType::kReply: {
          ReplyBody body = decode_reply_body(r);
          reply.status = body.status == GiopReplyStatus::kNoException
                             ? plat::ReplyStatus::kOk
                             : plat::ReplyStatus::kAppError;
          reply.result = std::move(body.result);
          reply.error = std::move(body.error);
          reply.piggyback = std::move(body.service_context);
          break;
        }
        case MsgType::kPong:
        case MsgType::kAgentRegisterAck:
          reply.status = r.get_u8() != 0 ? plat::ReplyStatus::kOk
                                         : plat::ReplyStatus::kAppError;
          break;
        case MsgType::kAgentLookupReply: {
          Ior ior = decode_agent_lookup_reply(r);
          if (ior.valid()) {
            reply.status = plat::ReplyStatus::kOk;
            reply.result = Value(ValueList{Value(ior.endpoint), Value(ior.object_key)});
          } else {
            reply.status = plat::ReplyStatus::kAppError;
            reply.error = "not found";
          }
          break;
        }
        default:
          CQOS_LOG_WARN("orb client loop: unexpected message type");
          continue;
      }
      pending_.complete(header.request_id, std::move(reply));
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("orb client loop: ", e.what());
    }
  }
}

void CorbaOrb::server_loop() {
  for (;;) {
    auto msg = server_ep_->recv(ms(200));
    if (!msg) {
      if (server_ep_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      ByteReader r(msg->payload);
      GiopHeader header = read_frame(r);
      if (header.type == MsgType::kPing) {
        std::string reply_to = decode_cdr_string(r);
        ByteWriter w(32);
        begin_frame(w, MsgType::kPong, header.request_id);
        w.put_u8(1);
        finish_frame(w);
        network_.send(server_ep_->id(), reply_to, std::move(w).take());
        continue;
      }
      if (header.type != MsgType::kRequest) {
        CQOS_LOG_WARN("orb server loop: unexpected message type");
        continue;
      }
      RequestBody body = decode_request_body(r);
      std::uint64_t id = header.request_id;
      // Classify by the piggybacked priority (service context) before a
      // worker is committed; legacy single-queue mode never rejects.
      int prio = plat::piggyback_priority(body.service_context,
                                          kNormalPriority);
      std::string reply_to = body.reply_to;
      auto res = workers_.try_submit(
          prio, [this, id, body = std::move(body)]() mutable {
            dispatch_request(id, std::move(body));
          });
      if (res == cactus::SubmitResult::kRejected) {
        ReplyBody reply;
        reply.status = GiopReplyStatus::kUserException;
        reply.error = std::string(status::kOverloadRejected) +
                      ": orb dispatch queue full";
        reply.service_context[plat::kStatusPiggybackKey] =
            Value(plat::kStatusOverloadRejected);
        network_.send(server_ep_->id(), reply_to, encode_reply(id, reply));
      }
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("orb server loop: ", e.what());
    }
  }
}

void CorbaOrb::dispatch_request(std::uint64_t request_id, RequestBody body) {
  Registration reg;
  {
    MutexLock lk(servants_mu_);
    auto it = servants_.find(body.object_key);
    if (it != servants_.end()) reg = it->second;
  }
  ReplyBody reply;
  if (!reg.handler) {
    reply.status = GiopReplyStatus::kSystemException;
    reply.error = "OBJECT_NOT_EXIST: " + body.object_key;
  } else {
    emu_charge(cfg_.emu_dispatch_cost +
               (reg.mode == plat::DispatchMode::kDsi ? cfg_.emu_dsi_cost
                                                     : Duration::zero()));
    ValueList params;
    if (reg.mode == plat::DispatchMode::kDsi) {
      // DSI: the POA hands the dynamic skeleton a ServerRequest whose
      // arguments must be extracted from Anys — an extra deep copy per
      // parameter compared to the generated-skeleton path.
      params = body.params;  // Any extraction copy
    } else {
      params = std::move(body.params);
    }
    plat::Reply out = reg.handler->handle(body.operation, std::move(params),
                                          std::move(body.service_context));
    switch (out.status) {
      case plat::ReplyStatus::kOk:
        reply.status = GiopReplyStatus::kNoException;
        reply.result = std::move(out.result);
        break;
      case plat::ReplyStatus::kAppError:
        reply.status = GiopReplyStatus::kUserException;
        reply.error = std::move(out.error);
        break;
      case plat::ReplyStatus::kUnreachable:
        reply.status = GiopReplyStatus::kSystemException;
        reply.error = std::move(out.error);
        break;
    }
    reply.service_context = std::move(out.piggyback);
  }
  network_.send(server_ep_->id(), body.reply_to,
                encode_reply(request_id, reply));
}

}  // namespace cqos::corba
