// CORBA-like ORB.
//
// Implements the subset of CORBA the paper's prototype relies on:
//   - POA-style registration: servants are keyed by "<poa_name>/<object_id>"
//     and advertised to the smart agent (the Visibroker osagent analogue);
//   - static invocation: one-pass CDR marshal, what a generated stub does;
//   - DII: a CorbaRequest object is first populated from abstract values
//     (NVList of deep-copied Anys) and then marshaled — the two-step
//     conversion the paper identifies as the main CQoS overhead on CORBA;
//   - DSI: servants registered in kDsi mode receive their parameters through
//     an extra Any-extraction copy, modeling the dynamic skeleton interface
//     the CQoS skeleton uses.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cactus/thread_pool.h"
#include "net/transport.h"
#include "platform/api.h"
#include "platform/corba/giop.h"
#include "platform/pending.h"

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::corba {

struct OrbConfig {
  /// Host the smart agent runs on (endpoint "<host>/osagent").
  std::string agent_host = "nameserver";
  /// Worker threads for server-side request dispatch.
  int server_threads = 8;
  /// Non-empty: traffic-class dispatch (per-class bounded WRR queues,
  /// immediate backpressure reply when a class queue is full).
  std::vector<cactus::TrafficClass> dispatch_classes;
  Duration ping_timeout = ms(60);
  Duration resolve_timeout = ms(500);

  /// Testbed-emulation cost model (all zero by default). The benchmarks set
  /// these to emulate the CPU costs of the paper's environment (Visibroker
  /// 4.1 / JDK 1.3 / 600 MHz PIII); each cost is charged as a busy-wait at
  /// the exact mechanism point it models.
  Duration emu_marshal_cost{};   // client-side static marshal, per call
  Duration emu_dii_cost{};       // extra DII request-object conversion
  Duration emu_dispatch_cost{};  // server-side unmarshal + POA dispatch
  Duration emu_dsi_cost{};       // extra DSI Any-extraction
};

class CorbaOrb;

/// DII request object, modeled on org.omg.CORBA.Request. Building one copies
/// every argument into the NVList (abstract value -> Any conversion);
/// invoke() then marshals the list into a GIOP frame.
class CorbaRequest {
 public:
  CorbaRequest(CorbaOrb& orb, Ior target, std::string operation);

  /// Append an input argument (deep copy, as CORBA's Any insertion does).
  void add_in_arg(const Value& v);
  void set_service_context(const PiggybackMap& pb);

  /// Marshal and send; blocks for the reply.
  plat::Reply invoke(Duration timeout);

 private:
  struct NamedValue {
    std::string name;
    Value value;
  };

  CorbaOrb& orb_;
  Ior target_;
  std::string operation_;
  std::vector<NamedValue> nvlist_;
  PiggybackMap service_context_;
};

class CorbaObjectRef : public plat::ObjectRef {
 public:
  CorbaObjectRef(CorbaOrb& orb, Ior ior) : orb_(orb), ior_(std::move(ior)) {}

  plat::Reply invoke(const std::string& method, const ValueList& params,
                     const PiggybackMap& piggyback, Duration timeout) override;
  plat::Reply invoke_dynamic(const std::string& method,
                             const ValueList& params,
                             const PiggybackMap& piggyback,
                             Duration timeout) override;
  bool ping(Duration timeout) override;
  std::string description() const override;

  const Ior& ior() const { return ior_; }

 private:
  CorbaOrb& orb_;
  Ior ior_;
};

class CorbaOrb : public plat::Platform {
 public:
  CorbaOrb(net::Transport& network, std::string host, OrbConfig cfg = {});
  ~CorbaOrb() override;

  CorbaOrb(const CorbaOrb&) = delete;
  CorbaOrb& operator=(const CorbaOrb&) = delete;

  // --- plat::Platform -------------------------------------------------------
  std::string name() const override { return "corba"; }
  std::string replica_name(const std::string& object_id,
                           int replica) const override;
  std::string direct_name(const std::string& object_id) const override;
  std::shared_ptr<plat::ObjectRef> resolve(const std::string& name,
                                           Duration timeout) override;
  void register_servant(const std::string& name,
                        std::shared_ptr<plat::ServantHandler> handler,
                        plat::DispatchMode mode) override;
  void unregister_servant(const std::string& name) override;
  void shutdown() override;

  const std::string& host() const { return host_; }

  /// Charge an emulated CPU cost to this host: hold the host's (emulated)
  /// CPU for `d`. Implemented as sleep-under-mutex so concurrent work on the
  /// same simulated machine serializes without burning the real core.
  void emu_charge(Duration d);

 private:
  friend class CorbaRequest;
  friend class CorbaObjectRef;

  struct Registration {
    std::shared_ptr<plat::ServantHandler> handler;
    plat::DispatchMode mode;
  };

  /// Send a fully framed request and block for the correlated reply.
  plat::Reply transact(const Ior& target, Bytes frame, std::uint64_t request_id,
                       Duration timeout);
  plat::Reply call_static(const Ior& target, const std::string& method,
                          const ValueList& params, const PiggybackMap& pb,
                          Duration timeout);
  bool ping_target(const Ior& target, Duration timeout);
  Ior agent_lookup(const std::string& poa_name, const std::string& object_id,
                   Duration timeout);
  bool agent_register(const std::string& poa_name, const std::string& object_id,
                      const Ior& ior, bool unregister, Duration timeout);

  void client_loop();
  void server_loop();
  void dispatch_request(std::uint64_t request_id, RequestBody body);

  net::Transport& network_;
  std::string host_;
  OrbConfig cfg_;
  std::string agent_endpoint_;

  std::shared_ptr<net::Endpoint> client_ep_;
  std::shared_ptr<net::Endpoint> server_ep_;
  plat::PendingCalls pending_;
  std::atomic<std::uint64_t> next_request_id_{1};

  Mutex servants_mu_;
  std::map<std::string, Registration> servants_
      CQOS_GUARDED_BY(servants_mu_);

  cactus::PriorityThreadPool workers_;
  std::thread client_thread_;
  std::thread server_thread_;
  Mutex emu_cpu_mu_;  // serializes the emulated-CPU critical section
  std::atomic<bool> shutdown_{false};
};

}  // namespace cqos::corba
