#include "platform/corba/giop.h"

#include "platform/corba/cdr.h"

namespace cqos::corba {
namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'I', 'O', 'P'};
constexpr std::uint8_t kVersionMajor = 1;
constexpr std::uint8_t kVersionMinor = 2;
constexpr std::uint8_t kFlagsLittleEndian = 1;
constexpr std::size_t kSizeOffset = 8;  // body-size field position

void encode_ior(ByteWriter& w, const Ior& ior) {
  encode_cdr_string(w, ior.endpoint);
  encode_cdr_string(w, ior.object_key);
}

Ior decode_ior(ByteReader& r) {
  Ior ior;
  ior.endpoint = decode_cdr_string(r);
  ior.object_key = decode_cdr_string(r);
  return ior;
}

}  // namespace

void begin_frame(ByteWriter& w, MsgType type, std::uint64_t request_id) {
  w.put_bytes(kMagic);
  w.put_u8(kVersionMajor);
  w.put_u8(kVersionMinor);
  w.put_u8(kFlagsLittleEndian);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u32(0);  // body size, patched by finish_frame
  w.align(8);
  w.put_u64(request_id);
}

void finish_frame(ByteWriter& w) {
  w.patch_u32(kSizeOffset, static_cast<std::uint32_t>(w.size() - 12));
}

GiopHeader read_frame(ByteReader& r) {
  Bytes magic = r.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic)) {
    throw DecodeError("bad GIOP magic");
  }
  std::uint8_t major = r.get_u8();
  std::uint8_t minor = r.get_u8();
  if (major != kVersionMajor || minor != kVersionMinor) {
    throw DecodeError("unsupported GIOP version");
  }
  (void)r.get_u8();  // flags (always little-endian here)
  GiopHeader h;
  h.type = static_cast<MsgType>(r.get_u8());
  std::uint32_t body_size = r.get_u32();
  r.align(8);
  h.request_id = r.get_u64();
  if (body_size + 12 < r.position()) throw DecodeError("GIOP size underflow");
  return h;
}

Bytes encode_request(std::uint64_t request_id, const RequestBody& body) {
  ByteWriter w(256);
  begin_frame(w, MsgType::kRequest, request_id);
  encode_cdr_string(w, body.reply_to);
  encode_cdr_string(w, body.object_key);
  encode_cdr_string(w, body.operation);
  encode_service_context(w, body.service_context);
  w.align(4);
  w.put_u32(static_cast<std::uint32_t>(body.params.size()));
  for (const auto& p : body.params) encode_any(w, p);
  finish_frame(w);
  return std::move(w).take();
}

RequestBody decode_request_body(ByteReader& r) {
  RequestBody body;
  body.reply_to = decode_cdr_string(r);
  body.object_key = decode_cdr_string(r);
  body.operation = decode_cdr_string(r);
  body.service_context = decode_service_context(r);
  r.align(4);
  std::uint32_t n = r.get_u32();
  if (n > r.remaining()) throw DecodeError("param count too large");
  body.params.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) body.params.push_back(decode_any(r));
  return body;
}

Bytes encode_reply(std::uint64_t request_id, const ReplyBody& body) {
  ByteWriter w(128);
  begin_frame(w, MsgType::kReply, request_id);
  w.put_u8(static_cast<std::uint8_t>(body.status));
  encode_service_context(w, body.service_context);
  if (body.status == GiopReplyStatus::kNoException) {
    encode_any(w, body.result);
  } else {
    encode_cdr_string(w, body.error);
  }
  finish_frame(w);
  return std::move(w).take();
}

ReplyBody decode_reply_body(ByteReader& r) {
  ReplyBody body;
  body.status = static_cast<GiopReplyStatus>(r.get_u8());
  body.service_context = decode_service_context(r);
  if (body.status == GiopReplyStatus::kNoException) {
    body.result = decode_any(r);
  } else {
    body.error = decode_cdr_string(r);
  }
  return body;
}

Bytes encode_agent_register(std::uint64_t request_id, const std::string& reply_to,
                            const std::string& poa_name,
                            const std::string& object_id, const Ior& ior) {
  ByteWriter w(128);
  begin_frame(w, MsgType::kAgentRegister, request_id);
  encode_cdr_string(w, reply_to);
  encode_cdr_string(w, poa_name);
  encode_cdr_string(w, object_id);
  encode_ior(w, ior);
  finish_frame(w);
  return std::move(w).take();
}

Bytes encode_agent_unregister(std::uint64_t request_id,
                              const std::string& reply_to,
                              const std::string& poa_name,
                              const std::string& object_id) {
  ByteWriter w(96);
  begin_frame(w, MsgType::kAgentUnregister, request_id);
  encode_cdr_string(w, reply_to);
  encode_cdr_string(w, poa_name);
  encode_cdr_string(w, object_id);
  finish_frame(w);
  return std::move(w).take();
}

Bytes encode_agent_lookup(std::uint64_t request_id, const std::string& reply_to,
                          const std::string& poa_name,
                          const std::string& object_id) {
  ByteWriter w(96);
  begin_frame(w, MsgType::kAgentLookup, request_id);
  encode_cdr_string(w, reply_to);
  encode_cdr_string(w, poa_name);
  encode_cdr_string(w, object_id);
  finish_frame(w);
  return std::move(w).take();
}

Bytes encode_agent_ack(std::uint64_t request_id, bool ok) {
  ByteWriter w(32);
  begin_frame(w, MsgType::kAgentRegisterAck, request_id);
  w.put_u8(ok ? 1 : 0);
  finish_frame(w);
  return std::move(w).take();
}

Bytes encode_agent_lookup_reply(std::uint64_t request_id, const Ior& ior) {
  ByteWriter w(96);
  begin_frame(w, MsgType::kAgentLookupReply, request_id);
  w.put_u8(ior.valid() ? 1 : 0);
  if (ior.valid()) encode_ior(w, ior);
  finish_frame(w);
  return std::move(w).take();
}

AgentRequest decode_agent_request(ByteReader& r, MsgType type) {
  AgentRequest req;
  req.reply_to = decode_cdr_string(r);
  req.poa_name = decode_cdr_string(r);
  req.object_id = decode_cdr_string(r);
  if (type == MsgType::kAgentRegister) req.ior = decode_ior(r);
  return req;
}

bool decode_agent_ack(ByteReader& r) { return r.get_u8() != 0; }

Ior decode_agent_lookup_reply(ByteReader& r) {
  if (r.get_u8() == 0) return {};
  return decode_ior(r);
}

}  // namespace cqos::corba
