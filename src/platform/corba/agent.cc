#include "platform/corba/agent.h"

#include "common/log.h"

namespace cqos::corba {

SmartAgent::SmartAgent(net::Transport& network, const std::string& host)
    : network_(network),
      endpoint_(network.create_endpoint(endpoint_for_host(host))),
      thread_([this] { loop(); }) {}

SmartAgent::~SmartAgent() { shutdown(); }

void SmartAgent::shutdown() {
  endpoint_->close();
  if (thread_.joinable()) thread_.join();
}

void SmartAgent::loop() {
  for (;;) {
    auto msg = endpoint_->recv(ms(200));
    if (!msg) {
      if (endpoint_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      ByteReader r(msg->payload);
      GiopHeader header = read_frame(r);
      switch (header.type) {
        case MsgType::kAgentRegister: {
          AgentRequest req = decode_agent_request(r, header.type);
          table_[{req.poa_name, req.object_id}] = req.ior;
          network_.send(endpoint_->id(), req.reply_to,
                        encode_agent_ack(header.request_id, true));
          break;
        }
        case MsgType::kAgentUnregister: {
          AgentRequest req = decode_agent_request(r, header.type);
          table_.erase({req.poa_name, req.object_id});
          network_.send(endpoint_->id(), req.reply_to,
                        encode_agent_ack(header.request_id, true));
          break;
        }
        case MsgType::kAgentLookup: {
          AgentRequest req = decode_agent_request(r, header.type);
          Ior ior;
          auto it = table_.find({req.poa_name, req.object_id});
          if (it != table_.end()) ior = it->second;
          network_.send(endpoint_->id(), req.reply_to,
                        encode_agent_lookup_reply(header.request_id, ior));
          break;
        }
        default:
          CQOS_LOG_WARN("osagent: unexpected message type");
      }
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("osagent: bad message: ", e.what());
    }
  }
}

}  // namespace cqos::corba
