#include "platform/corba/cdr.h"

namespace cqos::corba {

void encode_cdr_string(ByteWriter& w, std::string_view s) {
  w.align(4);
  w.put_u32(static_cast<std::uint32_t>(s.size() + 1));
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  w.put_u8(0);
}

std::string decode_cdr_string(ByteReader& r) {
  r.align(4);
  std::uint32_t len = r.get_u32();
  if (len == 0) throw DecodeError("CDR string length 0");
  // View, not get_bytes: the string is built straight from the frame
  // buffer without an intermediate Bytes copy.
  std::span<const std::uint8_t> raw = r.view(len);
  if (raw.back() != 0) throw DecodeError("CDR string missing NUL");
  return std::string(reinterpret_cast<const char*>(raw.data()), len - 1);
}

void encode_any(ByteWriter& w, const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      w.put_u8(static_cast<std::uint8_t>(TcKind::kNull));
      break;
    case Value::Type::kBool:
      w.put_u8(static_cast<std::uint8_t>(TcKind::kBoolean));
      w.put_u8(v.as_bool() ? 1 : 0);
      break;
    case Value::Type::kI64:
      w.put_u8(static_cast<std::uint8_t>(TcKind::kLongLong));
      w.align(8);
      w.put_i64(v.as_i64());
      break;
    case Value::Type::kF64:
      w.put_u8(static_cast<std::uint8_t>(TcKind::kDouble));
      w.align(8);
      w.put_f64(v.as_f64());
      break;
    case Value::Type::kString:
      w.put_u8(static_cast<std::uint8_t>(TcKind::kString));
      encode_cdr_string(w, v.as_string());
      break;
    case Value::Type::kBytes: {
      w.put_u8(static_cast<std::uint8_t>(TcKind::kOctetSeq));
      w.align(4);
      const Bytes& b = v.as_bytes();
      w.put_u32(static_cast<std::uint32_t>(b.size()));
      w.put_bytes(b);
      break;
    }
    case Value::Type::kList: {
      w.put_u8(static_cast<std::uint8_t>(TcKind::kAnySeq));
      w.align(4);
      const ValueList& list = v.as_list();
      w.put_u32(static_cast<std::uint32_t>(list.size()));
      for (const auto& elem : list) encode_any(w, elem);
      break;
    }
  }
}

Value decode_any(ByteReader& r) {
  auto kind = static_cast<TcKind>(r.get_u8());
  switch (kind) {
    case TcKind::kNull:
      return Value();
    case TcKind::kBoolean:
      return Value(r.get_u8() != 0);
    case TcKind::kLongLong:
      r.align(8);
      return Value(r.get_i64());
    case TcKind::kDouble:
      r.align(8);
      return Value(r.get_f64());
    case TcKind::kString:
      return Value(decode_cdr_string(r));
    case TcKind::kOctetSeq: {
      r.align(4);
      std::uint32_t n = r.get_u32();
      return Value(r.get_bytes(n));
    }
    case TcKind::kAnySeq: {
      r.align(4);
      std::uint32_t n = r.get_u32();
      if (n > r.remaining()) throw DecodeError("Any sequence too long");
      ValueList list;
      list.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) list.push_back(decode_any(r));
      return Value(std::move(list));
    }
  }
  throw DecodeError("unknown TypeCode kind");
}

void encode_service_context(ByteWriter& w, const PiggybackMap& pb) {
  w.align(4);
  w.put_u32(static_cast<std::uint32_t>(pb.size()));
  for (const auto& [key, value] : pb) {
    encode_cdr_string(w, key);
    encode_any(w, value);
  }
}

PiggybackMap decode_service_context(ByteReader& r) {
  r.align(4);
  std::uint32_t n = r.get_u32();
  if (n > r.remaining()) throw DecodeError("service context too long");
  PiggybackMap pb;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = decode_cdr_string(r);
    Value value = decode_any(r);
    // emplace would silently drop the second entry, so a malformed or
    // adversarial frame would decode differently from what was encoded.
    if (!pb.emplace(std::move(key), std::move(value)).second) {
      throw DecodeError("duplicate service context key");
    }
  }
  return pb;
}

}  // namespace cqos::corba
