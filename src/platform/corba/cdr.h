// CDR-style marshaling for the CORBA-like ORB.
//
// Values travel as CORBA Anys: a TypeCode kind octet followed by the
// CDR-aligned payload. Primitives are aligned to their natural size and
// strings carry a 4-byte length plus NUL terminator, so this encoding is
// measurably heavier than the RMI stream format — the same asymmetry the
// paper's Table 1 measures between the two platforms.
#pragma once

#include "common/bytes.h"
#include "common/value.h"

namespace cqos::corba {

/// TCKind-like constants (subset).
enum class TcKind : std::uint8_t {
  kNull = 1,
  kDouble = 7,
  kBoolean = 8,
  kString = 18,
  kOctetSeq = 19,
  kLongLong = 23,
  kAnySeq = 24,
};

/// Append one Value as an Any (typecode + aligned payload).
void encode_any(ByteWriter& w, const Value& v);

/// Decode one Any.
Value decode_any(ByteReader& r);

/// CDR string: aligned u32 length including NUL, then bytes, then NUL.
void encode_cdr_string(ByteWriter& w, std::string_view s);
std::string decode_cdr_string(ByteReader& r);

/// Piggyback map as a CORBA service-context-style list.
void encode_service_context(ByteWriter& w, const PiggybackMap& pb);
PiggybackMap decode_service_context(ByteReader& r);

}  // namespace cqos::corba
