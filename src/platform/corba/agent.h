// Smart agent: the ORB's location service (modeled on Visibroker's osagent,
// which the paper's prototype used for binding POAs by name).
//
// Servers register (poa_name, object_id) -> IOR; clients look the pair up.
// Runs as a daemon on its own simulated host.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/transport.h"
#include "platform/corba/giop.h"

namespace cqos::corba {

class SmartAgent {
 public:
  /// Conventional endpoint id the agent listens on, given its host.
  static std::string endpoint_for_host(const std::string& host) {
    return host + "/osagent";
  }

  SmartAgent(net::Transport& network, const std::string& host);
  ~SmartAgent();

  SmartAgent(const SmartAgent&) = delete;
  SmartAgent& operator=(const SmartAgent&) = delete;

  const std::string& endpoint_id() const { return endpoint_->id(); }

  void shutdown();

 private:
  void loop();

  net::Transport& network_;
  std::shared_ptr<net::Endpoint> endpoint_;
  std::map<std::pair<std::string, std::string>, Ior> table_;
  std::thread thread_;
};

}  // namespace cqos::corba
