// GIOP-style message framing for the CORBA-like ORB.
//
// Layout mirrors GIOP 1.2 in spirit: a 12-byte header (magic "GIOP",
// version, flags, message type, body size) followed by a CDR body. Message
// types beyond Request/Reply cover the naming (smart agent) protocol and
// liveness pings.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/value.h"

namespace cqos::corba {

enum class MsgType : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kPing = 7,
  kPong = 8,
  kAgentRegister = 10,
  kAgentRegisterAck = 11,
  kAgentLookup = 12,
  kAgentLookupReply = 13,
  kAgentUnregister = 14,
};

/// Interoperable object reference: where the object lives and under which
/// adapter key it is registered.
struct Ior {
  std::string endpoint;    // server ORB endpoint id
  std::string object_key;  // "<poa_name>/<object_id>"

  bool valid() const { return !endpoint.empty(); }
};

struct GiopHeader {
  MsgType type{};
  std::uint64_t request_id = 0;
};

/// Write the 12-byte GIOP header + request id. Body follows; finish_frame()
/// patches the body size.
void begin_frame(ByteWriter& w, MsgType type, std::uint64_t request_id);
void finish_frame(ByteWriter& w);

/// Parse the header; reader is positioned at the body afterwards.
GiopHeader read_frame(ByteReader& r);

// --- request/reply bodies ----------------------------------------------------

struct RequestBody {
  std::string reply_to;    // client endpoint id
  std::string object_key;  // target adapter key
  std::string operation;
  PiggybackMap service_context;
  ValueList params;
};

Bytes encode_request(std::uint64_t request_id, const RequestBody& body);
RequestBody decode_request_body(ByteReader& r);

enum class GiopReplyStatus : std::uint8_t {
  kNoException = 0,
  kUserException = 1,
  kSystemException = 2,
};

struct ReplyBody {
  GiopReplyStatus status = GiopReplyStatus::kNoException;
  PiggybackMap service_context;
  Value result;        // when kNoException
  std::string error;   // when exception
};

Bytes encode_reply(std::uint64_t request_id, const ReplyBody& body);
ReplyBody decode_reply_body(ByteReader& r);

// --- agent (naming) bodies ---------------------------------------------------

Bytes encode_agent_register(std::uint64_t request_id, const std::string& reply_to,
                            const std::string& poa_name,
                            const std::string& object_id, const Ior& ior);
Bytes encode_agent_unregister(std::uint64_t request_id,
                              const std::string& reply_to,
                              const std::string& poa_name,
                              const std::string& object_id);
Bytes encode_agent_lookup(std::uint64_t request_id, const std::string& reply_to,
                          const std::string& poa_name,
                          const std::string& object_id);
Bytes encode_agent_ack(std::uint64_t request_id, bool ok);
Bytes encode_agent_lookup_reply(std::uint64_t request_id, const Ior& ior);

struct AgentRequest {
  std::string reply_to;
  std::string poa_name;
  std::string object_id;
  Ior ior;  // only for register
};
AgentRequest decode_agent_request(ByteReader& r, MsgType type);
bool decode_agent_ack(ByteReader& r);
Ior decode_agent_lookup_reply(ByteReader& r);

}  // namespace cqos::corba
