// HTTP-style platform: the paper's third middleware shape (§2.1).
//
// "For example, it would be feasible to intercept HTTP requests and replies,
// in which case the TCP socket layer would be viewed as the middleware
// layer." This platform demonstrates exactly that: a text-header/binary-body
// HTTP/1.1-flavoured request/reply protocol with NO naming service at all —
// names are URLs ("http://<host>/<object>") resolved by host convention, the
// way a web deployment would use DNS. The same CQoS stubs, skeletons and
// micro-protocols run over it unchanged, which is the architecture's
// portability claim taken beyond the two platforms of the paper's prototype.
//
// Wire format (one simulated datagram per message):
//   POST /<object> CQOS/1.0\r\n            (request line)
//   X-Call-Id: <id>\r\n
//   X-Reply-To: <endpoint>\r\n
//   X-Method: <method>\r\n
//   X-Piggyback: <hex of encoded piggyback>\r\n
//   Content-Length: <n>\r\n
//   \r\n
//   <binary parameter list>
//
//   CQOS/1.0 200 OK | 500 Application Error\r\n   (response line)
//   X-Call-Id: <id>\r\n
//   X-Piggyback: <hex>\r\n
//   Content-Length: <n>\r\n
//   \r\n
//   <binary result value | error text>
//
// PING /<anything> CQOS/1.0 elicits "CQOS/1.0 204 Alive".
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cactus/thread_pool.h"
#include "net/transport.h"
#include "platform/api.h"
#include "platform/pending.h"

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::http {

struct HttpConfig {
  int server_threads = 8;
  /// Non-empty: traffic-class dispatch (per-class bounded WRR queues,
  /// immediate backpressure reply when a class queue is full).
  std::vector<cactus::TrafficClass> dispatch_classes;
  Duration resolve_timeout = ms(500);
  /// Host that serves replica i (1-based) of any object. Defaults to the
  /// cluster convention "server<i-1>" — the DNS-style deployment knowledge
  /// a web client would configure.
  std::function<std::string(int replica)> replica_host =
      [](int replica) { return "server" + std::to_string(replica - 1); };
  /// Host that serves non-replicated objects.
  std::string direct_host = "server0";
};

class HttpPlatform;

class HttpObjectRef : public plat::ObjectRef {
 public:
  HttpObjectRef(HttpPlatform& platform, std::string endpoint, std::string path)
      : platform_(platform), endpoint_(std::move(endpoint)), path_(std::move(path)) {}

  plat::Reply invoke(const std::string& method, const ValueList& params,
                     const PiggybackMap& piggyback, Duration timeout) override;
  bool ping(Duration timeout) override;
  std::string description() const override;

 private:
  HttpPlatform& platform_;
  std::string endpoint_;  // "<host>/http<k>"
  std::string path_;      // object name
};

class HttpPlatform : public plat::Platform {
 public:
  HttpPlatform(net::Transport& network, std::string host, HttpConfig cfg = {});
  ~HttpPlatform() override;

  HttpPlatform(const HttpPlatform&) = delete;
  HttpPlatform& operator=(const HttpPlatform&) = delete;

  std::string name() const override { return "http"; }

  std::string replica_name(const std::string& object_id,
                           int replica) const override {
    return "http://" + cfg_.replica_host(replica) + "/" + object_id +
           "_CQoS_Skeleton_" + std::to_string(replica);
  }

  std::string direct_name(const std::string& object_id) const override {
    return "http://" + cfg_.direct_host + "/" + object_id;
  }

  /// Parses "http://<host>/<object>"; no naming-service round trip.
  std::shared_ptr<plat::ObjectRef> resolve(const std::string& name,
                                           Duration timeout) override;

  /// Registration key is the path component of the URL (or a plain name).
  void register_servant(const std::string& name,
                        std::shared_ptr<plat::ServantHandler> handler,
                        plat::DispatchMode mode) override;
  void unregister_servant(const std::string& name) override;
  void shutdown() override;

  const std::string& host() const { return host_; }
  /// This platform's well-known server endpoint ("<host>/http<k>").
  const std::string& server_endpoint() const;

 private:
  friend class HttpObjectRef;

  plat::Reply call(const std::string& endpoint, const std::string& path,
                   const std::string& method, const ValueList& params,
                   const PiggybackMap& pb, Duration timeout);
  bool ping_endpoint(const std::string& endpoint, Duration timeout);

  void client_loop();
  void server_loop();
  void dispatch(std::uint64_t call_id, const std::string& reply_to,
                const std::string& path, const std::string& method,
                PiggybackMap piggyback, ValueList params);

  net::Transport& network_;
  std::string host_;
  HttpConfig cfg_;

  std::shared_ptr<net::Endpoint> client_ep_;
  std::shared_ptr<net::Endpoint> server_ep_;
  plat::PendingCalls pending_;

  Mutex servants_mu_;
  std::map<std::string, std::shared_ptr<plat::ServantHandler>> servants_
      CQOS_GUARDED_BY(servants_mu_);

  cactus::PriorityThreadPool workers_;
  std::thread client_thread_;
  std::thread server_thread_;
  std::atomic<bool> shutdown_{false};
};

/// Exposed for wire-format tests.
namespace wire {
std::string to_hex(const Bytes& data);
Bytes from_hex(const std::string& hex);

Bytes encode_request(std::uint64_t call_id, const std::string& reply_to,
                     const std::string& path, const std::string& method,
                     const PiggybackMap& pb, const ValueList& params);
Bytes encode_response(std::uint64_t call_id, bool ok, const Value& result,
                      const std::string& error, const PiggybackMap& pb);
Bytes encode_ping(std::uint64_t call_id, const std::string& reply_to);
Bytes encode_pong(std::uint64_t call_id);

struct Parsed {
  enum class Kind { kRequest, kResponse, kPing, kPong } kind{};
  std::uint64_t call_id = 0;
  std::string reply_to;
  std::string path;
  std::string method;
  PiggybackMap piggyback;
  ValueList params;   // requests
  bool ok = true;     // responses
  Value result;       // responses
  std::string error;  // responses
};

/// Throws DecodeError on malformed messages.
Parsed parse(const Bytes& payload);
}  // namespace wire

}  // namespace cqos::http
