#include "platform/http/http.h"

#include <charconv>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "common/priority.h"

namespace cqos::http {

// --- wire format ------------------------------------------------------------------

namespace wire {

std::string to_hex(const Bytes& data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw DecodeError("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw DecodeError("bad hex digit");
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nibble(hex[i]) * 16 +
                                            nibble(hex[i + 1])));
  }
  return out;
}

namespace {

void append(Bytes& out, std::string_view text) {
  out.insert(out.end(), text.begin(), text.end());
}

Bytes build(const std::string& head,
            const std::vector<std::pair<std::string, std::string>>& headers,
            const Bytes& body) {
  Bytes out;
  append(out, head);
  append(out, "\r\n");
  for (const auto& [key, value] : headers) {
    append(out, key);
    append(out, ": ");
    append(out, value);
    append(out, "\r\n");
  }
  append(out, "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n");
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::string encode_pb_header(const PiggybackMap& pb) {
  ByteWriter w;
  encode_piggyback(w, pb);
  return to_hex(w.data());
}

PiggybackMap decode_pb_header(const std::string& hex) {
  Bytes raw = from_hex(hex);
  ByteReader r(raw);
  return decode_piggyback(r);
}

}  // namespace

Bytes encode_request(std::uint64_t call_id, const std::string& reply_to,
                     const std::string& path, const std::string& method,
                     const PiggybackMap& pb, const ValueList& params) {
  return build("POST /" + path + " CQOS/1.0",
               {{"X-Call-Id", std::to_string(call_id)},
                {"X-Reply-To", reply_to},
                {"X-Method", method},
                {"X-Piggyback", encode_pb_header(pb)}},
               Value::encode_list(params));
}

Bytes encode_response(std::uint64_t call_id, bool ok, const Value& result,
                      const std::string& error, const PiggybackMap& pb) {
  Bytes body;
  if (ok) {
    ByteWriter w;
    result.encode(w);
    body = std::move(w).take();
  } else {
    body.assign(error.begin(), error.end());
  }
  return build(ok ? "CQOS/1.0 200 OK" : "CQOS/1.0 500 Application Error",
               {{"X-Call-Id", std::to_string(call_id)},
                {"X-Piggyback", encode_pb_header(pb)}},
               body);
}

Bytes encode_ping(std::uint64_t call_id, const std::string& reply_to) {
  return build("PING / CQOS/1.0",
               {{"X-Call-Id", std::to_string(call_id)},
                {"X-Reply-To", reply_to}},
               {});
}

Bytes encode_pong(std::uint64_t call_id) {
  return build("CQOS/1.0 204 Alive",
               {{"X-Call-Id", std::to_string(call_id)}}, {});
}

Parsed parse(const Bytes& payload) {
  std::string_view text(reinterpret_cast<const char*>(payload.data()),
                        payload.size());
  auto header_end = text.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    throw DecodeError("http: missing header terminator");
  }
  std::string_view head_block = text.substr(0, header_end);
  std::size_t body_offset = header_end + 4;

  // Split header lines.
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < head_block.size()) {
    auto eol = head_block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head_block.size();
    lines.push_back(head_block.substr(pos, eol - pos));
    pos = eol + 2;
  }
  if (lines.empty()) throw DecodeError("http: empty message");

  std::map<std::string, std::string> headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto colon = lines[i].find(": ");
    if (colon == std::string_view::npos) {
      throw DecodeError("http: malformed header line");
    }
    headers.emplace(std::string(lines[i].substr(0, colon)),
                    std::string(lines[i].substr(colon + 2)));
  }

  auto header = [&](const char* key) -> const std::string& {
    auto it = headers.find(key);
    if (it == headers.end()) {
      throw DecodeError(std::string("http: missing header ") + key);
    }
    return it->second;
  };

  std::size_t content_length = 0;
  {
    const std::string& raw = header("Content-Length");
    auto [ptr, ec] =
        std::from_chars(raw.data(), raw.data() + raw.size(), content_length);
    if (ec != std::errc()) throw DecodeError("http: bad Content-Length");
  }
  if (body_offset + content_length > payload.size()) {
    throw DecodeError("http: truncated body");
  }
  Bytes body(payload.begin() + static_cast<std::ptrdiff_t>(body_offset),
             payload.begin() +
                 static_cast<std::ptrdiff_t>(body_offset + content_length));

  Parsed parsed;
  std::string_view start = lines[0];
  if (start.starts_with("POST /")) {
    parsed.kind = Parsed::Kind::kRequest;
    auto space = start.find(' ', 6);
    if (space == std::string_view::npos) throw DecodeError("http: bad request line");
    parsed.path = std::string(start.substr(6, space - 6));
    parsed.call_id = std::stoull(header("X-Call-Id"));
    parsed.reply_to = header("X-Reply-To");
    parsed.method = header("X-Method");
    parsed.piggyback = decode_pb_header(header("X-Piggyback"));
    parsed.params = Value::decode_list(body);
  } else if (start.starts_with("PING ")) {
    parsed.kind = Parsed::Kind::kPing;
    parsed.call_id = std::stoull(header("X-Call-Id"));
    parsed.reply_to = header("X-Reply-To");
  } else if (start.starts_with("CQOS/1.0 204")) {
    parsed.kind = Parsed::Kind::kPong;
    parsed.call_id = std::stoull(header("X-Call-Id"));
  } else if (start.starts_with("CQOS/1.0 ")) {
    parsed.kind = Parsed::Kind::kResponse;
    parsed.call_id = std::stoull(header("X-Call-Id"));
    parsed.piggyback = decode_pb_header(header("X-Piggyback"));
    parsed.ok = start.substr(9, 3) == "200";
    if (parsed.ok) {
      ByteReader r(body);
      parsed.result = Value::decode(r);
      if (!r.done()) throw DecodeError("http: trailing bytes in result");
    } else {
      parsed.error.assign(body.begin(), body.end());
    }
  } else {
    throw DecodeError("http: unrecognized start line");
  }
  return parsed;
}

}  // namespace wire

// --- HttpObjectRef -----------------------------------------------------------------

plat::Reply HttpObjectRef::invoke(const std::string& method,
                                  const ValueList& params,
                                  const PiggybackMap& piggyback,
                                  Duration timeout) {
  return platform_.call(endpoint_, path_, method, params, piggyback, timeout);
}

bool HttpObjectRef::ping(Duration timeout) {
  return platform_.ping_endpoint(endpoint_, timeout);
}

std::string HttpObjectRef::description() const {
  return "http://" + net::Transport::host_of(endpoint_) + "/" + path_;
}

// --- HttpPlatform ------------------------------------------------------------------

namespace {
std::atomic<int> g_http_instance{0};
}  // namespace

HttpPlatform::HttpPlatform(net::Transport& network, std::string host,
                           HttpConfig cfg)
    : network_(network),
      host_(std::move(host)),
      cfg_(std::move(cfg)),
      workers_(cfg_.server_threads, cfg_.dispatch_classes,
               host_ + "-http-workers") {
  int instance = g_http_instance.fetch_add(1);
  client_ep_ = network_.create_endpoint(host_ + "/httpcli" + std::to_string(instance));
  // The server side listens on the host's well-known port-0 endpoint so
  // other hosts can address it by convention.
  server_ep_ = network_.create_endpoint(host_ + "/http");
  client_thread_ = std::thread([this] { client_loop(); });
  server_thread_ = std::thread([this] { server_loop(); });
}

HttpPlatform::~HttpPlatform() { shutdown(); }

const std::string& HttpPlatform::server_endpoint() const {
  return server_ep_->id();
}

void HttpPlatform::shutdown() {
  if (shutdown_.exchange(true)) return;
  client_ep_->close();
  server_ep_->close();
  network_.remove_endpoint(server_ep_->id());
  if (client_thread_.joinable()) client_thread_.join();
  if (server_thread_.joinable()) server_thread_.join();
  workers_.shutdown();
  pending_.fail_all("http shutdown");
}

std::shared_ptr<plat::ObjectRef> HttpPlatform::resolve(const std::string& name,
                                                       Duration timeout) {
  (void)timeout;  // no naming service: resolution is pure parsing
  std::string rest = name;
  if (rest.starts_with("http://")) rest = rest.substr(7);
  auto slash = rest.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= rest.size()) {
    throw NameNotFound("http names are 'http://<host>/<object>': " + name);
  }
  std::string target_host = rest.substr(0, slash);
  std::string path = rest.substr(slash + 1);
  return std::make_shared<HttpObjectRef>(*this, target_host + "/http", path);
}

void HttpPlatform::register_servant(const std::string& name,
                                    std::shared_ptr<plat::ServantHandler> handler,
                                    plat::DispatchMode mode) {
  (void)mode;  // HTTP has no DSI/static distinction
  std::string path = name;
  if (path.starts_with("http://")) {
    auto slash = path.find('/', 7);
    if (slash == std::string::npos) {
      throw ConfigError("http: cannot register URL without path: " + name);
    }
    path = path.substr(slash + 1);
  }
  MutexLock lk(servants_mu_);
  servants_[path] = std::move(handler);
}

void HttpPlatform::unregister_servant(const std::string& name) {
  std::string path = name;
  if (path.starts_with("http://")) {
    auto slash = path.find('/', 7);
    if (slash != std::string::npos) path = path.substr(slash + 1);
  }
  MutexLock lk(servants_mu_);
  servants_.erase(path);
}

plat::Reply HttpPlatform::call(const std::string& endpoint,
                               const std::string& path,
                               const std::string& method,
                               const ValueList& params, const PiggybackMap& pb,
                               Duration timeout) {
  auto [id, entry] = pending_.open();
  Bytes frame =
      wire::encode_request(id, client_ep_->id(), path, method, pb, params);
  if (!network_.send(client_ep_->id(), endpoint, std::move(frame))) {
    pending_.abandon(id);
    plat::Reply reply;
    reply.status = plat::ReplyStatus::kUnreachable;
    reply.error = "send failed";
    return reply;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    plat::Reply reply;
    reply.status = plat::ReplyStatus::kUnreachable;
    reply.error = "timeout";
    return reply;
  }
  return entry->reply;
}

bool HttpPlatform::ping_endpoint(const std::string& endpoint, Duration timeout) {
  auto [id, entry] = pending_.open();
  if (!network_.send(client_ep_->id(), endpoint,
                     wire::encode_ping(id, client_ep_->id()))) {
    pending_.abandon(id);
    return false;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    return false;
  }
  return entry->reply.ok();
}

void HttpPlatform::client_loop() {
  for (;;) {
    auto msg = client_ep_->recv(ms(200));
    if (!msg) {
      if (client_ep_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      wire::Parsed parsed = wire::parse(msg->payload);
      plat::Reply reply;
      switch (parsed.kind) {
        case wire::Parsed::Kind::kResponse:
          reply.status = parsed.ok ? plat::ReplyStatus::kOk
                                   : plat::ReplyStatus::kAppError;
          reply.result = std::move(parsed.result);
          reply.error = std::move(parsed.error);
          reply.piggyback = std::move(parsed.piggyback);
          break;
        case wire::Parsed::Kind::kPong:
          reply.status = plat::ReplyStatus::kOk;
          break;
        default:
          CQOS_LOG_WARN("http client loop: unexpected message kind");
          continue;
      }
      pending_.complete(parsed.call_id, std::move(reply));
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("http client loop: ", e.what());
    }
  }
}

void HttpPlatform::server_loop() {
  for (;;) {
    auto msg = server_ep_->recv(ms(200));
    if (!msg) {
      if (server_ep_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      wire::Parsed parsed = wire::parse(msg->payload);
      if (parsed.kind == wire::Parsed::Kind::kPing) {
        network_.send(server_ep_->id(), parsed.reply_to,
                      wire::encode_pong(parsed.call_id));
        continue;
      }
      if (parsed.kind != wire::Parsed::Kind::kRequest) {
        CQOS_LOG_WARN("http server loop: unexpected message kind");
        continue;
      }
      // Classify by the piggybacked priority before a worker is committed;
      // legacy single-queue mode never rejects.
      int prio = plat::piggyback_priority(parsed.piggyback, kNormalPriority);
      std::uint64_t call_id = parsed.call_id;
      std::string reply_to = parsed.reply_to;
      auto res = workers_.try_submit(
          prio, [this, parsed = std::move(parsed)]() mutable {
            dispatch(parsed.call_id, parsed.reply_to, parsed.path,
                     parsed.method, std::move(parsed.piggyback),
                     std::move(parsed.params));
          });
      if (res == cactus::SubmitResult::kRejected) {
        PiggybackMap pb;
        pb[plat::kStatusPiggybackKey] = Value(plat::kStatusOverloadRejected);
        network_.send(server_ep_->id(), reply_to,
                      wire::encode_response(
                          call_id, false, Value(),
                          std::string(status::kOverloadRejected) +
                              ": http dispatch queue full",
                          pb));
      }
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("http server loop: ", e.what());
    }
  }
}

void HttpPlatform::dispatch(std::uint64_t call_id, const std::string& reply_to,
                            const std::string& path, const std::string& method,
                            PiggybackMap piggyback, ValueList params) {
  std::shared_ptr<plat::ServantHandler> handler;
  {
    MutexLock lk(servants_mu_);
    auto it = servants_.find(path);
    if (it != servants_.end()) handler = it->second;
  }
  Bytes frame;
  if (!handler) {
    frame = wire::encode_response(call_id, false, Value(),
                                  "404 Not Found: /" + path, {});
  } else {
    plat::Reply out =
        handler->handle(method, std::move(params), std::move(piggyback));
    frame = wire::encode_response(call_id, out.ok(), out.result, out.error,
                                  out.piggyback);
  }
  network_.send(server_ep_->id(), reply_to, std::move(frame));
}

}  // namespace cqos::http
