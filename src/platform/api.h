// Platform abstraction: the middleware-facing interface CQoS is layered on.
//
// Both concrete platforms (the CORBA-like ORB in platform/corba and the
// RMI-like runtime in platform/rmi) implement these interfaces. CQoS code
// never touches platform wire formats — only this API — which is exactly the
// paper's portability claim: the Cactus client/server are platform neutral,
// and only the thin interceptor glue differs per platform.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/value.h"

namespace cqos::status {

// Well-known error-string markers for flow-control outcomes. They ride in
// Reply::error (and through it in InvocationError::what()), so every layer —
// platform dispatch, the admission micro-protocol, stubs and benches — can
// distinguish deliberate backpressure from a genuine failure or a timeout
// without a new wire field.
inline constexpr std::string_view kOverloadRejected = "cqos.overload-rejected";
inline constexpr std::string_view kDeadlineExceeded = "cqos.deadline-exceeded";

inline bool has_marker(std::string_view error, std::string_view marker) {
  return error.find(marker) != std::string_view::npos;
}
inline bool is_overload_rejected(std::string_view error) {
  return has_marker(error, kOverloadRejected);
}
inline bool is_deadline_exceeded(std::string_view error) {
  return has_marker(error, kDeadlineExceeded);
}
/// Either flavour of deliberate shedding (reject-now rather than time out).
inline bool is_backpressure(std::string_view error) {
  return is_overload_rejected(error) || is_deadline_exceeded(error);
}

}  // namespace cqos::status

namespace cqos::plat {

/// Piggyback key carrying the request's logical priority (stamped by the
/// CQoS stub as "cq.prio"). The platform dispatchers read it — without
/// depending on the cqos layer — to classify requests into worker-pool
/// traffic classes before a worker thread is committed.
inline constexpr const char* kPriorityPiggybackKey = "cq.prio";

/// Reply-piggyback status key/value an early-rejecting dispatcher stamps
/// (same literals as cqos's pbkey::kStatus / pbstatus::kOverloadRejected —
/// duplicated here because the platform layer cannot depend on cqos).
inline constexpr const char* kStatusPiggybackKey = "cq.status";
inline constexpr const char* kStatusOverloadRejected = "overload-rejected";

/// Best-effort priority lift from a decoded request piggyback.
inline int piggyback_priority(const PiggybackMap& pb, int fallback) {
  auto it = pb.find(kPriorityPiggybackKey);
  if (it == pb.end()) return fallback;
  return static_cast<int>(it->second.as_i64());
}

enum class ReplyStatus {
  kOk,           // servant returned a result
  kAppError,     // servant (or an interposed QoS layer) raised an exception
  kUnreachable,  // no reply: crashed host, partition, timeout
};

struct Reply {
  ReplyStatus status = ReplyStatus::kUnreachable;
  Value result;
  std::string error;
  PiggybackMap piggyback;

  bool ok() const { return status == ReplyStatus::kOk; }
};

/// Client-side handle to a remote object (stub-level view).
class ObjectRef {
 public:
  virtual ~ObjectRef() = default;

  /// The platform's natural invocation path (what a generated static stub
  /// compiles to). Blocking; never throws for remote failures — they are
  /// reported in Reply.status.
  virtual Reply invoke(const std::string& method, const ValueList& params,
                       const PiggybackMap& piggyback, Duration timeout) = 0;

  /// Dynamic invocation path. On CORBA this is genuine DII: an intermediate
  /// platform request object is constructed from the abstract request (the
  /// conversion the paper identifies as the dominant CQoS overhead on
  /// CORBA). Platforms without a distinct dynamic path (RMI) forward to
  /// invoke().
  virtual Reply invoke_dynamic(const std::string& method,
                               const ValueList& params,
                               const PiggybackMap& piggyback,
                               Duration timeout) {
    return invoke(method, params, piggyback, timeout);
  }

  /// Liveness probe of the hosting server.
  virtual bool ping(Duration timeout) = 0;

  virtual std::string description() const = 0;
};

/// Server-side generic dispatch target. The platform calls handle() for
/// every incoming request on a registered name (DSI-style single entry
/// point; this is what makes the CQoS skeleton method-agnostic).
class ServantHandler {
 public:
  virtual ~ServantHandler() = default;
  virtual Reply handle(const std::string& method, ValueList params,
                       PiggybackMap piggyback) = 0;
};

/// How the server-side adapter decodes requests for a registered servant.
enum class DispatchMode {
  kStatic,  // generated-skeleton path: one-pass decode straight to values
  kDsi,     // dynamic-skeleton path: decode to Anys, then convert (CORBA)
};

class Platform {
 public:
  virtual ~Platform() = default;

  virtual std::string name() const = 0;  // "corba" | "rmi"

  /// Platform-specific replica naming convention (paper §4): CORBA uses POA
  /// "<oid>_agent_poa_<i>" with object id "<oid>_CQoS_Skeleton"; RMI uses
  /// registry name "<oid>_CQoS_Skeleton_<i>". `replica` is 1-based.
  virtual std::string replica_name(const std::string& object_id,
                                   int replica) const = 0;

  /// Name for the non-replicated, non-CQoS registration of an object (the
  /// baseline configurations in Table 1).
  virtual std::string direct_name(const std::string& object_id) const = 0;

  /// Resolve a name to an object reference via the platform's naming
  /// service. Throws NameNotFound / TimeoutError.
  virtual std::shared_ptr<ObjectRef> resolve(const std::string& name,
                                             Duration timeout) = 0;

  virtual void register_servant(const std::string& name,
                                std::shared_ptr<ServantHandler> handler,
                                DispatchMode mode) = 0;

  virtual void unregister_servant(const std::string& name) = 0;

  virtual void shutdown() = 0;
};

}  // namespace cqos::plat
