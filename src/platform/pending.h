// Request/reply correlation table shared by both platform client runtimes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "platform/api.h"

namespace cqos::plat {

/// Tracks in-flight client calls keyed by request id. The reply-dispatch
/// loop completes entries; callers block on the entry's gate.
class PendingCalls {
 public:
  struct Entry {
    Gate gate;
    Reply reply;
  };

  std::pair<std::uint64_t, std::shared_ptr<Entry>> open() {
    MutexLock lk(mu_);
    std::uint64_t id = next_id_++;
    auto entry = std::make_shared<Entry>();
    calls_.emplace(id, entry);
    return {id, entry};
  }

  /// Complete a call; returns false if the id is unknown (late reply).
  bool complete(std::uint64_t id, Reply reply) {
    std::shared_ptr<Entry> entry;
    {
      MutexLock lk(mu_);
      auto it = calls_.find(id);
      if (it == calls_.end()) return false;
      entry = std::move(it->second);
      calls_.erase(it);
    }
    entry->reply = std::move(reply);
    entry->gate.set();
    return true;
  }

  /// Drop an entry after a timeout so a late reply is ignored.
  void abandon(std::uint64_t id) {
    MutexLock lk(mu_);
    calls_.erase(id);
  }

  /// Fail every in-flight call (used at shutdown).
  void fail_all(const std::string& reason) {
    std::map<std::uint64_t, std::shared_ptr<Entry>> taken;
    {
      MutexLock lk(mu_);
      taken.swap(calls_);
    }
    for (auto& [id, entry] : taken) {
      entry->reply.status = ReplyStatus::kUnreachable;
      entry->reply.error = reason;
      entry->gate.set();
    }
  }

 private:
  Mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Entry>> calls_ CQOS_GUARDED_BY(mu_);
  std::uint64_t next_id_ CQOS_GUARDED_BY(mu_) = 1;
};

}  // namespace cqos::plat
