// JRMP-style wire format for the RMI-like platform.
//
// Deliberately lighter than the ORB's GIOP/CDR: single-byte magic, varint
// lengths, no alignment padding, values encoded in one pass with the compact
// self-describing Value codec. This weight difference is what produces the
// CORBA-vs-RMI gap in Tables 1 and 2.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/value.h"

namespace cqos::rmi {

enum class MsgType : std::uint8_t {
  kCall = 1,
  kReturn = 2,
  kPing = 3,
  kPong = 4,
  kRegBind = 5,
  kRegLookup = 6,
  kRegReply = 7,
  kRegAck = 8,
  kRegUnbind = 9,
};

inline constexpr std::uint8_t kMagic = 0x4a;  // 'J'

struct Header {
  MsgType type{};
  std::uint64_t call_id = 0;
};

void begin_message(ByteWriter& w, MsgType type, std::uint64_t call_id);
Header read_header(ByteReader& r);

struct CallBody {
  std::string reply_to;
  std::string target;  // registry name
  std::string method;
  PiggybackMap piggyback;
  ValueList params;
};

Bytes encode_call(std::uint64_t call_id, const CallBody& body);
CallBody decode_call_body(ByteReader& r);

struct ReturnBody {
  bool ok = true;
  Value result;
  std::string error;
  PiggybackMap piggyback;
};

Bytes encode_return(std::uint64_t call_id, const ReturnBody& body);
ReturnBody decode_return_body(ByteReader& r);

void encode_pb(ByteWriter& w, const PiggybackMap& pb);
PiggybackMap decode_pb(ByteReader& r);

}  // namespace cqos::rmi
