#include "platform/rmi/registry.h"

#include "common/clock.h"
#include "common/log.h"
#include "platform/rmi/jrmp.h"

namespace cqos::rmi {

Registry::Registry(net::Transport& network, const std::string& host)
    : network_(network),
      endpoint_(network.create_endpoint(endpoint_for_host(host))),
      thread_([this] { loop(); }) {}

Registry::~Registry() { shutdown(); }

void Registry::shutdown() {
  endpoint_->close();
  if (thread_.joinable()) thread_.join();
}

void Registry::loop() {
  for (;;) {
    auto msg = endpoint_->recv(ms(200));
    if (!msg) {
      if (endpoint_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      ByteReader r(msg->payload);
      Header h = read_header(r);
      switch (h.type) {
        case MsgType::kRegBind: {
          std::string reply_to = r.get_string();
          std::string name = r.get_string();
          std::string target = r.get_string();
          bindings_[name] = target;
          ByteWriter w(16);
          begin_message(w, MsgType::kRegAck, h.call_id);
          w.put_u8(1);
          network_.send(endpoint_->id(), reply_to, std::move(w).take());
          break;
        }
        case MsgType::kRegUnbind: {
          std::string reply_to = r.get_string();
          std::string name = r.get_string();
          bindings_.erase(name);
          ByteWriter w(16);
          begin_message(w, MsgType::kRegAck, h.call_id);
          w.put_u8(1);
          network_.send(endpoint_->id(), reply_to, std::move(w).take());
          break;
        }
        case MsgType::kRegLookup: {
          std::string reply_to = r.get_string();
          std::string name = r.get_string();
          ByteWriter w(64);
          begin_message(w, MsgType::kRegReply, h.call_id);
          auto it = bindings_.find(name);
          if (it == bindings_.end()) {
            w.put_u8(0);
          } else {
            w.put_u8(1);
            w.put_string(it->second);
          }
          network_.send(endpoint_->id(), reply_to, std::move(w).take());
          break;
        }
        default:
          CQOS_LOG_WARN("rmiregistry: unexpected message type");
      }
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("rmiregistry: bad message: ", e.what());
    }
  }
}

}  // namespace cqos::rmi
