#include "platform/rmi/rmi.h"

#include "common/error.h"
#include "common/log.h"
#include "common/priority.h"
#include "platform/rmi/registry.h"

namespace cqos::rmi {
namespace {
std::atomic<int> g_rmi_instance{0};
}  // namespace

// --- RmiObjectRef --------------------------------------------------------------

plat::Reply RmiObjectRef::invoke(const std::string& method,
                                 const ValueList& params,
                                 const PiggybackMap& piggyback,
                                 Duration timeout) {
  return runtime_.call(endpoint_, name_, method, params, piggyback, timeout);
}

bool RmiObjectRef::ping(Duration timeout) {
  return runtime_.ping_endpoint(endpoint_, timeout);
}

std::string RmiObjectRef::description() const {
  return "rmi:" + endpoint_ + "#" + name_;
}

// --- RmiRuntime ----------------------------------------------------------------

RmiRuntime::RmiRuntime(net::Transport& network, std::string host, RmiConfig cfg)
    : network_(network),
      host_(std::move(host)),
      cfg_(std::move(cfg)),
      registry_endpoint_(Registry::endpoint_for_host(cfg_.registry_host)),
      workers_(cfg_.server_threads, cfg_.dispatch_classes,
               host_ + "-rmi-workers") {
  int instance = g_rmi_instance.fetch_add(1);
  client_ep_ = network_.create_endpoint(host_ + "/rmicli" + std::to_string(instance));
  server_ep_ = network_.create_endpoint(host_ + "/rmi" + std::to_string(instance));
  client_thread_ = std::thread([this] { client_loop(); });
  server_thread_ = std::thread([this] { server_loop(); });
}

RmiRuntime::~RmiRuntime() { shutdown(); }

void RmiRuntime::emu_charge(Duration d) {
  if (d <= Duration::zero()) return;
  MutexLock lk(emu_cpu_mu_);
  std::this_thread::sleep_for(d);
}

void RmiRuntime::shutdown() {
  if (shutdown_.exchange(true)) return;
  client_ep_->close();
  server_ep_->close();
  if (client_thread_.joinable()) client_thread_.join();
  if (server_thread_.joinable()) server_thread_.join();
  workers_.shutdown();
  pending_.fail_all("rmi shutdown");
}

plat::Reply RmiRuntime::call(const std::string& endpoint,
                             const std::string& target,
                             const std::string& method,
                             const ValueList& params, const PiggybackMap& pb,
                             Duration timeout) {
  emu_charge(cfg_.emu_call_cost);
  auto [id, entry] = pending_.open();
  CallBody body;
  body.reply_to = client_ep_->id();
  body.target = target;
  body.method = method;
  body.piggyback = pb;
  body.params = params;
  if (!network_.send(client_ep_->id(), endpoint, encode_call(id, body))) {
    pending_.abandon(id);
    plat::Reply reply;
    reply.status = plat::ReplyStatus::kUnreachable;
    reply.error = "send failed";
    return reply;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    plat::Reply reply;
    reply.status = plat::ReplyStatus::kUnreachable;
    reply.error = "timeout";
    return reply;
  }
  return entry->reply;
}

bool RmiRuntime::ping_endpoint(const std::string& endpoint, Duration timeout) {
  auto [id, entry] = pending_.open();
  ByteWriter w(48);
  begin_message(w, MsgType::kPing, id);
  w.put_string(client_ep_->id());
  if (!network_.send(client_ep_->id(), endpoint, std::move(w).take())) {
    pending_.abandon(id);
    return false;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    return false;
  }
  return entry->reply.ok();
}

bool RmiRuntime::registry_op(MsgType type, const std::string& name,
                             const std::string& target, Duration timeout,
                             std::string* resolved) {
  auto [id, entry] = pending_.open();
  ByteWriter w(96);
  begin_message(w, type, id);
  w.put_string(client_ep_->id());
  w.put_string(name);
  if (type == MsgType::kRegBind) w.put_string(target);
  if (!network_.send(client_ep_->id(), registry_endpoint_, std::move(w).take())) {
    pending_.abandon(id);
    return false;
  }
  if (!entry->gate.wait_for(timeout)) {
    pending_.abandon(id);
    return false;
  }
  if (!entry->reply.ok()) return false;
  if (resolved != nullptr) *resolved = entry->reply.result.as_string();
  return true;
}

std::shared_ptr<plat::ObjectRef> RmiRuntime::resolve(const std::string& name,
                                                     Duration timeout) {
  std::string endpoint;
  if (!registry_op(MsgType::kRegLookup, name, "", timeout, &endpoint)) {
    throw NameNotFound(name);
  }
  return std::make_shared<RmiObjectRef>(*this, name, endpoint);
}

void RmiRuntime::register_servant(const std::string& name,
                                  std::shared_ptr<plat::ServantHandler> handler,
                                  plat::DispatchMode mode) {
  // RMI has no DSI/static distinction; the mode is accepted for interface
  // parity and ignored.
  (void)mode;
  {
    MutexLock lk(servants_mu_);
    servants_[name] = std::move(handler);
  }
  if (!registry_op(MsgType::kRegBind, name, server_ep_->id(),
                   cfg_.resolve_timeout, nullptr)) {
    throw TimeoutError("rmi registry bind failed for " + name);
  }
}

void RmiRuntime::unregister_servant(const std::string& name) {
  {
    MutexLock lk(servants_mu_);
    servants_.erase(name);
  }
  registry_op(MsgType::kRegUnbind, name, "", cfg_.resolve_timeout, nullptr);
}

void RmiRuntime::client_loop() {
  for (;;) {
    auto msg = client_ep_->recv(ms(200));
    if (!msg) {
      if (client_ep_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      ByteReader r(msg->payload);
      Header h = read_header(r);
      plat::Reply reply;
      switch (h.type) {
        case MsgType::kReturn: {
          ReturnBody body = decode_return_body(r);
          reply.status = body.ok ? plat::ReplyStatus::kOk
                                 : plat::ReplyStatus::kAppError;
          reply.result = std::move(body.result);
          reply.error = std::move(body.error);
          reply.piggyback = std::move(body.piggyback);
          break;
        }
        case MsgType::kPong:
        case MsgType::kRegAck:
          reply.status = r.get_u8() != 0 ? plat::ReplyStatus::kOk
                                         : plat::ReplyStatus::kAppError;
          break;
        case MsgType::kRegReply: {
          if (r.get_u8() != 0) {
            reply.status = plat::ReplyStatus::kOk;
            reply.result = Value(r.get_string());
          } else {
            reply.status = plat::ReplyStatus::kAppError;
            reply.error = "not bound";
          }
          break;
        }
        default:
          CQOS_LOG_WARN("rmi client loop: unexpected message type");
          continue;
      }
      pending_.complete(h.call_id, std::move(reply));
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("rmi client loop: ", e.what());
    }
  }
}

void RmiRuntime::server_loop() {
  for (;;) {
    auto msg = server_ep_->recv(ms(200));
    if (!msg) {
      if (server_ep_->closed()) return;
      continue;
    }
    net::PayloadRecycler recycle_payload(*msg);
    try {
      ByteReader r(msg->payload);
      Header h = read_header(r);
      if (h.type == MsgType::kPing) {
        std::string reply_to = r.get_string();
        ByteWriter w(16);
        begin_message(w, MsgType::kPong, h.call_id);
        w.put_u8(1);
        network_.send(server_ep_->id(), reply_to, std::move(w).take());
        continue;
      }
      if (h.type != MsgType::kCall) {
        CQOS_LOG_WARN("rmi server loop: unexpected message type");
        continue;
      }
      CallBody body = decode_call_body(r);
      std::uint64_t id = h.call_id;
      // Classify before committing a worker: the piggybacked priority maps
      // the call into a traffic class of the dispatch pool (no-op in legacy
      // single-queue mode).
      int prio = plat::piggyback_priority(body.piggyback, kNormalPriority);
      std::string reply_to = body.reply_to;
      auto res = workers_.try_submit(
          prio, [this, id, body = std::move(body)]() mutable {
            dispatch_call(id, std::move(body));
          });
      if (res == cactus::SubmitResult::kRejected) {
        // Early reject: an immediate backpressure reply instead of letting
        // the client burn its full timeout against a saturated queue.
        ReturnBody ret;
        ret.ok = false;
        ret.error = std::string(status::kOverloadRejected) +
                    ": rmi dispatch queue full";
        ret.piggyback[plat::kStatusPiggybackKey] =
            Value(plat::kStatusOverloadRejected);
        network_.send(server_ep_->id(), reply_to, encode_return(id, ret));
      }
    } catch (const std::exception& e) {
      CQOS_LOG_ERROR("rmi server loop: ", e.what());
    }
  }
}

void RmiRuntime::dispatch_call(std::uint64_t call_id, CallBody body) {
  std::shared_ptr<plat::ServantHandler> handler;
  {
    MutexLock lk(servants_mu_);
    auto it = servants_.find(body.target);
    if (it != servants_.end()) handler = it->second;
  }
  ReturnBody ret;
  if (!handler) {
    ret.ok = false;
    ret.error = "NoSuchObjectException: " + body.target;
  } else {
    emu_charge(cfg_.emu_dispatch_cost);
    plat::Reply out = handler->handle(body.method, std::move(body.params),
                                      std::move(body.piggyback));
    if (out.ok()) {
      ret.ok = true;
      ret.result = std::move(out.result);
    } else {
      ret.ok = false;
      ret.error = std::move(out.error);
    }
    ret.piggyback = std::move(out.piggyback);
  }
  network_.send(server_ep_->id(), body.reply_to, encode_return(call_id, ret));
}

}  // namespace cqos::rmi
