#include "platform/rmi/jrmp.h"

namespace cqos::rmi {

void begin_message(ByteWriter& w, MsgType type, std::uint64_t call_id) {
  w.put_u8(kMagic);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_varint(call_id);
}

Header read_header(ByteReader& r) {
  if (r.get_u8() != kMagic) throw DecodeError("bad JRMP magic");
  Header h;
  h.type = static_cast<MsgType>(r.get_u8());
  h.call_id = r.get_varint();
  return h;
}

void encode_pb(ByteWriter& w, const PiggybackMap& pb) {
  w.put_varint(pb.size());
  for (const auto& [k, v] : pb) {
    w.put_string(k);
    v.encode(w);
  }
}

PiggybackMap decode_pb(ByteReader& r) {
  std::uint64_t n = r.get_varint();
  if (n > r.remaining()) throw DecodeError("piggyback too long");
  PiggybackMap pb;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string k = r.get_string();
    Value v = Value::decode(r);
    if (!pb.emplace(std::move(k), std::move(v)).second) {
      throw DecodeError("duplicate piggyback key");
    }
  }
  return pb;
}

Bytes encode_call(std::uint64_t call_id, const CallBody& body) {
  // Exact-size pre-pass for the dominant part (the params); the strings and
  // piggyback get a small headroom constant. With the BufferPool warm this
  // only matters for the first call on a thread.
  ByteWriter w(64 + body.reply_to.size() + body.target.size() +
               body.method.size() + Value::encoded_list_size(body.params));
  begin_message(w, MsgType::kCall, call_id);
  w.put_string(body.reply_to);
  w.put_string(body.target);
  w.put_string(body.method);
  encode_pb(w, body.piggyback);
  w.put_varint(body.params.size());
  for (const auto& p : body.params) p.encode(w);
  return std::move(w).take();
}

CallBody decode_call_body(ByteReader& r) {
  CallBody body;
  body.reply_to = r.get_string();
  body.target = r.get_string();
  body.method = r.get_string();
  body.piggyback = decode_pb(r);
  std::uint64_t n = r.get_varint();
  if (n > r.remaining()) throw DecodeError("param count too large");
  body.params.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) body.params.push_back(Value::decode(r));
  return body;
}

Bytes encode_return(std::uint64_t call_id, const ReturnBody& body) {
  ByteWriter w(32 + (body.ok ? body.result.encoded_size()
                             : body.error.size() + 10));
  begin_message(w, MsgType::kReturn, call_id);
  w.put_u8(body.ok ? 1 : 0);
  if (body.ok) {
    body.result.encode(w);
  } else {
    w.put_string(body.error);
  }
  encode_pb(w, body.piggyback);
  return std::move(w).take();
}

ReturnBody decode_return_body(ByteReader& r) {
  ReturnBody body;
  body.ok = r.get_u8() != 0;
  if (body.ok) {
    body.result = Value::decode(r);
  } else {
    body.error = r.get_string();
  }
  body.piggyback = decode_pb(r);
  return body;
}

}  // namespace cqos::rmi
