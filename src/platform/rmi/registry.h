// RMI registry: the bootstrap naming service (java.rmi.Naming analogue).
// Binds flat names to server endpoints; runs as a daemon on its own host.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/transport.h"

namespace cqos::rmi {

class Registry {
 public:
  static std::string endpoint_for_host(const std::string& host) {
    return host + "/rmiregistry";
  }

  Registry(net::Transport& network, const std::string& host);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  const std::string& endpoint_id() const { return endpoint_->id(); }

  void shutdown();

 private:
  void loop();

  net::Transport& network_;
  std::shared_ptr<net::Endpoint> endpoint_;
  std::map<std::string, std::string> bindings_;  // name -> server endpoint
  std::thread thread_;
};

}  // namespace cqos::rmi
