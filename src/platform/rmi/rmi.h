// RMI-like runtime: the second concrete middleware platform (paper §4.2).
//
// Simpler than the ORB by design, mirroring the architectural differences the
// paper calls out: no server-side skeleton layer or POA, a flat bootstrap
// registry for naming, and stubs that marshal straight to the stream (there
// is no DII/static distinction, so invoke_dynamic == invoke, which is why the
// CQoS stub overhead on RMI is near zero in Table 1).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cactus/thread_pool.h"
#include "net/transport.h"
#include "platform/api.h"
#include "platform/pending.h"
#include "platform/rmi/jrmp.h"

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::rmi {

struct RmiConfig {
  std::string registry_host = "nameserver";
  int server_threads = 8;
  /// Non-empty: server dispatch runs in traffic-class mode — requests are
  /// classified by the piggybacked cq.prio into per-class bounded WRR
  /// queues, and a full class queue is rejected immediately with a
  /// backpressure reply instead of queueing toward timeout collapse.
  std::vector<cactus::TrafficClass> dispatch_classes;
  Duration ping_timeout = ms(60);
  Duration resolve_timeout = ms(500);

  /// Testbed-emulation cost model (zero by default; see OrbConfig). RMI has
  /// no DII/DSI analogue — its stub path is the same either way, which is
  /// why the paper's per-component RMI overheads are near zero.
  Duration emu_call_cost{};      // client-side stub marshal, per call
  Duration emu_dispatch_cost{};  // server-side dispatch, per call
};

class RmiRuntime;

class RmiObjectRef : public plat::ObjectRef {
 public:
  RmiObjectRef(RmiRuntime& runtime, std::string name, std::string endpoint)
      : runtime_(runtime), name_(std::move(name)), endpoint_(std::move(endpoint)) {}

  plat::Reply invoke(const std::string& method, const ValueList& params,
                     const PiggybackMap& piggyback, Duration timeout) override;
  bool ping(Duration timeout) override;
  std::string description() const override;

 private:
  RmiRuntime& runtime_;
  std::string name_;
  std::string endpoint_;
};

class RmiRuntime : public plat::Platform {
 public:
  RmiRuntime(net::Transport& network, std::string host, RmiConfig cfg = {});
  ~RmiRuntime() override;

  RmiRuntime(const RmiRuntime&) = delete;
  RmiRuntime& operator=(const RmiRuntime&) = delete;

  // --- plat::Platform -------------------------------------------------------
  std::string name() const override { return "rmi"; }
  std::string replica_name(const std::string& object_id,
                           int replica) const override {
    // Paper §4.2: skeleton for replica i registers as "OID_CQoS_Skeleton_i".
    return object_id + "_CQoS_Skeleton_" + std::to_string(replica);
  }
  std::string direct_name(const std::string& object_id) const override {
    return object_id;
  }
  std::shared_ptr<plat::ObjectRef> resolve(const std::string& name,
                                           Duration timeout) override;
  void register_servant(const std::string& name,
                        std::shared_ptr<plat::ServantHandler> handler,
                        plat::DispatchMode mode) override;
  void unregister_servant(const std::string& name) override;
  void shutdown() override;

  const std::string& host() const { return host_; }

  /// See CorbaOrb::emu_charge.
  void emu_charge(Duration d);

 private:
  friend class RmiObjectRef;

  plat::Reply call(const std::string& endpoint, const std::string& target,
                   const std::string& method, const ValueList& params,
                   const PiggybackMap& pb, Duration timeout);
  bool ping_endpoint(const std::string& endpoint, Duration timeout);
  bool registry_op(MsgType type, const std::string& name,
                   const std::string& target, Duration timeout,
                   std::string* resolved);

  void client_loop();
  void server_loop();
  void dispatch_call(std::uint64_t call_id, CallBody body);

  net::Transport& network_;
  std::string host_;
  RmiConfig cfg_;
  std::string registry_endpoint_;

  std::shared_ptr<net::Endpoint> client_ep_;
  std::shared_ptr<net::Endpoint> server_ep_;
  plat::PendingCalls pending_;

  Mutex servants_mu_;
  std::map<std::string, std::shared_ptr<plat::ServantHandler>> servants_
      CQOS_GUARDED_BY(servants_mu_);

  cactus::PriorityThreadPool workers_;
  std::thread client_thread_;
  std::thread server_thread_;
  Mutex emu_cpu_mu_;  // serializes the emulated-CPU critical section
  std::atomic<bool> shutdown_{false};
};

}  // namespace cqos::rmi
