// RMI-IIOP: RMI semantics over the CORBA transport (paper §4.2).
//
// "Java RMI currently supports both JRMP and IIOP ... RMI-IIOP systems can
// be customized using the CQoS on CORBA interception mechanisms described
// above. To achieve this, RMI-IIOP stubs are simply replaced with customized
// CQoS stubs for CORBA."
//
// RmiIiopRuntime is that configuration: an RMI-flavoured Platform whose
// wire format, invocation paths (including genuine DII/DSI) and location
// service are the ORB's. RMI registry names are mapped onto a dedicated POA
// ("rmi_iiop_poa"), so RMI-IIOP objects are reachable from plain CORBA
// clients that resolve the same POA/object-id pair — the interoperability
// RMI-IIOP exists for.
#pragma once

#include "platform/corba/orb.h"

namespace cqos::rmi {

class RmiIiopRuntime : public plat::Platform {
 public:
  RmiIiopRuntime(net::Transport& network, std::string host,
                 corba::OrbConfig cfg = {})
      : orb_(network, std::move(host), std::move(cfg)) {}

  std::string name() const override { return "rmi-iiop"; }

  /// RMI naming convention, carried on a fixed POA (see header comment).
  std::string replica_name(const std::string& object_id,
                           int replica) const override {
    return std::string(kPoaName) + "/" + object_id + "_CQoS_Skeleton_" +
           std::to_string(replica);
  }

  std::string direct_name(const std::string& object_id) const override {
    return std::string(kPoaName) + "/" + object_id;
  }

  std::shared_ptr<plat::ObjectRef> resolve(const std::string& name,
                                           Duration timeout) override {
    return orb_.resolve(name, timeout);
  }

  void register_servant(const std::string& name,
                        std::shared_ptr<plat::ServantHandler> handler,
                        plat::DispatchMode mode) override {
    orb_.register_servant(name, std::move(handler), mode);
  }

  void unregister_servant(const std::string& name) override {
    orb_.unregister_servant(name);
  }

  void shutdown() override { orb_.shutdown(); }

  /// The underlying ORB (for CORBA-side interop tests).
  corba::CorbaOrb& orb() { return orb_; }

  static constexpr const char* kPoaName = "rmi_iiop_poa";

 private:
  corba::CorbaOrb orb_;
};

}  // namespace cqos::rmi
