// Synchronization primitives for the CQoS concurrency core.
//
// Everything here is a thin, *annotated* wrapper over the standard library:
// `Mutex`/`MutexLock`/`CondVar` carry the Clang thread-safety attributes
// (see common/thread_annotations.h) so `-Wthread-safety` can prove that
// every CQOS_GUARDED_BY field is only touched under its lock. The wrappers
// cost nothing over std::mutex/std::condition_variable — CondVar adopts the
// already-held native handle for the duration of a wait.
//
// Locking discipline (see DESIGN.md "Locking discipline & analysis modes"):
//   - waits are explicit `while (!predicate) cv.wait(mu)` loops in the
//     annotated function body, never predicate lambdas (the analysis does
//     not propagate capabilities into lambdas);
//   - notify_one/notify_all are called *while holding* the mutex whenever a
//     waiter's wakeup may destroy the primitive (Gate, CountdownLatch): a
//     dropped-lock notify races a waiter that observes the final state,
//     returns, and frees the condition variable out from under notify.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace cqos {

/// Annotated exclusive mutex. Prefer MutexLock for scoped acquisition; the
/// raw lock()/unlock() entry points exist for the analysis and for CondVar.
class CQOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CQOS_ACQUIRE() { mu_.lock(); }
  void unlock() CQOS_RELEASE() { mu_.unlock(); }
  bool try_lock() CQOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the analysis tracks it as a scoped
/// capability, like std::scoped_lock for plain mutexes).
class CQOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CQOS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CQOS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. All waits require the mutex held and
/// reacquire it before returning (annotated CQOS_REQUIRES). Zero-overhead:
/// the wait adopts the caller-held native mutex and releases the guard
/// again afterwards, so no extra lock round-trips occur.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) CQOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // caller still owns the lock; don't unlock in ~unique_lock
  }

  std::cv_status wait_until(Mutex& mu, TimePoint deadline) CQOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(lk, deadline);
    lk.release();
    return st;
  }

  std::cv_status wait_for(Mutex& mu, Duration d) CQOS_REQUIRES(mu) {
    return wait_until(mu, now() + d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// One-shot gate: set() releases every current and future wait().
///
/// set() notifies while holding the lock: a waiter released by the notify
/// may destroy the Gate as soon as it can observe set_ == true (the
/// PendingCalls completion path does exactly this), so notifying after
/// unlock would touch a potentially-freed condition variable.
class Gate {
 public:
  void set() {
    MutexLock lk(mu_);
    set_ = true;
    cv_.notify_all();
  }

  bool is_set() const {
    MutexLock lk(mu_);
    return set_;
  }

  void wait() {
    MutexLock lk(mu_);
    while (!set_) cv_.wait(mu_);
  }

  /// Returns false on timeout.
  bool wait_for(Duration d) {
    TimePoint deadline = now() + d;
    MutexLock lk(mu_);
    while (!set_) {
      if (now() >= deadline) return false;
      cv_.wait_until(mu_, deadline);
    }
    return true;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  bool set_ CQOS_GUARDED_BY(mu_) = false;
};

/// Counts down to zero; wait() releases when it reaches zero.
///
/// count_down() notifies under the lock for the same lifetime reason as
/// Gate::set(): the thread that observes zero may immediately destroy the
/// latch (the classic "last worker frees the barrier" pattern).
class CountdownLatch {
 public:
  explicit CountdownLatch(int count) : count_(count) {}

  void count_down() {
    MutexLock lk(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void wait() {
    MutexLock lk(mu_);
    while (count_ != 0) cv_.wait(mu_);
  }

  bool wait_for(Duration d) {
    TimePoint deadline = now() + d;
    MutexLock lk(mu_);
    while (count_ != 0) {
      if (now() >= deadline) return false;
      cv_.wait_until(mu_, deadline);
    }
    return true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ CQOS_GUARDED_BY(mu_);
};

}  // namespace cqos
