// Small synchronization helpers built on <mutex>/<condition_variable>.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>

#include "common/clock.h"

namespace cqos {

/// One-shot gate: set() releases every current and future wait().
class Gate {
 public:
  void set() {
    {
      std::scoped_lock lk(mu_);
      set_ = true;
    }
    cv_.notify_all();
  }

  bool is_set() const {
    std::scoped_lock lk(mu_);
    return set_;
  }

  void wait() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return set_; });
  }

  /// Returns false on timeout.
  bool wait_for(Duration d) {
    std::unique_lock lk(mu_);
    return cv_.wait_for(lk, d, [&] { return set_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

/// Counts down to zero; wait() releases when it reaches zero.
class CountdownLatch {
 public:
  explicit CountdownLatch(int count) : count_(count) {}

  void count_down() {
    std::unique_lock lk(mu_);
    if (count_ > 0 && --count_ == 0) {
      lk.unlock();
      cv_.notify_all();
    }
  }

  void wait() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return count_ == 0; });
  }

  bool wait_for(Duration d) {
    std::unique_lock lk(mu_);
    return cv_.wait_for(lk, d, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace cqos
