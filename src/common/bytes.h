// Binary encode/decode primitives.
//
// ByteWriter appends little-endian primitives to a growable buffer and
// optionally supports CDR-style alignment (used by the CORBA-like platform).
// ByteReader is the bounds-checked mirror; it throws DecodeError instead of
// reading past the end.
//
// ByteWriter's backing buffer comes from BufferPool: construction acquires
// a recycled vector (capacity intact from a previous request), destruction
// recycles whatever was not take()n out. take() transfers ownership to the
// caller, who recycles it at the end of the hop (see DESIGN.md §10).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer_pool.h"
#include "common/error.h"

namespace cqos {

class ByteWriter {
 public:
  ByteWriter() : buf_(BufferPool::acquire()) {}
  explicit ByteWriter(std::size_t reserve) : buf_(BufferPool::acquire(reserve)) {}
  ~ByteWriter() { BufferPool::recycle(std::move(buf_)); }

  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  /// Unsigned LEB128; the compact length encoding used by the RMI-like
  /// platform's stream format.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      put_u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    put_u8(static_cast<std::uint8_t>(v));
  }

  void put_bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (varint) byte string.
  void put_blob(std::span<const std::uint8_t> data) {
    put_varint(data.size());
    put_bytes(data);
  }

  /// Length-prefixed (varint) string.
  void put_string(std::string_view s) {
    put_varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Pad with zero bytes until the write position is a multiple of `n`.
  /// Models CDR alignment rules in the CORBA-like encoding.
  void align(std::size_t n) {
    while (buf_.size() % n != 0) buf_.push_back(0);
  }

  /// Overwrite 4 bytes at `offset` (little-endian). Used to patch frame
  /// lengths after the body is written.
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
      buf_.at(offset + i) = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8() {
    check(1);
    return data_[pos_++];
  }

  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  double get_f64() {
    std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      std::uint8_t b = get_u8();
      std::uint64_t group = b & 0x7f;
      // The 10th group sits at shift 63: only its low bit fits in a u64.
      // Anything else would silently truncate, so reject it.
      if (shift == 63 && group > 1) throw DecodeError("varint overflows u64");
      v |= group << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) throw DecodeError("varint too long");
    }
  }

  Bytes get_bytes(std::size_t n) {
    check(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Zero-copy read: a span over the next `n` bytes of the underlying
  /// buffer. Valid only while that buffer outlives the span — use for
  /// transient views (hash input, string construction), not for storage.
  std::span<const std::uint8_t> view(std::size_t n) {
    check(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Bytes get_blob() {
    std::uint64_t n = get_varint();
    if (n > remaining()) throw DecodeError("blob length exceeds buffer");
    return get_bytes(static_cast<std::size_t>(n));
  }

  std::string get_string() {
    std::uint64_t n = get_varint();
    if (n > remaining()) throw DecodeError("string length exceeds buffer");
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Skip CDR alignment padding.
  void align(std::size_t n) {
    while (pos_ % n != 0) {
      check(1);
      ++pos_;
    }
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  template <typename T>
  T get_le() {
    check(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  void check(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw DecodeError("read past end of buffer (" + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) + " of " +
                        std::to_string(data_.size()) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cqos
