// Platform-neutral parameter representation.
//
// The paper represents a request's parameters as "a vector of Java objects
// (java.lang.Objects)". Value is the C++ analogue: a closed variant over the
// types the example applications and micro-protocols need, with a compact
// self-describing binary codec so security micro-protocols can
// serialize/encrypt parameter lists without knowing their shape.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace cqos {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull = 0,
    kBool = 1,
    kI64 = 2,
    kF64 = 3,
    kString = 4,
    kBytes = 5,
    kList = 6,
  };

  Value() = default;
  Value(bool b) : v_(b) {}                          // NOLINT(runtime/explicit)
  Value(std::int64_t i) : v_(i) {}                  // NOLINT(runtime/explicit)
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : v_(d) {}                        // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT(runtime/explicit)
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT(runtime/explicit)
  Value(Bytes b) : v_(std::move(b)) {}              // NOLINT(runtime/explicit)
  Value(ValueList l) : v_(std::move(l)) {}          // NOLINT(runtime/explicit)

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_i64() const { return get<std::int64_t>("i64"); }
  double as_f64() const { return get<double>("f64"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Bytes& as_bytes() const { return get<Bytes>("bytes"); }
  const ValueList& as_list() const { return get<ValueList>("list"); }
  ValueList& as_list() { return get<ValueList>("list"); }

  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Append the self-describing encoding (1 tag byte + payload).
  void encode(ByteWriter& w) const;
  /// Parse one Value from the reader; throws DecodeError on malformed input.
  static Value decode(ByteReader& r);

  /// Exact byte count encode() will append (1 tag byte + payload). Lets
  /// writers reserve once up front instead of growing geometrically.
  std::size_t encoded_size() const;
  /// Exact byte count of encode_list()'s output for `vals`.
  static std::size_t encoded_list_size(const ValueList& vals);

  /// Convenience: encode a whole parameter list to a standalone buffer.
  static Bytes encode_list(const ValueList& vals);
  static ValueList decode_list(std::span<const std::uint8_t> data);

  /// Human-readable rendering for logs and examples.
  std::string to_string() const;

 private:
  template <typename T>
  const T& get(const char* name) const {
    if (const T* p = std::get_if<T>(&v_)) return *p;
    throw TypeError(std::string("value is not a ") + name + " (actual " +
                    type_name(type()) + ")");
  }
  template <typename T>
  T& get(const char* name) {
    if (T* p = std::get_if<T>(&v_)) return *p;
    throw TypeError(std::string("value is not a ") + name + " (actual " +
                    type_name(type()) + ")");
  }

  static const char* type_name(Type t);

  std::variant<std::monostate, bool, std::int64_t, double, std::string, Bytes,
               ValueList>
      v_;
};

/// Piggyback fields carried alongside a request/reply (the paper's "field for
/// piggybacking additional parameters onto the request", e.g. priority,
/// principal, HMAC). Maps cleanly onto CORBA service contexts.
using PiggybackMap = std::map<std::string, Value>;

/// Encode/decode a piggyback map (sorted keys, deterministic bytes).
void encode_piggyback(ByteWriter& w, const PiggybackMap& pb);
PiggybackMap decode_piggyback(ByteReader& r);

}  // namespace cqos
