#include "common/metrics.h"

#include <sstream>

namespace cqos::metrics {

double Histogram::percentile_us(double p) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (int i = 0; i <= kBuckets; ++i) {
    std::uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Linear interpolation inside the bucket [lo, hi].
      double lo = i == 0 ? 0 : bound_us(i - 1);
      double hi = bound_us(i);
      double frac = (target - static_cast<double>(cum)) /
                    static_cast<double>(in_bucket);
      if (frac < 0) frac = 0;
      if (frac > 1) frac = 1;
      return lo + (hi - lo) * frac;
    }
    cum += in_bucket;
  }
  return bound_us(kBuckets);
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  MutexLock lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

namespace {

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

std::string Registry::to_json() const {
  MutexLock lk(mu_);
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, name);
    os << ':' << c->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, name);
    os << ":{\"count\":" << h->count() << ",\"mean_us\":" << h->mean_us()
       << ",\"p50_us\":" << h->percentile_us(50)
       << ",\"p99_us\":" << h->percentile_us(99) << ",\"buckets\":[";
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      if (i) os << ',';
      os << h->bucket(i);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void Registry::reset() {
  MutexLock lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlive all users
  return *instance;
}

}  // namespace cqos::metrics
