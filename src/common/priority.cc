#include "common/priority.h"

namespace cqos {
namespace {
thread_local int g_priority = kNormalPriority;
}  // namespace

int current_thread_priority() { return g_priority; }

int set_thread_priority(int priority) {
  if (priority < kMinPriority) priority = kMinPriority;
  if (priority > kMaxPriority) priority = kMaxPriority;
  int prev = g_priority;
  g_priority = priority;
  return prev;
}

}  // namespace cqos
