// Thread-local free-list of Bytes buffers backing the marshaling hot path.
//
// The paper's §5 overhead accounting blames marshaling for most of the CQoS
// stub/skeleton cost; a large slice of that in this reproduction was
// allocator traffic — every ByteWriter grew a fresh vector and every
// network hop dropped one. BufferPool recycles those vectors: acquire()
// hands out a cleared buffer with its old capacity intact, recycle() puts
// it back on the calling thread's free list. Buffers may be recycled on a
// different thread than they were acquired on (the receiver of a moved
// network payload recycles into its own pool); there is no cross-thread
// sharing of a live buffer, so no synchronization is needed.
//
// Ownership discipline (DESIGN.md §10): a pooled buffer has exactly one
// owner at a time — the ByteWriter that acquired it, then whoever take()
// moved it to, then the network message, then the receiver. Whoever holds
// it last recycles it (or simply lets it die; recycling is an optimization,
// never a correctness requirement).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cqos {

using Bytes = std::vector<std::uint8_t>;

class BufferPool {
 public:
  /// Per-thread free-list depth; beyond this, recycled buffers are freed.
  static constexpr std::size_t kMaxFreeList = 32;
  /// Buffers with more capacity than this are never retained (a single
  /// pathological payload must not pin megabytes per thread).
  static constexpr std::size_t kMaxRetainedCapacity = 256 * 1024;

  /// A cleared buffer with at least its previous capacity; reserves
  /// `reserve` if the recycled capacity (or a fresh vector) is smaller.
  static Bytes acquire(std::size_t reserve = 0);

  /// Return a buffer to the calling thread's free list. Safe (and useful)
  /// to call with a moved-from or empty vector: those are dropped cheaply.
  static void recycle(Bytes&& b);

  /// Global enable switch (ablation benches and tests). Disabled, acquire()
  /// constructs and recycle() frees — the pre-pool behaviour.
  static void set_enabled(bool on);
  static bool enabled();

  /// Drop the calling thread's free list (tests; also bounds memory when a
  /// long-lived thread goes idle).
  static void clear_thread_cache();
  static std::size_t thread_cache_size();
};

/// RAII owner for a pooled buffer: recycles on destruction unless the bytes
/// were take()n out. Use when a buffer's lifetime spans early-exit paths.
class PooledBytes {
 public:
  explicit PooledBytes(std::size_t reserve = 0)
      : buf_(BufferPool::acquire(reserve)) {}
  ~PooledBytes() { BufferPool::recycle(std::move(buf_)); }

  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;
  PooledBytes(PooledBytes&& o) noexcept : buf_(std::move(o.buf_)) {}

  Bytes& operator*() { return buf_; }
  Bytes* operator->() { return &buf_; }
  const Bytes& operator*() const { return buf_; }
  const Bytes* operator->() const { return &buf_; }

  /// Transfer ownership out; the destructor then recycles an empty shell.
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

}  // namespace cqos
