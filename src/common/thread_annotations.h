// Clang thread-safety-analysis annotation macros.
//
// When compiling with Clang the CQoS build turns on
// `-Wthread-safety -Werror=thread-safety`, and these macros expand to the
// attributes the analysis consumes; on every other compiler they expand to
// nothing. Annotate with the CQOS_* spellings only — never use the raw
// __attribute__ forms, so non-Clang builds stay clean.
//
// The vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   CQOS_CAPABILITY(name)      a type is a lockable capability (our Mutex)
//   CQOS_SCOPED_CAPABILITY     RAII type that acquires/releases in ctor/dtor
//   CQOS_GUARDED_BY(mu)        field may only be touched while holding mu
//   CQOS_PT_GUARDED_BY(mu)     pointee (not the pointer) guarded by mu
//   CQOS_REQUIRES(mu)          function must be called with mu held
//   CQOS_ACQUIRE(mu)/CQOS_RELEASE(mu)       function locks / unlocks mu
//   CQOS_TRY_ACQUIRE(ok, mu)   try-lock returning `ok` on success
//   CQOS_EXCLUDES(mu)          function must NOT be called with mu held
//   CQOS_ACQUIRED_AFTER(mu)    lock-hierarchy edge (mu is acquired first)
//   CQOS_NO_THREAD_SAFETY_ANALYSIS   opt a function out of the analysis
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CQOS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CQOS_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

#define CQOS_CAPABILITY(x) CQOS_THREAD_ANNOTATION__(capability(x))
#define CQOS_SCOPED_CAPABILITY CQOS_THREAD_ANNOTATION__(scoped_lockable)

#define CQOS_GUARDED_BY(x) CQOS_THREAD_ANNOTATION__(guarded_by(x))
#define CQOS_PT_GUARDED_BY(x) CQOS_THREAD_ANNOTATION__(pt_guarded_by(x))

#define CQOS_REQUIRES(...) \
  CQOS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define CQOS_REQUIRES_SHARED(...) \
  CQOS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define CQOS_ACQUIRE(...) \
  CQOS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define CQOS_ACQUIRE_SHARED(...) \
  CQOS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define CQOS_RELEASE(...) \
  CQOS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define CQOS_RELEASE_SHARED(...) \
  CQOS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define CQOS_TRY_ACQUIRE(...) \
  CQOS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define CQOS_EXCLUDES(...) CQOS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define CQOS_ACQUIRED_AFTER(...) \
  CQOS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define CQOS_ACQUIRED_BEFORE(...) \
  CQOS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define CQOS_ASSERT_CAPABILITY(x) \
  CQOS_THREAD_ANNOTATION__(assert_capability(x))

#define CQOS_RETURN_CAPABILITY(x) CQOS_THREAD_ANNOTATION__(lock_returned(x))

#define CQOS_NO_THREAD_SAFETY_ANALYSIS \
  CQOS_THREAD_ANNOTATION__(no_thread_safety_analysis)
