// Deterministic PRNG (SplitMix64) for reproducible tests, workloads and
// simulated network jitter. Not cryptographic.
#pragma once

#include <cstdint>

namespace cqos {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace cqos
