// Time helpers used throughout the library.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cqos {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

inline TimePoint now() { return Clock::now(); }

/// Which clock a simulated component schedules against.
///
///   kReal    wall time (std::chrono::steady_clock): latencies are slept
///            through by blocking receivers — the threaded mode every
///            in-process deployment (Cluster, tests, benches) runs on.
///   kVirtual discrete-event time (VirtualClock): nothing sleeps; a central
///            event queue advances the clock straight to the next event's
///            timestamp, so simulated hours cost wall-clock seconds and a
///            run is a deterministic function of its seeds.
enum class TimeMode { kReal, kVirtual };

/// Discrete-event simulation clock. Starts at TimePoint{} (the epoch of the
/// steady clock's duration type, i.e. virtual t=0) and only moves forward
/// via advance_to(). Reads are lock-free so components may sample the
/// current virtual time from any thread without joining the scheduler's
/// lock order (the scheduler itself is the only writer).
class VirtualClock {
 public:
  TimePoint now() const {
    return TimePoint(Duration(ns_.load(std::memory_order_acquire)));
  }

  /// Monotone advance: moving to a timestamp in the virtual past is a no-op
  /// (events popped at equal timestamps keep the clock still).
  void advance_to(TimePoint t) {
    Duration::rep target = t.time_since_epoch().count();
    Duration::rep cur = ns_.load(std::memory_order_relaxed);
    while (cur < target &&
           !ns_.compare_exchange_weak(cur, target, std::memory_order_release,
                                      std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Duration::rep> ns_{0};
};

inline Duration us(std::int64_t n) { return std::chrono::microseconds(n); }
inline Duration ms(std::int64_t n) { return std::chrono::milliseconds(n); }

inline double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}
inline double to_us(Duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace cqos
