// Time helpers used throughout the library.
#pragma once

#include <chrono>
#include <cstdint>

namespace cqos {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

inline TimePoint now() { return Clock::now(); }

inline Duration us(std::int64_t n) { return std::chrono::microseconds(n); }
inline Duration ms(std::int64_t n) { return std::chrono::milliseconds(n); }

inline double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}
inline double to_us(Duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace cqos
