// Request-path metrics: lock-cheap counters and fixed-bucket histograms
// collected in a named registry, snapshot-able to deterministic JSON.
//
// The paper's evaluation (§5, Tables 1–3) is an overhead accounting
// exercise — where do the microseconds go between CQoS stub,
// micro-protocols, network and skeleton. This registry is the
// machine-readable substrate for that accounting: the network layer counts
// messages/bytes/drops per host pair, MicroBase times every bound handler,
// and the bench binaries dump a snapshot next to their latency tables.
//
// Concurrency: Counter::inc and Histogram::record are wait-free (relaxed
// atomics); only name->instrument resolution takes the registry mutex, so
// hot paths resolve once and cache the reference. Instruments are owned by
// the registry and never move or die before it, so cached references stay
// valid for the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::metrics {

/// Monotonic event counter. Relaxed increments: totals are exact, ordering
/// against other memory is not implied (snapshot readers only need totals).
///
/// Increments are striped across cache-line-sized slots keyed by thread, so
/// a counter hammered from several threads at once (the network send path
/// counts every message into a handful of aggregates) does not serialize
/// those threads on one cache line. value() sums the stripes — exact, since
/// every increment landed in exactly one of them. The cost is footprint
/// (kStripes cache lines per counter), which is fine for the named
/// instruments a process creates; don't mint counters per entity in
/// unbounded populations.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void inc(std::uint64_t n = 1) {
    stripes_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };

  /// Threads are assigned stripes round-robin at first use; the assignment
  /// is per-thread, not per-counter, which keeps the lookup a thread-local
  /// read.
  static std::size_t stripe_index() {
    static std::atomic<std::size_t> next{0};
    thread_local std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return idx;
  }

  std::array<Stripe, kStripes> stripes_{};
};

/// Fixed-bucket latency histogram (microseconds). Bucket upper bounds are
/// powers of two from 1 us to ~8.4 s plus an overflow bucket, so two
/// histograms recorded anywhere in the process merge bucket-by-bucket and
/// snapshots are deterministic for a given sequence of observations.
class Histogram {
 public:
  static constexpr int kBuckets = 24;  // bound[i] = 2^i us; last = overflow

  void record_us(double us) {
    if (us < 0) us = 0;
    int b = bucket_for(us);
    buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                    std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<std::uint64_t>(us * 1e3),
                      std::memory_order_relaxed);
  }
  void record(Duration d) { record_us(to_us(d)); }

  void merge(const Histogram& o) {
    for (int i = 0; i <= kBuckets; ++i) {
      auto idx = static_cast<std::size_t>(i);
      buckets_[idx].fetch_add(o.buckets_[idx].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    }
    count_.fetch_add(o.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_ns_.fetch_add(o.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_us() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e3;
  }
  double mean_us() const {
    std::uint64_t n = count();
    return n == 0 ? 0 : sum_us() / static_cast<double>(n);
  }

  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Upper bound of bucket i in microseconds (overflow bucket: +inf,
  /// reported as the last finite bound).
  static double bound_us(int i) {
    return static_cast<double>(std::uint64_t{1} << (i < kBuckets ? i : kBuckets - 1));
  }

  /// Bucket-interpolated percentile estimate (p in [0,100]).
  double percentile_us(double p) const;

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  static int bucket_for(double us) {
    for (int i = 0; i < kBuckets; ++i) {
      if (us <= bound_us(i)) return i;
    }
    return kBuckets;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Named instrument registry. Names use a dotted scheme (see DESIGN.md §9):
///   net.*   network-level counters        (net.sent.msgs, net.drop.crashed)
///   micro.* per-handler latency           (micro.readyToInvoke.invokeServant)
///   cqos.*  stub/skeleton/composite spans (cqos.stub.call)
class Registry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Deterministic JSON object: {"counters":{...},"histograms":{...}} with
  /// names sorted (std::map order) so equal recorded state yields equal text.
  std::string to_json() const;

  /// Zero every instrument (references stay valid). Tests only.
  void reset();

  /// Process-wide default registry used when no explicit registry is wired.
  static Registry& global();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CQOS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CQOS_GUARDED_BY(mu_);
};

}  // namespace cqos::metrics
