#include "common/buffer_pool.h"

#include <atomic>

#include "common/metrics.h"

namespace cqos {
namespace {

std::atomic<bool> g_enabled{true};

struct FreeList {
  std::vector<Bytes> bufs;
};

FreeList& tls_free_list() {
  thread_local FreeList fl;
  return fl;
}

metrics::Counter& hit_counter() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("cqos.pool.hit");
  return c;
}
metrics::Counter& miss_counter() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("cqos.pool.miss");
  return c;
}
metrics::Counter& recycle_counter() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("cqos.pool.recycle");
  return c;
}
metrics::Counter& discard_counter() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("cqos.pool.discard");
  return c;
}

}  // namespace

Bytes BufferPool::acquire(std::size_t reserve) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    auto& fl = tls_free_list();
    if (!fl.bufs.empty()) {
      Bytes b = std::move(fl.bufs.back());
      fl.bufs.pop_back();
      hit_counter().inc();
      if (b.capacity() < reserve) b.reserve(reserve);
      return b;
    }
    miss_counter().inc();
  }
  Bytes b;
  if (reserve > 0) b.reserve(reserve);
  return b;
}

void BufferPool::recycle(Bytes&& b) {
  // Moved-from and never-allocated vectors carry no capacity worth keeping.
  if (b.capacity() == 0) return;
  if (!g_enabled.load(std::memory_order_relaxed) ||
      b.capacity() > kMaxRetainedCapacity) {
    discard_counter().inc();
    Bytes dead = std::move(b);  // free here, explicitly
    return;
  }
  auto& fl = tls_free_list();
  if (fl.bufs.size() >= kMaxFreeList) {
    discard_counter().inc();
    Bytes dead = std::move(b);
    return;
  }
  b.clear();
  fl.bufs.push_back(std::move(b));
  recycle_counter().inc();
}

void BufferPool::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  if (!on) clear_thread_cache();
}

bool BufferPool::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void BufferPool::clear_thread_cache() { tls_free_list().bufs.clear(); }

std::size_t BufferPool::thread_cache_size() {
  return tls_free_list().bufs.size();
}

}  // namespace cqos
