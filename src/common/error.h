// Error hierarchy shared by every CQoS module.
//
// All recoverable failures in the library are reported as exceptions derived
// from cqos::Error so callers can catch one base type at API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace cqos {

/// Base class for all errors raised by the CQoS library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed wire data (truncated buffer, bad tag, bad magic, ...).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// A Value was accessed as the wrong runtime type.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type: " + what) {}
};

/// A blocking operation did not complete within its deadline.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error("timeout: " + what) {}
};

/// A remote invocation failed (server crashed, unreachable, or the servant
/// raised an application exception).
class InvocationError : public Error {
 public:
  explicit InvocationError(const std::string& what)
      : Error("invocation: " + what) {}
};

/// A name could not be resolved by the platform naming service.
class NameNotFound : public Error {
 public:
  explicit NameNotFound(const std::string& what)
      : Error("name not found: " + what) {}
};

/// Security micro-protocol rejection (integrity violation, access denied,
/// decryption failure).
class SecurityError : public Error {
 public:
  explicit SecurityError(const std::string& what) : Error("security: " + what) {}
};

/// Invalid configuration (unknown micro-protocol, bad parameter, conflicting
/// composition).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

}  // namespace cqos
