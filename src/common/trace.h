// Span-based request tracing.
//
// The CQoS stub mints one TraceId per request; it rides the abstract
// Request and crosses the wire in the piggyback/service-context map
// (pbkey::kTraceId), so the skeleton, the Cactus composites and every
// micro-protocol handler observe the SAME id for one logical request and
// can attribute their per-hop timings to it (the paper's Table 1/2 cost
// breakdown, but per request instead of per configuration).
//
// Spans are recorded into a bounded global ring buffer; recording is a
// short critical section on one mutex and is skipped entirely for
// TraceId 0 ("not traced"). Tests and tools read spans back by trace id.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::trace {

/// 0 means "untraced"; real ids start at 1.
using TraceId = std::uint64_t;

inline TraceId next_trace_id() {
  static std::atomic<TraceId> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// One timed hop of a traced request (stub call, skeleton dispatch, one
/// micro-protocol handler activation, ...).
struct Span {
  TraceId trace = 0;
  std::string name;    // e.g. "cqos.stub.call", "micro.readyToInvoke.invokeServant"
  std::string detail;  // method name, event name, ... (free-form)
  TimePoint start{};
  Duration elapsed{};
};

/// Bounded ring of completed spans. One process-wide instance; the cap
/// keeps long simulations from growing without bound (oldest spans drop).
class Tracer {
 public:
  void record(Span s) {
    if (s.trace == 0 || !enabled_.load(std::memory_order_relaxed)) return;
    MutexLock lk(mu_);
    spans_.push_back(std::move(s));
    while (spans_.size() > cap_) spans_.pop_front();
  }

  std::vector<Span> spans_for(TraceId id) const {
    MutexLock lk(mu_);
    std::vector<Span> out;
    for (const Span& s : spans_) {
      if (s.trace == id) out.push_back(s);
    }
    return out;
  }

  std::size_t size() const {
    MutexLock lk(mu_);
    return spans_.size();
  }

  void clear() {
    MutexLock lk(mu_);
    spans_.clear();
  }

  void set_capacity(std::size_t cap) {
    MutexLock lk(mu_);
    cap_ = cap == 0 ? 1 : cap;
    while (spans_.size() > cap_) spans_.pop_front();
  }

  /// Cheap global kill switch (benchmark rows that must not pay the ring
  /// buffer mutex can turn recording off).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  static Tracer& global();

 private:
  std::atomic<bool> enabled_{true};
  mutable Mutex mu_;
  std::deque<Span> spans_ CQOS_GUARDED_BY(mu_);
  std::size_t cap_ CQOS_GUARDED_BY(mu_) = 4096;
};

inline Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // leaked: outlive all users
  return *instance;
}

/// RAII span: times its scope, then records into the global tracer and
/// (optionally) a latency histogram. Safe with TraceId 0 — the histogram
/// still sees the sample, the tracer does not.
class ScopedSpan {
 public:
  ScopedSpan(TraceId id, std::string name, std::string detail = {},
             metrics::Histogram* hist = nullptr)
      : id_(id),
        name_(std::move(name)),
        detail_(std::move(detail)),
        hist_(hist),
        start_(now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    Duration elapsed = now() - start_;
    if (hist_ != nullptr) hist_->record(elapsed);
    if (id_ != 0) {
      Tracer::global().record(
          Span{id_, std::move(name_), std::move(detail_), start_, elapsed});
    }
  }

 private:
  TraceId id_;
  std::string name_;
  std::string detail_;
  metrics::Histogram* hist_;
  TimePoint start_;
};

}  // namespace cqos::trace
