// Logical thread priority.
//
// The paper's timeliness micro-protocols manipulate Java thread priorities.
// Portable C++ cannot renice arbitrary threads, so CQoS models priority as a
// thread-local integer that the Cactus runtime honours: async event handlers
// are scheduled through a priority-ordered pool and, per the paper's runtime
// change, execute "by a thread with the same priority as the thread that
// raised the event, unless specified otherwise".
#pragma once

namespace cqos {

/// Priority scale (larger = more urgent). Mirrors Java's 1..10 with 5 normal.
inline constexpr int kMinPriority = 1;
inline constexpr int kNormalPriority = 5;
inline constexpr int kMaxPriority = 10;

/// Current logical priority of the calling thread.
int current_thread_priority();

/// Set the calling thread's logical priority; returns the previous value.
int set_thread_priority(int priority);

/// RAII guard restoring the caller's priority on scope exit.
class PriorityGuard {
 public:
  explicit PriorityGuard(int priority) : prev_(set_thread_priority(priority)) {}
  ~PriorityGuard() { set_thread_priority(prev_); }
  PriorityGuard(const PriorityGuard&) = delete;
  PriorityGuard& operator=(const PriorityGuard&) = delete;

 private:
  int prev_;
};

}  // namespace cqos
