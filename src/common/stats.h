// Latency statistics accumulator used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cqos {

/// Collects samples (milliseconds) and reports summary statistics.
class LatencyRecorder {
 public:
  void add(double ms) { samples_.push_back(ms); }
  void merge(const LatencyRecorder& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double percentile(double p) const {
    if (samples_.empty()) return 0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(idx));
    auto hi = static_cast<std::size_t>(std::ceil(idx));
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

  double min() const {
    return samples_.empty()
               ? 0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return samples_.empty()
               ? 0
               : *std::max_element(samples_.begin(), samples_.end());
  }

 private:
  std::vector<double> samples_;
};

}  // namespace cqos
