// Latency statistics accumulator used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cqos {

/// Collects samples (milliseconds) and reports summary statistics.
class LatencyRecorder {
 public:
  void add(double ms) {
    samples_.push_back(ms);
    sorted_dirty_ = true;
  }
  void merge(const LatencyRecorder& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    sorted_dirty_ = true;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double percentile(double p) const {
    if (samples_.empty()) return 0;
    // Sort once per batch of add()s, not per query: the JSON export asks
    // for several percentiles from the same sample set.
    if (sorted_dirty_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_dirty_ = false;
    }
    double idx = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(idx));
    auto hi = static_cast<std::size_t>(std::ceil(idx));
    double frac = idx - static_cast<double>(lo);
    return sorted_[lo] * (1 - frac) + sorted_[hi] * frac;
  }

  /// Population standard deviation of the samples.
  double stddev() const {
    if (samples_.size() < 2) return 0;
    double m = mean();
    double acc = 0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
  }

  /// Coefficient of variation in percent (stddev / mean * 100): the
  /// run-to-run noise indicator the bench JSON reports per row.
  double cov_pct() const {
    double m = mean();
    return m == 0 ? 0 : stddev() / m * 100.0;
  }

  double min() const {
    return samples_.empty()
               ? 0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return samples_.empty()
               ? 0
               : *std::max_element(samples_.begin(), samples_.end());
  }

 private:
  std::vector<double> samples_;
  // percentile() cache; rebuilt lazily after add()/merge().
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = true;
};

}  // namespace cqos
