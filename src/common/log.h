// Minimal leveled logger.
//
// Controlled by the CQOS_LOG environment variable: error|warn|info|debug.
// Defaults to warn so tests and benchmarks stay quiet.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace cqos {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current threshold (parsed once from CQOS_LOG).
LogLevel log_threshold();

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level > log_threshold()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, os.str());
}

#define CQOS_LOG_ERROR(...) ::cqos::log(::cqos::LogLevel::kError, __VA_ARGS__)
#define CQOS_LOG_WARN(...) ::cqos::log(::cqos::LogLevel::kWarn, __VA_ARGS__)
#define CQOS_LOG_INFO(...) ::cqos::log(::cqos::LogLevel::kInfo, __VA_ARGS__)
#define CQOS_LOG_DEBUG(...) ::cqos::log(::cqos::LogLevel::kDebug, __VA_ARGS__)

}  // namespace cqos
