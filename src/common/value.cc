#include "common/value.h"

#include <sstream>

namespace cqos {

void Value::encode(ByteWriter& w) const {
  w.put_u8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      w.put_u8(std::get<bool>(v_) ? 1 : 0);
      break;
    case Type::kI64:
      w.put_i64(std::get<std::int64_t>(v_));
      break;
    case Type::kF64:
      w.put_f64(std::get<double>(v_));
      break;
    case Type::kString:
      w.put_string(std::get<std::string>(v_));
      break;
    case Type::kBytes:
      w.put_blob(std::get<Bytes>(v_));
      break;
    case Type::kList: {
      const auto& list = std::get<ValueList>(v_);
      w.put_varint(list.size());
      for (const auto& v : list) v.encode(w);
      break;
    }
  }
}

Value Value::decode(ByteReader& r) {
  auto tag = r.get_u8();
  switch (static_cast<Type>(tag)) {
    case Type::kNull:
      return Value();
    case Type::kBool:
      return Value(r.get_u8() != 0);
    case Type::kI64:
      return Value(r.get_i64());
    case Type::kF64:
      return Value(r.get_f64());
    case Type::kString:
      return Value(r.get_string());
    case Type::kBytes:
      return Value(r.get_blob());
    case Type::kList: {
      std::uint64_t n = r.get_varint();
      if (n > r.remaining()) throw DecodeError("list length exceeds buffer");
      ValueList list;
      list.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) list.push_back(decode(r));
      return Value(std::move(list));
    }
  }
  throw DecodeError("unknown value tag " + std::to_string(tag));
}

namespace {

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

std::size_t Value::encoded_size() const {
  std::size_t n = 1;  // tag byte
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      n += 1;
      break;
    case Type::kI64:
    case Type::kF64:
      n += 8;
      break;
    case Type::kString: {
      const auto& s = std::get<std::string>(v_);
      n += varint_size(s.size()) + s.size();
      break;
    }
    case Type::kBytes: {
      const auto& b = std::get<Bytes>(v_);
      n += varint_size(b.size()) + b.size();
      break;
    }
    case Type::kList: {
      const auto& list = std::get<ValueList>(v_);
      n += varint_size(list.size());
      for (const auto& v : list) n += v.encoded_size();
      break;
    }
  }
  return n;
}

std::size_t Value::encoded_list_size(const ValueList& vals) {
  std::size_t n = varint_size(vals.size());
  for (const auto& v : vals) n += v.encoded_size();
  return n;
}

Bytes Value::encode_list(const ValueList& vals) {
  ByteWriter w(encoded_list_size(vals));
  w.put_varint(vals.size());
  for (const auto& v : vals) v.encode(w);
  return std::move(w).take();
}

ValueList Value::decode_list(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  std::uint64_t n = r.get_varint();
  if (n > r.remaining()) throw DecodeError("list length exceeds buffer");
  ValueList vals;
  vals.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) vals.push_back(Value::decode(r));
  if (!r.done()) throw DecodeError("trailing bytes after value list");
  return vals;
}

const char* Value::type_name(Type t) {
  switch (t) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kI64:
      return "i64";
    case Type::kF64:
      return "f64";
    case Type::kString:
      return "string";
    case Type::kBytes:
      return "bytes";
    case Type::kList:
      return "list";
  }
  return "?";
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (type()) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (std::get<bool>(v_) ? "true" : "false");
      break;
    case Type::kI64:
      os << std::get<std::int64_t>(v_);
      break;
    case Type::kF64:
      os << std::get<double>(v_);
      break;
    case Type::kString:
      os << '"' << std::get<std::string>(v_) << '"';
      break;
    case Type::kBytes:
      os << "bytes[" << std::get<Bytes>(v_).size() << "]";
      break;
    case Type::kList: {
      os << "[";
      const auto& list = std::get<ValueList>(v_);
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i) os << ", ";
        os << list[i].to_string();
      }
      os << "]";
      break;
    }
  }
  return os.str();
}

void encode_piggyback(ByteWriter& w, const PiggybackMap& pb) {
  w.put_varint(pb.size());
  for (const auto& [k, v] : pb) {
    w.put_string(k);
    v.encode(w);
  }
}

PiggybackMap decode_piggyback(ByteReader& r) {
  std::uint64_t n = r.get_varint();
  if (n > r.remaining()) throw DecodeError("piggyback count exceeds buffer");
  PiggybackMap pb;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string k = r.get_string();
    Value v = Value::decode(r);
    if (!pb.emplace(std::move(k), std::move(v)).second) {
      throw DecodeError("duplicate piggyback key");
    }
  }
  return pb;
}

}  // namespace cqos
