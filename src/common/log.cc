#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/sync.h"

namespace cqos {
namespace {

LogLevel parse_level() {
  // Read exactly once, inside the log_threshold() magic-static initializer,
  // so the mt-unsafety of getenv cannot bite.
  const char* env = std::getenv("CQOS_LOG");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

Mutex g_log_mu;

}  // namespace

LogLevel log_threshold() {
  static LogLevel level = parse_level();
  return level;
}

void log_line(LogLevel level, const std::string& msg) {
  MutexLock lk(g_log_mu);
  std::fprintf(stderr, "[cqos %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace cqos
