#include "idl/parser.h"

#include <cctype>
#include <optional>
#include <set>

#include "common/error.h"

namespace cqos::idl {

const char* cpp_type(Type t) {
  switch (t) {
    case Type::kVoid:
      return "void";
    case Type::kBoolean:
      return "bool";
    case Type::kI64:
      return "std::int64_t";
    case Type::kDouble:
      return "double";
    case Type::kString:
      return "std::string";
    case Type::kBytes:
      return "cqos::Bytes";
    case Type::kAny:
      return "cqos::Value";
  }
  return "?";
}

const char* idl_type(Type t) {
  switch (t) {
    case Type::kVoid:
      return "void";
    case Type::kBoolean:
      return "boolean";
    case Type::kI64:
      return "long long";
    case Type::kDouble:
      return "double";
    case Type::kString:
      return "string";
    case Type::kBytes:
      return "sequence<octet>";
    case Type::kAny:
      return "any";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  struct Token {
    enum class Kind { kIdent, kPunct, kEnd } kind = Kind::kEnd;
    std::string text;
    int line = 1;
  };

  const Token& peek() {
    if (!lookahead_) lookahead_ = scan();
    return *lookahead_;
  }

  Token next() {
    if (lookahead_) {
      Token t = std::move(*lookahead_);
      lookahead_.reset();
      return t;
    }
    return scan();
  }

  [[noreturn]] void fail(const std::string& what, const Token& at) const {
    throw ConfigError("idl: line " + std::to_string(at.line) + ": " + what +
                      (at.kind == Token::Kind::kEnd
                           ? " (at end of input)"
                           : " (at '" + at.text + "')"));
  }

 private:
  Token scan() {
    skip_ws_and_comments();
    Token tok;
    tok.line = line_;
    if (pos_ >= src_.size()) return tok;
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0 ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      tok.kind = Token::Kind::kIdent;
      tok.text = std::string(src_.substr(start, pos_ - start));
      return tok;
    }
    tok.kind = Token::Kind::kPunct;
    tok.text = std::string(1, c);
    ++pos_;
    return tok;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])) != 0) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, src_.size());
        continue;
      }
      break;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::optional<Token> lookahead_;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Document parse_document() {
    Document doc;
    parse_definitions(doc, "");
    auto end = lex_.peek();
    if (end.kind != Lexer::Token::Kind::kEnd) {
      lex_.fail("expected 'module' or 'interface'", end);
    }
    std::set<std::string> names;
    for (const auto& iface : doc.interfaces) {
      if (!names.insert(iface.qualified_name()).second) {
        throw ConfigError("idl: duplicate interface " + iface.qualified_name());
      }
    }
    return doc;
  }

 private:
  void parse_definitions(Document& doc, const std::string& module) {
    for (;;) {
      auto tok = lex_.peek();
      if (tok.kind != Lexer::Token::Kind::kIdent) return;
      if (tok.text == "module") {
        lex_.next();
        std::string name = expect_ident("module name");
        if (!module.empty()) {
          throw ConfigError("idl: nested modules are not supported (module " +
                            name + ")");
        }
        expect_punct("{");
        parse_definitions(doc, name);
        expect_punct("}");
        consume_punct(";");
      } else if (tok.text == "interface") {
        lex_.next();
        doc.interfaces.push_back(parse_interface(module));
      } else {
        return;
      }
    }
  }

  Interface parse_interface(const std::string& module) {
    Interface iface;
    iface.module = module;
    iface.name = expect_ident("interface name");
    expect_punct("{");
    std::set<std::string> op_names;
    for (;;) {
      auto tok = lex_.peek();
      if (tok.kind == Lexer::Token::Kind::kPunct && tok.text == "}") break;
      Operation op = parse_operation();
      if (!op_names.insert(op.name).second) {
        throw ConfigError("idl: interface " + iface.name +
                          ": duplicate operation " + op.name +
                          " (overloading is not supported)");
      }
      iface.operations.push_back(std::move(op));
    }
    expect_punct("}");
    consume_punct(";");
    if (iface.operations.empty()) {
      throw ConfigError("idl: interface " + iface.name + " has no operations");
    }
    return iface;
  }

  Operation parse_operation() {
    Operation op;
    op.return_type = parse_type(/*allow_void=*/true);
    op.name = expect_ident("operation name");
    expect_punct("(");
    auto tok = lex_.peek();
    if (!(tok.kind == Lexer::Token::Kind::kPunct && tok.text == ")")) {
      for (;;) {
        Parameter param;
        auto dir = lex_.peek();
        if (dir.kind == Lexer::Token::Kind::kIdent && dir.text == "in") {
          lex_.next();
        } else if (dir.kind == Lexer::Token::Kind::kIdent &&
                   (dir.text == "out" || dir.text == "inout")) {
          lex_.fail("only 'in' parameters are supported", dir);
        }
        param.type = parse_type(/*allow_void=*/false);
        param.name = expect_ident("parameter name");
        op.params.push_back(std::move(param));
        auto sep = lex_.next();
        if (sep.kind == Lexer::Token::Kind::kPunct && sep.text == ",") continue;
        if (sep.kind == Lexer::Token::Kind::kPunct && sep.text == ")") break;
        lex_.fail("expected ',' or ')'", sep);
      }
    } else {
      lex_.next();  // ')'
    }
    auto raises = lex_.peek();
    if (raises.kind == Lexer::Token::Kind::kIdent && raises.text == "raises") {
      lex_.next();
      expect_punct("(");
      for (;;) {
        op.raises.push_back(expect_ident("exception name"));
        auto sep = lex_.next();
        if (sep.kind == Lexer::Token::Kind::kPunct && sep.text == ",") continue;
        if (sep.kind == Lexer::Token::Kind::kPunct && sep.text == ")") break;
        lex_.fail("expected ',' or ')'", sep);
      }
    }
    expect_punct(";");
    return op;
  }

  Type parse_type(bool allow_void) {
    auto tok = lex_.next();
    if (tok.kind != Lexer::Token::Kind::kIdent) lex_.fail("expected a type", tok);
    if (tok.text == "void") {
      if (!allow_void) lex_.fail("void is only valid as a return type", tok);
      return Type::kVoid;
    }
    if (tok.text == "boolean") return Type::kBoolean;
    if (tok.text == "double") return Type::kDouble;
    if (tok.text == "string") return Type::kString;
    if (tok.text == "any") return Type::kAny;
    if (tok.text == "long") {
      auto maybe = lex_.peek();
      if (maybe.kind == Lexer::Token::Kind::kIdent && maybe.text == "long") {
        lex_.next();
      }
      return Type::kI64;
    }
    if (tok.text == "sequence") {
      expect_punct("<");
      std::string elem = expect_ident("sequence element type");
      if (elem != "octet") {
        throw ConfigError("idl: only sequence<octet> is supported, got sequence<" +
                          elem + ">");
      }
      expect_punct(">");
      return Type::kBytes;
    }
    lex_.fail("unknown type", tok);
  }

  std::string expect_ident(const char* what) {
    auto tok = lex_.next();
    if (tok.kind != Lexer::Token::Kind::kIdent) {
      lex_.fail(std::string("expected ") + what, tok);
    }
    return tok.text;
  }

  void expect_punct(const std::string& p) {
    auto tok = lex_.next();
    if (tok.kind != Lexer::Token::Kind::kPunct || tok.text != p) {
      lex_.fail("expected '" + p + "'", tok);
    }
  }

  void consume_punct(const std::string& p) {
    auto tok = lex_.peek();
    if (tok.kind == Lexer::Token::Kind::kPunct && tok.text == p) lex_.next();
  }

  Lexer lex_;
};

}  // namespace

Document parse(std::string_view source) {
  return Parser(source).parse_document();
}

}  // namespace cqos::idl
