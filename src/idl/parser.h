// Recursive-descent parser for the CQoS IDL subset (see ast.h).
#pragma once

#include <string_view>

#include "idl/ast.h"

namespace cqos::idl {

/// Parse IDL source. Throws cqos::ConfigError with line/column context on
/// syntax errors, duplicate names, or unsupported constructs.
Document parse(std::string_view source);

}  // namespace cqos::idl
