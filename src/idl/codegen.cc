#include "idl/codegen.h"

#include <sstream>

#include "common/error.h"

namespace cqos::idl {
namespace {

/// Expression converting a generated C++ argument into a cqos::Value.
std::string to_value_expr(Type t, const std::string& name) {
  switch (t) {
    case Type::kVoid:
      throw ConfigError("idl codegen: void parameter");
    case Type::kBoolean:
    case Type::kDouble:
    case Type::kAny:
      return "cqos::Value(" + name + ")";
    case Type::kI64:
      return "cqos::Value(static_cast<std::int64_t>(" + name + "))";
    case Type::kString:
    case Type::kBytes:
      return "cqos::Value(std::move(" + name + "))";
  }
  return {};
}

/// Expression extracting a typed C++ value from a cqos::Value `expr`.
std::string from_value_expr(Type t, const std::string& expr) {
  switch (t) {
    case Type::kVoid:
      throw ConfigError("idl codegen: void extraction");
    case Type::kBoolean:
      return expr + ".as_bool()";
    case Type::kI64:
      return expr + ".as_i64()";
    case Type::kDouble:
      return expr + ".as_f64()";
    case Type::kString:
      return expr + ".as_string()";
    case Type::kBytes:
      return expr + ".as_bytes()";
    case Type::kAny:
      return expr;
  }
  return {};
}

/// Pass-by style for parameters in generated signatures.
std::string param_decl(const Parameter& p) {
  switch (p.type) {
    case Type::kString:
      return "std::string " + p.name;  // by value; moved into the request
    case Type::kBytes:
      return "cqos::Bytes " + p.name;
    case Type::kAny:
      return "cqos::Value " + p.name;
    default:
      return std::string(cpp_type(p.type)) + " " + p.name;
  }
}

void emit_operation_comment(std::ostringstream& os, const Operation& op) {
  os << "  /// IDL: " << idl_type(op.return_type) << " " << op.name << "(";
  for (std::size_t i = 0; i < op.params.size(); ++i) {
    if (i != 0) os << ", ";
    os << "in " << idl_type(op.params[i].type) << " " << op.params[i].name;
  }
  os << ")";
  if (!op.raises.empty()) {
    os << " raises (";
    for (std::size_t i = 0; i < op.raises.size(); ++i) {
      if (i != 0) os << ", ";
      os << op.raises[i];
    }
    os << ")";
  }
  os << "\n";
  if (!op.raises.empty()) {
    os << "  /// Application exceptions surface as cqos::InvocationError.\n";
  }
}

void emit_stub(std::ostringstream& os, const Interface& iface) {
  os << "/// Typed CQoS stub for interface " << iface.qualified_name()
     << " (generated).\n"
     << "class " << iface.name << "Stub {\n"
     << " public:\n"
     << "  explicit " << iface.name
     << "Stub(std::shared_ptr<cqos::CqosStub> stub)\n"
     << "      : stub_(std::move(stub)) {}\n\n";
  for (const Operation& op : iface.operations) {
    emit_operation_comment(os, op);
    os << "  " << cpp_type(op.return_type) << " " << op.name << "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i != 0) os << ", ";
      os << param_decl(op.params[i]);
    }
    os << ") {\n";
    os << "    cqos::ValueList params__;\n";
    if (!op.params.empty()) {
      os << "    params__.reserve(" << op.params.size() << ");\n";
    }
    for (const Parameter& p : op.params) {
      os << "    params__.push_back(" << to_value_expr(p.type, p.name) << ");\n";
    }
    if (op.return_type == Type::kVoid) {
      os << "    stub_->call(\"" << op.name << "\", std::move(params__));\n";
    } else {
      os << "    cqos::Value result__ = stub_->call(\"" << op.name
         << "\", std::move(params__));\n";
      os << "    return " << from_value_expr(op.return_type, "result__")
         << ";\n";
    }
    os << "  }\n\n";
  }
  os << "  cqos::CqosStub& generic() { return *stub_; }\n\n"
     << " private:\n"
     << "  std::shared_ptr<cqos::CqosStub> stub_;\n"
     << "};\n\n";
}

void emit_servant(std::ostringstream& os, const Interface& iface) {
  os << "/// Abstract servant base for interface " << iface.qualified_name()
     << " (generated).\n"
     << "/// Implement the pure virtual operations; dispatch() adapts them to\n"
     << "/// the generic cqos::Servant entry point used by the CQoS skeleton.\n"
     << "class " << iface.name << "ServantBase : public cqos::Servant {\n"
     << " public:\n"
     << "  cqos::Value dispatch(const std::string& method__,\n"
     << "                       const cqos::ValueList& params__) override {\n";
  for (const Operation& op : iface.operations) {
    os << "    if (method__ == \"" << op.name << "\") {\n";
    os << "      if (params__.size() != " << op.params.size() << ") {\n"
       << "        throw cqos::TypeError(\"" << op.name << ": expected "
       << op.params.size() << " parameter(s)\");\n"
       << "      }\n";
    std::string call = op.name + "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i != 0) call += ", ";
      call += from_value_expr(op.params[i].type,
                              "params__[" + std::to_string(i) + "]");
    }
    call += ")";
    if (op.return_type == Type::kVoid) {
      os << "      " << call << ";\n"
         << "      return cqos::Value(true);\n";
    } else if (op.return_type == Type::kAny) {
      os << "      return " << call << ";\n";
    } else {
      os << "      return cqos::Value(" << call << ");\n";
    }
    os << "    }\n";
  }
  os << "    throw cqos::Error(\"" << iface.name
     << ": no such method: \" + method__);\n"
     << "  }\n\n"
     << " protected:\n";
  for (const Operation& op : iface.operations) {
    os << "  virtual " << cpp_type(op.return_type) << " " << op.name << "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i != 0) os << ", ";
      // Servant side receives decoded values; strings/bytes by const-ref.
      const Parameter& p = op.params[i];
      switch (p.type) {
        case Type::kString:
          os << "const std::string& " << p.name;
          break;
        case Type::kBytes:
          os << "const cqos::Bytes& " << p.name;
          break;
        case Type::kAny:
          os << "const cqos::Value& " << p.name;
          break;
        default:
          os << cpp_type(p.type) << " " << p.name;
      }
    }
    os << ") = 0;\n";
  }
  os << "};\n\n";
}

}  // namespace

std::string generate_header(const Document& doc, const CodegenOptions& opts) {
  std::ostringstream os;
  os << "// Generated by cqos_idlc — do not edit.\n"
     << "// Typed CQoS stubs and servant bases; see the CQoS README.\n"
     << "#pragma once\n\n"
     << "#include <cstdint>\n"
     << "#include <memory>\n"
     << "#include <string>\n"
     << "#include <utility>\n\n"
     << "#include \"common/error.h\"\n"
     << "#include \"common/value.h\"\n"
     << "#include \"cqos/servant.h\"\n"
     << "#include \"cqos/stub.h\"\n\n";

  for (const Interface& iface : doc.interfaces) {
    if (!iface.module.empty()) {
      os << "namespace " << iface.module << " {\n\n";
    }
    emit_stub(os, iface);
    emit_servant(os, iface);
    if (!iface.module.empty()) {
      os << "}  // namespace " << iface.module << "\n\n";
    }
  }
  (void)opts;
  return os.str();
}

}  // namespace cqos::idl
