// AST for the CQoS IDL subset.
//
// The paper's prototype generates CQoS stubs and skeletons "from the server
// IDL description (e.g., CORBA IDL) using our Cactus IDL compiler". This is
// that compiler: it accepts the subset of OMG IDL the CQoS examples need and
// emits the typed C++ stub/servant classes that delegate to the generic
// CqosStub / Servant machinery.
//
// Supported subset:
//   module M { ... };
//   interface I {
//     <type> op(in <type> a, in <type> b) raises (SomeError);
//   };
//   types: void, boolean, long, long long, double, string,
//          sequence<octet>, any
#pragma once

#include <string>
#include <vector>

namespace cqos::idl {

enum class Type {
  kVoid,
  kBoolean,
  kI64,     // long / long long
  kDouble,
  kString,
  kBytes,   // sequence<octet>
  kAny,     // any -> cqos::Value
};

/// C++ type spelling for a parameter / return value.
const char* cpp_type(Type t);
/// IDL spelling (diagnostics).
const char* idl_type(Type t);

struct Parameter {
  Type type = Type::kAny;
  std::string name;
};

struct Operation {
  Type return_type = Type::kVoid;
  std::string name;
  std::vector<Parameter> params;
  std::vector<std::string> raises;  // names only; carried into comments
};

struct Interface {
  std::string name;
  std::string module;  // enclosing module name ("" at top level)
  std::vector<Operation> operations;

  /// Object-id default used by the generated classes: "Module::Name" or
  /// "Name".
  std::string qualified_name() const {
    return module.empty() ? name : module + "::" + name;
  }
};

struct Document {
  std::vector<Interface> interfaces;
};

}  // namespace cqos::idl
