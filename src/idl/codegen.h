// C++ code generator: IDL interfaces -> typed CQoS stubs and servant bases.
#pragma once

#include <string>

#include "idl/ast.h"

namespace cqos::idl {

struct CodegenOptions {
  /// Guard/namespace-friendly tag derived from the output name.
  std::string header_name = "generated";
};

/// Generate one self-contained C++ header with, for every interface I:
///   class IStub        — typed client stub wrapping cqos::CqosStub
///   class IServantBase — abstract servant with a generated dispatch()
/// Throws ConfigError on identifier clashes with generated names.
std::string generate_header(const Document& doc, const CodegenOptions& opts);

}  // namespace cqos::idl
