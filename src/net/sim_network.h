// In-process simulated cluster network.
//
// Stands in for the paper's testbed (Linux cluster on 1 Gbit Ethernet). Hosts
// are namespaces in endpoint ids ("hostA/orb", "hostA/client0"); messages
// between endpoints are delivered after a simulated latency of
//     base + per_byte * payload_size (+ uniform jitter)
// or a smaller loopback latency for same-host traffic. Fault injection —
// host crash/recover, pairwise partitions, probabilistic drop, duplication,
// bounded reordering, latency spikes and scheduled fault plans — lives in
// the FaultController (net/fault.h) and drives the fault-tolerance tests,
// the chaos soak harness and the examples.
//
// Delivery is FIFO per sender/receiver pair (latency is deterministic per
// size; ordering is enforced with a sequence tie-break and monotone clamp).
//
// Two time modes (NetConfig::time_mode, DESIGN.md §14):
//
//   kReal    (default) the threaded mode: deliver_at is a wall-clock
//            deadline and receivers block in Endpoint::recv() until it
//            matures. The send path is deliberately lock-sharded — endpoint
//            resolution under mu_, jitter from per-sender RNG streams,
//            FIFO clamp + seq under per-destination shards, per-pair metric
//            handles cached — so concurrent senders do not convoy on one
//            global mutex.
//
//   kVirtual the discrete-event mode: nothing sleeps. send() enqueues a
//            delivery event on a central priority queue; run_until() pops
//            events in (timestamp, insertion) order, advances the
//            VirtualClock straight to each event's timestamp and dispatches
//            it (delivery handlers, timers scheduled via schedule_at, and
//            the FaultController's plan events / reorder-hold sweeps, which
//            become virtual deadlines instead of worker-thread waits).
//            10^5..10^6 modeled endpoints simulate in wall-clock seconds,
//            fully seeded and reproducible.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace cqos::net {

class SimNetwork : public Transport {
 public:
  explicit SimNetwork(NetConfig cfg = {});
  ~SimNetwork() override;

  // --- net::Transport --------------------------------------------------------

  /// Register a new endpoint. Id format "host/service"; the host part drives
  /// latency and crash semantics. Throws Error if the id is taken.
  std::shared_ptr<Endpoint> create_endpoint(const std::string& id) override;

  void remove_endpoint(const std::string& id) override;

  /// Send `payload` from endpoint `from` to endpoint `to`. Returns false if
  /// the message was dropped (unknown destination, crashed host, partition,
  /// or random drop) — senders cannot distinguish these, as on a real
  /// network.
  ///
  /// Takes the payload by rvalue: the buffer moves into the in-flight
  /// Message and from there into the receiver's inbox without copying
  /// (zero-copy delivery; DESIGN.md §10). Dropped/refused payloads are
  /// recycled into the BufferPool.
  bool send(const std::string& from, const std::string& to,
            Bytes&& payload) override;

  std::string kind() const override { return "sim"; }
  SimNetwork* as_sim() override { return this; }

  // --- fault injection -----------------------------------------------------

  /// All fault state — crashes, partitions, drop/duplicate/reorder rates,
  /// scheduled fault plans — lives in the FaultController (net/fault.h).
  FaultController& faults() { return *faults_; }
  const FaultController& faults() const { return *faults_; }

  // Deprecated forwarding shims over faults(); new code should call the
  // FaultController directly.
  void crash_host(const std::string& host);
  void recover_host(const std::string& host);
  bool is_crashed(const std::string& host) const;
  void partition(const std::string& host_a, const std::string& host_b);
  void heal(const std::string& host_a, const std::string& host_b);
  void set_drop_rate(double p);

  // --- time ----------------------------------------------------------------

  TimeMode time_mode() const { return cfg_.time_mode; }
  bool virtual_mode() const { return cfg_.time_mode == TimeMode::kVirtual; }
  /// The network's notion of "now": wall clock in real mode, the
  /// VirtualClock in virtual mode. Lock-free.
  TimePoint net_now() const override {
    return virtual_mode() ? vclock_.now() : now();
  }

  // --- virtual-time event loop (kVirtual only; throws Error otherwise) ------

  /// Schedule `fn` at virtual time `at` (clamped forward to the current
  /// virtual time). Timer events share the delivery queue and fire in
  /// (timestamp, insertion) order. Used for modeled-client arrivals and
  /// test timers.
  void schedule_at(TimePoint at, std::function<void()> fn);
  void schedule_after(Duration d, std::function<void()> fn);

  /// Advance virtual time to `t`, dispatching every event (delivery, timer,
  /// fault-plan event, reorder-hold sweep) with timestamp <= t in order.
  /// Returns the number of events dispatched. Single-driver: must not be
  /// called concurrently with itself.
  std::size_t run_until(TimePoint t);
  std::size_t run_for(Duration d) { return run_until(net_now() + d); }

  /// Run until no event or fault deadline remains (dispatching everything,
  /// including future fault-plan events), or until `horizon` events have
  /// been dispatched (a live-lock guard for handler chains that reschedule
  /// forever). Returns events dispatched.
  std::size_t run_until_idle(std::size_t horizon = SIZE_MAX);

  /// Total events dispatched by the virtual scheduler so far.
  std::uint64_t virtual_events() const {
    return vevents_.load(std::memory_order_relaxed);
  }

  // --- observation ----------------------------------------------------------

  /// Wire tap invoked (under no internal lock ordering guarantees) for every
  /// successfully sent message. Used by tests to assert on-the-wire
  /// properties (e.g. ciphertext only).
  using Tap = std::function<void(const Message&)>;
  void set_tap(Tap tap);

  std::uint64_t messages_sent() const override;
  std::uint64_t bytes_sent() const override;

  /// The registry this network counts into (cfg.metrics, or the process
  /// global). Drivers read fault/delivery counters from here.
  metrics::Registry& metrics_registry() const { return registry(); }

  /// Number of per-destination FIFO clamp entries currently retained
  /// (test hook: remove_endpoint must prune its entry or endpoint churn
  /// grows the map without bound).
  std::size_t fifo_clamp_entries() const;

 private:
  friend class FaultController;

  static constexpr std::size_t kShards = 16;

  /// Per-destination FIFO clamp + seq assignment, sharded by destination id
  /// so senders to different destinations never contend. The shard lock is
  /// what makes (clamp, seq) assignment atomic per destination.
  struct ClampShard {
    mutable Mutex mu;
    std::map<std::string, TimePoint> last CQOS_GUARDED_BY(mu);
    /// Sent-message tallies striped across the shards (the shard lock is
    /// already held where they are bumped, so they cost nothing extra);
    /// messages_sent()/bytes_sent() sum them. Keeping these off shared
    /// atomics matters: they are touched by every send from every thread.
    std::uint64_t msgs CQOS_GUARDED_BY(mu) = 0;
    std::uint64_t bytes CQOS_GUARDED_BY(mu) = 0;
  };
  /// Per-sender jitter streams, sharded by sender id. Each stream is seeded
  /// with cfg.seed, so a sender's jitter sequence is a function of (seed,
  /// its own sends) only — adding senders does not perturb it, and a
  /// single-sender run reproduces the pre-sharding shared-stream sequence.
  struct JitterShard {
    Mutex mu;
    std::map<std::string, Rng> rngs CQOS_GUARDED_BY(mu);
  };
  /// Cached per-host-pair metric handles: the "net.pair.<from>:<to>.*"
  /// names are built exactly once per pair instead of three string
  /// concatenations per send under the network lock.
  struct PairCounters {
    metrics::Counter* msgs;
    metrics::Counter* bytes;
    metrics::Counter* drops;
  };
  struct PairShard {
    Mutex mu;
    std::map<std::string, PairCounters> pairs CQOS_GUARDED_BY(mu);
  };

  /// One entry on the virtual event queue: a delivery (fn empty) or a timer
  /// callback. Ordered by (at, order) where `order` is queue-insertion
  /// order — equal-timestamp events dispatch in the order they were
  /// scheduled, mirroring the inbox multimap's insertion-order tie-break.
  struct VEvent {
    TimePoint at;
    std::uint64_t order;
    Message msg;
    std::function<void()> fn;
  };
  struct VEventLater {
    bool operator()(const VEvent& a, const VEvent& b) const {
      return a.at != b.at ? a.at > b.at : a.order > b.order;
    }
  };

  bool send_impl(const std::string& from, const std::string& to,
                 Bytes&& payload);

  /// Crash/recover application: mark the host's endpoints (the fault state
  /// itself lives in the controller). Called by FaultController with no
  /// controller lock held.
  void apply_crash(const std::string& host);
  void apply_recover(const std::string& host);
  /// Deposit a message released from a reorder holdback by the controller's
  /// deadline sweep (no releaser traffic arrived). Bypasses the FIFO clamp:
  /// the message is late by construction.
  void deposit_swept(Message msg);

  /// Deliver in the current mode: enqueue a virtual delivery event, or tap
  /// (when `tap` is set) + deposit into the destination's inbox.
  void deliver(std::shared_ptr<Endpoint> dest, Message&& msg, bool tap);
  void enqueue_virtual(Message&& msg);
  void dispatch_delivery(Message&& msg);

  /// Wire-level accounting into cfg_.metrics (global registry when null):
  /// net.sent.{msgs,bytes}, net.drop.<reason>, and the per-host-pair
  /// variants net.pair.<from>:<to>.{msgs,bytes,drops}. Lock-cheap: handles
  /// resolved once per host pair, counters are wait-free.
  void count_send(const std::string& from_host, const std::string& to_host,
                  std::size_t bytes);
  void count_drop(const std::string& from_host, const std::string& to_host,
                  const char* reason);
  PairCounters& pair_counters(const std::string& from_host,
                              const std::string& to_host);
  metrics::Registry& registry() const {
    return cfg_.metrics != nullptr ? *cfg_.metrics
                                   : metrics::Registry::global();
  }

  /// Latency model: base/loopback + per-byte, plus a jitter fraction drawn
  /// from the sender's own stream.
  Duration compute_latency(const std::string& from,
                           const std::string& from_host,
                           const std::string& to_host, std::size_t bytes);

  static std::size_t shard_of(const std::string& key) {
    return std::hash<std::string>{}(key) % kShards;
  }

  // Lock hierarchy (DESIGN.md §8/§14): mu_ (endpoint map) > jitter shard >
  // clamp shard > FaultController::mu_ > tap_mu_ > Endpoint::mu_. No two
  // shard locks are ever held together; judge() takes the controller lock
  // with nothing else held, hold()/on_send() are called under the
  // destination's clamp shard (keeping per-destination release bookkeeping
  // atomic with clamp/seq assignment); deposits take only Endpoint::mu_.
  // The metrics registry mutex is a leaf of pair_counters() misses. The
  // virtual queue lock vmu_ is a leaf (push/pop only, never held across
  // dispatch).
  mutable Mutex mu_;
  const NetConfig cfg_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_
      CQOS_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> next_seq_{1};
  std::array<ClampShard, kShards> clamp_shards_;
  std::array<JitterShard, kShards> jitter_shards_;
  std::array<PairShard, kShards> pair_shards_;
  /// serialize_send ablation: one global lock around the whole send body.
  Mutex serial_mu_;
  Mutex tap_mu_;
  Tap tap_ CQOS_GUARDED_BY(tap_mu_);
  std::atomic<bool> has_tap_{false};
  /// Aggregate send counters resolved once at construction: count_send runs
  /// on every send, and a by-name registry lookup there is a global
  /// mutex + map walk that serializes concurrent senders.
  metrics::Counter* sent_msgs_counter_ = nullptr;
  metrics::Counter* sent_bytes_counter_ = nullptr;

  // Virtual-time scheduler state.
  VirtualClock vclock_;
  mutable Mutex vmu_;
  std::priority_queue<VEvent, std::vector<VEvent>, VEventLater> vqueue_
      CQOS_GUARDED_BY(vmu_);
  std::uint64_t vorder_ CQOS_GUARDED_BY(vmu_) = 0;
  std::atomic<std::uint64_t> vevents_{0};

  // Declared last: destroyed first, joining the controller's scheduler
  // thread while the endpoint map it deposits into is still alive.
  std::unique_ptr<FaultController> faults_;
};

}  // namespace cqos::net
