// In-process simulated cluster network.
//
// Stands in for the paper's testbed (Linux cluster on 1 Gbit Ethernet). Hosts
// are namespaces in endpoint ids ("hostA/orb", "hostA/client0"); messages
// between endpoints are delivered after a simulated latency of
//     base + per_byte * payload_size (+ uniform jitter)
// or a smaller loopback latency for same-host traffic. Fault injection —
// host crash/recover, pairwise partitions, probabilistic drop, duplication,
// bounded reordering, latency spikes and scheduled fault plans — lives in
// the FaultController (net/fault.h) and drives the fault-tolerance tests,
// the chaos soak harness and the examples.
//
// Delivery is FIFO per sender/receiver pair (latency is deterministic per
// size ordering is enforced with a sequence tie-break and monotone clamp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::net {

struct Message {
  std::string from;
  std::string to;
  Bytes payload;
  TimePoint deliver_at{};
  std::uint64_t seq = 0;
};

/// Scope guard for receive loops: recycles the message's payload into the
/// BufferPool when the iteration finishes decoding it — the last hop of
/// zero-copy delivery (DESIGN.md §10). The payload must not be referenced
/// (including via ByteReader::view spans) after the guard fires.
class PayloadRecycler {
 public:
  explicit PayloadRecycler(Message& msg) : msg_(msg) {}
  ~PayloadRecycler() { BufferPool::recycle(std::move(msg_.payload)); }
  PayloadRecycler(const PayloadRecycler&) = delete;
  PayloadRecycler& operator=(const PayloadRecycler&) = delete;

 private:
  Message& msg_;
};

struct NetConfig {
  /// One-way latency between distinct hosts for a zero-byte message.
  Duration base_latency = us(120);
  /// Additional latency per payload byte (models wire + serialization DMA).
  Duration per_byte = std::chrono::nanoseconds(12);
  /// Latency between endpoints on the same host.
  Duration loopback_latency = us(15);
  /// Uniform jitter fraction applied to the computed latency ([0, jitter]).
  double jitter = 0.05;
  /// Probability that any inter-host message is silently dropped.
  double drop_rate = 0.0;
  /// RNG seed for jitter/drops (deterministic tests).
  std::uint64_t seed = 42;
  /// Metrics registry for wire-level accounting (messages/bytes/drops,
  /// per host pair). Null means the process-wide global registry; tests
  /// that assert exact counter values pass their own.
  metrics::Registry* metrics = nullptr;
};

class SimNetwork;
class FaultController;

/// Receiving side of one registered endpoint.
class Endpoint {
 public:
  Endpoint(std::string id, std::string host) : id_(std::move(id)), host_(std::move(host)) {}

  const std::string& id() const { return id_; }
  const std::string& host() const { return host_; }

  /// Block until a message is deliverable (its simulated latency elapsed) or
  /// `timeout` passes. Returns nullopt on timeout or close.
  std::optional<Message> recv(Duration timeout);

  /// Unblock all receivers; subsequent recv() returns nullopt immediately.
  void close();
  bool closed() const;

 private:
  friend class SimNetwork;
  friend class FaultController;
  /// Refused (message dropped) while the endpoint's host is crashed or the
  /// endpoint is closed. The crash check lives HERE, at deposit time, not
  /// only in SimNetwork::send: send() validates crash state under the
  /// network lock but deposits after releasing it, so a concurrent
  /// crash_host() would otherwise clear the inbox and still see this
  /// in-flight message land on a "crashed" host.
  void deposit(Message msg);
  /// Crash transitions: mark_crashed() also drops queued messages.
  void mark_crashed();
  void mark_recovered();
  void clear_inbox();

  const std::string id_;
  const std::string host_;
  mutable Mutex mu_;
  CondVar cv_;
  // Ordered by (deliver_at, seq).
  std::multimap<TimePoint, Message> inbox_ CQOS_GUARDED_BY(mu_);
  bool closed_ CQOS_GUARDED_BY(mu_) = false;
  bool crashed_ CQOS_GUARDED_BY(mu_) = false;
};

class SimNetwork {
 public:
  explicit SimNetwork(NetConfig cfg = {});
  ~SimNetwork();

  /// Register a new endpoint. Id format "host/service"; the host part drives
  /// latency and crash semantics. Throws Error if the id is taken.
  std::shared_ptr<Endpoint> create_endpoint(const std::string& id);

  void remove_endpoint(const std::string& id);

  /// Send `payload` from endpoint `from` to endpoint `to`. Returns false if
  /// the message was dropped (unknown destination, crashed host, partition,
  /// or random drop) — senders cannot distinguish these, as on a real
  /// network.
  ///
  /// Takes the payload by rvalue: the buffer moves into the in-flight
  /// Message and from there into the receiver's inbox without copying
  /// (zero-copy delivery; DESIGN.md §10). Dropped/refused payloads are
  /// recycled into the BufferPool.
  bool send(const std::string& from, const std::string& to, Bytes&& payload);

  // --- fault injection -----------------------------------------------------

  /// All fault state — crashes, partitions, drop/duplicate/reorder rates,
  /// scheduled fault plans — lives in the FaultController (net/fault.h).
  FaultController& faults() { return *faults_; }
  const FaultController& faults() const { return *faults_; }

  // Deprecated forwarding shims over faults(); new code should call the
  // FaultController directly.
  void crash_host(const std::string& host);
  void recover_host(const std::string& host);
  bool is_crashed(const std::string& host) const;
  void partition(const std::string& host_a, const std::string& host_b);
  void heal(const std::string& host_a, const std::string& host_b);
  void set_drop_rate(double p);

  // --- observation ----------------------------------------------------------

  /// Wire tap invoked (under no internal lock ordering guarantees) for every
  /// successfully sent message. Used by tests to assert on-the-wire
  /// properties (e.g. ciphertext only).
  using Tap = std::function<void(const Message&)>;
  void set_tap(Tap tap);

  std::uint64_t messages_sent() const { return messages_sent_.load(); }
  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }

  /// Number of per-destination FIFO clamp entries currently retained
  /// (test hook: remove_endpoint must prune its entry or endpoint churn
  /// grows the map without bound).
  std::size_t fifo_clamp_entries() const {
    MutexLock lk(mu_);
    return last_deliver_.size();
  }

  static std::string host_of(const std::string& endpoint_id);

 private:
  friend class FaultController;

  /// Crash/recover application: mark the host's endpoints (the fault state
  /// itself lives in the controller). Called by FaultController with no
  /// controller lock held.
  void apply_crash(const std::string& host);
  void apply_recover(const std::string& host);
  /// Deposit a message released from a reorder holdback by the controller's
  /// deadline sweep (no releaser traffic arrived). Bypasses the FIFO clamp:
  /// the message is late by construction.
  void deposit_swept(Message msg);

  /// Wire-level accounting into cfg_.metrics (global registry when null):
  /// net.sent.{msgs,bytes}, net.drop.<reason>, and the per-host-pair
  /// variants net.pair.<from>:<to>.{msgs,bytes,drops}.
  void count_send(const std::string& from_host, const std::string& to_host,
                  std::size_t bytes) CQOS_REQUIRES(mu_);
  void count_drop(const std::string& from_host, const std::string& to_host,
                  const char* reason) CQOS_REQUIRES(mu_);
  metrics::Registry& registry() CQOS_REQUIRES(mu_) {
    return cfg_.metrics != nullptr ? *cfg_.metrics
                                   : metrics::Registry::global();
  }

  Duration compute_latency(const std::string& from_host,
                           const std::string& to_host, std::size_t bytes)
      CQOS_REQUIRES(mu_);

  // Lock hierarchy: mu_ > tap_mu_ > Endpoint::mu_, in the sense that send()
  // releases mu_ before taking tap_mu_ and releases tap_mu_ before
  // deposit() takes the endpoint lock. Exceptions consistent with that
  // order: create_endpoint() marks a brand-new (unpublished) endpoint
  // crashed under mu_, and the metrics registry mutex is a leaf taken by
  // count_send()/count_drop() under mu_.
  mutable Mutex mu_;
  NetConfig cfg_ CQOS_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_
      CQOS_GUARDED_BY(mu_);
  Rng rng_ CQOS_GUARDED_BY(mu_);
  std::uint64_t next_seq_ CQOS_GUARDED_BY(mu_) = 1;
  // Per-destination monotone deliver_at clamp: keeps FIFO even with jitter.
  std::map<std::string, TimePoint> last_deliver_ CQOS_GUARDED_BY(mu_);
  Mutex tap_mu_ CQOS_ACQUIRED_AFTER(mu_);
  Tap tap_ CQOS_GUARDED_BY(tap_mu_);
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  // Declared last: destroyed first, joining the controller's scheduler
  // thread while the endpoint map it deposits into is still alive.
  std::unique_ptr<FaultController> faults_;
};

}  // namespace cqos::net
