#include "net/sim_network.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "net/fault.h"

namespace cqos::net {

// --- SimNetwork --------------------------------------------------------------
// (Endpoint lives in net/transport.cc — it is shared with TcpTransport.)

SimNetwork::SimNetwork(NetConfig cfg) : cfg_(cfg) {
  // The controller's fault streams start from the NetConfig seed: a
  // single-sender, jitter-free configuration reproduces the exact drop
  // sequence the pre-FaultController network produced (tests tune seeds
  // against it).
  sent_msgs_counter_ = &registry().counter("net.sent.msgs");
  sent_bytes_counter_ = &registry().counter("net.sent.bytes");
  faults_ = std::make_unique<FaultController>(*this, cfg.seed);
  if (cfg.drop_rate > 0) faults_->set_drop_rate(cfg.drop_rate);
}

SimNetwork::~SimNetwork() = default;

std::shared_ptr<Endpoint> SimNetwork::create_endpoint(const std::string& id) {
  MutexLock lk(mu_);
  if (endpoints_.contains(id)) throw Error("endpoint id already registered: " + id);
  auto ep = std::make_shared<Endpoint>(id, host_of(id));
  if (faults_->is_crashed(ep->host())) ep->mark_crashed();
  endpoints_.emplace(id, ep);
  return ep;
}

void SimNetwork::remove_endpoint(const std::string& id) {
  std::shared_ptr<Endpoint> ep;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
  }
  {
    // Prune the FIFO clamp: long-lived simulations with endpoint churn
    // would otherwise grow the shard maps without bound.
    ClampShard& shard = clamp_shards_[shard_of(id)];
    MutexLock lk(shard.mu);
    shard.last.erase(id);
  }
  ep->close();
}

std::size_t SimNetwork::fifo_clamp_entries() const {
  std::size_t n = 0;
  for (const ClampShard& shard : clamp_shards_) {
    MutexLock lk(shard.mu);
    n += shard.last.size();
  }
  return n;
}

std::uint64_t SimNetwork::messages_sent() const {
  std::uint64_t n = 0;
  for (const ClampShard& shard : clamp_shards_) {
    MutexLock lk(shard.mu);
    n += shard.msgs;
  }
  return n;
}

std::uint64_t SimNetwork::bytes_sent() const {
  std::uint64_t n = 0;
  for (const ClampShard& shard : clamp_shards_) {
    MutexLock lk(shard.mu);
    n += shard.bytes;
  }
  return n;
}

SimNetwork::PairCounters& SimNetwork::pair_counters(
    const std::string& from_host, const std::string& to_host) {
  std::string key = from_host + ':' + to_host;
  PairShard& shard = pair_shards_[shard_of(key)];
  MutexLock lk(shard.mu);
  auto it = shard.pairs.find(key);
  if (it == shard.pairs.end()) {
    // Miss path: build the three dotted names once and resolve the handles
    // (registry references are stable for its lifetime, DESIGN.md §9).
    metrics::Registry& reg = registry();
    std::string stem = "net.pair." + key;
    PairCounters pc{&reg.counter(stem + ".msgs"), &reg.counter(stem + ".bytes"),
                    &reg.counter(stem + ".drops")};
    it = shard.pairs.emplace(std::move(key), pc).first;
  }
  return it->second;
}

void SimNetwork::count_send(const std::string& from_host,
                            const std::string& to_host, std::size_t bytes) {
  sent_msgs_counter_->inc();
  sent_bytes_counter_->inc(bytes);
  if (cfg_.pair_metrics) {
    PairCounters& pc = pair_counters(from_host, to_host);
    pc.msgs->inc();
    pc.bytes->inc(bytes);
  }
}

void SimNetwork::count_drop(const std::string& from_host,
                            const std::string& to_host, const char* reason) {
  registry().counter(std::string("net.drop.") + reason).inc();
  if (cfg_.pair_metrics) pair_counters(from_host, to_host).drops->inc();
}

Duration SimNetwork::compute_latency(const std::string& from,
                                     const std::string& from_host,
                                     const std::string& to_host,
                                     std::size_t bytes) {
  Duration lat;
  if (from_host == to_host) {
    lat = cfg_.loopback_latency;
  } else {
    lat = cfg_.base_latency + cfg_.per_byte * static_cast<std::int64_t>(bytes);
  }
  if (cfg_.jitter > 0) {
    double draw;
    {
      JitterShard& shard = jitter_shards_[shard_of(from)];
      MutexLock lk(shard.mu);
      draw = shard.rngs.try_emplace(from, Rng(cfg_.seed))
                 .first->second.next_double();
    }
    double j = draw * cfg_.jitter;
    lat += std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(std::chrono::duration<double>(lat).count() * j));
  }
  return lat;
}

bool SimNetwork::send(const std::string& from, const std::string& to,
                      Bytes&& payload) {
  if (cfg_.serialize_send) {
    MutexLock lk(serial_mu_);
    return send_impl(from, to, std::move(payload));
  }
  return send_impl(from, to, std::move(payload));
}

bool SimNetwork::send_impl(const std::string& from, const std::string& to,
                           Bytes&& payload) {
  std::string from_host = host_of(from);
  std::string to_host = host_of(to);

  std::shared_ptr<Endpoint> dest;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(to);
    if (it != endpoints_.end()) dest = it->second;
  }
  if (!dest) {
    count_drop(from_host, to_host, "unknown_dest");
    BufferPool::recycle(std::move(payload));
    return false;
  }

  bool loopback = from_host == to_host;
  FaultDecision verdict = faults_->judge(from, from_host, to_host, loopback);
  if (verdict.drop) {
    CQOS_LOG_DEBUG("net: dropped message ", from, " -> ", to, " (",
                   verdict.drop_reason, ")");
    count_drop(from_host, to_host, verdict.drop_reason);
    BufferPool::recycle(std::move(payload));
    return false;
  }

  Message msg;
  msg.from = from;
  msg.to = to;
  Duration lat = compute_latency(from, from_host, to_host, payload.size());
  if (verdict.latency_factor != 1.0) {
    lat = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(
            std::chrono::duration<double>(lat).count() *
            verdict.latency_factor));
  }
  lat += verdict.extra_latency;
  Duration dup_lat{};
  if (verdict.duplicate) {
    // Draw the copy's jitter now, outside the clamp shard, from the same
    // per-sender stream (second draw, as the shared-stream path did).
    dup_lat = compute_latency(from, from_host, to_host, payload.size());
  }
  msg.payload = std::move(payload);
  std::size_t msg_bytes = msg.payload.size();

  bool held = false;
  std::vector<Message> extra;  // duplicate copy + released reorder holds
  {
    // Clamp + seq assignment is atomic per destination: senders to the same
    // destination serialize on this shard, senders to different ones don't.
    ClampShard& shard = clamp_shards_[shard_of(to)];
    MutexLock lk(shard.mu);
    TimePoint nw = net_now();
    msg.deliver_at = nw + lat;
    // FIFO per destination: never deliver before an earlier-sent message.
    TimePoint& clamp = shard.last[to];
    if (msg.deliver_at < clamp) msg.deliver_at = clamp;
    clamp = msg.deliver_at;
    msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);

    if (verdict.duplicate) {
      Message copy;
      copy.from = from;
      copy.to = to;
      copy.payload = msg.payload;  // deliberate copy: a second wire message
      copy.deliver_at = nw + dup_lat;
      if (copy.deliver_at < clamp) copy.deliver_at = clamp;
      clamp = copy.deliver_at;
      copy.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
      registry().counter("net.fault.duplicate").inc();
      extra.push_back(std::move(copy));
    }

    // Every send to the destination — including one that is itself held
    // back below — counts as releaser traffic for earlier holds. That keeps
    // the overtake bound exact: a held message is passed by at most `defer`
    // later sends, never by a chain of releases it did not count. Called
    // under the clamp shard so release bookkeeping stays atomic with the
    // (clamp, seq) assignment for this destination.
    for (Message& rel : faults_->on_send(to, msg.deliver_at)) {
      extra.push_back(std::move(rel));
    }
    if (verdict.defer > 0) {
      // Hold the message back for bounded reordering; the next `defer`
      // sends to the same destination release it.
      registry().counter("net.fault.reorder.held").inc();
      held = true;
      faults_->hold(to, std::move(msg), verdict.defer);
    }

    shard.msgs += 1;
    shard.bytes += msg_bytes;
  }

  count_send(from_host, to_host, msg_bytes);

  if (!held) deliver(dest, std::move(msg), /*tap=*/true);
  for (Message& m : extra) deliver(dest, std::move(m), /*tap=*/false);
  return true;
}

void SimNetwork::deliver(std::shared_ptr<Endpoint> dest, Message&& msg,
                         bool tap) {
  if (tap && has_tap_.load(std::memory_order_acquire)) {
    MutexLock lk(tap_mu_);
    if (tap_) tap_(msg);
  }
  if (virtual_mode()) {
    enqueue_virtual(std::move(msg));
    return;
  }
  dest->deposit(std::move(msg));
}

void SimNetwork::apply_crash(const std::string& host) {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    MutexLock lk(mu_);
    registry().counter("net.crash").inc();
    for (auto& [id, ep] : endpoints_) {
      if (ep->host() == host) eps.push_back(ep);
    }
  }
  // mark_crashed() both drops queued messages AND makes the endpoint
  // refuse deposits, closing the race with a send() that validated crash
  // state but deposits later. Once this returns, no in-flight message can
  // land on the crashed host.
  for (auto& ep : eps) ep->mark_crashed();
}

void SimNetwork::apply_recover(const std::string& host) {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    MutexLock lk(mu_);
    for (auto& [id, ep] : endpoints_) {
      if (ep->host() == host) eps.push_back(ep);
    }
  }
  for (auto& ep : eps) ep->mark_recovered();
}

void SimNetwork::deposit_swept(Message msg) {
  std::shared_ptr<Endpoint> dest;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end()) {
      BufferPool::recycle(std::move(msg.payload));
      return;
    }
    dest = it->second;
  }
  registry().counter("net.fault.reorder.swept").inc();
  if (msg.deliver_at < net_now()) msg.deliver_at = net_now();
  if (virtual_mode()) {
    enqueue_virtual(std::move(msg));
    return;
  }
  dest->deposit(std::move(msg));
}

// --- virtual-time event loop -------------------------------------------------

void SimNetwork::enqueue_virtual(Message&& msg) {
  MutexLock lk(vmu_);
  vqueue_.push(VEvent{msg.deliver_at, vorder_++, std::move(msg), nullptr});
}

void SimNetwork::schedule_at(TimePoint at, std::function<void()> fn) {
  if (!virtual_mode()) {
    throw Error("SimNetwork::schedule_at requires TimeMode::kVirtual");
  }
  TimePoint vnow = vclock_.now();
  if (at < vnow) at = vnow;
  MutexLock lk(vmu_);
  vqueue_.push(VEvent{at, vorder_++, Message{}, std::move(fn)});
}

void SimNetwork::schedule_after(Duration d, std::function<void()> fn) {
  schedule_at(net_now() + d, std::move(fn));
}

void SimNetwork::dispatch_delivery(Message&& msg) {
  std::shared_ptr<Endpoint> dest;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(msg.to);
    if (it != endpoints_.end()) dest = it->second;
  }
  if (!dest) {
    registry().counter("net.vdeliver.gone").inc();
    BufferPool::recycle(std::move(msg.payload));
    return;
  }
  if (!dest->deliver_now(std::move(msg))) {
    registry().counter("net.vdeliver.refused").inc();
  }
}

std::size_t SimNetwork::run_until(TimePoint t) {
  if (!virtual_mode()) {
    throw Error("SimNetwork::run_until requires TimeMode::kVirtual");
  }
  std::size_t dispatched = 0;
  for (;;) {
    TimePoint qhead = TimePoint::max();
    {
      MutexLock lk(vmu_);
      if (!vqueue_.empty()) qhead = vqueue_.top().at;
    }
    TimePoint fdl = faults_->next_virtual_deadline();
    TimePoint next = std::min(qhead, fdl);
    if (next > t) break;
    vclock_.advance_to(next);
    if (fdl <= next) {
      // Fault deadlines first at equal timestamps: a plan event taking
      // effect at T applies before deliveries stamped T, matching the
      // threaded mode where the worker applies the event and in-flight
      // messages land after.
      faults_->advance_virtual(next);
      ++dispatched;
      vevents_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    VEvent ev{TimePoint{}, 0, Message{}, nullptr};
    bool have = false;
    {
      MutexLock lk(vmu_);
      if (!vqueue_.empty() && vqueue_.top().at <= next) {
        ev = std::move(const_cast<VEvent&>(vqueue_.top()));
        vqueue_.pop();
        have = true;
      }
    }
    if (!have) continue;  // a concurrent pop or sweep consumed it
    ++dispatched;
    vevents_.fetch_add(1, std::memory_order_relaxed);
    if (ev.fn) {
      ev.fn();
    } else {
      dispatch_delivery(std::move(ev.msg));
    }
  }
  vclock_.advance_to(t);
  return dispatched;
}

std::size_t SimNetwork::run_until_idle(std::size_t horizon) {
  if (!virtual_mode()) {
    throw Error("SimNetwork::run_until_idle requires TimeMode::kVirtual");
  }
  std::size_t dispatched = 0;
  while (dispatched < horizon) {
    TimePoint qhead = TimePoint::max();
    {
      MutexLock lk(vmu_);
      if (!vqueue_.empty()) qhead = vqueue_.top().at;
    }
    TimePoint next = std::min(qhead, faults_->next_virtual_deadline());
    if (next == TimePoint::max()) break;
    dispatched += run_until(next);
  }
  return dispatched;
}

// --- deprecated forwarding shims over faults() -------------------------------

void SimNetwork::crash_host(const std::string& host) {
  faults_->crash_host(host);
}

void SimNetwork::recover_host(const std::string& host) {
  faults_->recover_host(host);
}

bool SimNetwork::is_crashed(const std::string& host) const {
  return faults_->is_crashed(host);
}

void SimNetwork::partition(const std::string& host_a, const std::string& host_b) {
  faults_->partition(host_a, host_b);
}

void SimNetwork::heal(const std::string& host_a, const std::string& host_b) {
  faults_->heal(host_a, host_b);
}

void SimNetwork::set_drop_rate(double p) {
  faults_->set_drop_rate(p);
}

void SimNetwork::set_tap(Tap tap) {
  MutexLock lk(tap_mu_);
  tap_ = std::move(tap);
  has_tap_.store(static_cast<bool>(tap_), std::memory_order_release);
}

}  // namespace cqos::net
