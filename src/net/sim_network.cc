#include "net/sim_network.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "net/fault.h"

namespace cqos::net {

// --- Endpoint ---------------------------------------------------------------

std::optional<Message> Endpoint::recv(Duration timeout) {
  TimePoint deadline = now() + timeout;
  MutexLock lk(mu_);
  for (;;) {
    if (closed_) return std::nullopt;
    if (!inbox_.empty()) {
      auto first = inbox_.begin();
      TimePoint ready_at = first->first;
      if (ready_at <= now()) {
        Message msg = std::move(first->second);
        inbox_.erase(first);
        return msg;
      }
      // The head message has not matured. Give up once the caller's
      // deadline passed and the head cannot mature before it.
      if (ready_at > deadline && now() >= deadline) return std::nullopt;
      cv_.wait_until(mu_, std::min(ready_at, deadline));
    } else {
      if (now() >= deadline) return std::nullopt;
      cv_.wait_until(mu_, deadline);
    }
  }
}

void Endpoint::close() {
  MutexLock lk(mu_);
  closed_ = true;
  inbox_.clear();
  cv_.notify_all();
}

bool Endpoint::closed() const {
  MutexLock lk(mu_);
  return closed_;
}

void Endpoint::deposit(Message msg) {
  {
    MutexLock lk(mu_);
    // crashed_ re-validates what send() checked under the network lock:
    // between that check and this deposit a crash_host() may have run, and
    // a crashed host must not receive the in-flight message.
    if (!closed_ && !crashed_) {
      inbox_.emplace(msg.deliver_at, std::move(msg));
      cv_.notify_all();
      return;
    }
  }
  BufferPool::recycle(std::move(msg.payload));
}

void Endpoint::mark_crashed() {
  MutexLock lk(mu_);
  crashed_ = true;
  inbox_.clear();
}

void Endpoint::mark_recovered() {
  MutexLock lk(mu_);
  crashed_ = false;
}

void Endpoint::clear_inbox() {
  MutexLock lk(mu_);
  inbox_.clear();
}

// --- SimNetwork --------------------------------------------------------------

SimNetwork::SimNetwork(NetConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  // The controller's fault RNG starts from the NetConfig seed: in
  // jitter-free configurations this reproduces the exact drop sequence the
  // pre-FaultController network produced (tests tune seeds against it).
  faults_ = std::make_unique<FaultController>(*this, cfg.seed);
  if (cfg.drop_rate > 0) faults_->set_drop_rate(cfg.drop_rate);
}

SimNetwork::~SimNetwork() = default;

std::string SimNetwork::host_of(const std::string& endpoint_id) {
  auto pos = endpoint_id.find('/');
  return pos == std::string::npos ? endpoint_id : endpoint_id.substr(0, pos);
}

std::shared_ptr<Endpoint> SimNetwork::create_endpoint(const std::string& id) {
  MutexLock lk(mu_);
  if (endpoints_.contains(id)) throw Error("endpoint id already registered: " + id);
  auto ep = std::make_shared<Endpoint>(id, host_of(id));
  if (faults_->is_crashed(ep->host())) ep->mark_crashed();
  endpoints_.emplace(id, ep);
  return ep;
}

void SimNetwork::remove_endpoint(const std::string& id) {
  std::shared_ptr<Endpoint> ep;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
    // Prune the FIFO clamp: long-lived simulations with endpoint churn
    // would otherwise grow this map without bound.
    last_deliver_.erase(id);
  }
  ep->close();
}

void SimNetwork::count_send(const std::string& from_host,
                            const std::string& to_host, std::size_t bytes) {
  metrics::Registry& reg = registry();
  reg.counter("net.sent.msgs").inc();
  reg.counter("net.sent.bytes").inc(bytes);
  std::string pair = "net.pair." + from_host + ":" + to_host;
  reg.counter(pair + ".msgs").inc();
  reg.counter(pair + ".bytes").inc(bytes);
}

void SimNetwork::count_drop(const std::string& from_host,
                            const std::string& to_host, const char* reason) {
  metrics::Registry& reg = registry();
  reg.counter(std::string("net.drop.") + reason).inc();
  reg.counter("net.pair." + from_host + ":" + to_host + ".drops").inc();
}

Duration SimNetwork::compute_latency(const std::string& from_host,
                                     const std::string& to_host,
                                     std::size_t bytes) {
  Duration lat;
  if (from_host == to_host) {
    lat = cfg_.loopback_latency;
  } else {
    lat = cfg_.base_latency + cfg_.per_byte * static_cast<std::int64_t>(bytes);
  }
  if (cfg_.jitter > 0) {
    double j = rng_.next_double() * cfg_.jitter;
    lat += std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(std::chrono::duration<double>(lat).count() * j));
  }
  return lat;
}

bool SimNetwork::send(const std::string& from, const std::string& to,
                      Bytes&& payload) {
  std::shared_ptr<Endpoint> dest;
  Message msg;
  bool held = false;
  std::vector<Message> extra;  // duplicate copy + released reorder holds
  {
    MutexLock lk(mu_);
    std::string from_host = host_of(from);
    std::string to_host = host_of(to);

    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      count_drop(from_host, to_host, "unknown_dest");
      BufferPool::recycle(std::move(payload));
      return false;
    }

    bool loopback = from_host == to_host;
    FaultDecision verdict = faults_->judge(from_host, to_host, loopback);
    if (verdict.drop) {
      CQOS_LOG_DEBUG("net: dropped message ", from, " -> ", to, " (",
                     verdict.drop_reason, ")");
      count_drop(from_host, to_host, verdict.drop_reason);
      BufferPool::recycle(std::move(payload));
      return false;
    }

    dest = it->second;
    msg.from = from;
    msg.to = to;
    Duration lat = compute_latency(from_host, to_host, payload.size());
    if (verdict.latency_factor != 1.0) {
      lat = std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(
              std::chrono::duration<double>(lat).count() *
              verdict.latency_factor));
    }
    lat += verdict.extra_latency;
    msg.deliver_at = now() + lat;
    // FIFO per destination: never deliver before an earlier-sent message.
    auto& clamp = last_deliver_[to];
    if (msg.deliver_at < clamp) msg.deliver_at = clamp;
    clamp = msg.deliver_at;
    msg.seq = next_seq_++;
    msg.payload = std::move(payload);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
    count_send(from_host, to_host, msg.payload.size());

    if (verdict.duplicate) {
      Message copy;
      copy.from = from;
      copy.to = to;
      copy.payload = msg.payload;  // deliberate copy: a second wire message
      copy.deliver_at =
          now() + compute_latency(from_host, to_host, copy.payload.size());
      if (copy.deliver_at < clamp) copy.deliver_at = clamp;
      clamp = copy.deliver_at;
      copy.seq = next_seq_++;
      registry().counter("net.fault.duplicate").inc();
      extra.push_back(std::move(copy));
    }

    // Every send to the destination — including one that is itself held
    // back below — counts as releaser traffic for earlier holds. That keeps
    // the overtake bound exact: a held message is passed by at most `defer`
    // later sends, never by a chain of releases it did not count.
    for (Message& rel : faults_->on_send(to, msg.deliver_at)) {
      extra.push_back(std::move(rel));
    }
    if (verdict.defer > 0) {
      // Hold the message back for bounded reordering; the next `defer`
      // sends to the same destination release it.
      registry().counter("net.fault.reorder.held").inc();
      held = true;
      faults_->hold(to, std::move(msg), verdict.defer);
    }
  }

  if (!held) {
    {
      MutexLock lk(tap_mu_);
      if (tap_) tap_(msg);
    }
    dest->deposit(std::move(msg));
  }
  for (Message& m : extra) dest->deposit(std::move(m));
  return true;
}

void SimNetwork::apply_crash(const std::string& host) {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    MutexLock lk(mu_);
    registry().counter("net.crash").inc();
    for (auto& [id, ep] : endpoints_) {
      if (ep->host() == host) eps.push_back(ep);
    }
  }
  // mark_crashed() both drops queued messages AND makes the endpoint
  // refuse deposits, closing the race with a send() that validated crash
  // state under mu_ but deposits after releasing it. Once this returns, no
  // in-flight message can land on the crashed host.
  for (auto& ep : eps) ep->mark_crashed();
}

void SimNetwork::apply_recover(const std::string& host) {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    MutexLock lk(mu_);
    for (auto& [id, ep] : endpoints_) {
      if (ep->host() == host) eps.push_back(ep);
    }
  }
  for (auto& ep : eps) ep->mark_recovered();
}

void SimNetwork::deposit_swept(Message msg) {
  std::shared_ptr<Endpoint> dest;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end()) {
      BufferPool::recycle(std::move(msg.payload));
      return;
    }
    dest = it->second;
    registry().counter("net.fault.reorder.swept").inc();
    if (msg.deliver_at < now()) msg.deliver_at = now();
  }
  dest->deposit(std::move(msg));
}

// --- deprecated forwarding shims over faults() -------------------------------

void SimNetwork::crash_host(const std::string& host) {
  faults_->crash_host(host);
}

void SimNetwork::recover_host(const std::string& host) {
  faults_->recover_host(host);
}

bool SimNetwork::is_crashed(const std::string& host) const {
  return faults_->is_crashed(host);
}

void SimNetwork::partition(const std::string& host_a, const std::string& host_b) {
  faults_->partition(host_a, host_b);
}

void SimNetwork::heal(const std::string& host_a, const std::string& host_b) {
  faults_->heal(host_a, host_b);
}

void SimNetwork::set_drop_rate(double p) {
  faults_->set_drop_rate(p);
}

void SimNetwork::set_tap(Tap tap) {
  MutexLock lk(tap_mu_);
  tap_ = std::move(tap);
}

}  // namespace cqos::net
