#include "net/sim_network.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"

namespace cqos::net {

// --- Endpoint ---------------------------------------------------------------

std::optional<Message> Endpoint::recv(Duration timeout) {
  TimePoint deadline = now() + timeout;
  MutexLock lk(mu_);
  for (;;) {
    if (closed_) return std::nullopt;
    if (!inbox_.empty()) {
      auto first = inbox_.begin();
      TimePoint ready_at = first->first;
      if (ready_at <= now()) {
        Message msg = std::move(first->second);
        inbox_.erase(first);
        return msg;
      }
      // The head message has not matured. Give up once the caller's
      // deadline passed and the head cannot mature before it.
      if (ready_at > deadline && now() >= deadline) return std::nullopt;
      cv_.wait_until(mu_, std::min(ready_at, deadline));
    } else {
      if (now() >= deadline) return std::nullopt;
      cv_.wait_until(mu_, deadline);
    }
  }
}

void Endpoint::close() {
  MutexLock lk(mu_);
  closed_ = true;
  inbox_.clear();
  cv_.notify_all();
}

bool Endpoint::closed() const {
  MutexLock lk(mu_);
  return closed_;
}

void Endpoint::deposit(Message msg) {
  {
    MutexLock lk(mu_);
    // crashed_ re-validates what send() checked under the network lock:
    // between that check and this deposit a crash_host() may have run, and
    // a crashed host must not receive the in-flight message.
    if (!closed_ && !crashed_) {
      inbox_.emplace(msg.deliver_at, std::move(msg));
      cv_.notify_all();
      return;
    }
  }
  BufferPool::recycle(std::move(msg.payload));
}

void Endpoint::mark_crashed() {
  MutexLock lk(mu_);
  crashed_ = true;
  inbox_.clear();
}

void Endpoint::mark_recovered() {
  MutexLock lk(mu_);
  crashed_ = false;
}

void Endpoint::clear_inbox() {
  MutexLock lk(mu_);
  inbox_.clear();
}

// --- SimNetwork --------------------------------------------------------------

SimNetwork::SimNetwork(NetConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

std::string SimNetwork::host_of(const std::string& endpoint_id) {
  auto pos = endpoint_id.find('/');
  return pos == std::string::npos ? endpoint_id : endpoint_id.substr(0, pos);
}

std::shared_ptr<Endpoint> SimNetwork::create_endpoint(const std::string& id) {
  MutexLock lk(mu_);
  if (endpoints_.contains(id)) throw Error("endpoint id already registered: " + id);
  auto ep = std::make_shared<Endpoint>(id, host_of(id));
  if (crashed_.contains(ep->host())) ep->mark_crashed();
  endpoints_.emplace(id, ep);
  return ep;
}

void SimNetwork::remove_endpoint(const std::string& id) {
  std::shared_ptr<Endpoint> ep;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
    // Prune the FIFO clamp: long-lived simulations with endpoint churn
    // would otherwise grow this map without bound.
    last_deliver_.erase(id);
  }
  ep->close();
}

void SimNetwork::count_send(const std::string& from_host,
                            const std::string& to_host, std::size_t bytes) {
  metrics::Registry& reg = registry();
  reg.counter("net.sent.msgs").inc();
  reg.counter("net.sent.bytes").inc(bytes);
  std::string pair = "net.pair." + from_host + ":" + to_host;
  reg.counter(pair + ".msgs").inc();
  reg.counter(pair + ".bytes").inc(bytes);
}

void SimNetwork::count_drop(const std::string& from_host,
                            const std::string& to_host, const char* reason) {
  metrics::Registry& reg = registry();
  reg.counter(std::string("net.drop.") + reason).inc();
  reg.counter("net.pair." + from_host + ":" + to_host + ".drops").inc();
}

Duration SimNetwork::compute_latency(const std::string& from_host,
                                     const std::string& to_host,
                                     std::size_t bytes) {
  Duration lat;
  if (from_host == to_host) {
    lat = cfg_.loopback_latency;
  } else {
    lat = cfg_.base_latency + cfg_.per_byte * static_cast<std::int64_t>(bytes);
  }
  if (cfg_.jitter > 0) {
    double j = rng_.next_double() * cfg_.jitter;
    lat += std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(std::chrono::duration<double>(lat).count() * j));
  }
  return lat;
}

bool SimNetwork::send(const std::string& from, const std::string& to,
                      Bytes&& payload) {
  std::shared_ptr<Endpoint> dest;
  Message msg;
  {
    MutexLock lk(mu_);
    std::string from_host = host_of(from);
    std::string to_host = host_of(to);

    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      count_drop(from_host, to_host, "unknown_dest");
      BufferPool::recycle(std::move(payload));
      return false;
    }

    if (crashed_.contains(to_host) || crashed_.contains(from_host)) {
      count_drop(from_host, to_host, "crashed");
      BufferPool::recycle(std::move(payload));
      return false;
    }

    auto pair = std::minmax(from_host, to_host);
    if (partitions_.contains({pair.first, pair.second})) {
      count_drop(from_host, to_host, "partition");
      BufferPool::recycle(std::move(payload));
      return false;
    }

    if (from_host != to_host && cfg_.drop_rate > 0 &&
        rng_.next_bool(cfg_.drop_rate)) {
      CQOS_LOG_DEBUG("net: dropped message ", from, " -> ", to);
      count_drop(from_host, to_host, "random");
      BufferPool::recycle(std::move(payload));
      return false;
    }

    dest = it->second;
    msg.from = from;
    msg.to = to;
    msg.deliver_at = now() + compute_latency(from_host, to_host, payload.size());
    // FIFO per destination: never deliver before an earlier-sent message.
    auto& clamp = last_deliver_[to];
    if (msg.deliver_at < clamp) msg.deliver_at = clamp;
    clamp = msg.deliver_at;
    msg.seq = next_seq_++;
    msg.payload = std::move(payload);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
    count_send(from_host, to_host, msg.payload.size());
  }

  {
    MutexLock lk(tap_mu_);
    if (tap_) tap_(msg);
  }

  dest->deposit(std::move(msg));
  return true;
}

void SimNetwork::crash_host(const std::string& host) {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    MutexLock lk(mu_);
    crashed_.insert(host);
    registry().counter("net.crash").inc();
    for (auto& [id, ep] : endpoints_) {
      if (ep->host() == host) eps.push_back(ep);
    }
  }
  // mark_crashed() both drops queued messages AND makes the endpoint
  // refuse deposits, closing the race with a send() that validated crash
  // state under mu_ but deposits after releasing it. Once this returns, no
  // in-flight message can land on the crashed host.
  for (auto& ep : eps) ep->mark_crashed();
}

void SimNetwork::recover_host(const std::string& host) {
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    MutexLock lk(mu_);
    crashed_.erase(host);
    for (auto& [id, ep] : endpoints_) {
      if (ep->host() == host) eps.push_back(ep);
    }
  }
  for (auto& ep : eps) ep->mark_recovered();
}

bool SimNetwork::is_crashed(const std::string& host) const {
  MutexLock lk(mu_);
  return crashed_.contains(host);
}

void SimNetwork::partition(const std::string& host_a, const std::string& host_b) {
  auto pair = std::minmax(host_a, host_b);
  MutexLock lk(mu_);
  partitions_.insert({pair.first, pair.second});
}

void SimNetwork::heal(const std::string& host_a, const std::string& host_b) {
  auto pair = std::minmax(host_a, host_b);
  MutexLock lk(mu_);
  partitions_.erase({pair.first, pair.second});
}

void SimNetwork::set_drop_rate(double p) {
  MutexLock lk(mu_);
  cfg_.drop_rate = p;
}

void SimNetwork::set_tap(Tap tap) {
  MutexLock lk(tap_mu_);
  tap_ = std::move(tap);
}

}  // namespace cqos::net
