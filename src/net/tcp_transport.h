// Real-socket TCP implementation of net::Transport.
//
// One listening socket per transport instance and one epoll EventLoop
// thread that owns ALL socket I/O: application threads calling send() only
// resolve a route, encode a frame (net/framing.h), enqueue it on the
// connection's write queue and post a flush job — read(), write(),
// connect-completion and accept all happen on the loop thread, so no fd is
// ever touched from two threads.
//
// Connection state machine (after lighttpd's mod_proxy fdevent core;
// SNIPPETS.md §3):
//
//   kConnecting  non-blocking connect() in flight; the socket is armed for
//                EPOLLOUT, whose arrival means "resolved" — SO_ERROR says
//                whether into kOpen (flush queued frames) or kClosed. A
//                periodic tick sweeps connects older than connect_timeout.
//   kOpen        EPOLLIN drains the socket through a FrameDecoder; decoded
//                frames deposit into the destination Endpoint's inbox.
//                EPOLLOUT (armed only while the write queue is non-empty)
//                flushes queued frames, tolerating partial writes.
//   kClosed      terminal: fd closed, queued frames recycled, routes that
//                pointed here forgotten. Entered on peer close, EPOLLERR/
//                EPOLLHUP, a framing protocol error (oversized/malformed
//                frame), or connect failure/timeout.
//
// Routing: a frame for endpoint "host/svc" goes to (1) the local inbox if
// the endpoint is registered here — via a real loopback connection to our
// own listen socket when self_loopback is set, so single-process tests
// exercise the full wire path; (2) the connection a frame from that host
// last arrived on (learned route — how replies reach clients on ephemeral
// ports); (3) a connection to the address in the static peers map. No
// route means the send is dropped, exactly like an unknown destination on
// the simulator.
//
// Lock hierarchy (extends DESIGN.md §8): TcpTransport::mu_ > EventLoop::mu_
// (post while routing) and TcpTransport::mu_ > Endpoint::mu_ (deposit while
// holding the transport lock). Connection records are only mutated under
// mu_; epoll registration calls are confined to the loop thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/framing.h"
#include "net/transport.h"

namespace cqos::net {

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpOptions cfg = {});
  ~TcpTransport() override;

  // --- net::Transport --------------------------------------------------------

  std::shared_ptr<Endpoint> create_endpoint(const std::string& id) override;
  void remove_endpoint(const std::string& id) override;

  /// Route, frame and enqueue. Returns false when the message cannot even be
  /// queued (no route, frame over max_frame_bytes, connection backpressure,
  /// connect failure). A true return means "accepted for delivery", not
  /// "delivered": a queued frame still dies with its connection.
  bool send(const std::string& from, const std::string& to,
            Bytes&& payload) override;

  std::string kind() const override { return "tcp"; }
  TcpTransport* as_tcp() override { return this; }

  std::uint64_t messages_sent() const override {
    return msgs_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const override {
    return bytes_.load(std::memory_order_relaxed);
  }

  // --- TCP-specific ----------------------------------------------------------

  /// The bound listening port (resolves TcpOptions::listen_port == 0).
  std::uint16_t listen_port() const { return listen_port_; }
  const std::string& listen_address() const { return cfg_.listen_address; }

  /// Extend the static routing table after construction: host part of an
  /// endpoint id -> "ip:port". How a client process wires in a server whose
  /// ephemeral port it learned out of band.
  void add_peer(const std::string& host, const std::string& address);

  /// Connections not yet closed (outgoing + accepted). Test hook.
  std::size_t open_connections() const;

  metrics::Registry& metrics_registry() const { return registry(); }

 private:
  struct Conn {
    explicit Conn(std::size_t max_frame_bytes) : decoder(max_frame_bytes) {}
    int fd = -1;
    enum class State { kConnecting, kOpen, kClosed };
    State state = State::kConnecting;
    /// "ip:port" key in out_conns_; empty for accepted connections.
    std::string addr;
    FrameDecoder decoder;
    /// Write queue of encoded frames; woff is the partial-write offset into
    /// the front buffer.
    std::deque<Bytes> wq;
    std::size_t wq_bytes = 0;
    std::size_t woff = 0;
    /// Epoll mask currently registered (loop thread bookkeeping to avoid
    /// redundant epoll_ctl calls). 0 = not registered yet.
    std::uint32_t armed = 0;
    TimePoint connect_started{};
  };
  using ConnPtr = std::shared_ptr<Conn>;

  // Loop-thread entry points.
  void on_accept(std::uint32_t events);
  void on_conn_event(const std::weak_ptr<Conn>& wc, std::uint32_t events);
  void read_conn_locked(const ConnPtr& c) CQOS_REQUIRES(mu_);
  void flush_locked(const ConnPtr& c) CQOS_REQUIRES(mu_);
  void rearm_locked(const ConnPtr& c) CQOS_REQUIRES(mu_);
  void close_conn_locked(const ConnPtr& c, const char* reason)
      CQOS_REQUIRES(mu_);
  void register_conn_locked(const ConnPtr& c) CQOS_REQUIRES(mu_);
  void sweep_connect_timeouts();

  // Called under mu_ from send().
  ConnPtr route_locked(const std::string& to_host, bool to_is_local,
                       const char** drop_reason) CQOS_REQUIRES(mu_);
  ConnPtr connect_to_locked(const std::string& addr) CQOS_REQUIRES(mu_);
  void deposit_frame_locked(const ConnPtr& c, Frame&& f) CQOS_REQUIRES(mu_);

  void count_drop(const char* reason);
  metrics::Registry& registry() const {
    return cfg_.metrics != nullptr ? *cfg_.metrics
                                   : metrics::Registry::global();
  }

  const TcpOptions cfg_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::string self_addr_;  // "listen_address:listen_port"

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Endpoint>> endpoints_
      CQOS_GUARDED_BY(mu_);
  std::map<std::string, std::string> peers_ CQOS_GUARDED_BY(mu_);
  /// Outgoing connections keyed by "ip:port".
  std::map<std::string, ConnPtr> out_conns_ CQOS_GUARDED_BY(mu_);
  /// Accepted (incoming) connections.
  std::vector<ConnPtr> accepted_ CQOS_GUARDED_BY(mu_);
  /// Learned return routes: host -> connection its frames arrive on.
  std::map<std::string, ConnPtr> learned_ CQOS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> msgs_{0};
  std::atomic<std::uint64_t> bytes_{0};
  metrics::Counter* sent_msgs_counter_ = nullptr;
  metrics::Counter* sent_bytes_counter_ = nullptr;
  metrics::Counter* recv_msgs_counter_ = nullptr;
  metrics::Counter* recv_bytes_counter_ = nullptr;

  // Declared last: the destructor stops the loop first, so no callback can
  // touch the fields above while they are torn down.
  EventLoop loop_;
};

}  // namespace cqos::net
