#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/log.h"

namespace cqos::net {

namespace {

/// Parse "ip:port" into a sockaddr_in. Throws Error on a malformed address.
sockaddr_in parse_addr(const std::string& addr) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos) throw Error("tcp address needs ip:port, got " + addr);
  std::string ip = addr.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(addr.substr(colon + 1));
  } catch (const std::exception&) {
    throw Error("bad port in tcp address " + addr);
  }
  if (port < 1 || port > 65535) throw Error("bad port in tcp address " + addr);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, ip.c_str(), &sa.sin_addr) != 1) {
    throw Error("bad ip in tcp address " + addr);
  }
  return sa;
}

int make_socket() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw Error(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

TcpTransport::TcpTransport(TcpOptions cfg) : cfg_(std::move(cfg)) {
  sent_msgs_counter_ = &registry().counter("net.sent.msgs");
  sent_bytes_counter_ = &registry().counter("net.sent.bytes");
  recv_msgs_counter_ = &registry().counter("net.recv.msgs");
  recv_bytes_counter_ = &registry().counter("net.recv.bytes");

  listen_fd_ = make_socket();
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = parse_addr(cfg_.listen_address + ":1");
  sa.sin_port = htons(cfg_.listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw Error("bind " + cfg_.listen_address + ":" +
                std::to_string(cfg_.listen_port) + ": " + err);
  }
  if (::listen(listen_fd_, 128) != 0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw Error("listen: " + err);
  }
  socklen_t len = sizeof(sa);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  listen_port_ = ntohs(sa.sin_port);
  self_addr_ = cfg_.listen_address + ":" + std::to_string(listen_port_);

  {
    MutexLock lk(mu_);
    peers_ = cfg_.peers;
  }

  // The connect-timeout sweep needs a periodic wakeup; 50ms bounds how late
  // a timeout can fire without costing measurable idle CPU.
  loop_.set_tick(ms(50), [this] { sweep_connect_timeouts(); });
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t ev) { on_accept(ev); });
  loop_.start();
}

TcpTransport::~TcpTransport() {
  // Join the loop thread FIRST: afterwards no handler/job/tick can run, so
  // tearing down connection records and fds below is race-free.
  loop_.stop();
  ::close(listen_fd_);
  MutexLock lk(mu_);
  auto close_all = [](const ConnPtr& c) {
    if (c->state != Conn::State::kClosed && c->fd >= 0) ::close(c->fd);
  };
  for (auto& [addr, c] : out_conns_) close_all(c);
  for (auto& c : accepted_) close_all(c);
}

std::shared_ptr<Endpoint> TcpTransport::create_endpoint(const std::string& id) {
  MutexLock lk(mu_);
  if (endpoints_.contains(id)) {
    throw Error("endpoint id already registered: " + id);
  }
  auto ep = std::make_shared<Endpoint>(id, host_of(id));
  endpoints_.emplace(id, ep);
  return ep;
}

void TcpTransport::remove_endpoint(const std::string& id) {
  std::shared_ptr<Endpoint> ep;
  {
    MutexLock lk(mu_);
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
  }
  ep->close();
}

void TcpTransport::add_peer(const std::string& host,
                            const std::string& address) {
  MutexLock lk(mu_);
  peers_[host] = address;
}

std::size_t TcpTransport::open_connections() const {
  MutexLock lk(mu_);
  std::size_t n = 0;
  for (const auto& [addr, c] : out_conns_) {
    if (c->state != Conn::State::kClosed) ++n;
  }
  for (const auto& c : accepted_) {
    if (c->state != Conn::State::kClosed) ++n;
  }
  return n;
}

void TcpTransport::count_drop(const char* reason) {
  registry().counter(std::string("net.drop.") + reason).inc();
}

bool TcpTransport::send(const std::string& from, const std::string& to,
                        Bytes&& payload) {
  std::size_t frame_len = frame_overhead(from, to) + payload.size();
  if (frame_len > cfg_.max_frame_bytes) {
    count_drop("oversize");
    BufferPool::recycle(std::move(payload));
    return false;
  }
  std::string to_host = host_of(to);
  std::size_t payload_bytes = payload.size();

  MutexLock lk(mu_);
  auto ep_it = endpoints_.find(to);
  bool to_is_local = ep_it != endpoints_.end();

  if (to_is_local && !cfg_.self_loopback) {
    // Direct deposit: fast, but moves no wire bytes. Off by default.
    Message msg;
    msg.from = from;
    msg.to = to;
    msg.payload = std::move(payload);
    msg.deliver_at = now();
    msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    ep_it->second->deposit(std::move(msg));
    msgs_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    sent_msgs_counter_->inc();
    sent_bytes_counter_->inc(payload_bytes);
    return true;
  }

  const char* drop_reason = nullptr;
  ConnPtr conn = route_locked(to_host, to_is_local, &drop_reason);
  if (!conn) {
    count_drop(drop_reason != nullptr ? drop_reason : "noroute");
    BufferPool::recycle(std::move(payload));
    return false;
  }
  if (conn->wq_bytes + 4 + frame_len > cfg_.max_queued_bytes) {
    count_drop("backpressure");
    BufferPool::recycle(std::move(payload));
    return false;
  }

  Bytes frame = encode_frame(from, to, payload);
  BufferPool::recycle(std::move(payload));
  conn->wq_bytes += frame.size();
  conn->wq.push_back(std::move(frame));
  msgs_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  sent_msgs_counter_->inc();
  sent_bytes_counter_->inc(payload_bytes);

  // All I/O happens on the loop thread; hand it the flush.
  std::weak_ptr<Conn> wc = conn;
  loop_.post([this, wc] {
    ConnPtr c = wc.lock();
    if (!c) return;
    MutexLock lk2(mu_);
    if (c->state == Conn::State::kOpen) {
      flush_locked(c);
    } else if (c->state == Conn::State::kConnecting) {
      rearm_locked(c);
    }
  });
  return true;
}

TcpTransport::ConnPtr TcpTransport::route_locked(const std::string& to_host,
                                                 bool to_is_local,
                                                 const char** drop_reason) {
  // Local destination with self_loopback: dial our own listen socket so the
  // message travels the full wire path.
  if (to_is_local) return connect_to_locked(self_addr_);

  auto learned = learned_.find(to_host);
  if (learned != learned_.end()) {
    if (learned->second->state != Conn::State::kClosed) return learned->second;
    learned_.erase(learned);
  }
  auto peer = peers_.find(to_host);
  if (peer != peers_.end()) return connect_to_locked(peer->second);
  *drop_reason = "noroute";
  return nullptr;
}

TcpTransport::ConnPtr TcpTransport::connect_to_locked(const std::string& addr) {
  auto it = out_conns_.find(addr);
  if (it != out_conns_.end() && it->second->state != Conn::State::kClosed) {
    return it->second;
  }

  sockaddr_in sa{};
  int fd = -1;
  try {
    sa = parse_addr(addr);
    fd = make_socket();
  } catch (const Error& e) {
    CQOS_LOG_WARN("tcp connect setup to ", addr, ": ", e.what());
    return nullptr;
  }

  auto conn = std::make_shared<Conn>(cfg_.max_frame_bytes);
  conn->fd = fd;
  conn->addr = addr;
  conn->connect_started = now();
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc == 0) {
    conn->state = Conn::State::kOpen;
  } else if (errno == EINPROGRESS) {
    conn->state = Conn::State::kConnecting;
  } else {
    CQOS_LOG_WARN("tcp connect to ", addr, ": ", std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  out_conns_[addr] = conn;

  std::weak_ptr<Conn> wc = conn;
  loop_.post([this, wc] {
    ConnPtr c = wc.lock();
    if (!c) return;
    MutexLock lk(mu_);
    if (c->state != Conn::State::kClosed) register_conn_locked(c);
  });
  return conn;
}

void TcpTransport::register_conn_locked(const ConnPtr& c) {
  if (c->armed != 0) return;  // already registered
  std::uint32_t events =
      EPOLLIN | (c->state == Conn::State::kConnecting || !c->wq.empty()
                     ? EPOLLOUT
                     : 0u);
  std::weak_ptr<Conn> wc = c;
  loop_.add_fd(c->fd, events,
               [this, wc](std::uint32_t ev) { on_conn_event(wc, ev); });
  c->armed = events;
}

void TcpTransport::rearm_locked(const ConnPtr& c) {
  if (c->armed == 0 || c->state == Conn::State::kClosed) return;
  std::uint32_t want =
      EPOLLIN | (c->state == Conn::State::kConnecting || !c->wq.empty()
                     ? EPOLLOUT
                     : 0u);
  if (want != c->armed) {
    loop_.mod_fd(c->fd, want);
    c->armed = want;
  }
}

void TcpTransport::on_accept(std::uint32_t /*events*/) {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        CQOS_LOG_WARN("accept: ", std::strerror(errno));
      }
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(cfg_.max_frame_bytes);
    conn->fd = fd;
    conn->state = Conn::State::kOpen;
    MutexLock lk(mu_);
    accepted_.push_back(conn);
    register_conn_locked(conn);
  }
}

void TcpTransport::on_conn_event(const std::weak_ptr<Conn>& wc,
                                 std::uint32_t events) {
  ConnPtr c = wc.lock();
  if (!c) return;
  MutexLock lk(mu_);
  if (c->state == Conn::State::kClosed) return;

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn_locked(c, c->state == Conn::State::kConnecting ? "connect"
                                                              : "conn_error");
    return;
  }
  if (c->state == Conn::State::kConnecting && (events & EPOLLOUT) != 0) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CQOS_LOG_WARN("tcp connect to ", c->addr, ": ", std::strerror(err));
      close_conn_locked(c, "connect");
      return;
    }
    c->state = Conn::State::kOpen;
  }
  if ((events & EPOLLIN) != 0) {
    read_conn_locked(c);
    if (c->state == Conn::State::kClosed) return;
  }
  if (c->state == Conn::State::kOpen) {
    flush_locked(c);
    if (c->state == Conn::State::kClosed) return;
    rearm_locked(c);
  }
}

void TcpTransport::read_conn_locked(const ConnPtr& c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(c->fd, buf, sizeof(buf));
    if (n > 0) {
      if (!c->decoder.feed(std::span<const std::uint8_t>(
              buf, static_cast<std::size_t>(n)))) {
        // Protocol error (oversized or malformed frame): clean close — the
        // stream is unrecoverable once framing desynchronizes.
        CQOS_LOG_WARN("tcp framing error from ", c->addr.empty() ? "peer" : c->addr,
                      ": ", c->decoder.error());
        count_drop("protocol");
        close_conn_locked(c, "protocol");
        return;
      }
      while (auto f = c->decoder.next()) {
        deposit_frame_locked(c, std::move(*f));
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) {
        // Short read: the socket buffer is drained (avoids one guaranteed
        // EAGAIN round-trip per wakeup).
        return;
      }
      continue;
    }
    if (n == 0) {
      close_conn_locked(c, "peer_closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CQOS_LOG_WARN("tcp read: ", std::strerror(errno));
    close_conn_locked(c, "read_error");
    return;
  }
}

void TcpTransport::deposit_frame_locked(const ConnPtr& c, Frame&& f) {
  recv_msgs_counter_->inc();
  recv_bytes_counter_->inc(f.payload.size());

  // Learn the return route: frames from this host reach it over this
  // connection — the only way to address a client on an ephemeral port.
  learned_[host_of(f.from)] = c;

  auto it = endpoints_.find(f.to);
  if (it == endpoints_.end()) {
    count_drop("unknown_dest");
    BufferPool::recycle(std::move(f.payload));
    return;
  }
  Message msg;
  msg.from = std::move(f.from);
  msg.to = std::move(f.to);
  msg.payload = std::move(f.payload);
  msg.deliver_at = now();
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  it->second->deposit(std::move(msg));
}

void TcpTransport::flush_locked(const ConnPtr& c) {
  while (!c->wq.empty()) {
    Bytes& front = c->wq.front();
    ssize_t n = ::write(c->fd, front.data() + c->woff, front.size() - c->woff);
    if (n > 0) {
      c->woff += static_cast<std::size_t>(n);
      if (c->woff == front.size()) {
        c->wq_bytes -= front.size();
        BufferPool::recycle(std::move(front));
        c->wq.pop_front();
        c->woff = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CQOS_LOG_WARN("tcp write: ", std::strerror(errno));
    close_conn_locked(c, "write_error");
    return;
  }
  rearm_locked(c);
}

void TcpTransport::close_conn_locked(const ConnPtr& c, const char* reason) {
  if (c->state == Conn::State::kClosed) return;
  bool had_queued = !c->wq.empty();
  c->state = Conn::State::kClosed;
  if (c->armed != 0) {
    loop_.del_fd(c->fd);
    c->armed = 0;
  }
  ::close(c->fd);
  c->fd = -1;
  for (Bytes& b : c->wq) BufferPool::recycle(std::move(b));
  c->wq.clear();
  c->wq_bytes = 0;
  if (had_queued) count_drop(reason);
  if (!c->addr.empty()) {
    auto it = out_conns_.find(c->addr);
    if (it != out_conns_.end() && it->second == c) out_conns_.erase(it);
  }
  std::erase(accepted_, c);
  std::erase_if(learned_, [&c](const auto& kv) { return kv.second == c; });
}

void TcpTransport::sweep_connect_timeouts() {
  MutexLock lk(mu_);
  std::vector<ConnPtr> stale;
  for (const auto& [addr, c] : out_conns_) {
    if (c->state == Conn::State::kConnecting &&
        now() - c->connect_started > cfg_.connect_timeout) {
      stale.push_back(c);
    }
  }
  for (const ConnPtr& c : stale) {
    CQOS_LOG_WARN("tcp connect to ", c->addr, " timed out");
    close_conn_locked(c, "connect_timeout");
  }
}

}  // namespace cqos::net
