// Minimal epoll-driven event loop for the TCP transport.
//
// One owned thread blocks in epoll_wait and dispatches three kinds of work:
//
//   fd handlers   add_fd(fd, events, handler) registers a callback invoked
//                 with the ready epoll event mask. The handler map is
//                 touched only on the loop thread — add/mod/del from other
//                 threads must go through post() (the one exception:
//                 before start(), when no loop thread exists yet).
//   posted jobs   post(fn) enqueues a closure from any thread and wakes the
//                 loop via an eventfd; jobs run on the loop thread in FIFO
//                 order. This is how the transport moves all socket I/O
//                 onto one thread instead of locking each fd.
//   the tick      an optional periodic callback (set_tick before start),
//                 driven by the epoll_wait timeout. The transport uses it
//                 to sweep connect timeouts.
//
// The loop never touches transport state itself; lifetime is the caller's
// problem — stop() joins the thread, after which no callback will ever run
// again, so destroying state the callbacks capture is safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>

#include "common/clock.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::net {

class EventLoop {
 public:
  using FdHandler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Install the periodic callback. Must be called before start().
  void set_tick(Duration period, std::function<void()> fn);

  void start();
  /// Idempotent; joins the loop thread. After stop() returns no handler,
  /// job or tick will run again.
  void stop();

  /// Register `fd` with the given epoll event mask (EPOLLIN/EPOLLOUT/...).
  /// Loop thread only (or before start()).
  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  /// Run `fn` on the loop thread. Thread-safe; wakes the loop immediately.
  /// Jobs posted after stop() are silently dropped.
  void post(std::function<void()> fn);

  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_id_;
  }

 private:
  void run();
  void drain_jobs();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  Duration tick_period_{};
  std::function<void()> tick_;
  std::map<int, FdHandler> handlers_;  // loop thread only
  std::thread thread_;
  std::thread::id loop_thread_id_;

  Mutex mu_;
  std::deque<std::function<void()>> jobs_ CQOS_GUARDED_BY(mu_);
  bool stopping_ CQOS_GUARDED_BY(mu_) = false;
  bool started_ = false;
};

}  // namespace cqos::net
