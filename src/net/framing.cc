#include "net/framing.h"

#include <utility>

namespace cqos::net {

namespace {

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

Bytes encode_frame(const std::string& from, const std::string& to,
                   std::span<const std::uint8_t> payload) {
  ByteWriter w(4 + frame_overhead(from, to) + payload.size());
  w.put_u32(0);  // length placeholder
  w.put_u8(static_cast<std::uint8_t>(FrameType::kData));
  w.put_string(from);
  w.put_string(to);
  w.put_bytes(payload);
  w.patch_u32(0, static_cast<std::uint32_t>(w.size() - 4));
  return std::move(w).take();
}

std::size_t frame_overhead(const std::string& from, const std::string& to) {
  return 1 + varint_size(from.size()) + from.size() + varint_size(to.size()) +
         to.size();
}

bool FrameDecoder::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  buf_.clear();
  pos_ = 0;
  return false;
}

bool FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (failed_) return false;
  buf_.insert(buf_.end(), data.begin(), data.end());
  for (;;) {
    std::size_t avail = buf_.size() - pos_;
    if (avail < 4) break;
    const std::uint8_t* p = buf_.data() + pos_;
    std::uint32_t body_len = static_cast<std::uint32_t>(p[0]) |
                             static_cast<std::uint32_t>(p[1]) << 8 |
                             static_cast<std::uint32_t>(p[2]) << 16 |
                             static_cast<std::uint32_t>(p[3]) << 24;
    // Reject before buffering the body: the length prefix alone must not
    // make us accumulate max_frame_bytes+1 bytes waiting for a frame we
    // would refuse anyway.
    if (body_len > max_frame_bytes_) {
      return fail("frame of " + std::to_string(body_len) +
                  " bytes exceeds max " + std::to_string(max_frame_bytes_));
    }
    if (avail < 4 + static_cast<std::size_t>(body_len)) break;
    ByteReader r(std::span<const std::uint8_t>(buf_.data() + pos_ + 4,
                                               body_len));
    try {
      std::uint8_t type = r.get_u8();
      if (type != static_cast<std::uint8_t>(FrameType::kData)) {
        return fail("unknown frame type " + std::to_string(type));
      }
      Frame f;
      f.from = r.get_string();
      f.to = r.get_string();
      f.payload = r.get_bytes(r.remaining());
      ready_.push_back(std::move(f));
    } catch (const DecodeError& e) {
      return fail(std::string("malformed frame: ") + e.what());
    }
    pos_ += 4 + body_len;
  }
  // Compact once the parsed prefix dominates the buffer, so a long-lived
  // connection does not grow its accumulation buffer without bound.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return true;
}

std::optional<Frame> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

}  // namespace cqos::net
