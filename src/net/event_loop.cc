#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/log.h"

namespace cqos::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw Error(std::string("epoll_create1: ") + std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw Error(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::set_tick(Duration period, std::function<void()> fn) {
  tick_period_ = period;
  tick_ = std::move(fn);
}

void EventLoop::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
  loop_thread_id_ = thread_.get_id();
}

void EventLoop::stop() {
  {
    MutexLock lk(mu_);
    if (stopping_) {
      // Already stopping/stopped; fall through to join below.
    }
    stopping_ = true;
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  handlers_[fd] = std::move(handler);
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    handlers_.erase(fd);
    throw Error(std::string("epoll_ctl add: ") + std::strerror(errno));
  }
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    CQOS_LOG_WARN("epoll_ctl mod fd=", fd, ": ", std::strerror(errno));
  }
}

void EventLoop::del_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    MutexLock lk(mu_);
    if (stopping_) return;
    jobs_.push_back(std::move(fn));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_jobs() {
  // Swap out the queue so handlers that post() more work do not deadlock or
  // starve the poll — newly posted jobs run on the next iteration.
  std::deque<std::function<void()>> batch;
  {
    MutexLock lk(mu_);
    batch.swap(jobs_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  int timeout_ms = -1;
  if (tick_) {
    auto t = std::chrono::duration_cast<std::chrono::milliseconds>(tick_period_);
    timeout_ms = static_cast<int>(t.count());
    if (timeout_ms < 1) timeout_ms = 1;
  }
  TimePoint last_tick = now();
  std::vector<epoll_event> events(64);
  for (;;) {
    {
      MutexLock lk(mu_);
      if (stopping_ && jobs_.empty()) break;
    }
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      CQOS_LOG_ERROR("epoll_wait: ", std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t count;
        while (::read(wake_fd_, &count, sizeof(count)) > 0) {
        }
        continue;
      }
      // A handler may del_fd() peers from the same batch; look each fd up
      // fresh and skip ones that vanished mid-batch.
      auto it = handlers_.find(fd);
      if (it != handlers_.end()) it->second(events[i].events);
    }
    drain_jobs();
    if (tick_ && now() - last_tick >= tick_period_) {
      last_tick = now();
      tick_();
    }
  }
}

}  // namespace cqos::net
