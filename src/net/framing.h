// Length-prefixed message framing for the TCP transport.
//
// A TCP stream has no message boundaries, so every transport message is
// wrapped in one frame:
//
//     [u32 LE body_len][u8 type][varint-len from][varint-len to][payload]
//
// body_len counts everything after the 4-byte prefix. `from`/`to` are the
// endpoint ids exactly as the application addressed them — the receiving
// transport routes on `to` and learns a return route for `from`'s host.
// The payload is the opaque byte string the layers above produced (CDR,
// JRMP, micro-protocol stack output); framing never inspects it.
//
// FrameDecoder is a pure incremental parser: feed() it whatever the socket
// produced — one byte at a time or a megabyte — and pop complete frames
// with next(). It owns exactly two failure modes, both of which must close
// the connection (DESIGN.md §15): a declared body length over the
// configured maximum (a corrupt or hostile prefix must not drive an
// unbounded allocation), and a body that does not decode as a frame.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>

#include "common/bytes.h"

namespace cqos::net {

/// Frame type tag. One value today; the byte exists so the wire format can
/// grow control frames without a flag day.
enum class FrameType : std::uint8_t { kData = 1 };

/// One decoded frame.
struct Frame {
  std::string from;
  std::string to;
  Bytes payload;
};

/// Encode one data frame ready to write to a socket.
Bytes encode_frame(const std::string& from, const std::string& to,
                   std::span<const std::uint8_t> payload);

/// Size of the encoded frame for `payload_bytes` of payload, without
/// building it (backpressure accounting before encoding).
std::size_t frame_overhead(const std::string& from, const std::string& to);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Append raw stream bytes and parse as far as possible. Returns false on
  /// a protocol error (oversized or malformed frame) — the connection must
  /// be closed; the decoder accepts nothing further.
  bool feed(std::span<const std::uint8_t> data);

  /// Pop the next complete frame, if any.
  std::optional<Frame> next();

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet parsed into a frame (test hook).
  std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  bool fail(const std::string& why);

  const std::size_t max_frame_bytes_;
  Bytes buf_;
  std::size_t pos_ = 0;  // parse cursor into buf_
  std::deque<Frame> ready_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace cqos::net
