#include "net/transport.h"

#include <algorithm>

#include "net/sim_network.h"
#include "net/tcp_transport.h"

namespace cqos::net {

// --- Endpoint ---------------------------------------------------------------

std::optional<Message> Endpoint::recv(Duration timeout) {
  TimePoint deadline = now() + timeout;
  MutexLock lk(mu_);
  for (;;) {
    if (closed_) return std::nullopt;
    if (!inbox_.empty()) {
      auto first = inbox_.begin();
      TimePoint ready_at = first->first;
      if (ready_at <= now()) {
        Message msg = std::move(first->second);
        inbox_.erase(first);
        return msg;
      }
      // The head message has not matured. Give up once the caller's
      // deadline passed and the head cannot mature before it.
      if (ready_at > deadline && now() >= deadline) return std::nullopt;
      cv_.wait_until(mu_, std::min(ready_at, deadline));
    } else {
      if (now() >= deadline) return std::nullopt;
      cv_.wait_until(mu_, deadline);
    }
  }
}

void Endpoint::set_handler(Handler fn) {
  MutexLock lk(mu_);
  handler_ = std::move(fn);
}

void Endpoint::close() {
  MutexLock lk(mu_);
  closed_ = true;
  inbox_.clear();
  cv_.notify_all();
}

bool Endpoint::closed() const {
  MutexLock lk(mu_);
  return closed_;
}

void Endpoint::deposit(Message msg) {
  {
    MutexLock lk(mu_);
    // crashed_ re-validates what send() checked at judge time: between that
    // check and this deposit a crash_host() may have run, and a crashed
    // host must not receive the in-flight message.
    if (!closed_ && !crashed_) {
      inbox_.emplace(msg.deliver_at, std::move(msg));
      cv_.notify_all();
      return;
    }
  }
  BufferPool::recycle(std::move(msg.payload));
}

bool Endpoint::deliver_now(Message msg) {
  Handler h;
  {
    MutexLock lk(mu_);
    if (closed_ || crashed_) {
      // Unlock before recycling; the pool is lock-free but keep the
      // critical section minimal.
    } else if (!handler_) {
      inbox_.emplace(msg.deliver_at, std::move(msg));
      cv_.notify_all();
      return true;
    } else {
      h = handler_;
    }
  }
  if (h) {
    h(std::move(msg));
    return true;
  }
  BufferPool::recycle(std::move(msg.payload));
  return false;
}

void Endpoint::mark_crashed() {
  MutexLock lk(mu_);
  crashed_ = true;
  inbox_.clear();
}

void Endpoint::mark_recovered() {
  MutexLock lk(mu_);
  crashed_ = false;
}

void Endpoint::clear_inbox() {
  MutexLock lk(mu_);
  inbox_.clear();
}

// --- Transport ---------------------------------------------------------------

std::string Transport::host_of(const std::string& endpoint_id) {
  auto pos = endpoint_id.find('/');
  return pos == std::string::npos ? endpoint_id : endpoint_id.substr(0, pos);
}

std::unique_ptr<Transport> make_transport(const TransportConfig& cfg) {
  switch (cfg.kind) {
    case TransportKind::kSim:
      return std::make_unique<SimNetwork>(cfg.sim);
    case TransportKind::kTcp:
      return std::make_unique<TcpTransport>(cfg.tcp);
  }
  return std::make_unique<SimNetwork>(cfg.sim);
}

}  // namespace cqos::net
