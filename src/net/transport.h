// Transport seam: the abstract byte-moving substrate CQoS runs on.
//
// Every layer above the network — the ORB/RMI/HTTP platforms, the naming
// services, the CQoS micro-protocol compositions — talks to exactly three
// operations: register a receive endpoint, remove it, and send a payload
// from one endpoint id to another. net::Transport is that seam. Two
// implementations exist (DESIGN.md §15):
//
//   SimNetwork    (net/sim_network.h) the in-process simulated cluster:
//                 deterministic latency model, fault injection, virtual
//                 time. The CI substrate.
//   TcpTransport  (net/tcp_transport.h) real sockets: an epoll event loop,
//                 non-blocking connect/write/read state machines and
//                 length-prefixed framing, so the same stacks run across
//                 real processes.
//
// Code above the seam must not name a concrete transport (enforced by
// cqos_lint's transport-seam rule); construction goes through
// make_transport(TransportConfig), the single factory keyed by
// TransportKind. Endpoint ids are "host/service" strings on both
// transports: the host part drives latency and crash semantics on the
// simulator and connection routing on TCP.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace cqos::net {

class SimNetwork;
class TcpTransport;
class FaultController;

struct Message {
  std::string from;
  std::string to;
  Bytes payload;
  TimePoint deliver_at{};
  std::uint64_t seq = 0;
};

/// Scope guard for receive loops: recycles the message's payload into the
/// BufferPool when the iteration finishes decoding it — the last hop of
/// zero-copy delivery (DESIGN.md §10). The payload must not be referenced
/// (including via ByteReader::view spans) after the guard fires.
class PayloadRecycler {
 public:
  explicit PayloadRecycler(Message& msg) : msg_(msg) {}
  ~PayloadRecycler() { BufferPool::recycle(std::move(msg_.payload)); }
  PayloadRecycler(const PayloadRecycler&) = delete;
  PayloadRecycler& operator=(const PayloadRecycler&) = delete;

 private:
  Message& msg_;
};

/// Receiving side of one registered endpoint. Shared by both transports:
/// the simulator deposits messages with a future deliver_at that recv()
/// waits out; TCP deposits already-matured messages straight off the wire.
class Endpoint {
 public:
  Endpoint(std::string id, std::string host) : id_(std::move(id)), host_(std::move(host)) {}

  const std::string& id() const { return id_; }
  const std::string& host() const { return host_; }

  /// Block until a message is deliverable (its simulated latency elapsed) or
  /// `timeout` passes. Returns nullopt on timeout or close. Real-time mode;
  /// in virtual mode messages land in the inbox already matured, so
  /// recv(Duration::zero()) drains them without blocking.
  std::optional<Message> recv(Duration timeout);

  /// Virtual-mode push delivery: the scheduler invokes `fn` the moment the
  /// delivery event fires instead of parking the message in the inbox.
  /// Handlers may re-enter SimNetwork::send() (e.g. to reply). Unused (and
  /// never invoked) in real-time mode.
  using Handler = std::function<void(Message&&)>;
  void set_handler(Handler fn);

  /// Unblock all receivers; subsequent recv() returns nullopt immediately.
  void close();
  bool closed() const;

 private:
  friend class SimNetwork;
  friend class TcpTransport;
  friend class FaultController;
  /// Refused (message dropped) while the endpoint's host is crashed or the
  /// endpoint is closed. The crash check lives HERE, at deposit time, not
  /// only in SimNetwork::send: send() validates crash state before
  /// depositing without holding the network lock through the deposit, so a
  /// concurrent crash_host() would otherwise clear the inbox and still see
  /// this in-flight message land on a "crashed" host.
  void deposit(Message msg);
  /// Virtual-mode delivery at event-dispatch time: crash/close check, then
  /// handler (outside the endpoint lock) or inbox. Returns false when the
  /// message was refused.
  bool deliver_now(Message msg);
  /// Crash transitions: mark_crashed() also drops queued messages.
  void mark_crashed();
  void mark_recovered();
  void clear_inbox();

  const std::string id_;
  const std::string host_;
  mutable Mutex mu_;
  CondVar cv_;
  // Ordered by (deliver_at, seq).
  std::multimap<TimePoint, Message> inbox_ CQOS_GUARDED_BY(mu_);
  Handler handler_ CQOS_GUARDED_BY(mu_);
  bool closed_ CQOS_GUARDED_BY(mu_) = false;
  bool crashed_ CQOS_GUARDED_BY(mu_) = false;
};

/// The abstract transport. Everything the platforms and naming services
/// need; anything transport-specific (fault injection, virtual time, the
/// listen port) lives on the concrete class, reachable via as_sim()/as_tcp()
/// for the few drivers that legitimately depend on it.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Register a new endpoint. Id format "host/service"; the host part
  /// drives latency/crash semantics (sim) or connection routing (tcp).
  /// Throws Error if the id is taken.
  virtual std::shared_ptr<Endpoint> create_endpoint(const std::string& id) = 0;

  virtual void remove_endpoint(const std::string& id) = 0;

  /// Send `payload` from endpoint `from` to endpoint `to`. Returns false if
  /// the message was dropped (unknown destination, crashed host, partition,
  /// backpressure, or random drop) — senders cannot distinguish these, as on
  /// a real network. A true return is NOT a delivery guarantee: on TCP a
  /// queued frame can still die with its connection.
  ///
  /// Takes the payload by rvalue: the buffer moves into the in-flight
  /// message without copying (zero-copy delivery; DESIGN.md §10).
  /// Dropped/refused payloads are recycled into the BufferPool.
  virtual bool send(const std::string& from, const std::string& to,
                    Bytes&& payload) = 0;

  /// "sim" | "tcp".
  virtual std::string kind() const = 0;

  /// The transport's notion of "now": wall clock, except for the
  /// simulator's virtual mode.
  virtual TimePoint net_now() const { return now(); }

  virtual std::uint64_t messages_sent() const = 0;
  virtual std::uint64_t bytes_sent() const = 0;

  /// Concrete-transport escape hatches for drivers that need transport-
  /// specific control (fault injection, virtual time, peer wiring). Null on
  /// every other implementation — callers must handle both outcomes.
  virtual SimNetwork* as_sim() { return nullptr; }
  virtual TcpTransport* as_tcp() { return nullptr; }

  /// Host part of an endpoint id ("hostA/orb0" -> "hostA"). Ids without a
  /// '/' are their own host.
  static std::string host_of(const std::string& endpoint_id);
};

// --- structured transport configuration --------------------------------------

/// Parameters of the simulated network (see net/sim_network.h's header
/// comment for the latency model and the two time modes).
struct NetConfig {
  /// One-way latency between distinct hosts for a zero-byte message.
  Duration base_latency = us(120);
  /// Additional latency per payload byte (models wire + serialization DMA).
  Duration per_byte = std::chrono::nanoseconds(12);
  /// Latency between endpoints on the same host.
  Duration loopback_latency = us(15);
  /// Uniform jitter fraction applied to the computed latency ([0, jitter]).
  /// Drawn from a per-sender RNG stream seeded with `seed`, so one sender's
  /// jitter sequence is independent of how many other senders exist.
  double jitter = 0.05;
  /// Probability that any inter-host message is silently dropped.
  double drop_rate = 0.0;
  /// RNG seed for jitter/drops (deterministic tests). Every per-sender
  /// jitter stream and per-sender fault-decision stream starts from this
  /// seed, so a single-sender run reproduces the sequences the pre-sharded
  /// (one shared Rng) network produced.
  std::uint64_t seed = 42;
  /// Metrics registry for wire-level accounting (messages/bytes/drops,
  /// per host pair). Null means the process-wide global registry; tests
  /// that assert exact counter values pass their own.
  metrics::Registry* metrics = nullptr;
  /// Mint per-host-pair counters ("net.pair.<a>:<b>.*"). Disable for
  /// modeled scenarios with unbounded host populations — 10^5 modeled
  /// clients would otherwise mint three counters per (client, server) pair
  /// touched. Aggregate counters (net.sent.*, net.drop.*) stay on.
  bool pair_metrics = true;
  /// Clock the network schedules against (see net/sim_network.h). Virtual
  /// mode is single-driver oriented: one thread sends and runs the event
  /// loop.
  TimeMode time_mode = TimeMode::kReal;
  /// Ablation/bench knob: funnel every real-time send through one global
  /// mutex, reproducing the pre-sharding lock convoy so the contention
  /// bench can measure what the sharding buys. Never set in production
  /// paths.
  bool serialize_send = false;
};

/// Structured name for what NetConfig is under TransportConfig: the
/// sim-kind sub-struct. (NetConfig keeps its historical name because every
/// existing caller spells it that way.)
using SimOptions = NetConfig;

/// Parameters of the real TCP transport (net/tcp_transport.h).
struct TcpOptions {
  /// Address the listening socket binds to.
  std::string listen_address = "127.0.0.1";
  /// Listening port; 0 picks an ephemeral port (read it back with
  /// TcpTransport::listen_port() and hand it to peers).
  std::uint16_t listen_port = 0;
  /// Static routes: host part of an endpoint id -> "ip:port" of the process
  /// hosting it. Routes are also learned dynamically — a data frame arriving
  /// on a connection teaches the receiver that the sender's host is
  /// reachable over that connection (how replies find ephemeral client
  /// ports). add_peer() extends this map after construction.
  std::map<std::string, std::string> peers;
  /// Messages between endpoints hosted by this same transport travel
  /// through a real loopback connection to our own listen socket (true),
  /// exercising the full connect/frame/epoll path, or are deposited
  /// directly (false), which is faster but moves no wire bytes.
  bool self_loopback = true;
  /// Frames larger than this are refused on send and are a protocol error
  /// on receive (the connection is closed): a corrupt or hostile length
  /// prefix must not make us allocate unbounded memory.
  std::size_t max_frame_bytes = 4u << 20;
  /// Per-connection backpressure: send() fails (drop, "backpressure") once
  /// this many bytes are queued behind a slow or unconnected peer.
  std::size_t max_queued_bytes = 8u << 20;
  /// A non-blocking connect older than this is failed and its queue
  /// dropped.
  Duration connect_timeout = ms(1000);
  /// Metrics registry (null = process-wide global), same accounting names
  /// as the simulator: net.sent.*, net.drop.<reason>.
  metrics::Registry* metrics = nullptr;
};

enum class TransportKind { kSim, kTcp };

/// The one knob callers hold: which transport, with that transport's
/// parameters. Replaces the old pattern of growing NetConfig a bool per
/// feature — per-kind options live in per-kind sub-structs.
struct TransportConfig {
  TransportKind kind = TransportKind::kSim;
  SimOptions sim;  // read when kind == kSim
  TcpOptions tcp;  // read when kind == kTcp

  static TransportConfig simulated(SimOptions opts = {}) {
    TransportConfig cfg;
    cfg.kind = TransportKind::kSim;
    cfg.sim = std::move(opts);
    return cfg;
  }
  static TransportConfig real_tcp(TcpOptions opts = {}) {
    TransportConfig cfg;
    cfg.kind = TransportKind::kTcp;
    cfg.tcp = std::move(opts);
    return cfg;
  }
};

/// The single transport factory. Everything outside tests and the net/
/// library itself constructs transports here (cqos_lint: transport-seam).
std::unique_ptr<Transport> make_transport(const TransportConfig& cfg);

}  // namespace cqos::net
