#include "net/fault.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.h"
#include "common/log.h"

namespace cqos::net {

// --- FaultPlan text form -----------------------------------------------------

namespace {

std::string format_duration(Duration d) {
  auto usec = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  if (usec % 1000 == 0) return std::to_string(usec / 1000) + "ms";
  return std::to_string(usec) + "us";
}

Duration parse_duration(const std::string& tok, const char* what) {
  std::size_t pos = 0;
  while (pos < tok.size() &&
         (std::isdigit(static_cast<unsigned char>(tok[pos])) != 0)) {
    ++pos;
  }
  if (pos == 0) throw ConfigError(std::string("fault plan: bad ") + what +
                                  " '" + tok + "'");
  std::int64_t n = std::stoll(tok.substr(0, pos));
  std::string unit = tok.substr(pos);
  if (unit == "us") return us(n);
  if (unit == "ms" || unit.empty()) return ms(n);
  if (unit == "s") return ms(n * 1000);
  throw ConfigError(std::string("fault plan: bad ") + what + " unit '" + tok +
                    "' (expected us/ms/s)");
}

std::string format_rate(double r) {
  std::ostringstream os;
  os << r;
  return os.str();
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) toks.push_back(tok);
  return toks;
}

}  // namespace

std::string FaultEvent::describe() const {
  std::ostringstream os;
  os << '@' << format_duration(at) << ' ';
  switch (kind) {
    case FaultKind::kCrash:
      os << "crash " << host_a;
      break;
    case FaultKind::kRecover:
      os << "recover " << host_a;
      break;
    case FaultKind::kPartition:
      os << "partition " << host_a << ' ' << host_b;
      break;
    case FaultKind::kHeal:
      os << "heal " << host_a << ' ' << host_b;
      break;
    case FaultKind::kDropRate:
      os << "drop_rate " << format_rate(rate);
      break;
    case FaultKind::kDropBurst:
      os << "drop_burst " << host_a << ' ' << host_b << ' '
         << format_duration(duration) << ' ' << format_rate(rate);
      break;
    case FaultKind::kLatencySpike:
      os << "latency_spike " << format_duration(duration) << " x"
         << format_rate(factor);
      break;
    case FaultKind::kDuplicate:
      os << "duplicate " << format_rate(rate);
      break;
    case FaultKind::kReorder:
      os << "reorder " << format_rate(rate) << " window=" << window;
      break;
  }
  return os.str();
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;
    if (toks[0] == "plan") {
      if (toks.size() != 2) throw ConfigError("fault plan: 'plan' needs a name");
      plan.name = toks[1];
      continue;
    }
    if (toks[0] == "seed") {
      if (toks.size() != 2) throw ConfigError("fault plan: 'seed' needs a value");
      plan.seed = std::stoull(toks[1]);
      continue;
    }
    if (toks[0][0] != '@') {
      throw ConfigError("fault plan: expected '@<offset> <event>', got '" +
                        line + "'");
    }
    FaultEvent e;
    e.at = parse_duration(toks[0].substr(1), "offset");
    if (toks.size() < 2) throw ConfigError("fault plan: missing event in '" +
                                           line + "'");
    const std::string& verb = toks[1];
    auto need = [&](std::size_t n) {
      if (toks.size() < 2 + n) {
        throw ConfigError("fault plan: '" + verb + "' needs " +
                          std::to_string(n) + " argument(s): '" + line + "'");
      }
    };
    if (verb == "crash" || verb == "recover") {
      need(1);
      e.kind = verb == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
      e.host_a = toks[2];
    } else if (verb == "partition" || verb == "heal") {
      need(2);
      e.kind = verb == "partition" ? FaultKind::kPartition : FaultKind::kHeal;
      e.host_a = toks[2];
      e.host_b = toks[3];
    } else if (verb == "drop_rate") {
      need(1);
      e.kind = FaultKind::kDropRate;
      e.rate = std::stod(toks[2]);
    } else if (verb == "drop_burst") {
      need(3);
      e.kind = FaultKind::kDropBurst;
      e.host_a = toks[2];
      e.host_b = toks[3];
      e.duration = parse_duration(toks[4], "duration");
      e.rate = toks.size() > 5 ? std::stod(toks[5]) : 1.0;
    } else if (verb == "latency_spike") {
      need(2);
      e.kind = FaultKind::kLatencySpike;
      e.duration = parse_duration(toks[2], "duration");
      if (toks[3].empty() || toks[3][0] != 'x') {
        throw ConfigError("fault plan: latency_spike factor must be 'x<n>': '" +
                          line + "'");
      }
      e.factor = std::stod(toks[3].substr(1));
    } else if (verb == "duplicate") {
      need(1);
      e.kind = FaultKind::kDuplicate;
      e.rate = std::stod(toks[2]);
    } else if (verb == "reorder") {
      need(2);
      e.kind = FaultKind::kReorder;
      e.rate = std::stod(toks[2]);
      const std::string& w = toks[3];
      if (w.rfind("window=", 0) != 0) {
        throw ConfigError("fault plan: reorder needs window=<n>: '" + line +
                          "'");
      }
      e.window = std::stoi(w.substr(7));
    } else {
      throw ConfigError("fault plan: unknown event '" + verb + "'");
    }
    plan.events.push_back(std::move(e));
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::string FaultPlan::serialize() const {
  std::ostringstream os;
  os << "plan " << name << '\n' << "seed " << seed << '\n';
  for (const FaultEvent& e : events) os << e.describe() << '\n';
  return os.str();
}

Duration FaultPlan::duration() const {
  return events.empty() ? Duration::zero() : events.back().at;
}

// --- FaultController ---------------------------------------------------------

FaultController::FaultController(SimNetwork& net, std::uint64_t seed)
    : net_(net), stream_seed_(seed) {
  // Virtual mode has no wall-clock deadlines to chase: plan events and hold
  // sweeps are pulled by SimNetwork::run_until via next_virtual_deadline().
  if (!net_.virtual_mode()) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

TimePoint FaultController::net_now() const { return net_.net_now(); }

Rng& FaultController::stream(const std::string& from) {
  return streams_.try_emplace(from, Rng(stream_seed_)).first->second;
}

void FaultController::refresh_quiescent() {
  // Expired-but-unswept bursts/spikes keep this false; that only costs the
  // fast path, never correctness (the locked path ignores expired entries).
  bool q = crashed_.empty() && partitions_.empty() && bursts_.empty() &&
           spikes_.empty() && drop_rate_ <= 0.0 && duplicate_rate_ <= 0.0 &&
           reorder_rate_ <= 0.0;
  quiescent_.store(q, std::memory_order_release);
}

FaultController::~FaultController() {
  std::vector<Message> held;
  {
    MutexLock lk(mu_);
    stop_ = true;
    held = take_all_held();
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  for (Message& m : held) BufferPool::recycle(std::move(m.payload));
}

std::vector<Message> FaultController::take_all_held() {
  std::vector<Message> out;
  for (auto& [to, vec] : holds_) {
    for (Held& h : vec) out.push_back(std::move(h.msg));
  }
  holds_.clear();
  holds_active_.fetch_sub(out.size(), std::memory_order_release);
  return out;
}

// --- plan execution ----------------------------------------------------------

void FaultController::run_plan(FaultPlan plan) {
  MutexLock lk(mu_);
  plan_ = std::move(plan);
  next_event_ = 0;
  plan_t0_ = net_now();
  plan_active_ = !plan_.events.empty();
  // Restart every sender's decision stream from the plan seed: decisions
  // become a deterministic function of (plan seed, per-sender traffic).
  stream_seed_ = plan_.seed;
  streams_.clear();
  trace_.clear();
  trace_.push_back("plan " + plan_.name + " seed " +
                   std::to_string(plan_.seed));
  cv_.notify_all();
}

void FaultController::cancel_plan() {
  MutexLock lk(mu_);
  plan_active_ = false;
  next_event_ = plan_.events.size();
  cv_.notify_all();
}

bool FaultController::plan_active() const {
  MutexLock lk(mu_);
  return plan_active_;
}

bool FaultController::wait_plan_done(Duration timeout) {
  TimePoint deadline = now() + timeout;
  MutexLock lk(mu_);
  while (plan_active_) {
    if (now() >= deadline) return false;
    cv_.wait_until(mu_, deadline);
  }
  return true;
}

std::vector<std::string> FaultController::event_trace() const {
  MutexLock lk(mu_);
  return trace_;
}

void FaultController::worker_loop() {
  for (;;) {
    std::vector<FaultEvent> due;
    std::vector<Message> swept;
    {
      MutexLock lk(mu_);
      for (;;) {
        if (stop_) return;
        TimePoint nw = now();
        while (plan_active_ && next_event_ < plan_.events.size() &&
               plan_t0_ + plan_.events[next_event_].at <= nw) {
          due.push_back(plan_.events[next_event_]);
          trace_.push_back(plan_.events[next_event_].describe());
          ++next_event_;
        }
        // Sweep expired holdbacks so reordered messages are never stranded.
        for (auto it = holds_.begin(); it != holds_.end();) {
          auto& vec = it->second;
          for (auto h = vec.begin(); h != vec.end();) {
            if (h->deadline <= nw) {
              swept.push_back(std::move(h->msg));
              holds_active_.fetch_sub(1, std::memory_order_release);
              h = vec.erase(h);
            } else {
              ++h;
            }
          }
          it = vec.empty() ? holds_.erase(it) : std::next(it);
        }
        if (!due.empty() || !swept.empty()) break;
        // Next wake-up: earliest of next plan event / earliest hold deadline.
        TimePoint wake = TimePoint::max();
        if (plan_active_ && next_event_ < plan_.events.size()) {
          wake = plan_t0_ + plan_.events[next_event_].at;
        }
        for (const auto& [to, vec] : holds_) {
          for (const Held& h : vec) wake = std::min(wake, h.deadline);
        }
        if (wake == TimePoint::max()) {
          cv_.wait(mu_);
        } else {
          cv_.wait_until(mu_, wake);
        }
      }
    }
    for (const FaultEvent& e : due) apply_event(e);
    for (Message& m : swept) net_.deposit_swept(std::move(m));
    {
      MutexLock lk(mu_);
      if (plan_active_ && next_event_ >= plan_.events.size()) {
        plan_active_ = false;
        cv_.notify_all();
      }
    }
  }
}

// --- virtual-time pull interface ---------------------------------------------

TimePoint FaultController::next_virtual_deadline() const {
  MutexLock lk(mu_);
  TimePoint next = TimePoint::max();
  if (plan_active_ && next_event_ < plan_.events.size()) {
    next = plan_t0_ + plan_.events[next_event_].at;
  }
  for (const auto& [to, vec] : holds_) {
    for (const Held& h : vec) next = std::min(next, h.deadline);
  }
  return next;
}

void FaultController::advance_virtual(TimePoint vnow) {
  std::vector<FaultEvent> due;
  std::vector<Message> swept;
  bool finished = false;
  {
    MutexLock lk(mu_);
    while (plan_active_ && next_event_ < plan_.events.size() &&
           plan_t0_ + plan_.events[next_event_].at <= vnow) {
      due.push_back(plan_.events[next_event_]);
      trace_.push_back(plan_.events[next_event_].describe());
      ++next_event_;
    }
    if (plan_active_ && next_event_ >= plan_.events.size()) finished = true;
    for (auto it = holds_.begin(); it != holds_.end();) {
      auto& vec = it->second;
      for (auto h = vec.begin(); h != vec.end();) {
        if (h->deadline <= vnow) {
          swept.push_back(std::move(h->msg));
          holds_active_.fetch_sub(1, std::memory_order_release);
          h = vec.erase(h);
        } else {
          ++h;
        }
      }
      it = vec.empty() ? holds_.erase(it) : std::next(it);
    }
  }
  for (const FaultEvent& e : due) apply_event(e);
  for (Message& m : swept) net_.deposit_swept(std::move(m));
  if (finished) {
    MutexLock lk(mu_);
    plan_active_ = false;
    cv_.notify_all();
  }
}

void FaultController::apply_event(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kCrash:
      crash_host(e.host_a);
      break;
    case FaultKind::kRecover:
      recover_host(e.host_a);
      break;
    case FaultKind::kPartition:
      partition(e.host_a, e.host_b);
      break;
    case FaultKind::kHeal:
      heal(e.host_a, e.host_b);
      break;
    case FaultKind::kDropRate:
      set_drop_rate(e.rate);
      break;
    case FaultKind::kDropBurst:
      drop_burst(e.host_a, e.host_b, e.duration, e.rate);
      break;
    case FaultKind::kLatencySpike:
      latency_spike(e.duration, e.factor);
      break;
    case FaultKind::kDuplicate:
      set_duplicate_rate(e.rate);
      break;
    case FaultKind::kReorder:
      set_reorder(e.rate, e.window);
      break;
  }
}

// --- immediate faults --------------------------------------------------------

void FaultController::crash_host(const std::string& host) {
  {
    MutexLock lk(mu_);
    crashed_.insert(host);
    refresh_quiescent();
  }
  // Endpoint marks are applied outside mu_ (SimNetwork takes its own lock).
  net_.apply_crash(host);
}

void FaultController::recover_host(const std::string& host) {
  {
    MutexLock lk(mu_);
    crashed_.erase(host);
    refresh_quiescent();
  }
  net_.apply_recover(host);
}

void FaultController::partition(const std::string& host_a,
                                const std::string& host_b) {
  auto pair = std::minmax(host_a, host_b);
  MutexLock lk(mu_);
  partitions_.insert({pair.first, pair.second});
  refresh_quiescent();
}

void FaultController::heal(const std::string& host_a,
                           const std::string& host_b) {
  auto pair = std::minmax(host_a, host_b);
  MutexLock lk(mu_);
  partitions_.erase({pair.first, pair.second});
  refresh_quiescent();
}

void FaultController::set_drop_rate(double p) {
  MutexLock lk(mu_);
  drop_rate_ = p;
  refresh_quiescent();
}

void FaultController::set_duplicate_rate(double p) {
  MutexLock lk(mu_);
  duplicate_rate_ = p;
  refresh_quiescent();
}

void FaultController::set_reorder(double p, int window) {
  MutexLock lk(mu_);
  reorder_rate_ = p;
  reorder_window_ = window;
  refresh_quiescent();
}

void FaultController::drop_burst(const std::string& host_a,
                                 const std::string& host_b, Duration duration,
                                 double rate) {
  MutexLock lk(mu_);
  bursts_.push_back(Burst{host_a, host_b, rate, net_now() + duration});
  refresh_quiescent();
}

void FaultController::latency_spike(Duration duration, double factor,
                                    Duration extra) {
  MutexLock lk(mu_);
  spikes_.push_back(Spike{factor, extra, net_now() + duration});
  refresh_quiescent();
}

void FaultController::clear_all_faults() {
  std::vector<std::string> to_recover;
  std::vector<Message> held;
  {
    MutexLock lk(mu_);
    to_recover.assign(crashed_.begin(), crashed_.end());
    crashed_.clear();
    partitions_.clear();
    drop_rate_ = 0.0;
    duplicate_rate_ = 0.0;
    reorder_rate_ = 0.0;
    reorder_window_ = 0;
    bursts_.clear();
    spikes_.clear();
    refresh_quiescent();
    held = take_all_held();
  }
  for (const std::string& host : to_recover) net_.apply_recover(host);
  for (Message& m : held) net_.deposit_swept(std::move(m));
}

// --- queries -----------------------------------------------------------------

bool FaultController::is_crashed(const std::string& host) const {
  MutexLock lk(mu_);
  return crashed_.contains(host);
}

bool FaultController::is_partitioned(const std::string& host_a,
                                     const std::string& host_b) const {
  auto pair = std::minmax(host_a, host_b);
  MutexLock lk(mu_);
  return partitions_.contains({pair.first, pair.second});
}

double FaultController::drop_rate() const {
  MutexLock lk(mu_);
  return drop_rate_;
}

double FaultController::duplicate_rate() const {
  MutexLock lk(mu_);
  return duplicate_rate_;
}

double FaultController::reorder_rate() const {
  MutexLock lk(mu_);
  return reorder_rate_;
}

int FaultController::reorder_window() const {
  MutexLock lk(mu_);
  return reorder_window_;
}

std::size_t FaultController::held_count() const {
  MutexLock lk(mu_);
  std::size_t n = 0;
  for (const auto& [to, vec] : holds_) n += vec.size();
  return n;
}

std::string FaultController::describe() const {
  MutexLock lk(mu_);
  std::ostringstream os;
  os << "faults{crashed=[";
  bool first = true;
  for (const auto& h : crashed_) {
    if (!first) os << ',';
    first = false;
    os << h;
  }
  os << "] partitions=" << partitions_.size() << " drop=" << drop_rate_
     << " dup=" << duplicate_rate_ << " reorder=" << reorder_rate_ << "/w"
     << reorder_window_ << " bursts=" << bursts_.size()
     << " spikes=" << spikes_.size();
  std::size_t held = 0;
  for (const auto& [to, vec] : holds_) held += vec.size();
  os << " held=" << held << (plan_active_ ? " plan=active" : "") << "}";
  return os.str();
}

// --- send-path hooks (called under SimNetwork::mu_) --------------------------

FaultDecision FaultController::judge(const std::string& from,
                                     const std::string& from_host,
                                     const std::string& to_host,
                                     bool loopback) {
  FaultDecision d;
  // Healthy-network fast path: with no fault state at all there is nothing
  // to decide and nothing to draw, so skip the controller lock entirely —
  // this is what keeps concurrent senders from serializing here.
  if (quiescent_.load(std::memory_order_acquire)) return d;
  MutexLock lk(mu_);
  if (crashed_.contains(to_host) || crashed_.contains(from_host)) {
    d.drop = true;
    d.drop_reason = "crashed";
    return d;
  }
  if (!loopback) {
    auto pair = std::minmax(from_host, to_host);
    if (partitions_.contains({pair.first, pair.second})) {
      d.drop = true;
      d.drop_reason = "partition";
      return d;
    }
  }
  if (loopback) return d;  // loopback is exempt from lossy/wire faults

  Rng& rng = stream(from);
  TimePoint nw = net_now();
  for (auto it = bursts_.begin(); it != bursts_.end();) {
    if (it->until <= nw) {
      it = bursts_.erase(it);
      continue;
    }
    bool match_a = it->a == "*" || it->a == from_host;
    bool match_b = it->b == "*" || it->b == to_host;
    // A burst between two named hosts hits both directions.
    bool match_rev = it->a != "*" && it->b != "*" && it->a == to_host &&
                     it->b == from_host;
    if ((match_a && match_b) || match_rev) {
      if (rng.next_bool(it->rate)) {
        d.drop = true;
        d.drop_reason = "burst";
        return d;
      }
    }
    ++it;
  }
  if (drop_rate_ > 0 && rng.next_bool(drop_rate_)) {
    d.drop = true;
    d.drop_reason = "random";
    return d;
  }
  for (auto it = spikes_.begin(); it != spikes_.end();) {
    if (it->until <= nw) {
      it = spikes_.erase(it);
      continue;
    }
    d.latency_factor *= it->factor;
    d.extra_latency += it->extra;
    ++it;
  }
  if (duplicate_rate_ > 0 && rng.next_bool(duplicate_rate_)) {
    d.duplicate = true;
  }
  if (reorder_rate_ > 0 && reorder_window_ > 0 &&
      rng.next_bool(reorder_rate_)) {
    d.defer = 1 + static_cast<int>(rng.next_below(
                      static_cast<std::uint64_t>(reorder_window_)));
  }
  return d;
}

void FaultController::hold(const std::string& to, Message msg, int defer) {
  MutexLock lk(mu_);
  holds_[to].push_back(Held{std::move(msg), defer, net_now() + max_hold_});
  holds_active_.fetch_add(1, std::memory_order_release);
  cv_.notify_all();  // worker recomputes its sweep deadline
}

std::vector<Message> FaultController::on_send(const std::string& to,
                                              TimePoint deliver_at) {
  std::vector<Message> released;
  // Nothing held anywhere (the common case) — skip the controller lock.
  // A hold for `to` racing with this send is impossible: both run under
  // `to`'s clamp shard.
  if (holds_active_.load(std::memory_order_acquire) == 0) return released;
  MutexLock lk(mu_);
  auto it = holds_.find(to);
  if (it == holds_.end()) return released;
  auto& vec = it->second;
  for (auto h = vec.begin(); h != vec.end();) {
    if (--h->remaining <= 0) {
      // Same deliver_at as the trigger message: the inbox multimap keeps
      // equal keys in insertion order, and the trigger is deposited first,
      // so the hold is overtaken by exactly the sends that released it.
      h->msg.deliver_at = deliver_at;
      released.push_back(std::move(h->msg));
      holds_active_.fetch_sub(1, std::memory_order_release);
      h = vec.erase(h);
    } else {
      ++h;
    }
  }
  if (vec.empty()) holds_.erase(it);
  return released;
}

}  // namespace cqos::net
