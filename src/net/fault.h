// Deterministic chaos engine for the simulated network.
//
// FaultPlan is a declarative, seeded schedule of timed fault events —
// crash/recover, partition/heal, drop-rate changes, drop bursts, latency
// spikes, message duplication and bounded reordering — with a textual
// round-trippable form:
//
//     plan backup-churn
//     seed 42
//     @120ms crash server1
//     @260ms recover server1
//     @300ms partition server1 server2
//     @420ms heal server1 server2
//     @100ms drop_rate 0.15
//     @150ms drop_burst server0 client0 80ms 1.0
//     @200ms latency_spike 100ms x6
//     @210ms duplicate 0.4
//     @220ms reorder 0.5 window=4
//
// FaultController executes plans and owns ALL fault state (crashed hosts,
// partitions, drop/duplicate/reorder probabilities, timed bursts and
// spikes). It replaces SimNetwork's former scattered mutators — those
// remain only as thin forwarding shims. SimNetwork::send() consults the
// controller for every message via judge()/hold()/on_send().
//
// Locking: SimNetwork's clamp shard > FaultController::mu_. The controller's
// mutex is near-leaf on the send path: judge() is called with no network
// lock held, hold()/on_send() under the destination's clamp shard only;
// controller mutators never hold mu_ while calling back into SimNetwork
// (crash/recover apply endpoint marks after releasing it, the scheduler
// thread deposits swept messages lock-free of mu_).
//
// Per-message randomness comes from per-sender decision streams: each
// sender endpoint id owns an independent Rng seeded with the stream seed
// (NetConfig::seed, replaced by plan.seed when a plan runs), so one
// sender's drop/duplicate/reorder sequence is a function of (seed, its own
// traffic) only — adding concurrent senders does not perturb it, and a
// single-sender run reproduces the pre-split shared-stream sequence.
//
// Time modes: in real time a worker thread fires plan events at wall-clock
// offsets and sweeps expired reorder holds. In virtual time (NetConfig::
// time_mode = kVirtual) no worker is spawned; plan offsets and hold
// deadlines become virtual deadlines that SimNetwork::run_until() pulls via
// next_virtual_deadline()/advance_virtual(), making chaos schedules exact
// instead of best-effort.
//
// Bounded reordering: a deferred message is held back until `defer` (<=
// window) later messages to the same destination endpoint have been sent,
// then re-deposited with the trigger message's deliver_at (equal-key
// multimap order puts it after the trigger), so it is overtaken by at most
// `window` messages. A deadline sweep (scheduler thread) releases stranded
// holds so no message is ever lost to reordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "net/sim_network.h"

namespace cqos::net {

enum class FaultKind {
  kCrash,         // host_a
  kRecover,       // host_a
  kPartition,     // host_a <-> host_b
  kHeal,          // host_a <-> host_b
  kDropRate,      // rate: steady-state inter-host drop probability
  kDropBurst,     // host_a -> host_b ("*" = any) dropped with `rate` for `duration`
  kLatencySpike,  // inter-host latency scaled by `factor` for `duration`
  kDuplicate,     // rate: probability a message is delivered twice
  kReorder,       // rate + window: probability a message is held back
};

struct FaultEvent {
  Duration at{};          // offset from plan start
  FaultKind kind{};
  std::string host_a;
  std::string host_b;
  double rate = 0.0;
  Duration duration{};
  double factor = 1.0;
  int window = 0;

  /// One-line textual form ("@120ms crash server1"), the same syntax
  /// FaultPlan::parse() accepts.
  std::string describe() const;
};

struct FaultPlan {
  std::string name = "plan";
  std::uint64_t seed = 1;
  /// Sorted by `at` (stable: same-offset events keep their textual order).
  std::vector<FaultEvent> events;

  /// Parse the textual form. Throws ConfigError on syntax errors. Events
  /// are sorted by offset.
  static FaultPlan parse(std::string_view text);
  /// Round-trippable textual form: parse(serialize()) == *this.
  std::string serialize() const;
  /// Offset of the last event (zero for an empty plan).
  Duration duration() const;
};

/// Per-message verdict computed by FaultController::judge() for
/// SimNetwork::send(). All fields combine: a message can be duplicated AND
/// have its latency scaled, etc.
struct FaultDecision {
  bool drop = false;
  const char* drop_reason = nullptr;  // metrics suffix ("crashed", "burst", ...)
  bool duplicate = false;
  double latency_factor = 1.0;
  Duration extra_latency{};
  int defer = 0;  // > 0: hold until `defer` later sends to the destination
};

class FaultController {
 public:
  FaultController(SimNetwork& net, std::uint64_t seed);
  ~FaultController();

  FaultController(const FaultController&) = delete;
  FaultController& operator=(const FaultController&) = delete;

  // --- plan execution ------------------------------------------------------

  /// Start executing `plan`: event k fires at start + at_k (wall clock in
  /// real mode; pulled by SimNetwork::run_until in virtual mode). Reseeds
  /// the per-sender decision streams with plan.seed so per-message
  /// decisions are a deterministic function of (plan seed, each sender's
  /// traffic). Replaces any plan still running.
  void run_plan(FaultPlan plan);
  /// Stop applying remaining events (already-applied state persists).
  void cancel_plan();
  bool plan_active() const;
  /// Block until the current plan has applied its last event.
  bool wait_plan_done(Duration timeout);
  /// Applied-event trace: "plan <name> seed <n>" followed by one
  /// describe() line per applied event, in order. Same plan => identical
  /// trace (offsets are the scheduled ones, never wall-clock).
  std::vector<std::string> event_trace() const;

  // --- immediate one-shot faults -------------------------------------------

  /// Crash a host: its endpoints stop receiving, queued messages are lost,
  /// traffic from/to it is dropped. Host process state is untouched (a
  /// network-level crash, as in the paper's testbed).
  void crash_host(const std::string& host);
  void recover_host(const std::string& host);
  /// Cut connectivity between two hosts (both directions).
  void partition(const std::string& host_a, const std::string& host_b);
  void heal(const std::string& host_a, const std::string& host_b);
  void set_drop_rate(double p);
  void set_duplicate_rate(double p);
  /// Each inter-host message is held back with probability `p` until up to
  /// `window` later messages to the same destination have been sent.
  void set_reorder(double p, int window);
  void drop_burst(const std::string& host_a, const std::string& host_b,
                  Duration duration, double rate = 1.0);
  void latency_spike(Duration duration, double factor,
                     Duration extra = Duration::zero());
  /// Recover every crashed host, heal every partition, zero all rates,
  /// expire bursts/spikes and flush held-back messages — the recovery tail
  /// the soak harness runs before checking invariants.
  void clear_all_faults();

  // --- queries -------------------------------------------------------------

  bool is_crashed(const std::string& host) const;
  bool is_partitioned(const std::string& host_a,
                      const std::string& host_b) const;
  double drop_rate() const;
  double duplicate_rate() const;
  double reorder_rate() const;
  int reorder_window() const;
  /// Messages currently held back for reordering.
  std::size_t held_count() const;
  /// Human-readable summary of the current fault state.
  std::string describe() const;

 private:
  friend class SimNetwork;

  struct Burst {
    std::string a;  // "*" = any
    std::string b;
    double rate;
    TimePoint until;
  };
  struct Spike {
    double factor;
    Duration extra;
    TimePoint until;
  };
  struct Held {
    Message msg;
    int remaining;       // sends to the destination until release
    TimePoint deadline;  // sweep release (no releaser traffic)
  };

  // Send-path hooks, called by SimNetwork::send(). judge() is called with
  // no network lock held; hold()/on_send() under the destination's clamp
  // shard (mu_ is below it in the hierarchy). `from` is the sender endpoint
  // id selecting the per-sender decision stream.
  FaultDecision judge(const std::string& from, const std::string& from_host,
                      const std::string& to_host, bool loopback);
  void hold(const std::string& to, Message msg, int defer);
  /// A message to `to` is being sent with `deliver_at`: decrement all holds
  /// for `to` and return the ones that reached zero, stamped with
  /// `deliver_at` (deposited right after the trigger keeps the overtake
  /// bound exact). Called for every send — even one that is itself held —
  /// so a held message is passed by at most `defer` <= window later sends
  /// (a duplicated send counts once: the copy rides the same decrement).
  std::vector<Message> on_send(const std::string& to, TimePoint deliver_at);

  void worker_loop();
  /// Apply one plan event (called by the worker / advance_virtual with no
  /// locks held).
  void apply_event(const FaultEvent& e);
  std::vector<Message> take_all_held();
  /// The per-sender decision stream for `from`, created on first use.
  Rng& stream(const std::string& from) CQOS_REQUIRES(mu_);
  /// Recompute `quiescent_` from the wire-fault state. Every mutation of
  /// crashed_/partitions_/rates/bursts_/spikes_ must call this before
  /// releasing mu_, or judge()'s lock-free fast path would keep using a
  /// stale answer.
  void refresh_quiescent() CQOS_REQUIRES(mu_);

  // Virtual-time pull interface (no worker thread in virtual mode), called
  // by SimNetwork::run_until on the driver thread.
  /// Earliest pending virtual deadline: next unapplied plan event or
  /// earliest reorder-hold sweep; TimePoint::max() when none.
  TimePoint next_virtual_deadline() const;
  /// Apply every plan event and sweep every hold with deadline <= vnow.
  /// Postcondition: next_virtual_deadline() > vnow.
  void advance_virtual(TimePoint vnow);

  /// The network's notion of now (wall or virtual) — all fault deadlines
  /// (bursts, spikes, hold sweeps, plan offsets) live on this clock.
  TimePoint net_now() const;

  SimNetwork& net_;
  mutable Mutex mu_;
  CondVar cv_;
  /// True when no wire fault can affect any send (no crashes, partitions,
  /// rates, bursts or spikes). Lets judge() — called for EVERY send —
  /// return without touching mu_, so fault bookkeeping costs nothing on
  /// the healthy-network fast path and senders do not serialize on it.
  /// A quiescent judge() also draws nothing from the per-sender streams,
  /// which is exactly what the locked path does in that state, so the
  /// decision sequences are unchanged.
  std::atomic<bool> quiescent_{true};
  /// Count of messages currently held back for reordering, mirrored outside
  /// mu_ so on_send() — also called for every send, under the destination's
  /// clamp shard — can skip the lock when nothing is held anywhere.
  /// hold() and on_send() for one destination are serialized by that
  /// destination's clamp shard, so a send that must release a hold always
  /// observes the increment.
  std::atomic<std::uint64_t> holds_active_{0};
  std::uint64_t stream_seed_ CQOS_GUARDED_BY(mu_);
  std::map<std::string, Rng> streams_ CQOS_GUARDED_BY(mu_);

  std::set<std::string> crashed_ CQOS_GUARDED_BY(mu_);
  std::set<std::pair<std::string, std::string>> partitions_
      CQOS_GUARDED_BY(mu_);  // minmax-ordered pair
  double drop_rate_ CQOS_GUARDED_BY(mu_) = 0.0;
  double duplicate_rate_ CQOS_GUARDED_BY(mu_) = 0.0;
  double reorder_rate_ CQOS_GUARDED_BY(mu_) = 0.0;
  int reorder_window_ CQOS_GUARDED_BY(mu_) = 0;
  Duration max_hold_ CQOS_GUARDED_BY(mu_) = ms(50);
  std::vector<Burst> bursts_ CQOS_GUARDED_BY(mu_);
  std::vector<Spike> spikes_ CQOS_GUARDED_BY(mu_);
  std::map<std::string, std::vector<Held>> holds_ CQOS_GUARDED_BY(mu_);

  FaultPlan plan_ CQOS_GUARDED_BY(mu_);
  bool plan_active_ CQOS_GUARDED_BY(mu_) = false;
  std::size_t next_event_ CQOS_GUARDED_BY(mu_) = 0;
  TimePoint plan_t0_ CQOS_GUARDED_BY(mu_);
  std::vector<std::string> trace_ CQOS_GUARDED_BY(mu_);

  bool stop_ CQOS_GUARDED_BY(mu_) = false;
  std::thread worker_;  // not spawned in virtual mode
};

}  // namespace cqos::net
