// SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), implemented from scratch.
//
// Used by the SignedIntegrity micro-protocol as the signature-based integrity
// scheme described in the paper (a keyed MAC stands in for the prototype's
// signature since both parties share configuration secrets in CQoS).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace cqos::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

Sha256Digest sha256(std::span<const std::uint8_t> data);

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);

/// Constant-time digest comparison.
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace cqos::crypto
