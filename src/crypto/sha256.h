// SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), implemented from scratch.
//
// Used by the SignedIntegrity micro-protocol as the signature-based integrity
// scheme described in the paper (a keyed MAC stands in for the prototype's
// signature since both parties share configuration secrets in CQoS).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "common/bytes.h"

namespace cqos::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  Sha256Digest finish();

  /// Mid-hash snapshot/restore at a whole-block boundary. Snapshotting with
  /// buffered partial-block bytes is a programming error (the buffer is not
  /// captured); used by HmacKey to resume from the compressed key block.
  struct State {
    std::array<std::uint32_t, 8> state{};
    std::uint64_t total_len = 0;
  };
  State snapshot() const { return {state_, total_len_}; }
  void restore(const State& s) {
    state_ = s.state;
    total_len_ = s.total_len;
    buffer_len_ = 0;
  }

 private:
  void process_block(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

Sha256Digest sha256(std::span<const std::uint8_t> data);

/// Precomputed HMAC key: the (key ^ ipad) and (key ^ opad) block
/// compressions run once at construction, saving two SHA-256 compressions
/// on every mac() — the analogue of the DES key-schedule cache for the
/// integrity micro-protocol, which MACs with the same session key on every
/// request and reply.
class HmacKey {
 public:
  explicit HmacKey(std::span<const std::uint8_t> key);

  Sha256Digest mac(std::span<const std::uint8_t> data) const;

  /// Memoized lookup (thread-local last-key fast path over a small global
  /// map), mirroring Des::for_key. When the cache is disabled (ablation /
  /// tests) every call precomputes a fresh key.
  static std::shared_ptr<const HmacKey> for_key(
      std::span<const std::uint8_t> key);
  static void set_key_cache_enabled(bool on);
  static bool key_cache_enabled();

 private:
  Sha256::State inner_;
  Sha256::State outer_;
};

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);

/// Constant-time digest comparison.
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace cqos::crypto
