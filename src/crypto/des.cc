#include "crypto/des.h"

#include <array>
#include <atomic>
#include <cstring>
#include <map>

#include "common/error.h"
#include "common/sync.h"

namespace cqos::crypto {
namespace {

// All tables below are the standard FIPS 46-3 tables, written with 1-based
// bit positions counted from the most significant bit, as in the standard.

constexpr int kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr int kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr int kExpansion[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
                                8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
                                16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
                                24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr int kPerm[32] = {16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23,
                           26, 5, 18, 31, 10, 2,  8,  24, 14, 32, 27,
                           3,  9, 19, 13, 30, 6,  22, 11, 4,  25};

constexpr int kPc1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
                          10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
                          63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
                          14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr int kPc2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                          23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                          41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                          44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr int kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

// Apply a 1-based-from-MSB bit permutation: output has `out_bits` bits,
// bit i of the output (counting from MSB of the out_bits-wide result) is
// bit table[i] of the `in_bits`-wide input.
std::uint64_t permute(std::uint64_t in, int in_bits, const int* table,
                      int out_bits) {
  std::uint64_t out = 0;
  for (int i = 0; i < out_bits; ++i) {
    int src = table[i];  // 1-based from MSB
    std::uint64_t bit = (in >> (in_bits - src)) & 1;
    out = (out << 1) | bit;
  }
  return out;
}

std::uint64_t load_be64(const std::uint8_t b[8]) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

void store_be64(std::uint64_t v, std::uint8_t b[8]) {
  for (int i = 7; i >= 0; --i) {
    b[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

std::uint32_t rotl28(std::uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffff;
}

// Byte-indexed tables for the 64->64 initial/final permutations: the
// permuted word is the XOR of eight lookups, one per input byte, instead
// of 64 single-bit moves.
using PermTab = std::array<std::array<std::uint64_t, 256>, 8>;

PermTab build_perm_tab(const int* table) {
  std::array<int, 65> out_pos{};  // input bit -> output bit, 1-based from MSB
  for (int i = 0; i < 64; ++i) {
    out_pos[static_cast<std::size_t>(table[i])] = i + 1;
  }
  PermTab tab{};
  for (int b = 0; b < 8; ++b) {
    for (int v = 0; v < 256; ++v) {
      std::uint64_t out = 0;
      for (int k = 0; k < 8; ++k) {
        if ((v & (1 << (7 - k))) != 0) {
          int src = 8 * b + k + 1;
          out |= 1ULL << (64 - out_pos[static_cast<std::size_t>(src)]);
        }
      }
      tab[static_cast<std::size_t>(b)][static_cast<std::size_t>(v)] = out;
    }
  }
  return tab;
}

std::uint64_t apply_perm_tab(const PermTab& tab, std::uint64_t in) {
  std::uint64_t out = 0;
  for (int b = 0; b < 8; ++b) {
    out ^= tab[static_cast<std::size_t>(b)][(in >> (56 - 8 * b)) & 0xff];
  }
  return out;
}

const PermTab& ip_tab() {
  static const PermTab tab = build_perm_tab(kIp);
  return tab;
}

const PermTab& fp_tab() {
  static const PermTab tab = build_perm_tab(kFp);
  return tab;
}

// Combined S-box + P-permutation tables: SP[box][six] is kPerm applied to
// kSbox[box]'s output nibble placed at its position in the 32-bit S-box
// result. With these, one round is eight table lookups instead of the
// bit-at-a-time kExpansion/kPerm permutes — the per-block cost drops an
// order of magnitude while the key-schedule build (kPc1/kPc2) keeps its
// cost, which is what the Des::for_key schedule cache amortizes.
const std::array<std::array<std::uint32_t, 64>, 8>& sp_tables() {
  static const std::array<std::array<std::uint32_t, 64>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 64>, 8> sp{};
    for (int box = 0; box < 8; ++box) {
      for (int six = 0; six < 64; ++six) {
        int row = ((six & 0x20) >> 4) | (six & 0x01);
        int col = (six >> 1) & 0x0f;
        std::uint32_t nibble = kSbox[box][row * 16 + col];
        std::uint64_t sbox_out = static_cast<std::uint64_t>(nibble)
                                 << (28 - 4 * box);
        sp[static_cast<std::size_t>(box)][static_cast<std::size_t>(six)] =
            static_cast<std::uint32_t>(permute(sbox_out, 32, kPerm, 32));
      }
    }
    return sp;
  }();
  return tables;
}

std::uint32_t f_function(std::uint32_t half, std::uint64_t subkey) {
  const auto& sp = sp_tables();
  // kExpansion's groups are the circular windows half[4g-1 .. 4g+4]
  // (1-based from MSB): materialize the 34-bit circular string
  // bit32 | half | bit1 once, then each group is a 6-bit shift+mask.
  std::uint64_t t = (static_cast<std::uint64_t>(half & 1) << 33) |
                    (static_cast<std::uint64_t>(half) << 1) | (half >> 31);
  std::uint32_t out = 0;
  for (int g = 0; g < 8; ++g) {
    auto six = static_cast<std::size_t>(((t >> (28 - 4 * g)) & 0x3f) ^
                                        ((subkey >> (42 - 6 * g)) & 0x3f));
    out ^= sp[static_cast<std::size_t>(g)][six];
  }
  return out;
}

}  // namespace

std::shared_ptr<const Des> Des::for_key(std::span<const std::uint8_t> key8) {
  if (key8.size() != 8) throw Error("DES key must be 8 bytes");
  if (!schedule_cache_enabled()) {
    return std::make_shared<const Des>(key8);
  }
  std::uint64_t key = load_be64(key8.data());

  // Fast path: the last key this thread used (typically the one session key).
  struct LastKey {
    std::uint64_t key = 0;
    std::shared_ptr<const Des> des;
  };
  thread_local LastKey last;
  if (last.des && last.key == key) return last.des;

  static Mutex mu;
  static std::map<std::uint64_t, std::shared_ptr<const Des>>* cache =
      new std::map<std::uint64_t, std::shared_ptr<const Des>>();
  constexpr std::size_t kMaxCachedSchedules = 64;
  std::shared_ptr<const Des> des;
  {
    MutexLock lk(mu);
    auto it = cache->find(key);
    if (it != cache->end()) {
      des = it->second;
    } else {
      if (cache->size() >= kMaxCachedSchedules) cache->clear();
      des = std::make_shared<const Des>(key8);
      cache->emplace(key, des);
    }
  }
  last = LastKey{key, des};
  return des;
}

namespace {
std::atomic<bool> g_schedule_cache_enabled{true};
}  // namespace

void Des::set_schedule_cache_enabled(bool on) {
  g_schedule_cache_enabled.store(on, std::memory_order_relaxed);
}

bool Des::schedule_cache_enabled() {
  return g_schedule_cache_enabled.load(std::memory_order_relaxed);
}

Des::Des(std::span<const std::uint8_t> key8) {
  if (key8.size() != 8) throw Error("DES key must be 8 bytes");
  std::uint64_t key = load_be64(key8.data());
  std::uint64_t permuted = permute(key, 64, kPc1, 56);
  auto c = static_cast<std::uint32_t>((permuted >> 28) & 0x0fffffff);
  auto d = static_cast<std::uint32_t>(permuted & 0x0fffffff);
  for (int round = 0; round < 16; ++round) {
    c = rotl28(c, kShifts[round]);
    d = rotl28(d, kShifts[round]);
    std::uint64_t cd = (static_cast<std::uint64_t>(c) << 28) | d;
    subkeys_[static_cast<std::size_t>(round)] = permute(cd, 56, kPc2, 48);
  }
}

std::uint64_t Des::feistel(std::uint64_t block, bool decrypt) const {
  std::uint64_t ip = apply_perm_tab(ip_tab(), block);
  auto left = static_cast<std::uint32_t>(ip >> 32);
  auto right = static_cast<std::uint32_t>(ip & 0xffffffff);
  for (int round = 0; round < 16; ++round) {
    std::size_t k = decrypt ? static_cast<std::size_t>(15 - round)
                            : static_cast<std::size_t>(round);
    std::uint32_t next = left ^ f_function(right, subkeys_[k]);
    left = right;
    right = next;
  }
  // Final swap then inverse initial permutation.
  std::uint64_t preoutput =
      (static_cast<std::uint64_t>(right) << 32) | left;
  return apply_perm_tab(fp_tab(), preoutput);
}

void Des::encrypt_block(const std::uint8_t in[8], std::uint8_t out[8]) const {
  store_be64(feistel(load_be64(in), /*decrypt=*/false), out);
}

void Des::decrypt_block(const std::uint8_t in[8], std::uint8_t out[8]) const {
  store_be64(feistel(load_be64(in), /*decrypt=*/true), out);
}

Bytes des_cbc_encrypt(const Des& des, std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> plaintext) {
  if (iv8.size() != 8) throw Error("DES-CBC IV must be 8 bytes");
  std::size_t pad = 8 - plaintext.size() % 8;
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  std::uint8_t chain[8];
  std::memcpy(chain, iv8.data(), 8);
  for (std::size_t off = 0; off < padded.size(); off += 8) {
    std::uint8_t block[8];
    for (int i = 0; i < 8; ++i) {
      block[i] = padded[off + static_cast<std::size_t>(i)] ^ chain[i];
    }
    des.encrypt_block(block, &out[off]);
    std::memcpy(chain, &out[off], 8);
  }
  return out;
}

Bytes des_cbc_encrypt(std::span<const std::uint8_t> key8,
                      std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> plaintext) {
  return des_cbc_encrypt(*Des::for_key(key8), iv8, plaintext);
}

Bytes des_cbc_decrypt(const Des& des, std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> ciphertext) {
  if (iv8.size() != 8) throw Error("DES-CBC IV must be 8 bytes");
  if (ciphertext.empty() || ciphertext.size() % 8 != 0) {
    throw DecodeError("DES-CBC ciphertext not a positive multiple of 8");
  }
  Bytes out(ciphertext.size());
  std::uint8_t chain[8];
  std::memcpy(chain, iv8.data(), 8);
  for (std::size_t off = 0; off < ciphertext.size(); off += 8) {
    std::uint8_t block[8];
    des.decrypt_block(&ciphertext[off], block);
    for (int i = 0; i < 8; ++i) {
      out[off + static_cast<std::size_t>(i)] = block[i] ^ chain[i];
    }
    std::memcpy(chain, &ciphertext[off], 8);
  }
  std::uint8_t pad = out.back();
  if (pad == 0 || pad > 8 || pad > out.size()) {
    throw DecodeError("DES-CBC bad padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) throw DecodeError("DES-CBC bad padding");
  }
  out.resize(out.size() - pad);
  return out;
}

Bytes des_cbc_decrypt(std::span<const std::uint8_t> key8,
                      std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> ciphertext) {
  return des_cbc_decrypt(*Des::for_key(key8), iv8, ciphertext);
}

}  // namespace cqos::crypto
