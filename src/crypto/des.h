// DES block cipher and DES-CBC mode, implemented from scratch (FIPS 46-3).
//
// Used by the DesPrivacy micro-protocol to match the paper's confidentiality
// scheme. DES is cryptographically obsolete; it is implemented here because
// the paper used it and because the benchmark shape depends on a real block
// cipher's CPU cost. Do not use for new designs.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "common/bytes.h"

namespace cqos::crypto {

/// One DES key schedule. The key is 8 bytes; parity bits are ignored.
class Des {
 public:
  explicit Des(std::span<const std::uint8_t> key8);

  /// A shared schedule for `key8` from the process-wide session-key cache:
  /// the 16-round schedule is computed once per distinct key, not once per
  /// encrypt/decrypt call. Thread-local last-key memo in front of a small
  /// mutex-guarded map (bounded; eviction drops the whole map — schedules
  /// are cheap to rebuild, the win is the steady state of few session keys).
  static std::shared_ptr<const Des> for_key(std::span<const std::uint8_t> key8);

  /// Ablation/test knob: disabled, for_key() builds a fresh schedule per
  /// call — the pre-fix behaviour of the CBC helpers.
  static void set_schedule_cache_enabled(bool on);
  static bool schedule_cache_enabled();

  /// Encrypt/decrypt a single 8-byte block.
  void encrypt_block(const std::uint8_t in[8], std::uint8_t out[8]) const;
  void decrypt_block(const std::uint8_t in[8], std::uint8_t out[8]) const;

 private:
  std::uint64_t feistel(std::uint64_t block, bool decrypt) const;

  std::array<std::uint64_t, 16> subkeys_{};  // 48-bit round keys
};

/// DES-CBC with PKCS#7 padding. `iv` must be 8 bytes. Callers on a hot path
/// should hold the Des (or use the key-span overloads, which consult the
/// schedule cache).
Bytes des_cbc_encrypt(const Des& des, std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> plaintext);
Bytes des_cbc_encrypt(std::span<const std::uint8_t> key8,
                      std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> plaintext);

/// Throws cqos::DecodeError on bad padding or non-block-aligned input.
Bytes des_cbc_decrypt(const Des& des, std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> ciphertext);
Bytes des_cbc_decrypt(std::span<const std::uint8_t> key8,
                      std::span<const std::uint8_t> iv8,
                      std::span<const std::uint8_t> ciphertext);

}  // namespace cqos::crypto
